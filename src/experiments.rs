//! Experiment plumbing shared by every figure harness.
//!
//! The paper reports each design point as a *speedup over the same GPU
//! without TLBs* (perfect, free translation). A [`Runner`] owns the
//! built workloads and memoizes every design point it has simulated, so
//! a figure sweep pays for workload construction and each distinct
//! configuration once.
//!
//! Design points are independent simulations, so a sweep can execute
//! them on a pool of worker threads. [`Runner::sweep`] does this
//! without changing any figure code: it runs the figure function once
//! in a *recording* pass that captures every design point it asks for
//! (returning placeholder stats), executes the distinct points on
//! [`Runner::run_points_parallel`], then replays the figure function
//! against the now-warm memo cache. Workloads and results are shared
//! immutably across workers; every simulation still starts from its
//! own freshly-built [`Gpu`], so results are bit-identical to a serial
//! sweep in any thread count.

use crate::prelude::*;
use gmmu_sim::ckpt::{Ckpt, Loader, Saver};
use gmmu_sim::metrics::Metrics;
use gmmu_sim::rng::fnv1a64;
use gmmu_sim::trace::Tracer;
use gmmu_simt::gpu::{run_kernel, CheckpointOpts};
use gmmu_simt::{IntervalRecorder, Kernel, Observer};
use gmmu_trace::{assemble, capture_launch, replay_run_observed, Recorder, Trace};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const USAGE: &str = "usage: harness [--quick | --full] [--csv] [--jobs N]
               [--engine serial|parallel|event] [--run-threads N]
               [--trace PATH] [--intervals PATH] [--interval-stride N]
               [--metrics PATH]
               [--fault-inject] [--fault-seed N]
               [--journal PATH] [--shard I/N] [--kill-after N]
               [--checkpoint-every N] [--checkpoint-path PATH]
               [--resume PATH] [--capture-trace PATH] [--replay PATH]
  --quick    tiny workloads on a 2-core machine (CI/smoke scope)
  --full     the paper's full 30-core machine (slow; final numbers)
  --csv      also print each table as CSV
  --jobs N   worker threads for design-point sweeps
             (default: GMMU_JOBS or the machine's available parallelism)
  --engine serial|parallel|event
             intra-run execution engine (default serial); parallel
             ticks cores concurrently within each cycle, event jumps
             the calendar straight between scheduled wake cycles;
             both are bit-identical to serial
  --run-threads N
             threads per simulation under --engine parallel, including
             the calling thread (default 2 when --engine parallel is
             given, else 1). Composes with --jobs under one shared
             thread budget: jobs is clamped so jobs x run-threads
             never exceeds the machine's available parallelism
  --trace PATH
             write a Chrome/Perfetto trace.json of the first design
             point simulated (load at ui.perfetto.dev)
  --intervals PATH
             write that point's interval time-series to PATH
             (.json extension for JSON, otherwise CSV)
  --interval-stride N
             interval sample stride in cycles (default 10000)
  --metrics PATH
             write the first design point's versioned metrics snapshot
             (instrument registry, per-stage walk latency histograms,
             hot-page table) to PATH as JSON; snapshots are
             engine-invariant. Under --replay: diff the replayed
             snapshot against PATH when the file exists (exit non-zero
             on any difference), write it otherwise
  --fault-inject
             run the fault-injection harness instead of the figure:
             every workload executes a fully demand-paged run (zero
             pre-mapped pages) and a mixed-fault run (partial unmap,
             delayed walks, transient rejects, shootdown storms);
             exits non-zero if any run panics, hangs, or trips the
             forward-progress watchdog
  --fault-seed N
             seed for the deterministic fault schedules (default 0xfa57)
  --journal PATH
             restartable sweeps: append every completed design point
             (key, wall time, full stats) to PATH and, on start, serve
             points already journaled from PATH without recompute — a
             killed sweep resumes where it left off
  --shard I/N
             run only every N-th design point starting at I (0-based)
             of the deduplicated sweep; combine with a shared --journal
             to split one sweep across N processes or machines, then
             merge with a final unsharded run on the same journal
  --kill-after N
             stop after N freshly simulated design points with exit
             status 3, journal intact (exercises the resume path)
  --checkpoint-every N
             snapshot the first simulated design point every N cycles
             to --checkpoint-path (atomic overwrite, latest image wins)
  --checkpoint-path PATH
             where --checkpoint-every writes (default gmmu.ckpt)
  --resume PATH
             resume the first simulated design point from a checkpoint
             image written by --checkpoint-every (the configuration and
             instruments must match the snapshotting run)
  --capture-trace PATH
             record the first simulated design point to a GMTR trace
             file: the kernel's full data-dependent behaviour plus the
             machine configuration and final stats. Recording does not
             perturb the run. Incompatible with --resume (a resumed run
             only exercises the tail of the kernel)
  --replay PATH
             replay a GMTR trace instead of running the figure: rebuild
             the captured machine, drive it from the recorded behaviour
             on --engine/--run-threads, and diff the result against the
             stats embedded in the trace; exits non-zero on any
             difference";

/// Default sweep parallelism: the `GMMU_JOBS` environment variable when
/// set, otherwise the machine's available parallelism.
fn default_jobs() -> usize {
    if let Some(v) = std::env::var_os("GMMU_JOBS") {
        if let Some(n) = v.to_str().and_then(|s| s.parse::<usize>().ok()) {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn bad_usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2)
}

/// Scope of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOpts {
    /// Workload scale.
    pub scale: Scale,
    /// Shader cores (the memory system keeps the paper's ~4:1
    /// core-to-channel ratio).
    pub n_cores: usize,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads used by [`Runner::run_points_parallel`].
    pub jobs: usize,
    /// Write a Chrome/Perfetto trace of the first design point
    /// simulated to this path (`--trace`).
    pub trace: Option<&'static str>,
    /// Write that point's interval time-series to this path
    /// (`--intervals`; `.json` extension selects JSON, otherwise CSV).
    pub intervals: Option<&'static str>,
    /// Interval sample stride in cycles (`--interval-stride`).
    pub interval_stride: u64,
    /// Write the first design point's metrics snapshot to this path
    /// (`--metrics`); under `--replay`, diff against the file when it
    /// exists and write it otherwise.
    pub metrics: Option<&'static str>,
    /// Run the fault-injection harness instead of the figure
    /// (`--fault-inject`).
    pub fault_inject: bool,
    /// Seed for the deterministic fault schedules (`--fault-seed`).
    pub fault_seed: u64,
    /// Intra-run execution engine (`--engine`).
    pub engine: EngineKind,
    /// Threads per simulation under the parallel engine, including the
    /// calling thread (`--run-threads`).
    pub run_threads: usize,
    /// Journal completed design points to this path and replay it on
    /// start (`--journal`): the restartable-sweep mechanism.
    pub journal: Option<&'static str>,
    /// Run only design points `i % n == shard.0` of the deduplicated
    /// sweep (`--shard I/N`).
    pub shard: Option<(usize, usize)>,
    /// Exit with status 3 after this many freshly simulated points
    /// (`--kill-after`; exercises journal resume).
    pub kill_after: Option<usize>,
    /// Snapshot the first simulated design point every N cycles
    /// (`--checkpoint-every`; 0 = off).
    pub checkpoint_every: u64,
    /// Where `--checkpoint-every` writes its image
    /// (`--checkpoint-path`).
    pub checkpoint_path: &'static str,
    /// Resume the first simulated design point from this checkpoint
    /// image (`--resume`).
    pub resume: Option<&'static str>,
    /// Record the first simulated design point to this GMTR trace file
    /// (`--capture-trace`).
    pub capture_trace: Option<&'static str>,
    /// Replay a GMTR trace instead of running the figure (`--replay`).
    pub replay: Option<&'static str>,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            n_cores: 8,
            seed: 7,
            jobs: default_jobs(),
            trace: None,
            intervals: None,
            interval_stride: 10_000,
            metrics: None,
            fault_inject: false,
            fault_seed: 0xfa57,
            engine: EngineKind::Serial,
            run_threads: 1,
            journal: None,
            shard: None,
            kill_after: None,
            checkpoint_every: 0,
            checkpoint_path: "gmmu.ckpt",
            resume: None,
            capture_trace: None,
            replay: None,
        }
    }
}

impl ExperimentOpts {
    /// CI/smoke scope: tiny workloads on a 2-core machine.
    pub fn quick() -> Self {
        Self {
            scale: Scale::Tiny,
            n_cores: 2,
            ..Self::default()
        }
    }

    /// The paper's full 30-core machine (slow; for final numbers).
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            n_cores: 30,
            ..Self::default()
        }
    }

    /// Parses harness arguments: `--quick`, `--full` (default: the
    /// standard experiment scope), `--csv`, and `--jobs N`.
    ///
    /// Unknown arguments print the usage text and exit with status 2.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    opts = Self {
                        scale: Scale::Tiny,
                        n_cores: 2,
                        ..opts
                    }
                }
                "--full" => {
                    opts = Self {
                        scale: Scale::Full,
                        n_cores: 30,
                        ..opts
                    }
                }
                "--csv" => {} // presentation flag, handled by the binary
                "--jobs" => match args.next() {
                    Some(v) => opts.jobs = parse_jobs(&v),
                    None => bad_usage("--jobs needs a value"),
                },
                "--engine" => match args.next() {
                    Some(v) => opts.engine = parse_engine(&v),
                    None => bad_usage("--engine needs serial or parallel"),
                },
                "--run-threads" => match args.next() {
                    Some(v) => opts.run_threads = parse_run_threads(&v),
                    None => bad_usage("--run-threads needs a value"),
                },
                "--trace" => match args.next() {
                    Some(v) => opts.trace = Some(leak_path(v)),
                    None => bad_usage("--trace needs a path"),
                },
                "--intervals" => match args.next() {
                    Some(v) => opts.intervals = Some(leak_path(v)),
                    None => bad_usage("--intervals needs a path"),
                },
                "--interval-stride" => match args.next() {
                    Some(v) => opts.interval_stride = parse_stride(&v),
                    None => bad_usage("--interval-stride needs a value"),
                },
                "--metrics" => match args.next() {
                    Some(v) => opts.metrics = Some(leak_path(v)),
                    None => bad_usage("--metrics needs a path"),
                },
                "--fault-inject" => opts.fault_inject = true,
                "--fault-seed" => match args.next() {
                    Some(v) => opts.fault_seed = parse_seed(&v),
                    None => bad_usage("--fault-seed needs a value"),
                },
                "--journal" => match args.next() {
                    Some(v) => opts.journal = Some(leak_path(v)),
                    None => bad_usage("--journal needs a path"),
                },
                "--shard" => match args.next() {
                    Some(v) => opts.shard = Some(parse_shard(&v)),
                    None => bad_usage("--shard needs I/N"),
                },
                "--kill-after" => match args.next() {
                    Some(v) => opts.kill_after = Some(parse_kill_after(&v)),
                    None => bad_usage("--kill-after needs a value"),
                },
                "--checkpoint-every" => match args.next() {
                    Some(v) => opts.checkpoint_every = parse_every(&v),
                    None => bad_usage("--checkpoint-every needs a value"),
                },
                "--checkpoint-path" => match args.next() {
                    Some(v) => opts.checkpoint_path = leak_path(v),
                    None => bad_usage("--checkpoint-path needs a path"),
                },
                "--resume" => match args.next() {
                    Some(v) => opts.resume = Some(leak_path(v)),
                    None => bad_usage("--resume needs a path"),
                },
                "--capture-trace" => match args.next() {
                    Some(v) => opts.capture_trace = Some(leak_path(v)),
                    None => bad_usage("--capture-trace needs a path"),
                },
                "--replay" => match args.next() {
                    Some(v) => opts.replay = Some(leak_path(v)),
                    None => bad_usage("--replay needs a path"),
                },
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0)
                }
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        opts.jobs = parse_jobs(v)
                    } else if let Some(v) = other.strip_prefix("--engine=") {
                        opts.engine = parse_engine(v)
                    } else if let Some(v) = other.strip_prefix("--run-threads=") {
                        opts.run_threads = parse_run_threads(v)
                    } else if let Some(v) = other.strip_prefix("--trace=") {
                        opts.trace = Some(leak_path(v.to_string()))
                    } else if let Some(v) = other.strip_prefix("--intervals=") {
                        opts.intervals = Some(leak_path(v.to_string()))
                    } else if let Some(v) = other.strip_prefix("--interval-stride=") {
                        opts.interval_stride = parse_stride(v)
                    } else if let Some(v) = other.strip_prefix("--metrics=") {
                        opts.metrics = Some(leak_path(v.to_string()))
                    } else if let Some(v) = other.strip_prefix("--fault-seed=") {
                        opts.fault_seed = parse_seed(v)
                    } else if let Some(v) = other.strip_prefix("--journal=") {
                        opts.journal = Some(leak_path(v.to_string()))
                    } else if let Some(v) = other.strip_prefix("--shard=") {
                        opts.shard = Some(parse_shard(v))
                    } else if let Some(v) = other.strip_prefix("--kill-after=") {
                        opts.kill_after = Some(parse_kill_after(v))
                    } else if let Some(v) = other.strip_prefix("--checkpoint-every=") {
                        opts.checkpoint_every = parse_every(v)
                    } else if let Some(v) = other.strip_prefix("--checkpoint-path=") {
                        opts.checkpoint_path = leak_path(v.to_string())
                    } else if let Some(v) = other.strip_prefix("--resume=") {
                        opts.resume = Some(leak_path(v.to_string()))
                    } else if let Some(v) = other.strip_prefix("--capture-trace=") {
                        opts.capture_trace = Some(leak_path(v.to_string()))
                    } else if let Some(v) = other.strip_prefix("--replay=") {
                        opts.replay = Some(leak_path(v.to_string()))
                    } else {
                        bad_usage(&format!("unknown argument `{other}`"))
                    }
                }
            }
        }
        if opts.engine == EngineKind::Parallel && opts.run_threads < 2 {
            // `--engine parallel` without `--run-threads` should
            // actually parallelize.
            opts.run_threads = 2;
        }
        if opts.run_threads > 1 {
            // One shared thread budget: an N-thread engine under an
            // M-way sweep would run N*M threads, so shrink the sweep
            // pool to keep the product within the machine.
            opts.jobs = opts.jobs.min((default_jobs() / opts.run_threads).max(1));
        }
        if opts.capture_trace.is_some() && opts.resume.is_some() {
            // A resumed run only exercises the kernel's tail, so the
            // recorded behaviour tables would be incomplete.
            bad_usage("--capture-trace cannot be combined with --resume")
        }
        if let Some(path) = opts.replay {
            // Replay replaces the figure: every binary that parses its
            // arguments here can replay any GMTR trace.
            run_replay(opts, path)
        }
        if opts.fault_inject {
            // The harness replaces the figure: every binary that parses
            // its arguments here gains the fault-injection mode.
            run_fault_injection(opts)
        }
        opts
    }

    /// The GPU configuration for this scope with the given MMU, before
    /// figure-specific adjustments.
    pub fn gpu(&self, mmu: MmuModel) -> GpuConfig {
        let mut cfg = GpuConfig::experiment_scale(mmu);
        cfg.n_cores = self.n_cores;
        // Keep the paper's 30-core : 8-channel balance at any size.
        cfg.mem.channels = ((self.n_cores * 8 + 15) / 30).max(1);
        cfg.seed = self.seed;
        cfg.engine = self.engine;
        cfg.run_threads = self.run_threads;
        cfg
    }

    /// Whether any observation output (`--trace` / `--intervals` /
    /// `--metrics`) was requested.
    pub fn observes(&self) -> bool {
        self.trace.is_some() || self.intervals.is_some() || self.metrics.is_some()
    }

    /// Whether checkpointing (`--checkpoint-every` / `--resume`) was
    /// requested.
    pub fn checkpoints(&self) -> bool {
        self.checkpoint_every > 0 || self.resume.is_some()
    }

    /// Whether trace capture (`--capture-trace`) was requested.
    pub fn captures(&self) -> bool {
        self.capture_trace.is_some()
    }
}

fn parse_jobs(v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => bad_usage(&format!("--jobs needs a positive integer, got `{v}`")),
    }
}

fn parse_engine(v: &str) -> EngineKind {
    match v {
        "serial" => EngineKind::Serial,
        "parallel" => EngineKind::Parallel,
        "event" => EngineKind::Event,
        _ => bad_usage(&format!(
            "--engine needs serial, parallel, or event, got `{v}`"
        )),
    }
}

fn parse_shard(v: &str) -> (usize, usize) {
    let parsed = v.split_once('/').and_then(|(i, n)| {
        let i = i.parse::<usize>().ok()?;
        let n = n.parse::<usize>().ok()?;
        (n >= 1 && i < n).then_some((i, n))
    });
    match parsed {
        Some(s) => s,
        None => bad_usage(&format!("--shard needs I/N with 0 <= I < N, got `{v}`")),
    }
}

fn parse_kill_after(v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => bad_usage(&format!("--kill-after needs a positive integer, got `{v}`")),
    }
}

fn parse_every(v: &str) -> u64 {
    match v.parse::<u64>() {
        Ok(n) if n >= 1 => n,
        _ => bad_usage(&format!(
            "--checkpoint-every needs a positive cycle count, got `{v}`"
        )),
    }
}

fn parse_run_threads(v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => bad_usage(&format!(
            "--run-threads needs a positive integer, got `{v}`"
        )),
    }
}

fn parse_stride(v: &str) -> u64 {
    match v.parse::<u64>() {
        Ok(n) if n >= 1 => n,
        _ => bad_usage(&format!(
            "--interval-stride needs a positive integer, got `{v}`"
        )),
    }
}

fn parse_seed(v: &str) -> u64 {
    let parsed = v
        .strip_prefix("0x")
        .map_or_else(|| v.parse::<u64>(), |h| u64::from_str_radix(h, 16));
    match parsed {
        Ok(n) => n,
        _ => bad_usage(&format!("--fault-seed needs an integer, got `{v}`")),
    }
}

/// Output paths live for the whole process (they came from argv), which
/// keeps [`ExperimentOpts`] `Copy` — one leaked allocation per flag.
fn leak_path(v: String) -> &'static str {
    Box::leak(v.into_boxed_str())
}

/// One design point a sweep will simulate: which workload build and the
/// full GPU configuration to run it under.
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// Workload to run.
    pub bench: Bench,
    /// Use the 2 MB-page build of the workload (Section 9).
    pub large_pages: bool,
    /// Complete GPU configuration (figure adjustments already applied).
    pub cfg: GpuConfig,
}

impl PointSpec {
    /// Memo-cache key. `GpuConfig`'s `Debug` output covers every field
    /// (all plain integers/enums), so two points with equal keys are
    /// the same simulation.
    pub fn key(&self) -> String {
        format!("{}:{:?}:{:?}", self.large_pages, self.bench, self.cfg)
    }
}

/// Run metadata for one executed design point (cache hits excluded),
/// folded into `BENCH_all_figures.json` alongside the tables.
#[derive(Debug, Clone)]
pub struct PointRun {
    /// Workload simulated.
    pub bench: Bench,
    /// Whether the 2 MB-page workload build ran.
    pub large_pages: bool,
    /// FNV-1a 64 hash of the full memo key (bench + complete
    /// `GpuConfig`): a stable fingerprint of the configuration.
    pub fingerprint: u64,
    /// Engine that executed the point: `event_skip`,
    /// `tick_every_cycle` (config flag or `GMMU_TICK_EVERY_CYCLE`), or
    /// `parallel` (either global loop under the intra-run worker pool).
    pub engine: &'static str,
    /// Wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Simulated cycles per wall-clock second
    /// ([`RunStats::cycles_per_sec`]), the engine-comparison metric.
    pub sim_cycles_per_sec: f64,
    /// Whether this was the observed run (`--trace` / `--intervals`).
    pub observed: bool,
}

/// Engine label for run metadata; mirrors the engine selection in the
/// GPU run loop.
fn engine_label(cfg: &GpuConfig) -> &'static str {
    if cfg.engine == EngineKind::Parallel && cfg.run_threads > 1 && cfg.n_cores > 1 {
        "parallel"
    } else if cfg.engine == EngineKind::Event {
        "event"
    } else if cfg.tick_every_cycle || std::env::var_os("GMMU_TICK_EVERY_CYCLE").is_some() {
        "tick_every_cycle"
    } else {
        "event_skip"
    }
}

/// Maps a journaled engine label back to the static string the live
/// label function would have produced.
fn intern_engine_label(v: &str) -> &'static str {
    match v {
        "parallel" => "parallel",
        "event" => "event",
        "tick_every_cycle" => "tick_every_cycle",
        "event_skip" => "event_skip",
        _ => "journal",
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

/// Simulates one design point with the observation instruments the
/// options ask for, writing the trace / interval / GMTR capture files
/// as a side effect. Results are bit-identical to the unobserved run.
fn observed_run(opts: ExperimentOpts, spec: &PointSpec, w: &Workload) -> RunStats {
    let mut obs = Observer::off();
    if opts.trace.is_some() {
        obs.tracer = Tracer::recording();
    }
    if opts.intervals.is_some() {
        obs.intervals = Some(IntervalRecorder::new(opts.interval_stride));
    }
    if opts.metrics.is_some() {
        obs.metrics = Metrics::recording();
    }
    // Trace capture wraps the kernel in a recorder and snapshots the
    // launch *before* the run, so a replay rebuilds the same initial
    // address space. Recording every kernel answer does not perturb the
    // simulation (the recorder delegates to the pure kernel).
    let launch = opts.capture_trace.map(|_| {
        let source = format!("{:?} {:?} seed={}", spec.bench, opts.scale, opts.seed);
        capture_launch(w.kernel.as_ref(), &w.space, &spec.cfg, &source)
    });
    let recorder = opts.capture_trace.map(|_| Recorder::new(w.kernel.as_ref()));
    let kernel: &dyn Kernel = match &recorder {
        Some(rec) => rec,
        None => w.kernel.as_ref(),
    };
    let (stats, snapshot) = if opts.checkpoints() {
        checkpointed_run(opts, spec, kernel, w, &mut obs)
    } else {
        let mut gpu = Gpu::new(spec.cfg.clone());
        let stats = gpu.run_observed(kernel, &w.space, &mut obs);
        let snapshot = gpu.metrics_snapshot(&obs);
        (stats, snapshot)
    };
    if let (Some(path), Some(launch), Some(rec)) = (opts.capture_trace, launch, recorder) {
        let trace = assemble(launch, rec, &stats);
        let bytes = trace.encode();
        match std::fs::write(path, &bytes) {
            Ok(()) => eprintln!(
                "capture: {} record(s) from {:?} written to {path} ({} bytes)",
                trace.records.len(),
                spec.bench,
                bytes.len()
            ),
            Err(e) => eprintln!("capture: failed to write {path}: {e}"),
        }
    }
    if let (Some(path), Some(buf)) = (opts.trace, obs.tracer.buffer()) {
        // With the metrics channel and interval recorder both on, the
        // span trace gains a counter track of per-stage walk cycles.
        let counters = metrics_counter_rows(&obs);
        let write = if counters.is_empty() {
            buf.write_chrome_json(path)
        } else {
            std::fs::write(path, buf.to_chrome_json_with(&counters))
        };
        match write {
            Ok(()) => eprintln!(
                "trace: {} events from {:?} written to {path}",
                buf.len(),
                spec.bench
            ),
            Err(e) => eprintln!("trace: failed to write {path}: {e}"),
        }
    }
    if let (Some(path), Some(rec)) = (opts.intervals, obs.intervals.as_ref()) {
        let body = if path.ends_with(".json") {
            rec.to_json()
        } else {
            rec.to_csv()
        };
        match std::fs::write(path, body) {
            Ok(()) => eprintln!(
                "intervals: {} samples from {:?} written to {path}",
                rec.samples().len(),
                spec.bench
            ),
            Err(e) => eprintln!("intervals: failed to write {path}: {e}"),
        }
    }
    if let (Some(path), Some(body)) = (opts.metrics, snapshot) {
        match std::fs::write(path, &body) {
            Ok(()) => eprintln!(
                "metrics: snapshot from {:?} written to {path} ({} bytes)",
                spec.bench,
                body.len()
            ),
            Err(e) => eprintln!("metrics: failed to write {path}: {e}"),
        }
    }
    stats
}

/// Renders the interval time-series' per-stage walk columns as Chrome
/// `"ph":"C"` counter rows for [`TraceBuffer::to_chrome_json_with`]:
/// one `walk_stage_cycles` sample per interval boundary carrying the
/// queued and active walk cycles attributed during that interval.
/// Empty unless both the metrics channel and the interval recorder ran.
///
/// [`TraceBuffer::to_chrome_json_with`]: gmmu_sim::trace::TraceBuffer::to_chrome_json_with
fn metrics_counter_rows(obs: &Observer) -> Vec<String> {
    if !obs.metrics.enabled() {
        return Vec::new();
    }
    let Some(rec) = obs.intervals.as_ref() else {
        return Vec::new();
    };
    rec.samples()
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"walk_stage_cycles\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\
                 \"args\":{{\"queue\":{},\"active\":{}}}}}",
                s.end_cycle, s.walk_queue_cycles, s.walk_active_cycles
            )
        })
        .collect()
}

/// Runs one design point on the checkpointed event engine: the run is
/// snapshotted every `--checkpoint-every` cycles to `--checkpoint-path`
/// (written atomically, latest image wins) and optionally resumed from
/// a `--resume` image. Checkpointed runs own a clone of the shared
/// workload address space (demand state must be restorable), and they
/// are bit-identical to the unobserved run.
fn checkpointed_run(
    opts: ExperimentOpts,
    spec: &PointSpec,
    kernel: &dyn Kernel,
    w: &Workload,
    obs: &mut Observer,
) -> (RunStats, Option<String>) {
    let resume_bytes = opts.resume.map(|path| match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("checkpoint: cannot read --resume {path}: {e}");
            std::process::exit(1)
        }
    });
    let path = opts.checkpoint_path;
    let tmp = format!("{path}.tmp");
    let mut sink = |img: &[u8]| {
        let write = std::fs::write(&tmp, img).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("checkpoint: cannot write {path}: {e}");
        }
    };
    let mut space = w.space.clone();
    let mut gpu = Gpu::new(spec.cfg.clone());
    let run = gpu.run_event_checkpointed(
        kernel,
        &mut space,
        obs,
        CheckpointOpts {
            every: opts.checkpoint_every,
            sink: &mut sink,
            resume: resume_bytes.as_deref(),
        },
    );
    match run {
        Ok(stats) => {
            let snapshot = gpu.metrics_snapshot(obs);
            (stats, snapshot)
        }
        Err(e) => {
            eprintln!("checkpoint: resume refused: {e:?}");
            std::process::exit(1)
        }
    }
}

/// Appends one completed design point to the sweep journal: version
/// tag, key fingerprint, engine label, wall seconds, the full
/// [`RunStats`] as hex-encoded checkpoint bytes, and the memo key
/// itself. One line per point; a line is only ever appended after its
/// stats are final, so a killed sweep leaves a valid journal.
fn journal_append(
    journal: &Option<Mutex<std::fs::File>>,
    key: &str,
    run: &PointRun,
    stats: &RunStats,
) {
    let Some(file) = journal else { return };
    let mut w = Saver::new();
    stats.save(&mut w);
    let line = format!(
        "v1\t{:016x}\t{}\t{:.6}\t{}\t{}\n",
        run.fingerprint,
        run.engine,
        run.wall_s,
        hex_encode(&w.into_bytes()),
        key
    );
    use std::io::Write as _;
    let mut f = file.lock().unwrap();
    if f.write_all(line.as_bytes())
        .and_then(|()| f.flush())
        .is_err()
    {
        eprintln!("journal: append failed for {:016x}", run.fingerprint);
    }
}

/// Parses one journal line back into the point it recorded. Returns
/// `None` (the caller skips the line) on any malformed field, a
/// fingerprint that does not match the key, or stats bytes that do not
/// decode exactly.
fn parse_journal_line(line: &str) -> Option<(String, PointRun, RunStats)> {
    let mut fields = line.splitn(6, '\t');
    if fields.next()? != "v1" {
        return None;
    }
    let fingerprint = u64::from_str_radix(fields.next()?, 16).ok()?;
    let engine = intern_engine_label(fields.next()?);
    let wall_s = fields.next()?.parse::<f64>().ok()?;
    let bytes = hex_decode(fields.next()?)?;
    let key = fields.next()?.to_string();
    if fnv1a64(key.as_bytes()) != fingerprint {
        return None;
    }
    let mut r = Loader::new(&bytes);
    let mut stats = RunStats::zeroed();
    stats.load(&mut r).ok()?;
    if r.remaining() != 0 {
        return None;
    }
    // The key is `{large_pages}:{bench:?}:{cfg:?}`.
    let (large, rest) = key.split_once(':')?;
    let (bench, _) = rest.split_once(':')?;
    let large_pages = large.parse::<bool>().ok()?;
    let bench = Bench::all()
        .into_iter()
        .find(|b| format!("{b:?}") == bench)?;
    let run = PointRun {
        bench,
        large_pages,
        fingerprint,
        engine,
        wall_s,
        cycles: stats.cycles,
        sim_cycles_per_sec: stats.cycles_per_sec(),
        observed: false,
    };
    Some((key, run, stats))
}

/// How [`Runner::run`] services a design point (see [`Runner::sweep`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Simulate on the calling thread (memoized).
    Direct,
    /// Record the point and return placeholder stats.
    Record,
    /// Serve from the memo cache (falling back to direct execution for
    /// any point the recording pass did not see).
    Replay,
}

/// Runs design points against cached workloads and memoized results.
pub struct Runner {
    opts: ExperimentOpts,
    workloads: HashMap<Bench, Workload>,
    large_page_workloads: HashMap<Bench, Workload>,
    cache: HashMap<String, RunStats>,
    recorded: Vec<PointSpec>,
    mode: Mode,
    /// The first fresh simulation still owes the `--trace`/`--intervals`
    /// outputs and/or the `--checkpoint-every`/`--resume` handling.
    observe_pending: bool,
    /// Open journal (`--journal`); completed points append here.
    journal_file: Option<Mutex<std::fs::File>>,
    /// Simulations executed (diagnostics; cache hits don't count).
    pub runs: usize,
    /// Design points served from the journal without recompute.
    pub journal_hits: usize,
    /// Metadata for every simulation executed, in a deterministic order
    /// (spec order for parallel sweeps, execution order otherwise;
    /// journal-replayed points lead in journal order).
    pub point_log: Vec<PointRun>,
}

impl Runner {
    /// Creates an empty runner. With `opts.journal` set, the journal is
    /// opened for append and every point it already records is loaded
    /// into the memo cache — those points replay without recompute.
    pub fn new(opts: ExperimentOpts) -> Self {
        let journal_file = opts.journal.map(|path| {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path);
            match file {
                Ok(f) => Mutex::new(f),
                Err(e) => {
                    eprintln!("journal: cannot open {path}: {e}");
                    std::process::exit(2)
                }
            }
        });
        let mut runner = Self {
            opts,
            workloads: HashMap::new(),
            large_page_workloads: HashMap::new(),
            cache: HashMap::new(),
            recorded: Vec::new(),
            mode: Mode::Direct,
            observe_pending: opts.observes() || opts.checkpoints() || opts.captures(),
            journal_file,
            runs: 0,
            journal_hits: 0,
            point_log: Vec::new(),
        };
        runner.load_journal();
        runner
    }

    /// Replays every valid line of the journal into the memo cache and
    /// the point log; malformed or stale lines are skipped with a note.
    fn load_journal(&mut self) {
        let Some(path) = self.opts.journal else {
            return;
        };
        let Ok(body) = std::fs::read_to_string(path) else {
            return; // fresh journal: nothing to replay
        };
        for line in body.lines() {
            if line.is_empty() {
                continue;
            }
            let Some((key, run, stats)) = parse_journal_line(line) else {
                eprintln!("journal: skipping a malformed line in {path}");
                continue;
            };
            if self.cache.contains_key(&key) {
                continue; // duplicate point (e.g. overlapping shards)
            }
            self.journal_hits += 1;
            self.point_log.push(run);
            self.cache.insert(key, stats);
        }
        if self.journal_hits > 0 {
            eprintln!(
                "[journal] {} point(s) replayed from {path}",
                self.journal_hits
            );
        }
    }

    /// The scope this runner executes at.
    pub fn opts(&self) -> ExperimentOpts {
        self.opts
    }

    fn ensure_workload(&mut self, bench: Bench, large_pages: bool) {
        let opts = self.opts;
        if large_pages {
            self.large_page_workloads
                .entry(bench)
                .or_insert_with(|| build_paged(bench, opts.scale, opts.seed, PageSize::Large2M));
        } else {
            self.workloads
                .entry(bench)
                .or_insert_with(|| build(bench, opts.scale, opts.seed));
        }
    }

    fn point(&mut self, spec: PointSpec) -> RunStats {
        if self.mode == Mode::Record {
            self.recorded.push(spec);
            return RunStats::zeroed();
        }
        let key = spec.key();
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        self.ensure_workload(spec.bench, spec.large_pages);
        let observe = self.observe_pending;
        self.observe_pending = false;
        let opts = self.opts;
        let started = Instant::now();
        let w = if spec.large_pages {
            &self.large_page_workloads[&spec.bench]
        } else {
            &self.workloads[&spec.bench]
        };
        let stats = if observe {
            observed_run(opts, &spec, w)
        } else {
            run_kernel(spec.cfg.clone(), w.kernel.as_ref(), &w.space)
        };
        self.runs += 1;
        let run = PointRun {
            bench: spec.bench,
            large_pages: spec.large_pages,
            fingerprint: fnv1a64(key.as_bytes()),
            engine: engine_label(&spec.cfg),
            wall_s: started.elapsed().as_secs_f64(),
            cycles: stats.cycles,
            sim_cycles_per_sec: stats.cycles_per_sec(),
            observed: observe && opts.observes(),
        };
        journal_append(&self.journal_file, &key, &run, &stats);
        self.point_log.push(run);
        self.cache.insert(key, stats.clone());
        stats
    }

    /// Runs one design point: the base configuration is the scope's GPU
    /// with an ideal MMU; `configure` applies the figure's changes.
    pub fn run(&mut self, bench: Bench, configure: impl FnOnce(&mut GpuConfig)) -> RunStats {
        let mut cfg = self.opts.gpu(MmuModel::Ideal);
        configure(&mut cfg);
        self.point(PointSpec {
            bench,
            large_pages: false,
            cfg,
        })
    }

    /// Same as [`Runner::run`] but on the 2 MB-page build of the
    /// workload (Section 9); sets the 2 MB translation granule.
    pub fn run_large_pages(
        &mut self,
        bench: Bench,
        configure: impl FnOnce(&mut GpuConfig),
    ) -> RunStats {
        let mut cfg = self.opts.gpu(MmuModel::Ideal);
        cfg.granule = PageSize::Large2M;
        configure(&mut cfg);
        self.point(PointSpec {
            bench,
            large_pages: true,
            cfg,
        })
    }

    /// The plain no-TLB baseline every figure normalizes against
    /// (round-robin scheduling, no CCWS/TBC, ideal MMU).
    pub fn baseline(&mut self, bench: Bench) -> RunStats {
        self.run(bench, |_| {})
    }

    /// Speedup of a design point over the no-TLB baseline (the paper's
    /// y-axis).
    pub fn speedup(&mut self, bench: Bench, configure: impl FnOnce(&mut GpuConfig)) -> f64 {
        let base = self.baseline(bench);
        self.run(bench, configure).speedup_vs(&base)
    }

    /// Runs a figure function with its design points executed in
    /// parallel.
    ///
    /// `f` is called twice: a recording pass that captures every design
    /// point (simulating nothing and returning zeroed placeholder
    /// stats), then — after [`Runner::run_points_parallel`] has filled
    /// the memo cache — a replay pass whose output is returned. Since
    /// figure functions are pure table builders over the stats, the
    /// replay output is identical to running `f` serially, and any
    /// point the recording pass somehow missed is simply simulated
    /// on-demand during replay.
    pub fn sweep<T>(&mut self, f: impl Fn(&mut Runner) -> T) -> T {
        let (_, specs) = self.record(&f);
        self.run_points_parallel(specs);
        self.mode = Mode::Replay;
        let out = f(self);
        self.mode = Mode::Direct;
        out
    }

    /// Runs `f` in recording mode: every design point it asks for is
    /// captured and returned instead of simulated (`f` sees zeroed
    /// placeholder stats). Lets a caller batch the points of several
    /// figure functions into one [`Runner::run_points_parallel`] call.
    pub fn record<T>(&mut self, f: impl FnOnce(&mut Runner) -> T) -> (T, Vec<PointSpec>) {
        self.mode = Mode::Record;
        self.recorded.clear();
        let out = f(self);
        self.mode = Mode::Direct;
        (out, std::mem::take(&mut self.recorded))
    }

    /// Simulates every not-yet-cached design point in `specs` on a pool
    /// of `opts.jobs` worker threads and memoizes the results.
    ///
    /// Workloads are built once (serially, so construction order and
    /// RNG streams match the serial path) and shared immutably across
    /// the workers; each worker picks the next point off a shared
    /// atomic index. Scheduling order cannot affect results: a design
    /// point's simulation reads only its own `GpuConfig` and the
    /// immutable workload.
    pub fn run_points_parallel(&mut self, specs: Vec<PointSpec>) {
        let mut seen = HashSet::new();
        let mut todo: Vec<(String, PointSpec)> = Vec::new();
        for spec in specs {
            let key = spec.key();
            if !self.cache.contains_key(&key) && seen.insert(key.clone()) {
                todo.push((key, spec));
            }
        }
        // Shard the deduplicated, deterministically ordered queue:
        // worker `i` of `n` takes every n-th point. Journaled points
        // were already dropped above, so resumed shards skip straight
        // to their remaining work.
        if let Some((shard, n)) = self.opts.shard {
            if n > 1 {
                let mut i = 0usize;
                todo.retain(|_| {
                    let keep = i % n == shard;
                    i += 1;
                    keep
                });
            }
        }
        // `--kill-after N`: simulate a mid-sweep kill at a clean point
        // boundary — run N fresh points, journal them, exit(3).
        let mut kill = false;
        if let Some(n) = self.opts.kill_after {
            if todo.len() > n {
                todo.truncate(n);
                kill = true;
            }
        }
        if todo.is_empty() {
            return;
        }
        for (_, spec) in &todo {
            self.ensure_workload(spec.bench, spec.large_pages);
        }
        if self.observe_pending {
            // The observed/checkpointed point runs serially (its file
            // writes must not interleave with workers) and first, so
            // `--trace` or `--resume` on a sweep binary applies to the
            // sweep's first design point.
            let (key, spec) = todo.remove(0);
            self.observe_pending = false;
            let opts = self.opts;
            let started = Instant::now();
            let w = if spec.large_pages {
                &self.large_page_workloads[&spec.bench]
            } else {
                &self.workloads[&spec.bench]
            };
            let stats = observed_run(opts, &spec, w);
            self.runs += 1;
            let run = PointRun {
                bench: spec.bench,
                large_pages: spec.large_pages,
                fingerprint: fnv1a64(key.as_bytes()),
                engine: engine_label(&spec.cfg),
                wall_s: started.elapsed().as_secs_f64(),
                cycles: stats.cycles,
                sim_cycles_per_sec: stats.cycles_per_sec(),
                observed: opts.observes(),
            };
            journal_append(&self.journal_file, &key, &run, &stats);
            self.point_log.push(run);
            self.cache.insert(key, stats);
            if todo.is_empty() {
                self.exit_if_killed(kill);
                return;
            }
        }
        let workloads = &self.workloads;
        let large_page_workloads = &self.large_page_workloads;
        let journal = &self.journal_file;
        let jobs = self.opts.jobs.clamp(1, todo.len());
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, PointRun, RunStats)>> =
            Mutex::new(Vec::with_capacity(todo.len()));
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((key, spec)) = todo.get(i) else {
                        break;
                    };
                    let started = Instant::now();
                    let w = if spec.large_pages {
                        &large_page_workloads[&spec.bench]
                    } else {
                        &workloads[&spec.bench]
                    };
                    let stats = run_kernel(spec.cfg.clone(), w.kernel.as_ref(), &w.space);
                    let run = PointRun {
                        bench: spec.bench,
                        large_pages: spec.large_pages,
                        fingerprint: fnv1a64(key.as_bytes()),
                        engine: engine_label(&spec.cfg),
                        wall_s: started.elapsed().as_secs_f64(),
                        cycles: stats.cycles,
                        sim_cycles_per_sec: stats.cycles_per_sec(),
                        observed: false,
                    };
                    // Journaled the moment it completes, so a real kill
                    // loses at most the in-flight points.
                    journal_append(journal, key, &run, &stats);
                    done.lock().unwrap().push((i, run, stats));
                });
            }
        });
        let mut done = done.into_inner().unwrap();
        done.sort_by_key(|&(i, _, _)| i); // spec order, not completion order
        self.runs += done.len();
        for (i, run, stats) in done {
            let (key, _) = &todo[i];
            self.point_log.push(run);
            self.cache.insert(key.clone(), stats);
        }
        self.exit_if_killed(kill);
    }

    /// Terminates a `--kill-after` run once its point budget is spent:
    /// the journal already holds every completed point, so the next run
    /// with the same `--journal` resumes without recompute.
    fn exit_if_killed(&self, kill: bool) {
        if kill {
            eprintln!(
                "[journal] stopping after {} fresh point(s) (--kill-after); \
                 rerun with the same --journal to resume",
                self.runs
            );
            std::process::exit(3)
        }
    }
}

/// The `--fault-inject` harness: proves every recovery path survives on
/// all six workloads, then exits. Each benchmark executes twice —
///
/// 1. **demand-paged**: every data page starts unmapped, so the whole
///    footprint arrives through page faults serviced by the modeled CPU
///    fault handler;
/// 2. **mixed-fault**: [`FaultInjectConfig::smoke`] — a quarter of the
///    pages unmapped plus delayed walks, transient rejections, and
///    TLB-shootdown storms that remap live regions mid-run.
///
/// The forward-progress watchdog is armed throughout; any panic, hang,
/// watchdog trip, or fault-free demand-paged run exits non-zero.
pub fn run_fault_injection(opts: ExperimentOpts) -> ! {
    println!(
        "fault-injection harness: seed {:#x}, {:?} scale, augmented MMU",
        opts.fault_seed, opts.scale
    );
    println!(
        "{:<14} {:<13} {:>12} {:>8} {:>10} {:>9}  status",
        "bench", "run", "cycles", "faults", "shootdowns", "squashed"
    );
    let mut failures = 0u32;
    for bench in Bench::all() {
        for (label, inject) in [
            (
                "demand-paged",
                FaultInjectConfig::demand_paged(opts.fault_seed),
            ),
            ("mixed-fault", FaultInjectConfig::smoke(opts.fault_seed)),
        ] {
            let (mut w, unmapped) = build_demand_paged(bench, opts.scale, opts.seed, &inject);
            let mut cfg = opts.gpu(designs::augmented());
            cfg.fault = FaultConfig::demand();
            cfg.inject = Some(inject);
            let stats =
                Gpu::new(cfg).run_faulted(w.kernel.as_ref(), &mut w.space, &mut Observer::off());
            let ok = stats.completed && (unmapped == 0 || stats.faults > 0);
            let status = if stats.watchdog_fired {
                "WATCHDOG"
            } else if !ok {
                "FAILED"
            } else {
                "ok"
            };
            if !ok {
                failures += 1;
            }
            println!(
                "{:<14} {:<13} {:>12} {:>8} {:>10} {:>9}  {status}",
                bench.name(),
                label,
                stats.cycles,
                stats.faults,
                stats.shootdowns,
                stats.squashed_walks
            );
        }
    }
    if failures > 0 {
        eprintln!("fault injection: {failures} run(s) failed");
        std::process::exit(1)
    }
    std::process::exit(0)
}

/// Replays a GMTR trace captured with `--capture-trace`: rebuilds the
/// captured machine and address space, drives the cores from the
/// recorded kernel behaviour on the requested engine, and diffs every
/// statistic (except wall time) against the stats embedded in the
/// trace. Exits 0 on an exact match, 1 on any difference or on a
/// refused file.
pub fn run_replay(opts: ExperimentOpts, path: &str) -> ! {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("replay: cannot read {path}: {e}");
            std::process::exit(1)
        }
    };
    let trace = match Trace::decode(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: {path} refused: {e:?}");
            std::process::exit(1)
        }
    };
    let mut cfg = trace.launch.config.clone();
    cfg.engine = opts.engine;
    cfg.run_threads = opts.run_threads;
    println!(
        "replay: {path}: kernel `{}` ({} threads), captured from `{}`, {} record(s)",
        trace.launch.kernel_name,
        trace.launch.num_threads,
        trace.launch.source,
        trace.records.len()
    );
    let started = Instant::now();
    let mut obs = Observer::off();
    if opts.metrics.is_some() {
        obs.metrics = Metrics::recording();
    }
    let (stats, snapshot) = match replay_run_observed(&trace, &cfg, &mut obs) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("replay: {path} refused: {e:?}");
            std::process::exit(1)
        }
    };
    println!(
        "replay: {:?} engine finished in {:.2}s: {} cycles, {} instructions, {} faults",
        opts.engine,
        started.elapsed().as_secs_f64(),
        stats.cycles,
        stats.instructions,
        stats.faults
    );
    // `--metrics` on a replay is a conformance check of its own: the
    // snapshot is engine-invariant, so a file written by one engine (or
    // the capturing run) must match any replay byte-for-byte.
    if let (Some(metrics_path), Some(body)) = (opts.metrics, snapshot.as_deref()) {
        match std::fs::read_to_string(metrics_path) {
            Ok(golden) if golden == body => {
                println!("replay: metrics snapshot matches {metrics_path}");
            }
            Ok(_) => {
                eprintln!("replay: metrics snapshot diverged from {metrics_path}");
                std::process::exit(1)
            }
            Err(_) => match std::fs::write(metrics_path, body) {
                Ok(()) => println!("replay: metrics snapshot written to {metrics_path}"),
                Err(e) => {
                    eprintln!("replay: cannot write {metrics_path}: {e}");
                    std::process::exit(1)
                }
            },
        }
    }
    let diff = trace.stats.diff(&stats);
    if diff.is_empty() {
        println!("replay: statistics match the capture exactly");
        std::process::exit(0)
    }
    eprintln!(
        "replay: {} statistic(s) diverged from the capture:",
        diff.len()
    );
    for field in &diff {
        eprintln!("  {field}");
    }
    std::process::exit(1)
}

/// TLB geometry helper used by the design-space figures.
pub fn tlb(entries: usize, ports: usize, mode: TlbMode) -> TlbConfig {
    TlbConfig {
        entries,
        ports,
        mode,
        ..TlbConfig::naive()
    }
}

/// `MmuModel` helper.
pub fn mmu(tlb: TlbConfig, walker: WalkerConfig) -> MmuModel {
    MmuModel::Real { tlb, walker }
}

/// The paper's named design points.
pub mod designs {
    use super::*;

    /// Figure 2's strawman: 128-entry, 3-port, blocking, serial walker.
    pub fn naive3() -> MmuModel {
        mmu(tlb(128, 3, TlbMode::Blocking), WalkerConfig::serial())
    }

    /// 4-ported naive TLB (the Section 6.3 port fix alone).
    pub fn naive4() -> MmuModel {
        mmu(tlb(128, 4, TlbMode::Blocking), WalkerConfig::serial())
    }

    /// + hits under misses.
    pub fn hum() -> MmuModel {
        mmu(tlb(128, 4, TlbMode::HitUnderMiss), WalkerConfig::serial())
    }

    /// + overlapped cache access for TLB-hit threads.
    pub fn overlap() -> MmuModel {
        mmu(
            tlb(128, 4, TlbMode::HitUnderMissOverlap),
            WalkerConfig::serial(),
        )
    }

    /// + page-table-walk scheduling: the fully augmented design.
    pub fn augmented() -> MmuModel {
        MmuModel::augmented()
    }

    /// The impractical ideal: 512 entries, 32 ports, no latency.
    pub fn ideal_tlb() -> MmuModel {
        MmuModel::ideal_large_tlb()
    }

    /// Naive blocking TLB with `n` serial walkers (Figure 11).
    pub fn naive_multi_ptw(n: usize) -> MmuModel {
        mmu(tlb(128, 4, TlbMode::Blocking), WalkerConfig::serial_n(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runner_reproduces_the_headline_ordering() {
        let mut r = Runner::new(ExperimentOpts::quick());
        let naive = r.speedup(Bench::Memcached, |c| c.mmu = designs::naive3());
        let aug = r.speedup(Bench::Memcached, |c| c.mmu = designs::augmented());
        assert!(naive < 1.0, "naive TLBs must degrade: {naive}");
        assert!(aug > naive, "augmentation must recover: {aug} vs {naive}");
        assert!(aug > 0.8, "augmented should be near-ideal: {aug}");
        // Baseline and workload are cached: 3 runs total.
        assert_eq!(r.runs, 3);
    }

    #[test]
    fn baseline_is_cached_and_stable() {
        let mut r = Runner::new(ExperimentOpts::quick());
        let a = r.baseline(Bench::Kmeans);
        let b = r.baseline(Bench::Kmeans);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(r.runs, 1);
    }

    #[test]
    fn opts_scale_machine_consistently() {
        let q = ExperimentOpts::quick().gpu(MmuModel::Ideal);
        assert_eq!(q.mem.channels, 1);
        let f = ExperimentOpts::full().gpu(MmuModel::Ideal);
        assert_eq!(f.n_cores, 30);
        assert_eq!(f.mem.channels, 8, "the paper's full machine");
        let d = ExperimentOpts::default().gpu(MmuModel::Ideal);
        assert_eq!(d.mem.channels, 2);
    }

    /// A parallel sweep must be invisible: same tables, and the same
    /// stats for any point asked for afterwards.
    #[test]
    fn sweep_matches_serial_execution() {
        let points = |r: &mut Runner| {
            let mut out = Vec::new();
            for bench in [Bench::Bfs, Bench::Memcached] {
                out.push(r.speedup(bench, |c| c.mmu = designs::naive3()));
                out.push(r.speedup(bench, |c| c.mmu = designs::augmented()));
            }
            out
        };
        let mut serial = Runner::new(ExperimentOpts {
            jobs: 1,
            ..ExperimentOpts::quick()
        });
        let a = points(&mut serial);
        let mut parallel = Runner::new(ExperimentOpts {
            jobs: 4,
            ..ExperimentOpts::quick()
        });
        let b = parallel.sweep(points);
        assert_eq!(a, b);
        // 2 benches x (baseline + 2 designs), each simulated once.
        assert_eq!(serial.runs, 6);
        assert_eq!(parallel.runs, 6);
    }

    #[test]
    fn sweep_memoizes_across_calls() {
        let mut r = Runner::new(ExperimentOpts::quick());
        let f = |r: &mut Runner| r.speedup(Bench::Kmeans, |c| c.mmu = designs::augmented());
        let a = r.sweep(f);
        let executed = r.runs;
        let b = r.sweep(f);
        assert_eq!(a, b);
        assert_eq!(r.runs, executed, "second sweep must be all cache hits");
    }
}
