//! Experiment plumbing shared by every figure harness.
//!
//! The paper reports each design point as a *speedup over the same GPU
//! without TLBs* (perfect, free translation). A [`Runner`] owns the
//! built workloads and the per-benchmark no-TLB baseline runs, so a
//! figure sweep pays for workload construction and the baseline once.

use crate::prelude::*;
use gmmu_simt::gpu::run_kernel;
use std::collections::HashMap;

/// Scope of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOpts {
    /// Workload scale.
    pub scale: Scale,
    /// Shader cores (the memory system keeps the paper's ~4:1
    /// core-to-channel ratio).
    pub n_cores: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            n_cores: 8,
            seed: 7,
        }
    }
}

impl ExperimentOpts {
    /// CI/smoke scope: tiny workloads on a 2-core machine.
    pub fn quick() -> Self {
        Self {
            scale: Scale::Tiny,
            n_cores: 2,
            seed: 7,
        }
    }

    /// The paper's full 30-core machine (slow; for final numbers).
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            n_cores: 30,
            seed: 7,
        }
    }

    /// Parses harness arguments: `--quick`, `--full` (default: the
    /// standard experiment scope).
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => opts = Self::quick(),
                "--full" => opts = Self::full(),
                "--csv" => {} // presentation flag, handled by the binary
                other => eprintln!("ignoring unknown argument {other}"),
            }
        }
        opts
    }

    /// The GPU configuration for this scope with the given MMU, before
    /// figure-specific adjustments.
    pub fn gpu(&self, mmu: MmuModel) -> GpuConfig {
        let mut cfg = GpuConfig::experiment_scale(mmu);
        cfg.n_cores = self.n_cores;
        // Keep the paper's 30-core : 8-channel balance at any size.
        cfg.mem.channels = ((self.n_cores * 8 + 15) / 30).max(1);
        cfg.seed = self.seed;
        cfg
    }
}

/// Runs design points against cached workloads and baselines.
pub struct Runner {
    opts: ExperimentOpts,
    workloads: HashMap<Bench, Workload>,
    large_page_workloads: HashMap<Bench, Workload>,
    baselines: HashMap<Bench, RunStats>,
    /// Simulations executed (diagnostics).
    pub runs: usize,
}

impl Runner {
    /// Creates an empty runner.
    pub fn new(opts: ExperimentOpts) -> Self {
        Self {
            opts,
            workloads: HashMap::new(),
            large_page_workloads: HashMap::new(),
            baselines: HashMap::new(),
            runs: 0,
        }
    }

    /// The scope this runner executes at.
    pub fn opts(&self) -> ExperimentOpts {
        self.opts
    }

    fn ensure_workload(&mut self, bench: Bench) {
        let opts = self.opts;
        self.workloads
            .entry(bench)
            .or_insert_with(|| build(bench, opts.scale, opts.seed));
    }

    /// Runs one design point: the base configuration is the scope's GPU
    /// with an ideal MMU; `configure` applies the figure's changes.
    pub fn run(&mut self, bench: Bench, configure: impl FnOnce(&mut GpuConfig)) -> RunStats {
        self.ensure_workload(bench);
        let mut cfg = self.opts.gpu(MmuModel::Ideal);
        configure(&mut cfg);
        let w = &self.workloads[&bench];
        self.runs += 1;
        run_kernel(cfg, w.kernel.as_ref(), &w.space)
    }

    /// Same as [`Runner::run`] but on the 2 MB-page build of the
    /// workload (Section 9); sets the 2 MB translation granule.
    pub fn run_large_pages(
        &mut self,
        bench: Bench,
        configure: impl FnOnce(&mut GpuConfig),
    ) -> RunStats {
        let opts = self.opts;
        self.large_page_workloads
            .entry(bench)
            .or_insert_with(|| build_paged(bench, opts.scale, opts.seed, PageSize::Large2M));
        let mut cfg = self.opts.gpu(MmuModel::Ideal);
        cfg.granule = PageSize::Large2M;
        configure(&mut cfg);
        let w = &self.large_page_workloads[&bench];
        self.runs += 1;
        run_kernel(cfg, w.kernel.as_ref(), &w.space)
    }

    /// The plain no-TLB baseline every figure normalizes against
    /// (round-robin scheduling, no CCWS/TBC, ideal MMU).
    pub fn baseline(&mut self, bench: Bench) -> RunStats {
        if !self.baselines.contains_key(&bench) {
            let stats = self.run(bench, |_| {});
            self.baselines.insert(bench, stats);
        }
        self.baselines[&bench].clone()
    }

    /// Speedup of a design point over the no-TLB baseline (the paper's
    /// y-axis).
    pub fn speedup(&mut self, bench: Bench, configure: impl FnOnce(&mut GpuConfig)) -> f64 {
        let base = self.baseline(bench);
        self.run(bench, configure).speedup_vs(&base)
    }
}

/// TLB geometry helper used by the design-space figures.
pub fn tlb(entries: usize, ports: usize, mode: TlbMode) -> TlbConfig {
    TlbConfig {
        entries,
        ports,
        mode,
        ..TlbConfig::naive()
    }
}

/// `MmuModel` helper.
pub fn mmu(tlb: TlbConfig, walker: WalkerConfig) -> MmuModel {
    MmuModel::Real { tlb, walker }
}

/// The paper's named design points.
pub mod designs {
    use super::*;

    /// Figure 2's strawman: 128-entry, 3-port, blocking, serial walker.
    pub fn naive3() -> MmuModel {
        mmu(tlb(128, 3, TlbMode::Blocking), WalkerConfig::serial())
    }

    /// 4-ported naive TLB (the Section 6.3 port fix alone).
    pub fn naive4() -> MmuModel {
        mmu(tlb(128, 4, TlbMode::Blocking), WalkerConfig::serial())
    }

    /// + hits under misses.
    pub fn hum() -> MmuModel {
        mmu(tlb(128, 4, TlbMode::HitUnderMiss), WalkerConfig::serial())
    }

    /// + overlapped cache access for TLB-hit threads.
    pub fn overlap() -> MmuModel {
        mmu(
            tlb(128, 4, TlbMode::HitUnderMissOverlap),
            WalkerConfig::serial(),
        )
    }

    /// + page-table-walk scheduling: the fully augmented design.
    pub fn augmented() -> MmuModel {
        MmuModel::augmented()
    }

    /// The impractical ideal: 512 entries, 32 ports, no latency.
    pub fn ideal_tlb() -> MmuModel {
        MmuModel::ideal_large_tlb()
    }

    /// Naive blocking TLB with `n` serial walkers (Figure 11).
    pub fn naive_multi_ptw(n: usize) -> MmuModel {
        mmu(tlb(128, 4, TlbMode::Blocking), WalkerConfig::serial_n(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runner_reproduces_the_headline_ordering() {
        let mut r = Runner::new(ExperimentOpts::quick());
        let naive = r.speedup(Bench::Memcached, |c| c.mmu = designs::naive3());
        let aug = r.speedup(Bench::Memcached, |c| c.mmu = designs::augmented());
        assert!(naive < 1.0, "naive TLBs must degrade: {naive}");
        assert!(aug > naive, "augmentation must recover: {aug} vs {naive}");
        assert!(aug > 0.8, "augmented should be near-ideal: {aug}");
        // Baseline and workload are cached: 3 runs total.
        assert_eq!(r.runs, 3);
    }

    #[test]
    fn baseline_is_cached_and_stable() {
        let mut r = Runner::new(ExperimentOpts::quick());
        let a = r.baseline(Bench::Kmeans);
        let b = r.baseline(Bench::Kmeans);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(r.runs, 1);
    }

    #[test]
    fn opts_scale_machine_consistently() {
        let q = ExperimentOpts::quick().gpu(MmuModel::Ideal);
        assert_eq!(q.mem.channels, 1);
        let f = ExperimentOpts::full().gpu(MmuModel::Ideal);
        assert_eq!(f.n_cores, 30);
        assert_eq!(f.mem.channels, 8, "the paper's full machine");
        let d = ExperimentOpts::default().gpu(MmuModel::Ideal);
        assert_eq!(d.mem.channels, 2);
    }
}
