//! One function per figure of the paper's evaluation.
//!
//! Each function reruns the figure's design points through a [`Runner`]
//! and returns the same rows/series the paper plots, as printable
//! tables. The `gmmu-bench` binaries (`fig02` … `sec9_large_pages`)
//! wrap these one-per-figure; `EXPERIMENTS.md` records paper-reported
//! vs. measured values.
//!
//! All speedups are normalized to the same machine with an ideal
//! (no-TLB) MMU and plain round-robin scheduling, exactly as the paper
//! normalizes its bars.
//!
//! Figure functions must stay *pure table builders*: ask the runner for
//! design points, turn the stats into rows, no other side effects, and
//! no choosing design points based on earlier results. The harnesses
//! execute them through [`Runner::sweep`], which calls a figure
//! function twice — once to record its design points (against
//! placeholder stats) so they can run on a worker pool, and once to
//! build the real tables from the memoized results.

use crate::experiments::{designs, mmu, tlb, Runner};
use crate::prelude::*;
use gmmu_sim::table::Table;

fn bench_cell(b: Bench) -> gmmu_sim::table::Cell {
    b.name().into()
}

/// Figure 2: naive 3-ported TLBs, alone and under CCWS / TBC, all vs.
/// the no-TLB baseline.
pub fn fig02(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 2 — speedup of naive 3-port TLBs, with/without CCWS and TBC (vs no-TLB baseline)",
        &[
            "bench",
            "naive TLB",
            "CCWS (no TLB)",
            "CCWS + naive TLB",
            "TBC (no TLB)",
            "TBC + naive TLB",
        ],
    );
    for b in Bench::all() {
        let naive = r.speedup(b, |c| c.mmu = designs::naive3());
        let ccws = r.speedup(b, |c| c.policy = PolicyKind::Ccws);
        let ccws_tlb = r.speedup(b, |c| {
            c.policy = PolicyKind::Ccws;
            c.mmu = designs::naive3();
        });
        let tbc = r.speedup(b, |c| c.tbc = Some(TbcConfig::baseline()));
        let tbc_tlb = r.speedup(b, |c| {
            c.tbc = Some(TbcConfig::baseline());
            c.mmu = designs::naive3();
        });
        t.row(vec![
            bench_cell(b),
            naive.into(),
            ccws.into(),
            ccws_tlb.into(),
            tbc.into(),
            tbc_tlb.into(),
        ]);
    }
    vec![t]
}

/// Figure 3: memory-instruction share and 128-entry TLB miss rates
/// (left); average and maximum warp page divergence (right).
pub fn fig03(r: &mut Runner) -> Vec<Table> {
    let mut left = Table::new(
        "Figure 3 (left) — memory instructions and TLB miss rate",
        &["bench", "mem insn %", "TLB miss %"],
    );
    let mut right = Table::new(
        "Figure 3 (right) — page divergence per warp memory instruction \
         (headline distribution statistics)",
        &["bench", "count", "mean", "p50", "p90", "p99", "max"],
    );
    for b in Bench::all() {
        let s = r.run(b, |c| c.mmu = designs::naive3());
        left.row(vec![
            bench_cell(b),
            (100.0 * s.mem_insn_fraction()).into(),
            (100.0 * s.tlb_miss_rate()).into(),
        ]);
        let d = s.page_divergence.summary();
        right.row(vec![
            bench_cell(b),
            d.count.into(),
            d.mean.into(),
            d.p50.into(),
            d.p90.into(),
            d.p99.into(),
            d.max.into(),
        ]);
    }
    vec![left, right]
}

/// Figure 4: average cycles per TLB miss vs per L1 miss (naive MMU).
pub fn fig04(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 4 — average cycles per TLB miss vs per L1 cache miss",
        &["bench", "L1 miss cycles", "TLB miss cycles", "ratio"],
    );
    for b in Bench::all() {
        let s = r.run(b, |c| c.mmu = designs::naive3());
        let l1 = s.l1_miss_latency.mean();
        let tlb_lat = s.tlb_miss_latency.mean();
        t.row(vec![
            bench_cell(b),
            l1.into(),
            tlb_lat.into(),
            (tlb_lat / l1.max(1.0)).into(),
        ]);
    }
    vec![t]
}

/// Figure 6: TLB size × port count, first with fixed (free) access
/// times, then with CACTI-style access latencies.
pub fn fig06(r: &mut Runner) -> Vec<Table> {
    let sizes = [64usize, 128, 256, 512];
    let ports = [3usize, 4, 8, 32];
    let mut fixed = Table::new(
        "Figure 6 — blocking TLB size × ports, fixed access time (speedup vs no TLB)",
        &["bench", "size", "3 ports", "4 ports", "8 ports", "32 ports"],
    );
    for b in Bench::all() {
        for &size in &sizes {
            let mut row = vec![bench_cell(b), (size as u64).into()];
            for &p in &ports {
                let sp = r.speedup(b, |c| {
                    let mut t = tlb(size, p, TlbMode::Blocking);
                    t.ideal_latency = true;
                    c.mmu = mmu(t, WalkerConfig::serial());
                });
                row.push(sp.into());
            }
            fixed.row(row);
        }
    }
    let mut real = Table::new(
        "Figure 6 (note) — same sizes at 4 ports with real access latencies",
        &["bench", "64", "128", "256", "512"],
    );
    for b in Bench::all() {
        let mut row = vec![bench_cell(b)];
        for &size in &sizes {
            let sp = r.speedup(b, |c| {
                c.mmu = mmu(tlb(size, 4, TlbMode::Blocking), WalkerConfig::serial());
            });
            row.push(sp.into());
        }
        real.row(row);
    }
    vec![fixed, real]
}

/// Figure 7: non-blocking support on a 128-entry 4-port TLB vs the
/// impractical ideal TLB.
pub fn fig07(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 7 — non-blocking TLB support (speedup vs no TLB)",
        &[
            "bench",
            "blocking",
            "+hits under miss",
            "+cache overlap",
            "ideal 512e/32p",
        ],
    );
    for b in Bench::all() {
        t.row(vec![
            bench_cell(b),
            r.speedup(b, |c| c.mmu = designs::naive4()).into(),
            r.speedup(b, |c| c.mmu = designs::hum()).into(),
            r.speedup(b, |c| c.mmu = designs::overlap()).into(),
            r.speedup(b, |c| c.mmu = designs::ideal_tlb()).into(),
        ]);
    }
    vec![t]
}

/// Figures 8/9: the worked page-walk example — three concurrent walks
/// whose 12 serial PTE loads the coalescing scheduler reduces to 7.
pub fn fig09() -> Vec<Table> {
    use gmmu_core::walker::{Walker, WalkerConfig};
    use gmmu_mem::{MemConfig, MemorySystem};
    use gmmu_vm::{AddressSpace, SpaceConfig, Vpn};

    let mut space = AddressSpace::new(SpaceConfig::default());
    let region = space
        .map_region("fig8", 8 << 20, PageSize::Base4K)
        .expect("map");
    let base = region.base.vpn().raw();
    // The paper's three pages: two sharing a PT cache line, one in a
    // sibling page table.
    let pages = [
        Vpn::new(base + 3),
        Vpn::new(base + 4),
        Vpn::new(base + 512 + 5),
    ];
    let mut t = Table::new(
        "Figures 8/9 — PTE loads for three concurrent walks",
        &["walker", "loads issued", "loads naive", "finish cycle"],
    );
    for (name, cfg) in [
        ("serial", WalkerConfig::serial()),
        ("coalesced", WalkerConfig::coalesced()),
    ] {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut w = Walker::new(cfg);
        for p in pages {
            w.enqueue(p, 0, 0);
        }
        let mut done = Vec::new();
        let mut now = 0;
        while done.len() < 3 {
            w.advance(now, &mut mem, &space, &mut done);
            now += 1;
        }
        let finish = done.iter().map(|d| d.complete).max().unwrap_or(0);
        t.row(vec![
            name.into(),
            w.stats.refs_issued.get().into(),
            w.stats.refs_naive.get().into(),
            finish.into(),
        ]);
    }
    vec![t]
}

/// Figure 10: adding PTW scheduling approaches the ideal TLB; plus the
/// in-text statistics (references eliminated, walk L2 hit rate, idle
/// cycles).
pub fn fig10(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 10 — non-blocking + PTW scheduling (speedup vs no TLB)",
        &[
            "bench",
            "blocking",
            "+non-blocking",
            "+PTW sched",
            "ideal 512e/32p",
        ],
    );
    let mut stats = Table::new(
        "Figure 10 (text) — PTW scheduling internals",
        &[
            "bench",
            "refs eliminated %",
            "walk L2 hit % (serial)",
            "walk L2 hit % (sched)",
            "idle % (naive)",
            "idle % (sched)",
        ],
    );
    for b in Bench::all() {
        let naive = r.run(b, |c| c.mmu = designs::naive4());
        let over = r.run(b, |c| c.mmu = designs::overlap());
        let sched = r.run(b, |c| c.mmu = designs::augmented());
        let ideal = r.run(b, |c| c.mmu = designs::ideal_tlb());
        let base = r.baseline(b);
        t.row(vec![
            bench_cell(b),
            naive.speedup_vs(&base).into(),
            over.speedup_vs(&base).into(),
            sched.speedup_vs(&base).into(),
            ideal.speedup_vs(&base).into(),
        ]);
        stats.row(vec![
            bench_cell(b),
            (100.0 * sched.walk_refs_eliminated()).into(),
            (100.0 * over.walk_l2_hit_rate).into(),
            (100.0 * sched.walk_l2_hit_rate).into(),
            (100.0 * naive.idle_fraction()).into(),
            (100.0 * sched.idle_fraction()).into(),
        ]);
    }
    vec![t, stats]
}

/// Figure 10 companion: *where* the idle cycles of Figure 10's naive
/// and scheduled design points go, split by dominant stall cause. Each
/// cause column is its share of the row's idle cycles; the breakdown
/// sums exactly to `idle_cycles` by construction.
pub fn fig10_stalls(r: &mut Runner) -> Vec<Table> {
    let mut headers: Vec<&str> = vec!["bench", "design", "idle %"];
    headers.extend(StallCause::ALL.iter().map(|c| c.label()));
    let mut t = Table::new(
        "Figure 10 (companion) — idle-cycle attribution (cause columns: % of idle)",
        &headers,
    );
    for b in Bench::all() {
        for (name, model) in [
            ("naive", designs::naive4()),
            ("+PTW sched", designs::augmented()),
        ] {
            let s = r.run(b, |c| c.mmu = model);
            let mut row = vec![
                bench_cell(b),
                name.into(),
                (100.0 * s.idle_fraction()).into(),
            ];
            for cause in StallCause::ALL {
                row.push(s.stall_breakdown.share_pct(cause).into());
            }
            t.row(row);
        }
    }
    vec![t]
}

/// Figure 11: one augmented walker vs many naive serial walkers.
pub fn fig11(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 11 — augmented 1 PTW vs naive multi-PTW (speedup vs no TLB)",
        &[
            "bench",
            "augmented 1 PTW",
            "1 PTW",
            "2 PTW",
            "4 PTW",
            "8 PTW",
        ],
    );
    for b in Bench::all() {
        let mut row = vec![
            bench_cell(b),
            r.speedup(b, |c| c.mmu = designs::augmented()).into(),
        ];
        for n in [1usize, 2, 4, 8] {
            row.push(r.speedup(b, |c| c.mmu = designs::naive_multi_ptw(n)).into());
        }
        t.row(row);
    }
    vec![t]
}

/// Figure 13: CCWS with and without TLBs.
pub fn fig13(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 13 — CCWS × MMU design (speedup vs no TLB)",
        &[
            "bench",
            "naive TLB",
            "augmented TLB",
            "CCWS (no TLB)",
            "CCWS + naive",
            "CCWS + augmented",
        ],
    );
    for b in Bench::all() {
        t.row(vec![
            bench_cell(b),
            r.speedup(b, |c| c.mmu = designs::naive4()).into(),
            r.speedup(b, |c| c.mmu = designs::augmented()).into(),
            r.speedup(b, |c| c.policy = PolicyKind::Ccws).into(),
            r.speedup(b, |c| {
                c.policy = PolicyKind::Ccws;
                c.mmu = designs::naive4();
            })
            .into(),
            r.speedup(b, |c| {
                c.policy = PolicyKind::Ccws;
                c.mmu = designs::augmented();
            })
            .into(),
        ]);
    }
    vec![t]
}

/// Figure 16: TA-CCWS weight sweep (TLB miss weighted x:1 vs cache
/// miss), on the augmented MMU.
pub fn fig16(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 16 — TA-CCWS TLB-miss weights (speedup vs no TLB)",
        &[
            "bench",
            "CCWS (no TLB)",
            "CCWS + aug",
            "TA-CCWS 1:1",
            "TA-CCWS 2:1",
            "TA-CCWS 4:1",
            "TA-CCWS 8:1",
        ],
    );
    for b in Bench::all() {
        let mut row = vec![
            bench_cell(b),
            r.speedup(b, |c| c.policy = PolicyKind::Ccws).into(),
            r.speedup(b, |c| {
                c.policy = PolicyKind::Ccws;
                c.mmu = designs::augmented();
            })
            .into(),
        ];
        for w in [1u32, 2, 4, 8] {
            row.push(
                r.speedup(b, |c| {
                    c.policy = PolicyKind::TaCcws { tlb_weight: w };
                    c.mmu = designs::augmented();
                })
                .into(),
            );
        }
        t.row(row);
    }
    vec![t]
}

/// Figure 17: TCWS victim-tag-array entries-per-warp sweep (no LRU
/// depth weighting), on the augmented MMU.
pub fn fig17(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 17 — TCWS entries per warp (speedup vs no TLB)",
        &[
            "bench",
            "CCWS (no TLB)",
            "TA-CCWS 4:1",
            "TCWS 2 EPW",
            "TCWS 4 EPW",
            "TCWS 8 EPW",
            "TCWS 16 EPW",
        ],
    );
    for b in Bench::all() {
        let mut row = vec![
            bench_cell(b),
            r.speedup(b, |c| c.policy = PolicyKind::Ccws).into(),
            r.speedup(b, |c| {
                c.policy = PolicyKind::TaCcws { tlb_weight: 4 };
                c.mmu = designs::augmented();
            })
            .into(),
        ];
        for epw in [2usize, 4, 8, 16] {
            row.push(
                r.speedup(b, |c| {
                    c.policy = PolicyKind::Tcws {
                        entries_per_warp: epw,
                        lru_weights: [0, 0, 0, 0],
                    };
                    c.mmu = designs::augmented();
                })
                .into(),
            );
        }
        t.row(row);
    }
    vec![t]
}

/// Figure 18: TCWS with LRU-depth score weights, on the augmented MMU.
pub fn fig18(r: &mut Runner) -> Vec<Table> {
    let weight_sets: [(&str, [u32; 4]); 3] = [
        ("LRU(1,2,3,4)", [1, 2, 3, 4]),
        ("LRU(1,2,4,8)", [1, 2, 4, 8]),
        ("LRU(1,3,6,9)", [1, 3, 6, 9]),
    ];
    let mut t = Table::new(
        "Figure 18 — TCWS LRU-depth weighting (speedup vs no TLB)",
        &[
            "bench",
            "CCWS (no TLB)",
            "LRU(1,2,3,4)",
            "LRU(1,2,4,8)",
            "LRU(1,3,6,9)",
        ],
    );
    for b in Bench::all() {
        let mut row = vec![
            bench_cell(b),
            r.speedup(b, |c| c.policy = PolicyKind::Ccws).into(),
        ];
        for (_, w) in weight_sets {
            row.push(
                r.speedup(b, |c| {
                    c.policy = PolicyKind::Tcws {
                        entries_per_warp: 8,
                        lru_weights: w,
                    };
                    c.mmu = designs::augmented();
                })
                .into(),
            );
        }
        t.row(row);
    }
    vec![t]
}

/// Figure 20: TBC with and without TLBs.
pub fn fig20(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 20 — TBC × MMU design (speedup vs no TLB)",
        &[
            "bench",
            "naive TLB",
            "augmented TLB",
            "TBC (no TLB)",
            "TBC + naive",
            "TBC + augmented",
        ],
    );
    for b in Bench::all() {
        t.row(vec![
            bench_cell(b),
            r.speedup(b, |c| c.mmu = designs::naive4()).into(),
            r.speedup(b, |c| c.mmu = designs::augmented()).into(),
            r.speedup(b, |c| c.tbc = Some(TbcConfig::baseline())).into(),
            r.speedup(b, |c| {
                c.tbc = Some(TbcConfig::baseline());
                c.mmu = designs::naive4();
            })
            .into(),
            r.speedup(b, |c| {
                c.tbc = Some(TbcConfig::baseline());
                c.mmu = designs::augmented();
            })
            .into(),
        ]);
    }
    vec![t]
}

/// Figure 22: TLB-aware TBC with 1/2/3-bit CPM counters, plus the page
/// divergence it removes.
pub fn fig22(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 22 — TLB-aware TBC CPM counter width (speedup vs no TLB)",
        &[
            "bench",
            "TBC (no TLB)",
            "TBC + naive",
            "TLB-TBC 3-bit + naive",
            "TBC + aug",
            "TLB-TBC 1-bit",
            "TLB-TBC 2-bit",
            "TLB-TBC 3-bit",
        ],
    );
    let mut div = Table::new(
        "Figure 22 (divergence) — average page divergence under TBC",
        &["bench", "no TBC", "TBC", "TLB-aware TBC (3-bit)"],
    );
    for b in Bench::all() {
        let plain = r.run(b, |c| c.mmu = designs::augmented());
        let tbc = r.run(b, |c| {
            c.tbc = Some(TbcConfig::baseline());
            c.mmu = designs::augmented();
        });
        let base = r.baseline(b);
        let mut row = vec![
            bench_cell(b),
            r.speedup(b, |c| c.tbc = Some(TbcConfig::baseline())).into(),
            r.speedup(b, |c| {
                c.tbc = Some(TbcConfig::baseline());
                c.mmu = designs::naive4();
            })
            .into(),
            r.speedup(b, |c| {
                c.tbc = Some(TbcConfig::tlb_aware(3));
                c.mmu = designs::naive4();
            })
            .into(),
            tbc.speedup_vs(&base).into(),
        ];
        let mut aware3 = None;
        for bits in [1u8, 2, 3] {
            let s = r.run(b, |c| {
                c.tbc = Some(TbcConfig::tlb_aware(bits));
                c.mmu = designs::augmented();
            });
            row.push(s.speedup_vs(&base).into());
            if bits == 3 {
                aware3 = Some(s);
            }
        }
        t.row(row);
        div.row(vec![
            bench_cell(b),
            plain.page_divergence.mean().into(),
            tbc.page_divergence.mean().into(),
            aware3.expect("ran 3-bit").page_divergence.mean().into(),
        ]);
    }
    vec![t, div]
}

/// Section 9: 2 MB pages — page divergence mostly collapses, but the
/// far-flung benchmarks keep residual divergence.
pub fn sec9(r: &mut Runner) -> Vec<Table> {
    let mut t = Table::new(
        "Section 9 — 4 KB vs 2 MB pages (naive MMU)",
        &[
            "bench",
            "div avg 4K",
            "div max 4K",
            "div avg 2M",
            "div max 2M",
            "miss % 4K",
            "miss % 2M",
        ],
    );
    for b in Bench::all() {
        let small = r.run(b, |c| c.mmu = designs::naive4());
        let large = r.run_large_pages(b, |c| c.mmu = designs::naive4());
        t.row(vec![
            bench_cell(b),
            small.page_divergence.mean().into(),
            small.page_divergence.max().into(),
            large.page_divergence.mean().into(),
            large.page_divergence.max().into(),
            (100.0 * small.tlb_miss_rate()).into(),
            (100.0 * large.tlb_miss_rate()).into(),
        ]);
    }
    vec![t]
}

/// Section 5.2: the methodology configuration, as a table.
pub fn table_config(opts: crate::ExperimentOpts) -> Vec<Table> {
    let cfg = opts.gpu(MmuModel::Ideal);
    let mut t = Table::new(
        "Section 5.2 — machine configuration (paper value / this run)",
        &["parameter", "paper", "this run"],
    );
    let rows: [(&str, String, String); 8] = [
        ("SIMT cores", "30".into(), cfg.n_cores.to_string()),
        (
            "warps per core",
            "48".into(),
            cfg.warps_per_core.to_string(),
        ),
        ("warp size", "32".into(), "32".into()),
        (
            "L1 data cache",
            "32KB, 128B lines, LRU".into(),
            format!("{}KB, 128B lines, LRU", cfg.l1.lines() * 128 / 1024),
        ),
        ("memory channels", "8".into(), cfg.mem.channels.to_string()),
        (
            "L2 per channel",
            "128KB".into(),
            format!("{}KB", cfg.mem.l2_slice.lines() * 128 / 1024),
        ),
        (
            "page size",
            "4KB (2MB in §9)".into(),
            format!("{}", cfg.granule),
        ),
        (
            "TLB (baseline)",
            "128-entry, 3-port, blocking".into(),
            "128-entry, 3-port, blocking".into(),
        ),
    ];
    for (k, p, v) in rows {
        t.row(vec![k.into(), p.into(), v.into()]);
    }
    vec![t]
}

/// Ablations beyond the paper's figures: design choices DESIGN.md calls
/// out, exercised on the translation-sensitive benchmarks.
pub fn ablations(r: &mut Runner) -> Vec<Table> {
    use gmmu_core::cpm::CpmConfig;
    let benches = [Bench::Bfs, Bench::Mummergpu, Bench::Memcached];

    // 1. Walker organization, isolated on a hit-under-miss TLB.
    let mut walkers = Table::new(
        "Ablation — walker organization on a 128e/4p hit-under-miss TLB (speedup vs no TLB)",
        &[
            "bench",
            "software (200cy trap)",
            "serial",
            "serial + PWC16",
            "coalesced",
            "coalesced + PWC16",
        ],
    );
    for b in benches {
        let with_walker = |r: &mut Runner, w: WalkerConfig| {
            r.speedup(b, |c| {
                c.mmu = mmu(tlb(128, 4, TlbMode::HitUnderMissOverlap), w)
            })
        };
        walkers.row(vec![
            bench_cell(b),
            with_walker(r, WalkerConfig::software(200)).into(),
            with_walker(r, WalkerConfig::serial()).into(),
            with_walker(r, WalkerConfig::serial().with_pwc(16)).into(),
            with_walker(r, WalkerConfig::coalesced()).into(),
            with_walker(r, WalkerConfig::coalesced().with_pwc(16)).into(),
        ]);
    }

    // 2. TLB associativity and MSHR depth on the augmented design.
    let mut geometry = Table::new(
        "Ablation — TLB associativity / MSHR depth on the augmented design",
        &[
            "bench", "2-way", "4-way", "8-way", "8 MSHRs", "16 MSHRs", "32 MSHRs",
        ],
    );
    for b in benches {
        let mut row = vec![bench_cell(b)];
        for ways in [2usize, 4, 8] {
            row.push(
                r.speedup(b, |c| {
                    c.mmu = mmu(
                        TlbConfig {
                            ways,
                            ..tlb(128, 4, TlbMode::HitUnderMissOverlap)
                        },
                        WalkerConfig::coalesced(),
                    )
                })
                .into(),
            );
        }
        for mshrs in [8usize, 16, 32] {
            row.push(
                r.speedup(b, |c| {
                    c.mmu = mmu(
                        TlbConfig {
                            mshrs,
                            ..tlb(128, 4, TlbMode::HitUnderMissOverlap)
                        },
                        WalkerConfig::coalesced(),
                    )
                })
                .into(),
            );
        }
        geometry.row(row);
    }

    // 3. CPM flush interval for TLB-aware TBC (the paper: "a flush
    // every 500 cycles suffices").
    let mut cpm = Table::new(
        "Ablation — CPM flush interval for TLB-aware TBC (naive MMU)",
        &["bench", "100 cy", "500 cy", "2000 cy", "never"],
    );
    for b in benches {
        let mut row = vec![bench_cell(b)];
        for flush in [100u64, 500, 2000, u64::MAX / 2] {
            row.push(
                r.speedup(b, |c| {
                    c.tbc = Some(TbcConfig {
                        tlb_aware: true,
                        cpm: CpmConfig {
                            counter_bits: 3,
                            flush_interval: flush,
                        },
                    });
                    c.mmu = designs::naive4();
                })
                .into(),
            );
        }
        cpm.row(row);
    }
    vec![walkers, geometry, cpm]
}

/// Multi-tenant robustness study (no paper counterpart; see DESIGN.md
/// §13): per-tenant slowdown and unfairness as co-runner count grows,
/// ASID-tagged translation vs the flush-on-switch baseline.
///
/// Runs [`Gpu::run_tenants`] directly rather than through a [`Runner`]:
/// the runner's journal stores the pinned `RunStats` checkpoint layout,
/// which deliberately excludes the per-tenant slice this figure is
/// about.
pub fn fig_multitenant(opts: &crate::ExperimentOpts) -> Vec<Table> {
    use gmmu_workloads::tenants::scenario;
    use gmmu_workloads::{build_tenant_paged, tenants::TenantSpec};

    let cfg = opts.gpu(designs::augmented());
    let solo = |spec: &TenantSpec| -> RunStats {
        let mut w = build_tenant_paged(spec.bench, spec.scale, spec.seed, PageSize::Base4K, 0);
        Gpu::new(cfg.clone()).run_faulted(w.kernel.as_ref(), &mut w.space, &mut Observer::off())
    };

    let mut t = Table::new(
        "Multi-tenant — slowdown vs co-runner count (augmented MMU, Zipf tenant mix \
         with thrasher; ASID-tagged vs flush-on-switch)",
        &[
            "tenants",
            "policy",
            "mix",
            "worst slowdown",
            "mean slowdown",
            "unfairness",
        ],
    );
    for n in [2usize, 4] {
        let sc = scenario(n, opts.scale, opts.seed, true);
        let solos: Vec<RunStats> = sc.tenants.iter().map(solo).collect();
        for (name, policy) in [
            ("asid-tagged", gmmu_simt::TenantPolicy::default()),
            (
                "flush-on-switch",
                gmmu_simt::TenantPolicy::flush_on_switch(),
            ),
        ] {
            let mut built = sc.build();
            let mut jobs: Vec<gmmu_simt::TenantJob<'_>> = built
                .iter_mut()
                .map(|w| gmmu_simt::TenantJob {
                    kernel: w.kernel.as_ref(),
                    space: &mut w.space,
                })
                .collect();
            let stats = Gpu::new(cfg.clone()).run_tenants(&mut jobs, policy, &mut Observer::off());
            let slow = stats.tenant_slowdowns(&solos);
            let worst = slow.iter().copied().fold(0.0f64, f64::max);
            let mean = if slow.is_empty() {
                0.0
            } else {
                slow.iter().sum::<f64>() / slow.len() as f64
            };
            t.row(vec![
                (n as u64).into(),
                name.into(),
                sc.describe().into(),
                worst.into(),
                mean.into(),
                stats.unfairness(&solos).into(),
            ]);
        }
    }
    vec![t]
}

/// Metrics snapshot of the 4-tenant mixed-fault acceptance scenario:
/// demand faults, delayed walks, rejections, and cross-tenant storms on
/// the augmented MMU, with the per-ASID walk-stage histograms and
/// per-ASID hot-page keys the snapshot's `tenants` section carries
/// (DESIGN.md §13). Deterministic and engine-invariant like every
/// snapshot; backs `fig_multitenant --metrics PATH`.
pub fn multitenant_metrics_snapshot(opts: &crate::ExperimentOpts) -> String {
    use gmmu_sim::metrics::Metrics;
    use gmmu_workloads::tenants::scenario;

    let mut cfg = opts.gpu(designs::augmented());
    cfg.fault = FaultConfig::demand();
    let inject = FaultInjectConfig::smoke(opts.fault_seed);
    cfg.inject = Some(inject);
    let sc = scenario(4, opts.scale, opts.seed, true);
    let (mut built, _) = sc.build_demand_paged(&inject);
    let mut jobs: Vec<gmmu_simt::TenantJob<'_>> = built
        .iter_mut()
        .map(|w| gmmu_simt::TenantJob {
            kernel: w.kernel.as_ref(),
            space: &mut w.space,
        })
        .collect();
    let policy = gmmu_simt::TenantPolicy {
        watchdog: 2_000_000,
        ..gmmu_simt::TenantPolicy::default()
    };
    let mut obs = Observer::off();
    obs.metrics = Metrics::recording();
    let mut gpu = Gpu::new(cfg);
    let stats = gpu.run_tenants(&mut jobs, policy, &mut obs);
    assert!(stats.completed, "metrics scenario hit the cycle cap");
    gpu.metrics_snapshot(&obs).expect("metrics channel was on")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentOpts;

    #[test]
    fn fig09_matches_the_papers_worked_example() {
        let tables = fig09();
        let t = &tables[0];
        // serial: 12 issued of 12; coalesced: 7 of 12.
        assert_eq!(t.cell(0, 1), t.cell(0, 2));
        let issued = match t.cell(1, 1).unwrap() {
            gmmu_sim::table::Cell::Num(v, _) => *v,
            other => panic!("unexpected cell {other:?}"),
        };
        assert_eq!(issued, 7.0);
    }

    #[test]
    fn quick_fig03_produces_all_benchmarks() {
        let mut r = Runner::new(ExperimentOpts::quick());
        let tables = fig03(&mut r);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 6);
        assert_eq!(tables[1].len(), 6);
    }

    #[test]
    fn config_table_reports_paper_values() {
        let tables = table_config(ExperimentOpts::full());
        let text = tables[0].to_string();
        assert!(text.contains("30"));
        assert!(text.contains("128KB"));
    }
}
