#![warn(missing_docs)]

//! **gmmu** — a cycle-level reproduction of *Architectural Support for
//! Address Translation on GPUs: Designing Memory Management Units for
//! CPU/GPUs with Unified Address Spaces* (Pichai, Hsu, Bhattacharjee;
//! ASPLOS 2014).
//!
//! The workspace builds, from scratch, every system the paper uses:
//!
//! * a SIMT GPU timing model ([`gmmu_simt`]) in the paper's GPGPU-Sim
//!   configuration — 30 cores, 48 warps/core, 32 KB L1s, a sliced L2
//!   over 8 DRAM channels;
//! * x86-64 virtual memory ([`gmmu_vm`]) — real 4-level page tables,
//!   4 KB and 2 MB pages, frame allocation;
//! * the paper's MMU designs ([`gmmu_core`]) — per-core TLBs with
//!   blocking/non-blocking modes, serial and coalescing page-table
//!   walkers, CCWS/TA-CCWS/TCWS scheduling, and the Common Page Matrix
//!   for TLB-aware thread block compaction;
//! * the six evaluation workloads ([`gmmu_workloads`]) rebuilt as
//!   deterministic SIMT kernels.
//!
//! This crate is the front door: [`experiments`] runs design points
//! against their no-TLB baseline, and [`figures`] regenerates every
//! figure of the paper's evaluation as a printable table (the
//! `gmmu-bench` binaries wrap them one per figure).
//!
//! # Quick start
//!
//! ```no_run
//! use gmmu::experiments::{ExperimentOpts, Runner};
//! use gmmu::prelude::*;
//!
//! let mut runner = Runner::new(ExperimentOpts::quick());
//! let naive = runner.speedup(Bench::Bfs, |cfg| cfg.mmu = MmuModel::naive());
//! let augmented = runner.speedup(Bench::Bfs, |cfg| cfg.mmu = MmuModel::augmented());
//! assert!(naive < augmented);
//! println!("bfs: naive {naive:.2}×, augmented {augmented:.2}× of the no-TLB baseline");
//! ```

pub mod experiments;
pub mod figures;

/// The names most programs need.
pub mod prelude {
    pub use gmmu_core::ccws::PolicyKind;
    pub use gmmu_core::mmu::MmuModel;
    pub use gmmu_core::tlb::{TlbConfig, TlbMode};
    pub use gmmu_core::walker::WalkerConfig;
    pub use gmmu_sim::fault::FaultInjectConfig;
    pub use gmmu_sim::table::Table;
    pub use gmmu_simt::config::TbcConfig;
    pub use gmmu_simt::{
        EngineKind, FaultConfig, Gpu, GpuConfig, Observer, RunStats, StallBreakdown, StallCause,
    };
    pub use gmmu_vm::PageSize;
    pub use gmmu_workloads::{build, build_demand_paged, build_paged, Bench, Scale, Workload};
}

pub use experiments::{ExperimentOpts, PointRun, Runner};
