/root/repo/target/debug/examples/ladder_test-06064209ddb83809.d: examples/ladder_test.rs

/root/repo/target/debug/examples/ladder_test-06064209ddb83809: examples/ladder_test.rs

examples/ladder_test.rs:
