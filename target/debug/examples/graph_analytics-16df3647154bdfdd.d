/root/repo/target/debug/examples/graph_analytics-16df3647154bdfdd.d: examples/graph_analytics.rs

/root/repo/target/debug/examples/graph_analytics-16df3647154bdfdd: examples/graph_analytics.rs

examples/graph_analytics.rs:
