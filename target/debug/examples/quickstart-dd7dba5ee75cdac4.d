/root/repo/target/debug/examples/quickstart-dd7dba5ee75cdac4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dd7dba5ee75cdac4: examples/quickstart.rs

examples/quickstart.rs:
