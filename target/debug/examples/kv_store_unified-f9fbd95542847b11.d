/root/repo/target/debug/examples/kv_store_unified-f9fbd95542847b11.d: examples/kv_store_unified.rs

/root/repo/target/debug/examples/kv_store_unified-f9fbd95542847b11: examples/kv_store_unified.rs

examples/kv_store_unified.rs:
