/root/repo/target/debug/examples/ccws_probe-0354ff140a89230c.d: examples/ccws_probe.rs

/root/repo/target/debug/examples/ccws_probe-0354ff140a89230c: examples/ccws_probe.rs

examples/ccws_probe.rs:
