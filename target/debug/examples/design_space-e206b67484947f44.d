/root/repo/target/debug/examples/design_space-e206b67484947f44.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-e206b67484947f44: examples/design_space.rs

examples/design_space.rs:
