/root/repo/target/debug/examples/speed_test-d67b3c6a3f3b8d10.d: examples/speed_test.rs

/root/repo/target/debug/examples/speed_test-d67b3c6a3f3b8d10: examples/speed_test.rs

examples/speed_test.rs:
