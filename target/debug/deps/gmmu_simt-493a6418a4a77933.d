/root/repo/target/debug/deps/gmmu_simt-493a6418a4a77933.d: crates/simt/src/lib.rs crates/simt/src/coalesce.rs crates/simt/src/config.rs crates/simt/src/core.rs crates/simt/src/gpu.rs crates/simt/src/program.rs crates/simt/src/stack.rs crates/simt/src/tbc.rs

/root/repo/target/debug/deps/libgmmu_simt-493a6418a4a77933.rlib: crates/simt/src/lib.rs crates/simt/src/coalesce.rs crates/simt/src/config.rs crates/simt/src/core.rs crates/simt/src/gpu.rs crates/simt/src/program.rs crates/simt/src/stack.rs crates/simt/src/tbc.rs

/root/repo/target/debug/deps/libgmmu_simt-493a6418a4a77933.rmeta: crates/simt/src/lib.rs crates/simt/src/coalesce.rs crates/simt/src/config.rs crates/simt/src/core.rs crates/simt/src/gpu.rs crates/simt/src/program.rs crates/simt/src/stack.rs crates/simt/src/tbc.rs

crates/simt/src/lib.rs:
crates/simt/src/coalesce.rs:
crates/simt/src/config.rs:
crates/simt/src/core.rs:
crates/simt/src/gpu.rs:
crates/simt/src/program.rs:
crates/simt/src/stack.rs:
crates/simt/src/tbc.rs:
