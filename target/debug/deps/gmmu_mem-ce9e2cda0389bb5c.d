/root/repo/target/debug/deps/gmmu_mem-ce9e2cda0389bb5c.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

/root/repo/target/debug/deps/libgmmu_mem-ce9e2cda0389bb5c.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

/root/repo/target/debug/deps/libgmmu_mem-ce9e2cda0389bb5c.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/mshr.rs:
crates/mem/src/system.rs:
