/root/repo/target/debug/deps/gmmu-959dc492a1c4f980.d: src/lib.rs src/experiments.rs src/figures.rs

/root/repo/target/debug/deps/gmmu-959dc492a1c4f980: src/lib.rs src/experiments.rs src/figures.rs

src/lib.rs:
src/experiments.rs:
src/figures.rs:
