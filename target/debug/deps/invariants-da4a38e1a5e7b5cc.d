/root/repo/target/debug/deps/invariants-da4a38e1a5e7b5cc.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-da4a38e1a5e7b5cc: tests/invariants.rs

tests/invariants.rs:
