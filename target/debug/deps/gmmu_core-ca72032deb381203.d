/root/repo/target/debug/deps/gmmu_core-ca72032deb381203.d: crates/core/src/lib.rs crates/core/src/ccws.rs crates/core/src/cpm.rs crates/core/src/lls.rs crates/core/src/mmu.rs crates/core/src/tlb.rs crates/core/src/vta.rs crates/core/src/walker.rs

/root/repo/target/debug/deps/libgmmu_core-ca72032deb381203.rlib: crates/core/src/lib.rs crates/core/src/ccws.rs crates/core/src/cpm.rs crates/core/src/lls.rs crates/core/src/mmu.rs crates/core/src/tlb.rs crates/core/src/vta.rs crates/core/src/walker.rs

/root/repo/target/debug/deps/libgmmu_core-ca72032deb381203.rmeta: crates/core/src/lib.rs crates/core/src/ccws.rs crates/core/src/cpm.rs crates/core/src/lls.rs crates/core/src/mmu.rs crates/core/src/tlb.rs crates/core/src/vta.rs crates/core/src/walker.rs

crates/core/src/lib.rs:
crates/core/src/ccws.rs:
crates/core/src/cpm.rs:
crates/core/src/lls.rs:
crates/core/src/mmu.rs:
crates/core/src/tlb.rs:
crates/core/src/vta.rs:
crates/core/src/walker.rs:
