/root/repo/target/debug/deps/gmmu_sim-b93cc0a0a77661ec.d: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libgmmu_sim-b93cc0a0a77661ec.rlib: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libgmmu_sim-b93cc0a0a77661ec.rmeta: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/table.rs:
