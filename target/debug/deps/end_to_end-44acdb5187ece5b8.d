/root/repo/target/debug/deps/end_to_end-44acdb5187ece5b8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-44acdb5187ece5b8: tests/end_to_end.rs

tests/end_to_end.rs:
