/root/repo/target/debug/deps/gmmu_vm-1b00e1ca46ae5189.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

/root/repo/target/debug/deps/libgmmu_vm-1b00e1ca46ae5189.rlib: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

/root/repo/target/debug/deps/libgmmu_vm-1b00e1ca46ae5189.rmeta: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/frame.rs:
crates/vm/src/page_table.rs:
crates/vm/src/space.rs:
