/root/repo/target/debug/deps/gmmu_workloads-3b439d327f3d476d.d: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/kmeans.rs crates/workloads/src/memcached.rs crates/workloads/src/mummergpu.rs crates/workloads/src/pathfinder.rs crates/workloads/src/streamcluster.rs crates/workloads/src/util.rs

/root/repo/target/debug/deps/libgmmu_workloads-3b439d327f3d476d.rlib: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/kmeans.rs crates/workloads/src/memcached.rs crates/workloads/src/mummergpu.rs crates/workloads/src/pathfinder.rs crates/workloads/src/streamcluster.rs crates/workloads/src/util.rs

/root/repo/target/debug/deps/libgmmu_workloads-3b439d327f3d476d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/kmeans.rs crates/workloads/src/memcached.rs crates/workloads/src/mummergpu.rs crates/workloads/src/pathfinder.rs crates/workloads/src/streamcluster.rs crates/workloads/src/util.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bfs.rs:
crates/workloads/src/kmeans.rs:
crates/workloads/src/memcached.rs:
crates/workloads/src/mummergpu.rs:
crates/workloads/src/pathfinder.rs:
crates/workloads/src/streamcluster.rs:
crates/workloads/src/util.rs:
