/root/repo/target/debug/deps/props-b6cb5ab08000b6eb.d: tests/props.rs

/root/repo/target/debug/deps/props-b6cb5ab08000b6eb: tests/props.rs

tests/props.rs:
