/root/repo/target/debug/deps/gmmu-d7086b201b4422b4.d: src/lib.rs src/experiments.rs src/figures.rs

/root/repo/target/debug/deps/libgmmu-d7086b201b4422b4.rlib: src/lib.rs src/experiments.rs src/figures.rs

/root/repo/target/debug/deps/libgmmu-d7086b201b4422b4.rmeta: src/lib.rs src/experiments.rs src/figures.rs

src/lib.rs:
src/experiments.rs:
src/figures.rs:
