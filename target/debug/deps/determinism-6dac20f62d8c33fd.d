/root/repo/target/debug/deps/determinism-6dac20f62d8c33fd.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-6dac20f62d8c33fd: tests/determinism.rs

tests/determinism.rs:
