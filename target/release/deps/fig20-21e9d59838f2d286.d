/root/repo/target/release/deps/fig20-21e9d59838f2d286.d: crates/bench/src/bin/fig20.rs

/root/repo/target/release/deps/fig20-21e9d59838f2d286: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
