/root/repo/target/release/deps/fig16-cd57d9da1f5862a3.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-cd57d9da1f5862a3: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
