/root/repo/target/release/deps/sec9_large_pages-0599b876ede384a5.d: crates/bench/src/bin/sec9_large_pages.rs

/root/repo/target/release/deps/sec9_large_pages-0599b876ede384a5: crates/bench/src/bin/sec9_large_pages.rs

crates/bench/src/bin/sec9_large_pages.rs:
