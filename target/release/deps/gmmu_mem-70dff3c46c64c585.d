/root/repo/target/release/deps/gmmu_mem-70dff3c46c64c585.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

/root/repo/target/release/deps/libgmmu_mem-70dff3c46c64c585.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

/root/repo/target/release/deps/libgmmu_mem-70dff3c46c64c585.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/mshr.rs:
crates/mem/src/system.rs:
