/root/repo/target/release/deps/fig20-f0af3679a036b924.d: crates/bench/src/bin/fig20.rs

/root/repo/target/release/deps/fig20-f0af3679a036b924: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
