/root/repo/target/release/deps/sec9_large_pages-ff3ba9703aa8edb0.d: crates/bench/src/bin/sec9_large_pages.rs

/root/repo/target/release/deps/sec9_large_pages-ff3ba9703aa8edb0: crates/bench/src/bin/sec9_large_pages.rs

crates/bench/src/bin/sec9_large_pages.rs:
