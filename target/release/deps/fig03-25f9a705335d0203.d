/root/repo/target/release/deps/fig03-25f9a705335d0203.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-25f9a705335d0203: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
