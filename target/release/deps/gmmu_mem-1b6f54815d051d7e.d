/root/repo/target/release/deps/gmmu_mem-1b6f54815d051d7e.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

/root/repo/target/release/deps/gmmu_mem-1b6f54815d051d7e: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/mshr.rs:
crates/mem/src/system.rs:
