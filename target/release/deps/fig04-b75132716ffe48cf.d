/root/repo/target/release/deps/fig04-b75132716ffe48cf.d: crates/bench/src/bin/fig04.rs

/root/repo/target/release/deps/fig04-b75132716ffe48cf: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
