/root/repo/target/release/deps/invariants-740223100d3dffc5.d: tests/invariants.rs

/root/repo/target/release/deps/invariants-740223100d3dffc5: tests/invariants.rs

tests/invariants.rs:
