/root/repo/target/release/deps/fig11-828598fdb159978c.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-828598fdb159978c: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
