/root/repo/target/release/deps/fig02-41ec46725a3b16a1.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-41ec46725a3b16a1: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
