/root/repo/target/release/deps/fig17-a134fa05102e495c.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-a134fa05102e495c: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
