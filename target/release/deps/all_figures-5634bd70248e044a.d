/root/repo/target/release/deps/all_figures-5634bd70248e044a.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-5634bd70248e044a: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
