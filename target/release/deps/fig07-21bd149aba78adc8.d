/root/repo/target/release/deps/fig07-21bd149aba78adc8.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-21bd149aba78adc8: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
