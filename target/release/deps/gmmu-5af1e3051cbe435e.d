/root/repo/target/release/deps/gmmu-5af1e3051cbe435e.d: src/lib.rs src/experiments.rs src/figures.rs

/root/repo/target/release/deps/libgmmu-5af1e3051cbe435e.rlib: src/lib.rs src/experiments.rs src/figures.rs

/root/repo/target/release/deps/libgmmu-5af1e3051cbe435e.rmeta: src/lib.rs src/experiments.rs src/figures.rs

src/lib.rs:
src/experiments.rs:
src/figures.rs:
