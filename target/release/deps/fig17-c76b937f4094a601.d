/root/repo/target/release/deps/fig17-c76b937f4094a601.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-c76b937f4094a601: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
