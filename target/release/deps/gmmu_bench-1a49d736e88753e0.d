/root/repo/target/release/deps/gmmu_bench-1a49d736e88753e0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/gmmu_bench-1a49d736e88753e0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
