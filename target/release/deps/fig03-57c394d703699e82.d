/root/repo/target/release/deps/fig03-57c394d703699e82.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-57c394d703699e82: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
