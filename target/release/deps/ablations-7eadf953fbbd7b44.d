/root/repo/target/release/deps/ablations-7eadf953fbbd7b44.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-7eadf953fbbd7b44: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
