/root/repo/target/release/deps/fig16-eaf87a9fbd23a826.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-eaf87a9fbd23a826: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
