/root/repo/target/release/deps/fig16-a29373e9734b14b4.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-a29373e9734b14b4: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
