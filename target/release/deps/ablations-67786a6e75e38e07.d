/root/repo/target/release/deps/ablations-67786a6e75e38e07.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-67786a6e75e38e07: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
