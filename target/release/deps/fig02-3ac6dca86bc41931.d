/root/repo/target/release/deps/fig02-3ac6dca86bc41931.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-3ac6dca86bc41931: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
