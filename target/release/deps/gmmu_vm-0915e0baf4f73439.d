/root/repo/target/release/deps/gmmu_vm-0915e0baf4f73439.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

/root/repo/target/release/deps/libgmmu_vm-0915e0baf4f73439.rlib: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

/root/repo/target/release/deps/libgmmu_vm-0915e0baf4f73439.rmeta: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/frame.rs:
crates/vm/src/page_table.rs:
crates/vm/src/space.rs:
