/root/repo/target/release/deps/fig13-1f817b2b07bc2b79.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-1f817b2b07bc2b79: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
