/root/repo/target/release/deps/gmmu_vm-34744e48313f3087.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

/root/repo/target/release/deps/libgmmu_vm-34744e48313f3087.rlib: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

/root/repo/target/release/deps/libgmmu_vm-34744e48313f3087.rmeta: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/frame.rs:
crates/vm/src/page_table.rs:
crates/vm/src/space.rs:
