/root/repo/target/release/deps/fig07-d09520511ff56858.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-d09520511ff56858: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
