/root/repo/target/release/deps/fig06-2ff600a319a005a9.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-2ff600a319a005a9: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
