/root/repo/target/release/deps/gmmu-1f4ef0ad61ac8172.d: src/lib.rs src/experiments.rs src/figures.rs

/root/repo/target/release/deps/gmmu-1f4ef0ad61ac8172: src/lib.rs src/experiments.rs src/figures.rs

src/lib.rs:
src/experiments.rs:
src/figures.rs:
