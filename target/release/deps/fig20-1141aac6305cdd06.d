/root/repo/target/release/deps/fig20-1141aac6305cdd06.d: crates/bench/src/bin/fig20.rs

/root/repo/target/release/deps/fig20-1141aac6305cdd06: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
