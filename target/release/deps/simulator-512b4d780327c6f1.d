/root/repo/target/release/deps/simulator-512b4d780327c6f1.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-512b4d780327c6f1: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
