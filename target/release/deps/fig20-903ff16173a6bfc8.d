/root/repo/target/release/deps/fig20-903ff16173a6bfc8.d: crates/bench/src/bin/fig20.rs

/root/repo/target/release/deps/fig20-903ff16173a6bfc8: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
