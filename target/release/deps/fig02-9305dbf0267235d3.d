/root/repo/target/release/deps/fig02-9305dbf0267235d3.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-9305dbf0267235d3: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
