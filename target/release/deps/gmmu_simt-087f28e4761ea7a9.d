/root/repo/target/release/deps/gmmu_simt-087f28e4761ea7a9.d: crates/simt/src/lib.rs crates/simt/src/coalesce.rs crates/simt/src/config.rs crates/simt/src/core.rs crates/simt/src/gpu.rs crates/simt/src/program.rs crates/simt/src/stack.rs crates/simt/src/tbc.rs

/root/repo/target/release/deps/gmmu_simt-087f28e4761ea7a9: crates/simt/src/lib.rs crates/simt/src/coalesce.rs crates/simt/src/config.rs crates/simt/src/core.rs crates/simt/src/gpu.rs crates/simt/src/program.rs crates/simt/src/stack.rs crates/simt/src/tbc.rs

crates/simt/src/lib.rs:
crates/simt/src/coalesce.rs:
crates/simt/src/config.rs:
crates/simt/src/core.rs:
crates/simt/src/gpu.rs:
crates/simt/src/program.rs:
crates/simt/src/stack.rs:
crates/simt/src/tbc.rs:
