/root/repo/target/release/deps/fig02-f97bd081a7fd8560.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-f97bd081a7fd8560: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
