/root/repo/target/release/deps/gmmu_bench-2ba8c56aea15ed33.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgmmu_bench-2ba8c56aea15ed33.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgmmu_bench-2ba8c56aea15ed33.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
