/root/repo/target/release/deps/fig18-91c9d3f53ae66f54.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-91c9d3f53ae66f54: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
