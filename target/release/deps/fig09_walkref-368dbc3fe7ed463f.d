/root/repo/target/release/deps/fig09_walkref-368dbc3fe7ed463f.d: crates/bench/src/bin/fig09_walkref.rs

/root/repo/target/release/deps/fig09_walkref-368dbc3fe7ed463f: crates/bench/src/bin/fig09_walkref.rs

crates/bench/src/bin/fig09_walkref.rs:
