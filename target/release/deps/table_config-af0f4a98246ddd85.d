/root/repo/target/release/deps/table_config-af0f4a98246ddd85.d: crates/bench/src/bin/table_config.rs

/root/repo/target/release/deps/table_config-af0f4a98246ddd85: crates/bench/src/bin/table_config.rs

crates/bench/src/bin/table_config.rs:
