/root/repo/target/release/deps/fig11-46aa8144bc93f339.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-46aa8144bc93f339: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
