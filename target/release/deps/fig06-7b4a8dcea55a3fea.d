/root/repo/target/release/deps/fig06-7b4a8dcea55a3fea.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-7b4a8dcea55a3fea: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
