/root/repo/target/release/deps/fig13-5be71f3ac18c171a.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-5be71f3ac18c171a: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
