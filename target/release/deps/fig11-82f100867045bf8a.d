/root/repo/target/release/deps/fig11-82f100867045bf8a.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-82f100867045bf8a: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
