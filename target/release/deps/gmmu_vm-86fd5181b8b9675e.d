/root/repo/target/release/deps/gmmu_vm-86fd5181b8b9675e.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

/root/repo/target/release/deps/gmmu_vm-86fd5181b8b9675e: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/space.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/frame.rs:
crates/vm/src/page_table.rs:
crates/vm/src/space.rs:
