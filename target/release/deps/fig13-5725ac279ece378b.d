/root/repo/target/release/deps/fig13-5725ac279ece378b.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-5725ac279ece378b: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
