/root/repo/target/release/deps/fig22-b4f0740190c87661.d: crates/bench/src/bin/fig22.rs

/root/repo/target/release/deps/fig22-b4f0740190c87661: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
