/root/repo/target/release/deps/fig04-ca4b477bc5b05a1d.d: crates/bench/src/bin/fig04.rs

/root/repo/target/release/deps/fig04-ca4b477bc5b05a1d: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
