/root/repo/target/release/deps/ablations-6918898db14423d5.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-6918898db14423d5: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
