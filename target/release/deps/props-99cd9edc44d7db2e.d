/root/repo/target/release/deps/props-99cd9edc44d7db2e.d: tests/props.rs

/root/repo/target/release/deps/props-99cd9edc44d7db2e: tests/props.rs

tests/props.rs:
