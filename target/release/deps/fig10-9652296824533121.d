/root/repo/target/release/deps/fig10-9652296824533121.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-9652296824533121: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
