/root/repo/target/release/deps/table_config-0eefd14298352508.d: crates/bench/src/bin/table_config.rs

/root/repo/target/release/deps/table_config-0eefd14298352508: crates/bench/src/bin/table_config.rs

crates/bench/src/bin/table_config.rs:
