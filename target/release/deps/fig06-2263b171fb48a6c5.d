/root/repo/target/release/deps/fig06-2263b171fb48a6c5.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-2263b171fb48a6c5: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
