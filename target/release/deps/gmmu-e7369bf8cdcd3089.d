/root/repo/target/release/deps/gmmu-e7369bf8cdcd3089.d: src/lib.rs src/experiments.rs src/figures.rs

/root/repo/target/release/deps/libgmmu-e7369bf8cdcd3089.rlib: src/lib.rs src/experiments.rs src/figures.rs

/root/repo/target/release/deps/libgmmu-e7369bf8cdcd3089.rmeta: src/lib.rs src/experiments.rs src/figures.rs

src/lib.rs:
src/experiments.rs:
src/figures.rs:
