/root/repo/target/release/deps/table_config-162f1f3556065fdb.d: crates/bench/src/bin/table_config.rs

/root/repo/target/release/deps/table_config-162f1f3556065fdb: crates/bench/src/bin/table_config.rs

crates/bench/src/bin/table_config.rs:
