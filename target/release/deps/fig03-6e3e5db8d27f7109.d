/root/repo/target/release/deps/fig03-6e3e5db8d27f7109.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-6e3e5db8d27f7109: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
