/root/repo/target/release/deps/fig17-0ab3ba7e0ae77528.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-0ab3ba7e0ae77528: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
