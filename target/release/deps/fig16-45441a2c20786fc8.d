/root/repo/target/release/deps/fig16-45441a2c20786fc8.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-45441a2c20786fc8: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
