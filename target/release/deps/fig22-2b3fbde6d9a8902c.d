/root/repo/target/release/deps/fig22-2b3fbde6d9a8902c.d: crates/bench/src/bin/fig22.rs

/root/repo/target/release/deps/fig22-2b3fbde6d9a8902c: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
