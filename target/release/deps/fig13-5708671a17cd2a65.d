/root/repo/target/release/deps/fig13-5708671a17cd2a65.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-5708671a17cd2a65: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
