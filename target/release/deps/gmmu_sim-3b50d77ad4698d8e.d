/root/repo/target/release/deps/gmmu_sim-3b50d77ad4698d8e.d: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libgmmu_sim-3b50d77ad4698d8e.rlib: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libgmmu_sim-3b50d77ad4698d8e.rmeta: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/table.rs:
