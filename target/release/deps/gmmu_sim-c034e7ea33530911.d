/root/repo/target/release/deps/gmmu_sim-c034e7ea33530911.d: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libgmmu_sim-c034e7ea33530911.rlib: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libgmmu_sim-c034e7ea33530911.rmeta: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/table.rs:
