/root/repo/target/release/deps/gmmu_simt-868f4472e8a5a5ea.d: crates/simt/src/lib.rs crates/simt/src/coalesce.rs crates/simt/src/config.rs crates/simt/src/core.rs crates/simt/src/gpu.rs crates/simt/src/program.rs crates/simt/src/stack.rs crates/simt/src/tbc.rs

/root/repo/target/release/deps/libgmmu_simt-868f4472e8a5a5ea.rlib: crates/simt/src/lib.rs crates/simt/src/coalesce.rs crates/simt/src/config.rs crates/simt/src/core.rs crates/simt/src/gpu.rs crates/simt/src/program.rs crates/simt/src/stack.rs crates/simt/src/tbc.rs

/root/repo/target/release/deps/libgmmu_simt-868f4472e8a5a5ea.rmeta: crates/simt/src/lib.rs crates/simt/src/coalesce.rs crates/simt/src/config.rs crates/simt/src/core.rs crates/simt/src/gpu.rs crates/simt/src/program.rs crates/simt/src/stack.rs crates/simt/src/tbc.rs

crates/simt/src/lib.rs:
crates/simt/src/coalesce.rs:
crates/simt/src/config.rs:
crates/simt/src/core.rs:
crates/simt/src/gpu.rs:
crates/simt/src/program.rs:
crates/simt/src/stack.rs:
crates/simt/src/tbc.rs:
