/root/repo/target/release/deps/gmmu_sim-534a087de0481174.d: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

/root/repo/target/release/deps/gmmu_sim-534a087de0481174: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/table.rs:
