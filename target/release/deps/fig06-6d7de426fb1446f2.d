/root/repo/target/release/deps/fig06-6d7de426fb1446f2.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-6d7de426fb1446f2: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
