/root/repo/target/release/deps/fig03-f8a616a74742e9c2.d: crates/bench/src/bin/fig03.rs

/root/repo/target/release/deps/fig03-f8a616a74742e9c2: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
