/root/repo/target/release/deps/fig18-dbdd86a8c801bbc2.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-dbdd86a8c801bbc2: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
