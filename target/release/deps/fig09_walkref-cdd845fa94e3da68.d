/root/repo/target/release/deps/fig09_walkref-cdd845fa94e3da68.d: crates/bench/src/bin/fig09_walkref.rs

/root/repo/target/release/deps/fig09_walkref-cdd845fa94e3da68: crates/bench/src/bin/fig09_walkref.rs

crates/bench/src/bin/fig09_walkref.rs:
