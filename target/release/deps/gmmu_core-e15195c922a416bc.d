/root/repo/target/release/deps/gmmu_core-e15195c922a416bc.d: crates/core/src/lib.rs crates/core/src/ccws.rs crates/core/src/cpm.rs crates/core/src/lls.rs crates/core/src/mmu.rs crates/core/src/tlb.rs crates/core/src/vta.rs crates/core/src/walker.rs

/root/repo/target/release/deps/gmmu_core-e15195c922a416bc: crates/core/src/lib.rs crates/core/src/ccws.rs crates/core/src/cpm.rs crates/core/src/lls.rs crates/core/src/mmu.rs crates/core/src/tlb.rs crates/core/src/vta.rs crates/core/src/walker.rs

crates/core/src/lib.rs:
crates/core/src/ccws.rs:
crates/core/src/cpm.rs:
crates/core/src/lls.rs:
crates/core/src/mmu.rs:
crates/core/src/tlb.rs:
crates/core/src/vta.rs:
crates/core/src/walker.rs:
