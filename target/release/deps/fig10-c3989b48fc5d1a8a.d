/root/repo/target/release/deps/fig10-c3989b48fc5d1a8a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-c3989b48fc5d1a8a: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
