/root/repo/target/release/deps/ablations-e0794f3147b07ded.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-e0794f3147b07ded: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
