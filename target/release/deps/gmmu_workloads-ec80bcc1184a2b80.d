/root/repo/target/release/deps/gmmu_workloads-ec80bcc1184a2b80.d: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/kmeans.rs crates/workloads/src/memcached.rs crates/workloads/src/mummergpu.rs crates/workloads/src/pathfinder.rs crates/workloads/src/streamcluster.rs crates/workloads/src/util.rs

/root/repo/target/release/deps/libgmmu_workloads-ec80bcc1184a2b80.rlib: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/kmeans.rs crates/workloads/src/memcached.rs crates/workloads/src/mummergpu.rs crates/workloads/src/pathfinder.rs crates/workloads/src/streamcluster.rs crates/workloads/src/util.rs

/root/repo/target/release/deps/libgmmu_workloads-ec80bcc1184a2b80.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bfs.rs crates/workloads/src/kmeans.rs crates/workloads/src/memcached.rs crates/workloads/src/mummergpu.rs crates/workloads/src/pathfinder.rs crates/workloads/src/streamcluster.rs crates/workloads/src/util.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bfs.rs:
crates/workloads/src/kmeans.rs:
crates/workloads/src/memcached.rs:
crates/workloads/src/mummergpu.rs:
crates/workloads/src/pathfinder.rs:
crates/workloads/src/streamcluster.rs:
crates/workloads/src/util.rs:
