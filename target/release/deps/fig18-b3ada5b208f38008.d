/root/repo/target/release/deps/fig18-b3ada5b208f38008.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-b3ada5b208f38008: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
