/root/repo/target/release/deps/fig04-a264e76bbe252c07.d: crates/bench/src/bin/fig04.rs

/root/repo/target/release/deps/fig04-a264e76bbe252c07: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
