/root/repo/target/release/deps/fig07-5adaf2c6b3eb63af.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-5adaf2c6b3eb63af: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
