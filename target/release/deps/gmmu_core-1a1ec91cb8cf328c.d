/root/repo/target/release/deps/gmmu_core-1a1ec91cb8cf328c.d: crates/core/src/lib.rs crates/core/src/ccws.rs crates/core/src/cpm.rs crates/core/src/lls.rs crates/core/src/mmu.rs crates/core/src/tlb.rs crates/core/src/vta.rs crates/core/src/walker.rs

/root/repo/target/release/deps/libgmmu_core-1a1ec91cb8cf328c.rlib: crates/core/src/lib.rs crates/core/src/ccws.rs crates/core/src/cpm.rs crates/core/src/lls.rs crates/core/src/mmu.rs crates/core/src/tlb.rs crates/core/src/vta.rs crates/core/src/walker.rs

/root/repo/target/release/deps/libgmmu_core-1a1ec91cb8cf328c.rmeta: crates/core/src/lib.rs crates/core/src/ccws.rs crates/core/src/cpm.rs crates/core/src/lls.rs crates/core/src/mmu.rs crates/core/src/tlb.rs crates/core/src/vta.rs crates/core/src/walker.rs

crates/core/src/lib.rs:
crates/core/src/ccws.rs:
crates/core/src/cpm.rs:
crates/core/src/lls.rs:
crates/core/src/mmu.rs:
crates/core/src/tlb.rs:
crates/core/src/vta.rs:
crates/core/src/walker.rs:
