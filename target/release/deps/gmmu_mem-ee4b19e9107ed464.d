/root/repo/target/release/deps/gmmu_mem-ee4b19e9107ed464.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

/root/repo/target/release/deps/libgmmu_mem-ee4b19e9107ed464.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

/root/repo/target/release/deps/libgmmu_mem-ee4b19e9107ed464.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/system.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/mshr.rs:
crates/mem/src/system.rs:
