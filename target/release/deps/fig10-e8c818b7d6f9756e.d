/root/repo/target/release/deps/fig10-e8c818b7d6f9756e.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-e8c818b7d6f9756e: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
