/root/repo/target/release/deps/all_figures-bc6b08a4ec80de35.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-bc6b08a4ec80de35: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
