/root/repo/target/release/deps/gmmu_bench-f27d458eb2abb794.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgmmu_bench-f27d458eb2abb794.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgmmu_bench-f27d458eb2abb794.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
