/root/repo/target/release/deps/sec9_large_pages-feddae4bfaf0f5bd.d: crates/bench/src/bin/sec9_large_pages.rs

/root/repo/target/release/deps/sec9_large_pages-feddae4bfaf0f5bd: crates/bench/src/bin/sec9_large_pages.rs

crates/bench/src/bin/sec9_large_pages.rs:
