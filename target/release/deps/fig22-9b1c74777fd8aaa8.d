/root/repo/target/release/deps/fig22-9b1c74777fd8aaa8.d: crates/bench/src/bin/fig22.rs

/root/repo/target/release/deps/fig22-9b1c74777fd8aaa8: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
