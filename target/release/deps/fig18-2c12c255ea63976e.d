/root/repo/target/release/deps/fig18-2c12c255ea63976e.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-2c12c255ea63976e: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
