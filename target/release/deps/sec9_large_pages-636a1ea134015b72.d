/root/repo/target/release/deps/sec9_large_pages-636a1ea134015b72.d: crates/bench/src/bin/sec9_large_pages.rs

/root/repo/target/release/deps/sec9_large_pages-636a1ea134015b72: crates/bench/src/bin/sec9_large_pages.rs

crates/bench/src/bin/sec9_large_pages.rs:
