/root/repo/target/release/deps/table_config-4574735d6cf429eb.d: crates/bench/src/bin/table_config.rs

/root/repo/target/release/deps/table_config-4574735d6cf429eb: crates/bench/src/bin/table_config.rs

crates/bench/src/bin/table_config.rs:
