/root/repo/target/release/deps/fig07-8f61d0fbf5c22e3d.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-8f61d0fbf5c22e3d: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
