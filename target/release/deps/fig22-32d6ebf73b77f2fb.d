/root/repo/target/release/deps/fig22-32d6ebf73b77f2fb.d: crates/bench/src/bin/fig22.rs

/root/repo/target/release/deps/fig22-32d6ebf73b77f2fb: crates/bench/src/bin/fig22.rs

crates/bench/src/bin/fig22.rs:
