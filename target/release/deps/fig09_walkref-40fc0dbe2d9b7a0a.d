/root/repo/target/release/deps/fig09_walkref-40fc0dbe2d9b7a0a.d: crates/bench/src/bin/fig09_walkref.rs

/root/repo/target/release/deps/fig09_walkref-40fc0dbe2d9b7a0a: crates/bench/src/bin/fig09_walkref.rs

crates/bench/src/bin/fig09_walkref.rs:
