/root/repo/target/release/deps/fig04-6278cf7ee3963135.d: crates/bench/src/bin/fig04.rs

/root/repo/target/release/deps/fig04-6278cf7ee3963135: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
