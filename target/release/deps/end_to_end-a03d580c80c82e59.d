/root/repo/target/release/deps/end_to_end-a03d580c80c82e59.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-a03d580c80c82e59: tests/end_to_end.rs

tests/end_to_end.rs:
