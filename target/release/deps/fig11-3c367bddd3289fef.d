/root/repo/target/release/deps/fig11-3c367bddd3289fef.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-3c367bddd3289fef: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
