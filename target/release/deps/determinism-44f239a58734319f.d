/root/repo/target/release/deps/determinism-44f239a58734319f.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-44f239a58734319f: tests/determinism.rs

tests/determinism.rs:
