/root/repo/target/release/deps/fig17-867bbcbbe233feae.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-867bbcbbe233feae: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
