/root/repo/target/release/deps/all_figures-83e59e208341d7bf.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-83e59e208341d7bf: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
