/root/repo/target/release/deps/gmmu_bench-c635eecd792c4ce0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/gmmu_bench-c635eecd792c4ce0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
