/root/repo/target/release/deps/fig09_walkref-a192c0f635f7daf4.d: crates/bench/src/bin/fig09_walkref.rs

/root/repo/target/release/deps/fig09_walkref-a192c0f635f7daf4: crates/bench/src/bin/fig09_walkref.rs

crates/bench/src/bin/fig09_walkref.rs:
