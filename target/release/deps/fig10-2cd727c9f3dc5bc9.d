/root/repo/target/release/deps/fig10-2cd727c9f3dc5bc9.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-2cd727c9f3dc5bc9: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
