/root/repo/target/release/deps/all_figures-b36a568b792ce6f1.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-b36a568b792ce6f1: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
