/root/repo/target/release/examples/ladder_test-f1a5b34f620c5408.d: examples/ladder_test.rs

/root/repo/target/release/examples/ladder_test-f1a5b34f620c5408: examples/ladder_test.rs

examples/ladder_test.rs:
