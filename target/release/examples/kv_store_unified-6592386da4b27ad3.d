/root/repo/target/release/examples/kv_store_unified-6592386da4b27ad3.d: examples/kv_store_unified.rs

/root/repo/target/release/examples/kv_store_unified-6592386da4b27ad3: examples/kv_store_unified.rs

examples/kv_store_unified.rs:
