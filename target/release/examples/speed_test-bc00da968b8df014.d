/root/repo/target/release/examples/speed_test-bc00da968b8df014.d: examples/speed_test.rs

/root/repo/target/release/examples/speed_test-bc00da968b8df014: examples/speed_test.rs

examples/speed_test.rs:
