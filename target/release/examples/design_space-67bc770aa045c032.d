/root/repo/target/release/examples/design_space-67bc770aa045c032.d: examples/design_space.rs

/root/repo/target/release/examples/design_space-67bc770aa045c032: examples/design_space.rs

examples/design_space.rs:
