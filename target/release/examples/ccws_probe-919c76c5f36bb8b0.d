/root/repo/target/release/examples/ccws_probe-919c76c5f36bb8b0.d: examples/ccws_probe.rs

/root/repo/target/release/examples/ccws_probe-919c76c5f36bb8b0: examples/ccws_probe.rs

examples/ccws_probe.rs:
