/root/repo/target/release/examples/graph_analytics-2cb9bccb10943fb1.d: examples/graph_analytics.rs

/root/repo/target/release/examples/graph_analytics-2cb9bccb10943fb1: examples/graph_analytics.rs

examples/graph_analytics.rs:
