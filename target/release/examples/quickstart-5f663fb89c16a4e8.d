/root/repo/target/release/examples/quickstart-5f663fb89c16a4e8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5f663fb89c16a4e8: examples/quickstart.rs

examples/quickstart.rs:
