//! Trace capture/replay conformance: a run recorded to a GMTR trace and
//! replayed through any execution engine must reproduce the captured
//! run's statistics bit-identically — with and without fault injection —
//! and the format must refuse foreign, truncated, tampered, or
//! future-versioned files. Committed golden fixtures pin the byte format
//! itself: re-capturing a replayed golden run must reproduce the
//! committed file byte for byte.

use gmmu::experiments::{designs, ExperimentOpts};
use gmmu::prelude::*;
use gmmu_sim::ckpt::CkptError;
use gmmu_sim::metrics::Metrics;
use gmmu_trace::{
    assemble, capture_launch, rebuild_space, replay_run, replay_run_observed, Recorder, Trace,
    TraceKernel,
};

/// Captures `bench` (Tiny scale, seed 7) under `cfg`, returning the
/// encoded trace and the capture run's stats.
fn capture(bench: Bench, cfg: &GpuConfig) -> (Vec<u8>, RunStats) {
    let mut w = match &cfg.inject {
        Some(inj) if inj.unmap_fraction > 0.0 => build_demand_paged(bench, Scale::Tiny, 7, inj).0,
        _ => build(bench, Scale::Tiny, 7),
    };
    let source = format!("{bench} tiny seed=7");
    let launch = capture_launch(w.kernel.as_ref(), &w.space, cfg, &source);
    let rec = Recorder::new(w.kernel.as_ref());
    let stats = Gpu::new(cfg.clone()).run_faulted(&rec, &mut w.space, &mut Observer::off());
    let trace = assemble(launch, rec, &stats);
    (trace.encode(), stats)
}

/// Replays `bytes` on each engine; every replay must match the stats
/// embedded in the trace exactly (ignoring `wall_s`).
fn assert_replays_match(bytes: &[u8], what: &str) {
    let trace = Trace::decode(bytes).expect("trace decodes");
    let engines = [
        ("serial", EngineKind::Serial, 0),
        ("parallel", EngineKind::Parallel, 2),
        ("event", EngineKind::Event, 0),
    ];
    for (name, engine, threads) in engines {
        let mut cfg = trace.launch.config.clone();
        cfg.engine = engine;
        cfg.run_threads = threads;
        let replayed = replay_run(&trace, &cfg).expect("replay runs");
        let diff = trace.stats.diff(&replayed);
        assert!(
            diff.is_empty(),
            "{what}/{name}: replay diverged from capture in {diff:?}"
        );
    }
}

#[test]
fn capture_replay_round_trips_on_every_bench_and_engine() {
    let cfg = ExperimentOpts::quick().gpu(designs::augmented());
    for bench in Bench::all() {
        let (bytes, stats) = capture(bench, &cfg);
        assert!(stats.completed, "{bench} capture hit the cycle cap");
        assert_replays_match(&bytes, &format!("{bench}"));
    }
}

#[test]
fn capture_does_not_perturb_the_run() {
    let cfg = ExperimentOpts::quick().gpu(designs::naive3());
    let w = build(Bench::Bfs, Scale::Tiny, 7);
    let plain = Gpu::new(cfg.clone()).run(w.kernel.as_ref(), &w.space);
    let (_, captured) = capture(Bench::Bfs, &cfg);
    let diff = plain.diff(&captured);
    assert!(diff.is_empty(), "recording changed the run: {diff:?}");
}

/// Replaying a trace while recording it again must reproduce the
/// original file byte for byte: the canonical record order is engine-
/// independent and the launch section survives the round trip.
#[test]
fn recapturing_a_replay_is_byte_identical() {
    let cfg = ExperimentOpts::quick().gpu(designs::augmented());
    let (bytes, _) = capture(Bench::Pathfinder, &cfg);
    let trace = Trace::decode(&bytes).expect("trace decodes");

    let kernel = TraceKernel::from_trace(&trace).expect("records expand");
    let mut space = rebuild_space(&trace.launch).expect("space rebuilds");
    let relaunch = capture_launch(&kernel, &space, &trace.launch.config, &trace.launch.source);
    let rec = Recorder::new(&kernel);
    let stats =
        Gpu::new(trace.launch.config.clone()).run_faulted(&rec, &mut space, &mut Observer::off());
    let again = assemble(relaunch, rec, &stats).encode();
    assert_eq!(again, bytes, "re-capture is not byte-identical");
}

#[test]
fn replay_under_fault_injection_matches_capture() {
    let mut cfg = ExperimentOpts::quick().gpu(designs::augmented());
    cfg.fault = FaultConfig::demand();
    cfg.inject = Some(FaultInjectConfig::smoke(0xfa57));
    let (bytes, stats) = capture(Bench::Bfs, &cfg);
    assert!(stats.completed, "faulted capture hit the cycle cap");
    assert!(stats.faults > 0, "nothing demand-faulted");
    assert_replays_match(&bytes, "bfs/smoke");
}

#[test]
fn trace_refuses_foreign_truncated_or_tampered_files() {
    let cfg = ExperimentOpts::quick().gpu(designs::naive3());
    let (bytes, _) = capture(Bench::Kmeans, &cfg);

    // Foreign magic.
    let mut foreign = bytes.clone();
    foreign[..4].copy_from_slice(b"GMCK");
    assert_eq!(Trace::decode(&foreign).unwrap_err(), CkptError::BadMagic);

    // A future format version (version 1 is the single varint byte at
    // offset 4).
    let mut future = bytes.clone();
    assert_eq!(future[4], 1);
    future[4] = 2;
    assert_eq!(
        Trace::decode(&future).unwrap_err(),
        CkptError::BadVersion(2)
    );

    // Any flipped bit in the launch section is a fingerprint mismatch.
    let mut tampered = bytes.clone();
    tampered[40] ^= 0x01;
    assert!(matches!(
        Trace::decode(&tampered).unwrap_err(),
        CkptError::ConfigMismatch { .. }
    ));

    // Truncation anywhere in the body.
    for frac in [4, 2] {
        let cut = bytes.len() / frac;
        assert!(
            Trace::decode(&bytes[..cut]).is_err(),
            "truncated at {cut} must be refused"
        );
    }
}

/// The committed golden fixtures decode, re-encode byte-identically,
/// replay to their embedded stats on every engine, and re-capture to
/// the committed bytes. This pins the GMTR v1 byte format: an
/// accidental layout change fails here even if round-trip tests still
/// pass against the changed code.
#[test]
fn golden_fixtures_replay_and_recapture_byte_identically() {
    for name in ["pathfinder_tiny", "kmeans_tiny"] {
        let path = format!("{}/tests/fixtures/{name}.gmtr", env!("CARGO_MANIFEST_DIR"));
        let bytes =
            std::fs::read(&path).unwrap_or_else(|e| panic!("missing golden fixture {path}: {e}"));
        let trace = Trace::decode(&bytes).expect("golden fixture decodes");
        assert_eq!(
            trace.encode(),
            bytes,
            "{name}: re-encode is not byte-identical"
        );
        assert_replays_match(&bytes, name);

        // Re-capture the replayed run and require the committed bytes.
        let kernel = TraceKernel::from_trace(&trace).expect("records expand");
        let mut space = rebuild_space(&trace.launch).expect("space rebuilds");
        let relaunch = capture_launch(&kernel, &space, &trace.launch.config, &trace.launch.source);
        let rec = Recorder::new(&kernel);
        let stats = Gpu::new(trace.launch.config.clone()).run_faulted(
            &rec,
            &mut space,
            &mut Observer::off(),
        );
        let again = assemble(relaunch, rec, &stats).encode();
        assert_eq!(again, bytes, "{name}: golden re-capture diverged");
    }
}

/// The committed metrics snapshot fixture pins the snapshot JSON schema:
/// replaying the golden pathfinder trace with the metrics channel on
/// must reproduce `metrics_pathfinder_tiny.json` byte for byte, on every
/// engine. A schema change (new field, renamed instrument, different
/// float formatting) fails here and forces a deliberate fixture bump via
/// `GMMU_EMIT_GOLDEN`.
#[test]
fn golden_metrics_snapshot_matches_committed_fixture() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let bytes = std::fs::read(format!("{dir}/pathfinder_tiny.gmtr"))
        .expect("missing golden fixture pathfinder_tiny.gmtr");
    let golden = std::fs::read_to_string(format!("{dir}/metrics_pathfinder_tiny.json"))
        .expect("missing golden fixture metrics_pathfinder_tiny.json");
    let trace = Trace::decode(&bytes).expect("golden fixture decodes");
    for (name, engine, threads) in [
        ("serial", EngineKind::Serial, 0),
        ("parallel", EngineKind::Parallel, 2),
        ("event", EngineKind::Event, 0),
    ] {
        let mut cfg = trace.launch.config.clone();
        cfg.engine = engine;
        cfg.run_threads = threads;
        let mut obs = Observer::off();
        obs.metrics = Metrics::recording();
        let (_, snapshot) = replay_run_observed(&trace, &cfg, &mut obs).expect("replay runs");
        let snapshot = snapshot.expect("the metrics channel was on");
        assert_eq!(
            snapshot, golden,
            "{name}: metrics snapshot diverged from the committed fixture"
        );
    }
}

/// Multi-tenant capture/replay conformance: a 2-tenant Zipf scenario
/// under the mixed fault soup, captured to a GMTM container, must
/// replay bit-identically (combined stats *and* per-tenant slice) on
/// all three engines, and re-encoding the decoded trace reproduces the
/// bytes.
#[test]
fn multitenant_capture_replay_round_trips() {
    use gmmu_simt::TenantPolicy;
    use gmmu_trace::{capture_tenants, replay_tenants, MultiTrace};
    use gmmu_workloads::tenants::scenario;

    let mut cfg = ExperimentOpts::quick().gpu(designs::augmented());
    cfg.fault = FaultConfig::demand();
    cfg.inject = Some(FaultInjectConfig::smoke(0xfa57));
    let policy = TenantPolicy {
        watchdog: 2_000_000,
        ..TenantPolicy::default()
    };

    let sc = scenario(2, Scale::Tiny, 7, true);
    let (built, unmapped) = sc.build_demand_paged(cfg.inject.as_ref().unwrap());
    assert!(
        unmapped.iter().all(|&u| u > 0),
        "a tenant started fully mapped"
    );
    let (owned, mut spaces): (Vec<_>, Vec<_>) =
        built.into_iter().map(|w| (w.kernel, w.space)).unzip();
    let kernels: Vec<&dyn gmmu_simt::Kernel> = owned
        .iter()
        .map(|k| k.as_ref() as &dyn gmmu_simt::Kernel)
        .collect();
    let (trace, stats) = capture_tenants(&kernels, &mut spaces, &cfg, policy, "mt conformance");
    assert!(stats.completed, "capture hit the cycle cap");
    assert!(!stats.watchdog_fired);
    assert_eq!(stats.tenants.len(), 2);

    let bytes = trace.encode();
    let back = MultiTrace::decode(&bytes).expect("GMTM decodes");
    assert_eq!(back.encode(), bytes, "re-encode is not byte-identical");
    assert_eq!(back.stats.tenants, stats.tenants);

    for (name, engine, threads) in [
        ("serial", EngineKind::Serial, 0),
        ("parallel", EngineKind::Parallel, 2),
        ("event", EngineKind::Event, 0),
    ] {
        let mut rcfg = back.tenants[0].launch.config.clone();
        rcfg.engine = engine;
        rcfg.run_threads = threads;
        let (replayed, _) =
            replay_tenants(&back, &rcfg, &mut Observer::off()).expect("GMTM replays");
        let diff = back.stats.diff(&replayed);
        assert!(diff.is_empty(), "{name}: replay diverged in {diff:?}");
        assert_eq!(
            back.stats.tenants, replayed.tenants,
            "{name}: per-tenant slice diverged"
        );
    }
}
