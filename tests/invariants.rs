//! Conservation and consistency invariants across the full stack.

use gmmu::experiments::{designs, ExperimentOpts, Runner};
use gmmu::prelude::*;
use gmmu_sim::metrics::Metrics;

fn quick() -> Runner {
    Runner::new(ExperimentOpts::quick())
}

#[test]
fn stat_conservation_under_every_mmu() {
    let mut r = quick();
    for b in [Bench::Bfs, Bench::Memcached, Bench::Pathfinder] {
        for model in [designs::naive3(), designs::hum(), designs::augmented()] {
            let s = r.run(b, |c| c.mmu = model);
            // Hits never exceed accesses anywhere.
            assert!(s.tlb_hits <= s.tlb_accesses, "{b}");
            assert!(s.l1_hits <= s.l1_accesses, "{b}");
            // Every committed memory instruction presented at least one
            // page to the TLB (replays can add more).
            assert!(s.tlb_accesses >= s.mem_instructions, "{b}");
            // A walk only exists for a miss, and MSHR merging can only
            // reduce walks below misses.
            assert!(s.walks <= s.tlb_accesses - s.tlb_hits, "{b}");
            // The walker never issues more references than four per walk
            // and never *reports* eliminating references it issued.
            assert!(s.walk_refs_issued <= s.walk_refs_naive, "{b}");
            assert!(s.walk_refs_naive <= 4 * s.walks, "{b}");
            // Page-divergence samples come one per memory instruction.
            assert_eq!(s.page_divergence.count(), s.mem_instructions, "{b}");
            // Busyness bookkeeping: the stall-cause breakdown is an
            // exact refinement of the idle counter.
            assert!(s.idle_cycles <= s.live_cycles, "{b}");
            assert_eq!(s.stall_breakdown.total(), s.idle_cycles, "{b}");
            assert!(s.stall_breakdown.get(StallCause::TlbFill) > 0, "{b}");
            assert!(s.instructions > 0 && s.cycles > 0, "{b}");
        }
    }
}

/// The metrics channel's per-stage walk attribution must agree exactly
/// with the aggregate accounting the stats already keep: for every
/// applied fill, `queue + active` is the same `complete - enqueued`
/// span `tlb_miss_latency` records, and squashed walks appear in
/// neither — so the stage histograms sum to the aggregate with equal
/// counts. The stall breakdown must also stay an exact refinement of
/// `idle_cycles` with the channel on.
#[test]
fn walk_stage_attribution_sums_to_the_miss_latency_aggregate() {
    let opts = ExperimentOpts::quick();
    for b in [Bench::Bfs, Bench::Memcached, Bench::Pathfinder] {
        for model in [designs::naive3(), designs::augmented()] {
            let w = build(b, opts.scale, opts.seed);
            let mut cfg = opts.gpu(MmuModel::Ideal);
            cfg.mmu = model;
            let mut obs = Observer::off();
            obs.metrics = Metrics::recording();
            let s = Gpu::new(cfg).run_observed(w.kernel.as_ref(), &w.space, &mut obs);
            let sink = obs.metrics.sink().expect("metrics were on");

            assert_eq!(
                sink.walk_queue.count(),
                s.tlb_miss_latency.count(),
                "{b}: queue-stage samples != applied fills"
            );
            assert_eq!(
                sink.walk_active.count(),
                s.tlb_miss_latency.count(),
                "{b}: active-stage samples != applied fills"
            );
            assert_eq!(
                sink.walk_queue.sum() + sink.walk_active.sum(),
                s.tlb_miss_latency.sum(),
                "{b}: stage cycles do not sum to the per-miss aggregate"
            );
            // One lookup sample per *accepted probe* (a probe covers all
            // of one instruction's pages), so samples never exceed the
            // per-page access counter.
            assert!(sink.lookup_latency.count() > 0, "{b}: no lookup samples");
            assert!(
                sink.lookup_latency.count() <= s.tlb_accesses,
                "{b}: more lookup events than TLB accesses"
            );
            // Hot-page misses count *registered* misses: every walk was
            // one, MSHR merges add more, and only misses bounced by a
            // full MSHR file (re-presented later) are excluded — so the
            // total sits between the walk count and the stats' misses.
            let hot_misses: u64 = sink.hot_pages.values().map(|p| p.tlb_misses).sum();
            assert!(
                hot_misses >= s.walks,
                "{b}: fewer hot-page misses than walks"
            );
            assert!(
                hot_misses <= s.tlb_accesses - s.tlb_hits,
                "{b}: hot-page misses exceed TLB misses"
            );
            // The stall breakdown stays exact with the channel on.
            assert_eq!(s.stall_breakdown.total(), s.idle_cycles, "{b}");
        }
    }
}

#[test]
fn ideal_mmu_has_no_translation_activity() {
    let mut r = quick();
    let s = r.baseline(Bench::Kmeans);
    assert_eq!(s.tlb_accesses, 0);
    assert_eq!(s.walks, 0);
    assert_eq!(s.walk_refs_issued, 0);
    assert_eq!(s.tlb_miss_latency.count(), 0);
}

#[test]
fn speedup_is_self_consistent() {
    let mut r = quick();
    let a = r.baseline(Bench::Kmeans);
    assert!((a.speedup_vs(&a) - 1.0).abs() < 1e-12);
    let b = r.run(Bench::Kmeans, |c| c.mmu = designs::naive3());
    let fwd = b.speedup_vs(&a);
    let rev = a.speedup_vs(&b);
    assert!((fwd * rev - 1.0).abs() < 1e-9);
}

#[test]
fn policies_never_change_committed_work() {
    let mut r = quick();
    for b in [Bench::Streamcluster, Bench::Bfs] {
        let base = r.baseline(b);
        for policy in [
            PolicyKind::Ccws,
            PolicyKind::TaCcws { tlb_weight: 4 },
            PolicyKind::tcws_best(),
        ] {
            let s = r.run(b, |c| {
                c.policy = policy;
                c.mmu = designs::augmented();
            });
            assert!(s.completed, "{b} under {policy:?}");
            assert_eq!(s.mem_instructions, base.mem_instructions, "{b} {policy:?}");
            assert_eq!(s.blocks_done, base.blocks_done, "{b} {policy:?}");
        }
    }
}

#[test]
fn tbc_conserves_per_thread_memory_work() {
    // Compaction changes warp grouping, never the set of thread-level
    // accesses: line traffic entering the memory system stays bounded
    // and blocks all complete.
    let mut r = quick();
    for b in [Bench::Bfs, Bench::Mummergpu] {
        let base = r.baseline(b);
        let tbc = r.run(b, |c| c.tbc = Some(TbcConfig::baseline()));
        assert_eq!(tbc.blocks_done, base.blocks_done, "{b}");
        // Warp-level instruction count may shrink (that is the point)
        // but never below the fully-compacted bound or above baseline.
        assert!(tbc.instructions <= base.instructions, "{b}");
        assert!(tbc.instructions >= base.instructions / 32, "{b}");
    }
}

#[test]
fn walker_kinds_agree_on_translated_work() {
    let mut r = quick();
    let base = r.baseline(Bench::Memcached);
    for walker in [
        WalkerConfig::serial(),
        WalkerConfig::serial_n(4),
        WalkerConfig::coalesced(),
        WalkerConfig::software(200),
        WalkerConfig::serial().with_pwc(16),
        WalkerConfig::coalesced().with_pwc(16),
    ] {
        let s = r.run(Bench::Memcached, |c| {
            c.mmu = MmuModel::Real {
                tlb: TlbConfig::augmented(),
                walker,
            };
        });
        assert!(s.completed, "{walker:?}");
        assert_eq!(s.mem_instructions, base.mem_instructions, "{walker:?}");
    }
}

#[test]
fn pwc_reduces_walker_references() {
    let mut r = quick();
    let plain = r.run(Bench::Bfs, |c| {
        c.mmu = MmuModel::Real {
            tlb: TlbConfig::augmented(),
            walker: WalkerConfig::serial(),
        };
    });
    let pwc = r.run(Bench::Bfs, |c| {
        c.mmu = MmuModel::Real {
            tlb: TlbConfig::augmented(),
            walker: WalkerConfig::serial().with_pwc(16),
        };
    });
    assert!(
        pwc.walk_refs_issued < plain.walk_refs_issued,
        "PWC {} !< plain {}",
        pwc.walk_refs_issued,
        plain.walk_refs_issued
    );
    assert!(pwc.cycles <= plain.cycles);
}

#[test]
fn software_walker_is_strictly_slower() {
    let mut r = quick();
    let hw = r.run(Bench::Memcached, |c| c.mmu = designs::naive4());
    let sw = r.run(Bench::Memcached, |c| {
        c.mmu = MmuModel::Real {
            tlb: TlbConfig::naive(),
            walker: WalkerConfig::software(200),
        };
    });
    assert!(sw.cycles > hw.cycles, "traps must cost time");
}

#[test]
fn tighter_mshrs_never_speed_things_up() {
    let mut r = quick();
    let wide = r.run(Bench::Mummergpu, |c| {
        c.mmu = MmuModel::Real {
            tlb: TlbConfig::augmented(),
            walker: WalkerConfig::coalesced(),
        };
    });
    let narrow = r.run(Bench::Mummergpu, |c| {
        c.mmu = MmuModel::Real {
            tlb: TlbConfig {
                mshrs: 4,
                ..TlbConfig::augmented()
            },
            walker: WalkerConfig::coalesced(),
        };
    });
    assert!(narrow.completed);
    assert!(
        narrow.cycles >= wide.cycles,
        "narrow {} vs wide {}",
        narrow.cycles,
        wide.cycles
    );
}
