//! Randomized property tests over the core data structures and
//! cross-crate invariants.
//!
//! These used to be `proptest` properties; they are now driven by the
//! in-tree deterministic [`Xoshiro256`] generator so the workspace has
//! zero external dependencies (the build environment has no network
//! access to a crates registry). Each property runs 64 seeded cases,
//! and a failure message carries the case seed for replay.

use gmmu_core::mmu::{Mmu, MmuEvent, MmuModel, PageReq, TranslateBuf, TranslateOutcome};
use gmmu_core::walker::{Walker, WalkerConfig};
use gmmu_mem::{Cache, CacheConfig, MemConfig, MemorySystem};
use gmmu_sim::rng::Xoshiro256;
use gmmu_simt::coalesce::{coalesce, CoalesceBuf};
use gmmu_simt::stack::SimtStack;
use gmmu_vm::{AddressSpace, PageSize, SpaceConfig, VAddr, Vpn};
use std::collections::{HashMap, HashSet};

const CASES: u64 = 64;

/// Runs `f` once per case with a per-case RNG; panics mention the case
/// number so failures can be replayed.
fn for_each_case(test: &str, f: impl Fn(&mut Xoshiro256)) {
    for case in 0..CASES {
        let mut rng = Xoshiro256::seed_from(0x9_e77 ^ case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = result {
            panic!("{test}: case {case} failed: {e:?}");
        }
    }
}

fn vec_u64(
    rng: &mut Xoshiro256,
    len: std::ops::Range<u64>,
    each: std::ops::Range<u64>,
) -> Vec<u64> {
    let n = rng.gen_range(len);
    (0..n).map(|_| rng.gen_range(each.clone())).collect()
}

/// Address-space translation round-trips for arbitrary offsets into
/// arbitrary regions, and never invents mappings outside them.
#[test]
fn translation_roundtrip() {
    for_each_case("translation_roundtrip", |rng| {
        let sizes = vec_u64(rng, 1..5, 1..200_000);
        let probes: Vec<(usize, u64)> = (0..rng.gen_range(1..50))
            .map(|_| (rng.gen_range(0..5) as usize, rng.gen_range(0..400_000)))
            .collect();
        let mut space = AddressSpace::new(SpaceConfig::default());
        let regions: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                space
                    .map_region(&format!("r{i}"), s, PageSize::Base4K)
                    .unwrap()
            })
            .collect();
        for (ri, off) in probes {
            let region = &regions[ri % regions.len()];
            let inside = off % region.bytes;
            let va = region.base.offset(inside);
            let (pa, _) = space.translate(va).expect("mapped offset must translate");
            assert_eq!(pa.raw() & 0xfff, va.raw() & 0xfff, "page offset preserved");
        }
        // Unmapped gaps stay unmapped (the guard gap after the last region).
        let last = regions.last().unwrap();
        assert!(space.translate(last.end().offset(1 << 21)).is_err());
    });
}

/// Distinct mapped pages never alias the same physical frame.
#[test]
fn no_frame_aliasing() {
    for_each_case("no_frame_aliasing", |rng| {
        let pages = rng.gen_range(1..600);
        let mut space = AddressSpace::new(SpaceConfig::default());
        let r = space
            .map_region("r", pages * 4096, PageSize::Base4K)
            .unwrap();
        let mut seen = HashSet::new();
        for p in 0..r.num_pages() {
            let (pa, _) = space.translate(r.at(p * 4096)).unwrap();
            assert!(seen.insert(pa.ppn().raw()), "frame aliased");
        }
    });
}

/// The coalescer covers every active access with exactly the right
/// page, never duplicates a line, and bounds divergence by the lane
/// count.
#[test]
fn coalescer_covers_all_lanes() {
    for_each_case("coalescer_covers_all_lanes", |rng| {
        let addrs = vec_u64(rng, 1..32, 0..1u64 << 30);
        let mut buf = CoalesceBuf::new();
        coalesce(addrs.iter().map(|&a| (VAddr::new(a), 0u16)), &mut buf);
        assert!(buf.pages.len() <= addrs.len());
        assert!(buf.lines.len() <= addrs.len());
        // No duplicate lines or pages.
        let lines: HashSet<u64> = buf.lines.iter().map(|l| l.vline).collect();
        assert_eq!(lines.len(), buf.lines.len());
        let pages: HashSet<u64> = buf.pages.iter().map(|p| p.vpn.raw()).collect();
        assert_eq!(pages.len(), buf.pages.len());
        // Every address's line and page are present and agree.
        for &a in &addrs {
            let va = VAddr::new(a);
            let line = buf
                .lines
                .iter()
                .find(|l| l.vline == va.line(7))
                .expect("line covered");
            assert_eq!(
                buf.pages[line.page_idx as usize].vpn,
                va.vpn(),
                "line mapped to wrong page"
            );
        }
    });
}

/// SIMT stack: for a divergent loop, every lane executes the body
/// exactly its own trip count and the tail executes once with the
/// full mask — regardless of the trip distribution.
#[test]
fn simt_stack_loops_execute_exact_trip_counts() {
    for_each_case("simt_stack_loops_execute_exact_trip_counts", |rng| {
        let trips: Vec<u32> = (0..rng.gen_range(1..32))
            .map(|_| rng.gen_range(1..9) as u32)
            .collect();
        let n = trips.len();
        let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        let mut stack = SimtStack::new(full, 3);
        let mut body = vec![0u32; n];
        let mut tail_mask = 0u32;
        let mut steps = 0;
        while !stack.is_done() {
            steps += 1;
            assert!(steps < 10_000, "stack failed to converge");
            let (pc, mask) = stack.current().unwrap();
            match pc {
                0 => {
                    for (lane, b) in body.iter_mut().enumerate() {
                        if mask & (1 << lane) != 0 {
                            *b += 1;
                        }
                    }
                    stack.advance(1);
                }
                1 => {
                    let mut taken = 0;
                    for lane in 0..n {
                        if mask & (1 << lane) != 0 && body[lane] < trips[lane] {
                            taken |= 1 << lane;
                        }
                    }
                    stack.branch(taken, 0, 2, 2);
                }
                2 => {
                    tail_mask |= mask;
                    stack.advance(3);
                }
                other => panic!("unexpected pc {other}"),
            }
            assert!(stack.depth() <= 2, "loop grew the stack");
        }
        assert_eq!(body, trips);
        assert_eq!(tail_mask, full);
    });
}

/// SIMT stack: an if/else partitions the lanes exactly.
#[test]
fn simt_stack_if_else_partitions() {
    for_each_case("simt_stack_if_else_partitions", |rng| {
        let mask_bits = rng.gen_range(0..u32::MAX as u64) as u32;
        let lanes = rng.gen_range(2..33) as u32;
        let full = if lanes == 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        let taken = mask_bits & full;
        // 0: branch(t→2, r=3); 1: else; 2: then; 3: join
        let mut stack = SimtStack::new(full, 4);
        stack.branch(taken, 2, 1, 3);
        let mut then_mask = 0;
        let mut else_mask = 0;
        let mut join_mask = 0;
        while !stack.is_done() {
            let (pc, m) = stack.current().unwrap();
            match pc {
                1 => {
                    else_mask |= m;
                    stack.advance(3);
                }
                2 => {
                    then_mask |= m;
                    stack.advance(3);
                }
                3 => {
                    join_mask |= m;
                    stack.advance(4);
                }
                _ => unreachable!(),
            }
        }
        assert_eq!(then_mask, taken);
        assert_eq!(else_mask, full & !taken);
        assert_eq!(join_mask, full);
        assert_eq!(then_mask & else_mask, 0);
    });
}

/// Serial and coalesced walkers are functionally equivalent: same
/// translations, and the coalesced walker never issues more PTE
/// loads than the serial one.
#[test]
fn walker_equivalence() {
    for_each_case("walker_equivalence", |rng| {
        let page_offsets = vec_u64(rng, 1..16, 0..2048);
        let mut space = AddressSpace::new(SpaceConfig::default());
        let region = space
            .map_region("w", 2048 * 4096, PageSize::Base4K)
            .unwrap();
        let base = region.base.vpn().raw();
        let vpns: Vec<Vpn> = page_offsets.iter().map(|&o| Vpn::new(base + o)).collect();

        let mut results: Vec<HashMap<u64, u64>> = Vec::new();
        let mut issued = Vec::new();
        for cfg in [WalkerConfig::serial(), WalkerConfig::coalesced()] {
            let mut mem = MemorySystem::new(MemConfig::default());
            let mut walker = Walker::new(cfg);
            for &v in &vpns {
                walker.enqueue(v, 0, 0);
            }
            let mut done = Vec::new();
            let mut now = 0;
            while done.len() < vpns.len() {
                walker.advance(now, &mut mem, &space, &mut done);
                now += 100;
                assert!(now < 10_000_000, "walker stalled");
            }
            results.push(
                done.iter()
                    .map(|d| (d.vpn.raw(), d.translation.unwrap().0.raw()))
                    .collect(),
            );
            issued.push(walker.stats.refs_issued.get());
        }
        assert_eq!(&results[0], &results[1], "walkers disagree on translations");
        assert!(issued[1] <= issued[0], "coalescing increased references");
        // And both agree with the functional translation.
        for (&vpn, &ppn) in &results[0] {
            let expect = space.translate(Vpn::new(vpn).base()).unwrap().0.ppn().raw();
            assert_eq!(ppn, expect);
        }
    });
}

/// Drives `mmu` until `vpn` translates, returning the physical frame it
/// delivered (from a TLB hit or a walk-completion wake).
fn resolve(
    mmu: &mut Mmu,
    mem: &mut MemorySystem,
    space: &AddressSpace,
    vpn: Vpn,
    now: &mut u64,
    buf: &mut TranslateBuf,
) -> u64 {
    loop {
        mmu.advance(*now, mem, space);
        mmu.events().for_each(drop);
        match mmu.translate(*now, 0, &[PageReq::new(vpn, 0)], space, buf) {
            TranslateOutcome::AllHit { .. } => return buf.hits[0].ppn.raw(),
            TranslateOutcome::Reject { retry_at } => *now = retry_at.max(*now + 1),
            TranslateOutcome::Miss { .. } => loop {
                *now += 1;
                assert!(*now < 10_000_000, "walk for {vpn} never completed");
                mmu.advance(*now, mem, space);
                let mut delivered = None;
                for ev in mmu.events() {
                    if let MmuEvent::Wake { vpn: v, ppn, .. } = ev {
                        if v == vpn {
                            delivered = Some(ppn.raw());
                        }
                    }
                }
                if let Some(ppn) = delivered {
                    return ppn;
                }
            },
        }
    }
}

/// After any unmap → epoch bump → remap sequence, a shootdown-serviced
/// MMU never yields a stale translation: every translation it delivers
/// — whether a TLB hit or a completed walk — matches the page table as
/// it stands at delivery time, for arbitrary touch patterns and remap
/// rounds.
#[test]
fn shootdown_replay_never_yields_stale_translations() {
    for_each_case("shootdown_replay_never_yields_stale_translations", |rng| {
        let pages = rng.gen_range(4..48);
        let mut space = AddressSpace::new(SpaceConfig::default());
        let r = space
            .map_region("r", pages * 4096, PageSize::Base4K)
            .unwrap();
        let base = r.base.vpn().raw();
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut mmu = Mmu::new(MmuModel::augmented());
        let mut buf = TranslateBuf::new();
        let mut now = 0u64;
        for round in 0..3 {
            for p in vec_u64(rng, 1..20, 0..pages) {
                let vpn = Vpn::new(base + p);
                let got = resolve(&mut mmu, &mut mem, &space, vpn, &mut now, &mut buf);
                let expect = space.translate(vpn.base()).unwrap().0.ppn().raw();
                assert_eq!(
                    got, expect,
                    "stale frame for page {p} after {round} remap(s)"
                );
            }
            let epoch = space.shootdown_epoch();
            assert!(space.remap_region("r").unwrap(), "remap moved nothing");
            assert!(
                space.shootdown_epoch() > epoch,
                "remap must bump the shootdown epoch"
            );
            mmu.shootdown(now);
            now += 1;
        }
    });
}

/// End-to-end storm replay: mid-run unmap/remap storms leave both
/// execution engines in full agreement — same cycles, same fault and
/// shootdown counts — and the run still completes.
#[test]
fn storm_replay_agrees_across_engines() {
    use gmmu::experiments::{designs, ExperimentOpts};
    use gmmu::prelude::*;
    for seed in [1u64, 7, 23] {
        let run_with = |legacy: bool| {
            let mut w = build(Bench::Kmeans, Scale::Tiny, 7);
            let mut cfg = ExperimentOpts::quick().gpu(designs::augmented());
            cfg.fault = FaultConfig::demand();
            cfg.inject = Some(FaultInjectConfig::storm(seed, 8_000, 3));
            cfg.tick_every_cycle = legacy;
            Gpu::new(cfg).run_faulted(w.kernel.as_ref(), &mut w.space, &mut Observer::off())
        };
        let skip = run_with(false);
        let tick = run_with(true);
        assert!(skip.completed, "seed {seed}: storm run hit the cycle cap");
        assert_eq!(skip.cycles, tick.cycles, "seed {seed}: engines disagree");
        assert_eq!(skip.instructions, tick.instructions);
        assert_eq!(skip.shootdowns, tick.shootdowns);
        assert_eq!(skip.squashed_walks, tick.squashed_walks);
        assert_eq!(skip.faults, tick.faults);
    }
}

/// A cache never "remembers" an invalidated line, and probing after
/// an access always hits.
#[test]
fn cache_probe_consistency() {
    for_each_case("cache_probe_consistency", |rng| {
        let ops: Vec<(u64, bool)> = (0..rng.gen_range(1..200))
            .map(|_| (rng.gen_range(0..256), rng.gen_bool(0.5)))
            .collect();
        let mut cache = Cache::new(CacheConfig { sets: 8, ways: 2 });
        let mut stamp = 0;
        for (line, invalidate) in ops {
            if invalidate {
                cache.invalidate(line);
                assert!(!cache.probe(line));
            } else {
                stamp += 1;
                cache.access(line, 0, stamp);
                assert!(cache.probe(line), "just-accessed line missing");
            }
            assert!(cache.occupancy() <= 16);
        }
    });
}

/// Zipf sampling is always in range and deterministic per index.
#[test]
fn zipf_bounds() {
    for_each_case("zipf_bounds", |rng| {
        let n = rng.gen_range(1..5000) as usize;
        let idx = rng.gen_range(0..10_000);
        let z = gmmu_sim::rng::Zipf::new(n, 0.99);
        let a = z.sample_at(42, idx);
        assert!(a < n);
        assert_eq!(a, z.sample_at(42, idx));
    });
}

/// The non-allocating `translate` fast path agrees with the full
/// `walk` on every probe — mapped or not, 4 KiB or 2 MiB, before and
/// after unmaps and remaps. `translate` caches the last PT node it
/// descended into, so the probe sequence deliberately mixes repeats
/// (cache hits), neighbours in the same 2 MiB prefix (tag hits on a
/// different slot), and far jumps (tag misses).
#[test]
fn translate_agrees_with_walk() {
    for_each_case("translate_agrees_with_walk", |rng| {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let small = space
            .map_region("small", rng.gen_range(1..64) * 4096, PageSize::Base4K)
            .unwrap();
        let large = space
            .map_region("large", 2 << 20, PageSize::Large2M)
            .unwrap();
        let check = |space: &AddressSpace, vpn: Vpn| {
            let walk = space.walk(vpn);
            let translated = space
                .translate(VAddr::new(vpn.raw() << 12))
                .ok()
                .map(|(pa, size)| (pa.ppn(), size));
            // Both paths refine a large-page hit to the exact 4 KiB
            // frame, so results compare directly at every page size.
            assert_eq!(
                translated,
                walk.result,
                "translate/walk disagree at vpn {:#x}",
                vpn.raw()
            );
        };
        let small_base = small.base.vpn().raw();
        let large_base = large.base.vpn().raw();
        let small_pages = small.num_pages();
        let probe = |rng: &mut Xoshiro256| {
            match rng.gen_range(0..4) {
                // Inside the 4 KiB region (including repeats).
                0 => small_base + rng.gen_range(0..small_pages),
                // Inside the 2 MiB region.
                1 => large_base + rng.gen_range(0..512),
                // The guard gap right after a region: never mapped.
                2 => small_base + small_pages + rng.gen_range(0..8),
                // Far away: forces a leaf-cache tag miss.
                _ => rng.gen_range(0..1 << 27),
            }
        };
        for _ in 0..rng.gen_range(20..200) {
            let vpn = probe(rng);
            check(&space, Vpn::new(vpn));
        }
        // Unmap a random subset of the 4 KiB pages and re-probe: the
        // fast path must observe the cleared entries immediately.
        let salt = rng.gen_range(0..1 << 30);
        space.unmap_pages_where(|v| (v.raw() ^ salt) % 3 == 0);
        for _ in 0..rng.gen_range(20..100) {
            let vpn = probe(rng);
            check(&space, Vpn::new(vpn));
        }
        // Remap the small region (fresh frames, same VAs) and re-probe.
        space.remap_region("small").unwrap();
        for _ in 0..rng.gen_range(20..100) {
            let vpn = probe(rng);
            check(&space, Vpn::new(vpn));
        }
    });
}

/// ASID-scoped shootdowns are perfectly isolated at the TLB: flushing
/// one tenant's entries never evicts another ASID's, for arbitrary
/// interleavings of fills across tenants.
#[test]
fn scoped_shootdown_never_evicts_other_asids() {
    use gmmu_core::tlb::{Tlb, TlbConfig};
    use gmmu_vm::Ppn;
    for_each_case("scoped_shootdown_never_evicts_other_asids", |rng| {
        let mut tlb = Tlb::new(TlbConfig::augmented());
        let n_tenants = rng.gen_range(2..5) as u16;
        // Few distinct pages per tenant so fills never exceed capacity:
        // any eviction observed below must come from the flush itself.
        let mut live: HashMap<u16, HashSet<u64>> = HashMap::new();
        for stamp in 0..rng.gen_range(16..64) {
            let asid = rng.gen_range(0..n_tenants as u64) as u16;
            let vpn = rng.gen_range(0..8);
            tlb.fill_asid(asid, Vpn::new(vpn), Ppn::new(vpn + 100), 0, stamp);
            live.entry(asid).or_default().insert(vpn);
        }
        let victim = rng.gen_range(0..n_tenants as u64) as u16;
        // Evictions by capacity pressure are legal before the flush;
        // record which entries are actually resident now.
        let resident: HashMap<u16, Vec<u64>> = live
            .iter()
            .map(|(&asid, vpns)| {
                let r = vpns
                    .iter()
                    .copied()
                    .filter(|&v| tlb.probe_asid(asid, Vpn::new(v)))
                    .collect();
                (asid, r)
            })
            .collect();
        tlb.flush_asid(victim);
        assert_eq!(
            tlb.occupancy_asid(victim),
            0,
            "victim ASID {victim} survived its own shootdown"
        );
        for (&asid, vpns) in &resident {
            if asid == victim {
                continue;
            }
            for &v in vpns {
                assert!(
                    tlb.probe_asid(asid, Vpn::new(v)),
                    "ASID {victim}'s shootdown evicted ASID {asid}'s page {v}"
                );
            }
        }
    });
}
