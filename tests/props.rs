//! Property-based tests (proptest) over the core data structures and
//! cross-crate invariants.

use gmmu_core::walker::{Walker, WalkerConfig};
use gmmu_mem::{Cache, CacheConfig, MemConfig, MemorySystem};
use gmmu_simt::coalesce::{coalesce, CoalesceBuf};
use gmmu_simt::stack::SimtStack;
use gmmu_vm::{AddressSpace, PageSize, SpaceConfig, VAddr, Vpn};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Address-space translation round-trips for arbitrary offsets into
    /// arbitrary regions, and never invents mappings outside them.
    #[test]
    fn translation_roundtrip(
        sizes in prop::collection::vec(1u64..200_000, 1..5),
        probes in prop::collection::vec((0usize..5, 0u64..400_000), 1..50),
    ) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let regions: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| space.map_region(&format!("r{i}"), s, PageSize::Base4K).unwrap())
            .collect();
        for (ri, off) in probes {
            let region = &regions[ri % regions.len()];
            let inside = off % region.bytes;
            let va = region.base.offset(inside);
            let (pa, _) = space.translate(va).expect("mapped offset must translate");
            prop_assert_eq!(pa.raw() & 0xfff, va.raw() & 0xfff, "page offset preserved");
            // Distinct pages must give distinct frames.
        }
        // Unmapped gaps stay unmapped (the guard gap after the last region).
        let last = regions.last().unwrap();
        prop_assert!(space.translate(last.end().offset(1 << 21)).is_err());
    }

    /// Distinct mapped pages never alias the same physical frame.
    #[test]
    fn no_frame_aliasing(pages in 1u64..600) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let r = space.map_region("r", pages * 4096, PageSize::Base4K).unwrap();
        let mut seen = HashSet::new();
        for p in 0..r.num_pages() {
            let (pa, _) = space.translate(r.at(p * 4096)).unwrap();
            prop_assert!(seen.insert(pa.ppn().raw()), "frame aliased");
        }
    }

    /// The coalescer covers every active access with exactly the right
    /// page, never duplicates a line, and bounds divergence by the lane
    /// count.
    #[test]
    fn coalescer_covers_all_lanes(addrs in prop::collection::vec(0u64..1u64 << 30, 1..32)) {
        let mut buf = CoalesceBuf::new();
        coalesce(addrs.iter().map(|&a| (VAddr::new(a), 0u16)), &mut buf);
        prop_assert!(buf.pages.len() <= addrs.len());
        prop_assert!(buf.lines.len() <= addrs.len());
        // No duplicate lines or pages.
        let lines: HashSet<u64> = buf.lines.iter().map(|l| l.vline).collect();
        prop_assert_eq!(lines.len(), buf.lines.len());
        let pages: HashSet<u64> = buf.pages.iter().map(|p| p.vpn.raw()).collect();
        prop_assert_eq!(pages.len(), buf.pages.len());
        // Every address's line and page are present and agree.
        for &a in &addrs {
            let va = VAddr::new(a);
            let line = buf
                .lines
                .iter()
                .find(|l| l.vline == va.line(7))
                .expect("line covered");
            prop_assert_eq!(
                buf.pages[line.page_idx as usize].vpn,
                va.vpn(),
                "line mapped to wrong page"
            );
        }
    }

    /// SIMT stack: for a divergent loop, every lane executes the body
    /// exactly its own trip count and the tail executes once with the
    /// full mask — regardless of the trip distribution.
    #[test]
    fn simt_stack_loops_execute_exact_trip_counts(
        trips in prop::collection::vec(1u32..9, 1..32),
    ) {
        let n = trips.len();
        let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        let mut stack = SimtStack::new(full, 3);
        let mut body = vec![0u32; n];
        let mut tail_mask = 0u32;
        let mut steps = 0;
        while !stack.is_done() {
            steps += 1;
            prop_assert!(steps < 10_000, "stack failed to converge");
            let (pc, mask) = stack.current().unwrap();
            match pc {
                0 => {
                    for (lane, b) in body.iter_mut().enumerate() {
                        if mask & (1 << lane) != 0 {
                            *b += 1;
                        }
                    }
                    stack.advance(1);
                }
                1 => {
                    let mut taken = 0;
                    for lane in 0..n {
                        if mask & (1 << lane) != 0 && body[lane] < trips[lane] {
                            taken |= 1 << lane;
                        }
                    }
                    stack.branch(taken, 0, 2, 2);
                }
                2 => {
                    tail_mask |= mask;
                    stack.advance(3);
                }
                other => prop_assert!(false, "unexpected pc {}", other),
            }
            prop_assert!(stack.depth() <= 2, "loop grew the stack");
        }
        prop_assert_eq!(body, trips);
        prop_assert_eq!(tail_mask, full);
    }

    /// SIMT stack: an if/else partitions the lanes exactly.
    #[test]
    fn simt_stack_if_else_partitions(mask_bits in 0u32..u32::MAX, lanes in 2u32..33) {
        let full = if lanes == 32 { u32::MAX } else { (1u32 << lanes) - 1 };
        let taken = mask_bits & full;
        // 0: branch(t→2, r=3); 1: else; 2: then; 3: join
        let mut stack = SimtStack::new(full, 4);
        stack.branch(taken, 2, 1, 3);
        let mut then_mask = 0;
        let mut else_mask = 0;
        let mut join_mask = 0;
        while !stack.is_done() {
            let (pc, m) = stack.current().unwrap();
            match pc {
                1 => { else_mask |= m; stack.advance(3); }
                2 => { then_mask |= m; stack.advance(3); }
                3 => { join_mask |= m; stack.advance(4); }
                _ => unreachable!(),
            }
        }
        prop_assert_eq!(then_mask, taken);
        prop_assert_eq!(else_mask, full & !taken);
        prop_assert_eq!(join_mask, full);
        prop_assert_eq!(then_mask & else_mask, 0);
    }

    /// Serial and coalesced walkers are functionally equivalent: same
    /// translations, and the coalesced walker never issues more PTE
    /// loads than the serial one.
    #[test]
    fn walker_equivalence(page_offsets in prop::collection::vec(0u64..2048, 1..16)) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let region = space.map_region("w", 2048 * 4096, PageSize::Base4K).unwrap();
        let base = region.base.vpn().raw();
        let vpns: Vec<Vpn> = page_offsets.iter().map(|&o| Vpn::new(base + o)).collect();

        let mut results: Vec<HashMap<u64, u64>> = Vec::new();
        let mut issued = Vec::new();
        for cfg in [WalkerConfig::serial(), WalkerConfig::coalesced()] {
            let mut mem = MemorySystem::new(MemConfig::default());
            let mut walker = Walker::new(cfg);
            for &v in &vpns {
                walker.enqueue(v, 0, 0);
            }
            let mut done = Vec::new();
            let mut now = 0;
            while done.len() < vpns.len() {
                walker.advance(now, &mut mem, &space, &mut done);
                now += 100;
                prop_assert!(now < 10_000_000, "walker stalled");
            }
            results.push(
                done.iter()
                    .map(|d| (d.vpn.raw(), d.translation.unwrap().0.raw()))
                    .collect(),
            );
            issued.push(walker.stats.refs_issued.get());
        }
        prop_assert_eq!(&results[0], &results[1], "walkers disagree on translations");
        prop_assert!(issued[1] <= issued[0], "coalescing increased references");
        // And both agree with the functional translation.
        for (&vpn, &ppn) in &results[0] {
            let expect = space.translate(Vpn::new(vpn).base()).unwrap().0.ppn().raw();
            prop_assert_eq!(ppn, expect);
        }
    }

    /// A cache never "remembers" an invalidated line, and probing after
    /// an access always hits.
    #[test]
    fn cache_probe_consistency(ops in prop::collection::vec((0u64..256, any::<bool>()), 1..200)) {
        let mut cache = Cache::new(CacheConfig { sets: 8, ways: 2 });
        let mut stamp = 0;
        for (line, invalidate) in ops {
            if invalidate {
                cache.invalidate(line);
                prop_assert!(!cache.probe(line));
            } else {
                stamp += 1;
                cache.access(line, 0, stamp);
                prop_assert!(cache.probe(line), "just-accessed line missing");
            }
            prop_assert!(cache.occupancy() <= 16);
        }
    }

    /// Zipf sampling is always in range and deterministic per index.
    #[test]
    fn zipf_bounds(n in 1usize..5000, idx in 0u64..10_000) {
        let z = gmmu_sim::rng::Zipf::new(n, 0.99);
        let a = z.sample_at(42, idx);
        prop_assert!(a < n);
        prop_assert_eq!(a, z.sample_at(42, idx));
    }
}
