//! The fault-and-recovery pipeline end-to-end: demand paging with the
//! modeled CPU fault handler, TLB-shootdown storms with squash-and-replay,
//! the forward-progress watchdog, and the bit-identity of it all when
//! nothing actually faults.

use gmmu::experiments::{designs, ExperimentOpts};
use gmmu::prelude::*;

/// The harness configuration: quick-scope machine, augmented MMU,
/// demand paging on with the watchdog armed.
fn faulting_cfg(inject: Option<FaultInjectConfig>) -> GpuConfig {
    let mut cfg = ExperimentOpts::quick().gpu(designs::augmented());
    cfg.fault = FaultConfig::demand();
    cfg.inject = inject;
    cfg
}

fn run_faulted(mut w: Workload, cfg: GpuConfig) -> RunStats {
    Gpu::new(cfg).run_faulted(w.kernel.as_ref(), &mut w.space, &mut Observer::off())
}

/// Every workload must finish a run that starts with *zero* pre-mapped
/// data pages: each first touch faults, parks its warps, and resumes
/// once the modeled CPU handler maps the page. The fault model changes
/// timing only — committed work is identical to the pre-mapped run.
#[test]
fn all_benches_complete_fully_demand_paged() {
    let inject = FaultInjectConfig::demand_paged(0xfa57);
    for bench in Bench::all() {
        let (w, unmapped) = build_demand_paged(bench, Scale::Tiny, 7, &inject);
        assert!(unmapped > 0, "{bench}: nothing was unmapped");
        let faulted = run_faulted(w, faulting_cfg(Some(inject)));
        assert!(faulted.completed, "{bench} hit the cycle cap");
        assert!(!faulted.watchdog_fired, "{bench} tripped the watchdog");
        assert!(faulted.faults > 0, "{bench} never faulted");

        let clean = {
            let w = build(bench, Scale::Tiny, 7);
            let cfg = ExperimentOpts::quick().gpu(designs::augmented());
            Gpu::new(cfg).run(w.kernel.as_ref(), &w.space)
        };
        assert_eq!(
            clean.instructions, faulted.instructions,
            "{bench}: demand paging changed the committed work"
        );
        assert_eq!(
            clean.mem_instructions, faulted.mem_instructions,
            "{bench}: demand paging changed the memory work"
        );
        assert!(
            faulted.cycles > clean.cycles,
            "{bench}: servicing {} faults cannot be free",
            faulted.faults
        );
    }
}

/// Demand-paged runs are deterministic and engine-independent: the
/// tick-every-cycle loop, the idle-cycle-skipping engine, the parallel
/// intra-run engine, and the event-calendar engine service the same
/// fault schedule on the same cycles.
#[test]
fn demand_paged_runs_agree_across_engines() {
    let inject = FaultInjectConfig::demand_paged(0xfa57);
    for bench in [Bench::Bfs, Bench::Kmeans] {
        let run_with = |engine: EngineKind, legacy: bool, threads: usize| {
            let (w, _) = build_demand_paged(bench, Scale::Tiny, 7, &inject);
            let mut cfg = faulting_cfg(Some(inject));
            cfg.tick_every_cycle = legacy;
            cfg.engine = engine;
            cfg.run_threads = threads;
            run_faulted(w, cfg)
        };
        let skip = run_with(EngineKind::Serial, false, 1);
        let tick = run_with(EngineKind::Serial, true, 1);
        let par = run_with(EngineKind::Parallel, false, 2);
        let event = run_with(EngineKind::Event, false, 1);
        for (other, engine) in [
            (&tick, "tick-every-cycle"),
            (&par, "parallel"),
            (&event, "event"),
        ] {
            assert_eq!(
                skip.cycles, other.cycles,
                "{bench}: {engine} engine disagrees"
            );
            assert_eq!(skip.instructions, other.instructions);
            assert_eq!(skip.idle_cycles, other.idle_cycles);
            assert_eq!(skip.stall_breakdown, other.stall_breakdown);
            assert_eq!(skip.faults, other.faults);
            assert_eq!(skip.shootdowns, other.shootdowns);
            assert_eq!(skip.squashed_walks, other.squashed_walks);
            assert_eq!(skip.watchdog_fired, other.watchdog_fired);
        }
        assert!(
            skip.stall_breakdown.get(StallCause::FaultService) > 0,
            "{bench}: parked warps must be attributed to fault service"
        );
    }
}

/// Injected shootdown storms remap live regions mid-run; every core
/// observes the epoch bump, flushes its TLB, squashes in-flight walks,
/// and the squashed warps replay. The run still commits exactly the
/// pre-storm work.
#[test]
fn shootdown_storms_flush_and_replay() {
    let inject = FaultInjectConfig::storm(0xfa57, 8_000, 3);
    let w = build(Bench::Kmeans, Scale::Tiny, 7);
    let cfg = faulting_cfg(Some(inject));
    let n_cores = cfg.n_cores as u64;
    let stats = run_faulted(w, cfg.clone());

    // The event engine schedules the storm itself as a calendar event;
    // the squash/flush/replay cascade must land on the same cycles.
    let event = {
        let w = build(Bench::Kmeans, Scale::Tiny, 7);
        let mut cfg = cfg;
        cfg.engine = EngineKind::Event;
        run_faulted(w, cfg)
    };
    assert_eq!(
        stats.cycles, event.cycles,
        "event engine disagrees on storms"
    );
    assert_eq!(stats.shootdowns, event.shootdowns);
    assert_eq!(stats.squashed_walks, event.squashed_walks);
    assert_eq!(stats.stall_breakdown, event.stall_breakdown);
    assert!(stats.completed, "storm run hit the cycle cap");
    assert!(!stats.watchdog_fired);
    assert!(stats.shootdowns > 0, "no core observed a shootdown");
    assert_eq!(
        stats.shootdowns % n_cores,
        0,
        "every core must observe every epoch bump"
    );

    let clean = {
        let w = build(Bench::Kmeans, Scale::Tiny, 7);
        let cfg = ExperimentOpts::quick().gpu(designs::augmented());
        Gpu::new(cfg).run(w.kernel.as_ref(), &w.space)
    };
    assert_eq!(
        clean.instructions, stats.instructions,
        "storms changed the committed work"
    );
    assert_eq!(clean.mem_instructions, stats.mem_instructions);
}

/// The mixed smoke configuration — demand faults, delayed walks,
/// transient rejections, and storms at once — completes and exercises
/// the demand-fault path.
#[test]
fn mixed_fault_smoke_completes() {
    let inject = FaultInjectConfig::smoke(0xfa57);
    let (w, unmapped) = build_demand_paged(Bench::Pathfinder, Scale::Tiny, 7, &inject);
    assert!(unmapped > 0);
    let stats = run_faulted(w, faulting_cfg(Some(inject)));
    assert!(stats.completed);
    assert!(!stats.watchdog_fired);
    assert!(stats.faults > 0);

    // Same mixed-fault soup through the event engine.
    let event = {
        let (w, _) = build_demand_paged(Bench::Pathfinder, Scale::Tiny, 7, &inject);
        let mut cfg = faulting_cfg(Some(inject));
        cfg.engine = EngineKind::Event;
        run_faulted(w, cfg)
    };
    assert_eq!(
        stats.cycles, event.cycles,
        "event engine disagrees on smoke"
    );
    assert_eq!(stats.faults, event.faults);
    assert_eq!(stats.instructions, event.instructions);
}

/// When a fault can never resolve — here, a read-only space the handler
/// cannot map into — the run must not hang: warps stay parked, the
/// watchdog detects the lack of forward progress, and the run fails
/// with `watchdog_fired` at the same cycle on every engine.
#[test]
fn watchdog_fires_when_faults_cannot_resolve() {
    let inject = FaultInjectConfig::demand_paged(0xfa57);
    let run_with = |engine: EngineKind, legacy: bool, threads: usize| {
        let (w, unmapped) = build_demand_paged(Bench::Bfs, Scale::Tiny, 7, &inject);
        assert!(unmapped > 0);
        let mut cfg = faulting_cfg(Some(inject));
        cfg.fault.watchdog = 50_000;
        cfg.tick_every_cycle = legacy;
        cfg.engine = engine;
        cfg.run_threads = threads;
        // Shared space: demand paging is on, but the handler has nothing
        // it may map into.
        Gpu::new(cfg).run(w.kernel.as_ref(), &w.space)
    };
    let skip = run_with(EngineKind::Serial, false, 1);
    assert!(skip.watchdog_fired, "watchdog never fired");
    assert!(!skip.completed, "a watchdog kill is not a completion");
    assert!(
        skip.stall_breakdown.get(StallCause::FaultService) > 0,
        "the stalled tail must be attributed to fault service"
    );
    let tick = run_with(EngineKind::Serial, true, 1);
    assert_eq!(
        skip.cycles, tick.cycles,
        "engines disagree on the kill cycle"
    );
    assert!(tick.watchdog_fired);
    let par = run_with(EngineKind::Parallel, false, 4);
    assert_eq!(
        skip.cycles, par.cycles,
        "parallel engine disagrees on the kill cycle"
    );
    assert!(par.watchdog_fired);
    let event = run_with(EngineKind::Event, false, 1);
    assert_eq!(
        skip.cycles, event.cycles,
        "event engine disagrees on the kill cycle"
    );
    assert!(event.watchdog_fired);
    assert_eq!(skip.stall_breakdown, event.stall_breakdown);
}

/// Arming the fault model without any injection must be invisible: a
/// `run_faulted` on a fully-mapped space is bit-identical to the plain
/// historical `run`.
#[test]
fn armed_but_fault_free_is_bit_identical() {
    let plain = {
        let w = build(Bench::Streamcluster, Scale::Tiny, 7);
        let cfg = ExperimentOpts::quick().gpu(designs::augmented());
        Gpu::new(cfg).run(w.kernel.as_ref(), &w.space)
    };
    let armed = {
        let w = build(Bench::Streamcluster, Scale::Tiny, 7);
        run_faulted(w, faulting_cfg(Some(FaultInjectConfig::off())))
    };
    assert_eq!(plain.cycles, armed.cycles, "arming the model cost cycles");
    assert_eq!(plain.instructions, armed.instructions);
    assert_eq!(plain.idle_cycles, armed.idle_cycles);
    assert_eq!(plain.stall_breakdown, armed.stall_breakdown);
    assert_eq!(plain.tlb_accesses, armed.tlb_accesses);
    assert_eq!(plain.tlb_hits, armed.tlb_hits);
    assert_eq!(plain.l1_accesses, armed.l1_accesses);
    assert_eq!(plain.dram_requests, armed.dram_requests);
    assert_eq!(plain.replays, armed.replays);
    assert_eq!(armed.faults, 0);
    assert_eq!(armed.shootdowns, 0);
    assert_eq!(armed.squashed_walks, 0);
    assert!(!armed.watchdog_fired);
}

/// Cross-tenant shootdown storms: storms raised against one tenant's
/// address space squash in-flight walks and flush only that ASID's
/// entries, every tenant still commits exactly its storm-free work, and
/// the serial and event engines agree on the whole cascade.
#[test]
fn cross_tenant_storms_squash_and_replay() {
    use gmmu_simt::{TenantJob, TenantPolicy};
    use gmmu_workloads::tenants::scenario;

    let inject = FaultInjectConfig::storm(0xfa57, 8_000, 3);
    let policy = TenantPolicy {
        watchdog: 2_000_000,
        ..TenantPolicy::default()
    };
    let run_with = |inject: Option<FaultInjectConfig>, engine: EngineKind| {
        let mut cfg = faulting_cfg(inject);
        cfg.engine = engine;
        let mut built = scenario(2, Scale::Tiny, 7, true).build();
        let mut jobs: Vec<TenantJob<'_>> = built
            .iter_mut()
            .map(|w| TenantJob {
                kernel: w.kernel.as_ref(),
                space: &mut w.space,
            })
            .collect();
        Gpu::new(cfg).run_tenants(&mut jobs, policy, &mut Observer::off())
    };

    let stats = run_with(Some(inject), EngineKind::Serial);
    assert!(stats.completed, "storm scenario hit the cycle cap");
    assert!(!stats.watchdog_fired);
    assert!(stats.shootdowns > 0, "no core observed a shootdown");
    assert!(stats.squashed_walks > 0, "no walk was squashed");
    assert_eq!(stats.tenants.len(), 2);

    let event = run_with(Some(inject), EngineKind::Event);
    assert_eq!(
        stats.cycles, event.cycles,
        "event engine disagrees on cross-tenant storms"
    );
    assert_eq!(stats.shootdowns, event.shootdowns);
    assert_eq!(stats.squashed_walks, event.squashed_walks);
    assert_eq!(stats.tenants, event.tenants);

    // Storms perturb timing only: each tenant's committed work matches
    // the storm-free run of the same scenario.
    let clean = run_with(None, EngineKind::Serial);
    assert!(clean.completed);
    for (s, c) in stats.tenants.iter().zip(clean.tenants.iter()) {
        assert_eq!(
            s.instructions, c.instructions,
            "tenant {}: storms changed the committed work",
            s.asid
        );
        assert_eq!(s.blocks_done, c.blocks_done);
    }
}
