//! Allocation discipline of the steady-state simulation loop.
//!
//! This binary installs a counting global allocator and drives the
//! simulator's hot loop directly, asserting that **after warm-up** the
//! per-cycle path performs zero heap allocations. Warm-up covers the
//! documented escape list — structures that legitimately allocate while
//! growing to their high-water mark and are then reused forever:
//!
//! * scratch pools reaching steady capacity (walker batch/level-ref
//!   buffers, coalescer and translate buffers, TBC unit lists,
//!   `Mmu` waiter lists, the per-cycle tenant `spaces` slice);
//! * hash maps (MSHR files, fill waiters) growing to their peak
//!   occupancy — `HashMap` keeps its capacity after `remove`;
//! * the event calendar's wheel buckets and overflow heap;
//! * page-table *growth* (mapping fresh pages allocates arena slabs) —
//!   demand paging is therefore outside the steady-state window, which
//!   is the paper's TLB-hit/walk regime, not the cold-fault regime;
//! * run setup and teardown (kernel/space construction, stats).
//!
//! Anything not on that list that allocates per cycle is a regression
//! the assertions below catch. The same counter backs the
//! `allocs-per-kilocycle` section of the `hotpath` benchmark binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation; frees are not counted
/// (the steady-state claim is about acquiring memory, and a free on
/// the hot path implies a later matching alloc anyway).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// When armed (`GMMU_ALLOC_TRAP=1` and inside a measurement window),
/// the next allocation prints its backtrace — the fastest way to find
/// whatever broke the discipline. Disarms itself before capturing so
/// the capture's own allocations recurse harmlessly.
static TRAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn note_alloc() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    if TRAP.swap(false, Ordering::Relaxed) {
        let bt = std::backtrace::Backtrace::force_capture();
        eprintln!("[alloc-trap] allocation from:\n{bt}");
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

use gmmu_core::mmu::MmuModel;
use gmmu_mem::{MemConfig, MemorySystem};
use gmmu_sim::trace::Tracer;
use gmmu_simt::core::ShaderCore;
use gmmu_simt::program::{MemKind, Op, Program, ThreadId};
use gmmu_simt::{GpuConfig, Kernel};
use gmmu_vm::{AddressSpace, PageSize, Region, SpaceConfig, VAddr};

/// Looping stream kernel over a pre-mapped region: every page is
/// resident, so the steady state exercises TLB hits, misses, walks,
/// and cache traffic — but never demand paging.
struct StreamKernel {
    program: Program,
    region: Region,
    threads: u32,
    trips: u32,
}

impl Kernel for StreamKernel {
    fn name(&self) -> &str {
        "alloc-discipline-stream"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn num_threads(&self) -> u32 {
        self.threads
    }
    fn block_threads(&self) -> u32 {
        128
    }
    fn mem_addr(&self, tid: ThreadId, _site: u16, iter: u32) -> VAddr {
        let off = (tid as u64 * 4096 + iter as u64 * 256) % (1 << 20);
        self.region.at(off & !7)
    }
    fn branch_taken(&self, _tid: ThreadId, _site: u16, iter: u32) -> bool {
        iter + 1 < self.trips
    }
}

fn stream_setup(trips: u32) -> (AddressSpace, StreamKernel, GpuConfig) {
    let mut space = AddressSpace::new(SpaceConfig::default());
    let region = space
        .map_region("stream", 1 << 20, PageSize::Base4K)
        .expect("map");
    let kernel = StreamKernel {
        program: Program::new(vec![
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            },
            Op::Branch {
                site: 1,
                taken_pc: 0,
                reconv_pc: 2,
            },
        ]),
        region,
        threads: 128,
        trips,
    };
    let cfg = GpuConfig {
        n_cores: 1,
        warps_per_core: 8,
        warps_per_block: 4,
        mmu: MmuModel::augmented(),
        ..GpuConfig::default()
    };
    (space, kernel, cfg)
}

/// The serial engine's steady-state loop body — `ShaderCore::tick`
/// against the memory system — performs zero heap allocations once
/// every scratch buffer has reached its high-water mark.
fn serial_tick_loop_is_allocation_free() {
    let (space, kernel, cfg) = stream_setup(u32::MAX);
    let mut core = ShaderCore::new(0, &cfg);
    core.push_block(0, 128);
    let mut mem = MemorySystem::new(MemConfig::default());
    let mut iters = vec![0u32; 128 * kernel.program.num_sites()];
    let mut tracer = Tracer::Off;

    // Warm-up: long enough for every pool, map, and cache to reach its
    // high-water mark (TLB misses, walk batches, MSHR fills, waiter
    // lists all occur many times over).
    let mut now = 0u64;
    while now < 20_000 {
        core.tick(now, &mut mem, &space, &kernel, &mut iters, &mut tracer);
        now += 1;
    }
    assert!(core.has_work(), "kernel drained during warm-up");

    // Steady-state window: not one allocation allowed.
    if std::env::var_os("GMMU_ALLOC_TRAP").is_some() {
        TRAP.store(true, Ordering::Relaxed);
    }
    let before = allocs();
    let window = 20_000;
    for _ in 0..window {
        core.tick(now, &mut mem, &space, &kernel, &mut iters, &mut tracer);
        now += 1;
    }
    let after = allocs();
    assert!(core.has_work(), "kernel drained inside the window");
    assert_eq!(
        after - before,
        0,
        "serial steady state allocated {} times over {} cycles",
        after - before,
        window
    );
}

/// The event-calendar engine's steady-state loop body — `take_due`,
/// per-core ticks, `next_event_at`, and rescheduling — is also
/// allocation-free after warm-up.
fn event_loop_is_allocation_free() {
    use gmmu_sim::calendar::Calendar;
    let (space, kernel, cfg) = stream_setup(u32::MAX);
    let mut core = ShaderCore::new(0, &cfg);
    core.push_block(0, 128);
    let mut mem = MemorySystem::new(MemConfig::default());
    let mut iters = vec![0u32; 128 * kernel.program.num_sites()];
    let mut tracer = Tracer::Off;
    let mut cal = Calendar::new(1);
    let mut due: Vec<u32> = Vec::with_capacity(1);
    cal.schedule(0, 0);

    let mut steps = 0u64;
    let step = |cal: &mut Calendar,
                due: &mut Vec<u32>,
                core: &mut ShaderCore,
                mem: &mut MemorySystem,
                iters: &mut [u32],
                tracer: &mut Tracer| {
        let now = cal.peek_cycle().expect("calendar drained");
        cal.take_due(now, due);
        if due.is_empty() {
            return now;
        }
        let issued = core.tick(now, mem, &space, &kernel, iters, tracer);
        if issued {
            cal.schedule(0, now + 1);
        } else {
            match core.next_event_at(now) {
                Some(c) => cal.schedule(0, c),
                None => cal.schedule(0, now + 1),
            }
        }
        now
    };
    while steps < 15_000 {
        step(
            &mut cal,
            &mut due,
            &mut core,
            &mut mem,
            &mut iters,
            &mut tracer,
        );
        steps += 1;
    }
    assert!(core.has_work(), "kernel drained during warm-up");

    let before = allocs();
    for _ in 0..15_000 {
        step(
            &mut cal,
            &mut due,
            &mut core,
            &mut mem,
            &mut iters,
            &mut tracer,
        );
    }
    let after = allocs();
    assert!(core.has_work(), "kernel drained inside the window");
    assert_eq!(
        after - before,
        0,
        "event steady state allocated {} times over 15000 steps",
        after - before
    );
}

/// Whole-run allocation budget per engine: one tiny workload end to
/// end, counting *everything* (construction, warm-up, teardown). The
/// budget is deliberately loose — it documents the order of magnitude
/// and catches a reintroduced per-cycle allocation, which would blow
/// through it by 100x. The parallel engine's budget includes its
/// per-run worker threads and staging buffers.
fn whole_run_allocation_budget_per_engine() {
    use gmmu::prelude::*;
    let w = build(Bench::Bfs, Scale::Tiny, 7);
    for (engine, threads, budget) in [
        (EngineKind::Serial, 1usize, 60u64),
        (EngineKind::Event, 1, 60),
        (EngineKind::Parallel, 2, 60),
    ] {
        let mut cfg = gmmu::ExperimentOpts::quick().gpu(MmuModel::augmented());
        cfg.engine = engine;
        cfg.run_threads = threads;
        // First run warms nothing across runs (each run builds a fresh
        // GPU), so measure a single complete run.
        let before = allocs();
        let stats = gmmu_simt::gpu::run_kernel(cfg, w.kernel.as_ref(), &w.space);
        let after = allocs();
        let per_kcycle = (after - before) as f64 / (stats.cycles as f64 / 1000.0);
        assert!(
            per_kcycle <= budget as f64,
            "{engine:?}: {:.1} allocs per simulated kilocycle (budget {budget}) \
             over {} cycles",
            per_kcycle,
            stats.cycles,
        );
    }
}

/// Runs without the libtest harness (see the `[[test]]` entry in
/// `Cargo.toml`): the harness's worker threads allocate while sending
/// completion events, which would race the process-global counter's
/// measurement windows. Sequential execution keeps the process quiet.
fn main() {
    for (name, test) in [
        (
            "serial_tick_loop_is_allocation_free",
            serial_tick_loop_is_allocation_free as fn(),
        ),
        (
            "event_loop_is_allocation_free",
            event_loop_is_allocation_free,
        ),
        (
            "whole_run_allocation_budget_per_engine",
            whole_run_allocation_budget_per_engine,
        ),
    ] {
        test();
        println!("test {name} ... ok");
    }
}
