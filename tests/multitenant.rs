//! Multi-tenant robustness end-to-end: N concurrent address spaces on
//! one GPU, bit-identical across engines under adversarial fault and
//! shootdown schedules, with per-tenant accounting, fairness, and the
//! starvation watchdog (DESIGN.md §13).

use gmmu::experiments::{designs, ExperimentOpts};
use gmmu::prelude::*;
use gmmu_sim::metrics::Metrics;
use gmmu_simt::{TenantJob, TenantPolicy};
use gmmu_workloads::tenants::scenario;

fn assert_same(a: &RunStats, b: &RunStats, what: &str) {
    let diff = a.diff(b);
    assert!(diff.is_empty(), "{what}: fields differ: {diff:?}");
    assert_eq!(a.tenants, b.tenants, "{what}: per-tenant stats differ");
}

/// Quick-scope machine with the augmented MMU, demand paging armed.
fn mt_cfg(inject: Option<FaultInjectConfig>) -> GpuConfig {
    let mut cfg = ExperimentOpts::quick().gpu(designs::augmented());
    cfg.fault = FaultConfig::demand();
    cfg.inject = inject;
    cfg
}

/// Generous per-tenant watchdog: longer than any fault-service chain in
/// these runs, so it arms without ever firing.
fn generous_policy() -> TenantPolicy {
    TenantPolicy {
        watchdog: 2_000_000,
        ..TenantPolicy::default()
    }
}

/// Builds the scenario fresh and runs it under `cfg`/`policy`; the
/// spaces are rebuilt per call so demand-paging mutations never leak
/// between runs.
fn run_scenario(
    n_tenants: usize,
    seed: u64,
    cfg: &GpuConfig,
    policy: TenantPolicy,
) -> (RunStats, Option<String>) {
    let sc = scenario(n_tenants, Scale::Tiny, seed, n_tenants > 1);
    let mut built = match &cfg.inject {
        Some(inj) if inj.unmap_fraction > 0.0 => sc.build_demand_paged(inj).0,
        _ => sc.build(),
    };
    let mut jobs: Vec<TenantJob<'_>> = built
        .iter_mut()
        .map(|w| TenantJob {
            kernel: w.kernel.as_ref(),
            space: &mut w.space,
        })
        .collect();
    let mut obs = Observer::off();
    obs.metrics = Metrics::recording();
    let mut gpu = Gpu::new(cfg.clone());
    let stats = gpu.run_tenants(&mut jobs, policy, &mut obs);
    let snapshot = gpu.metrics_snapshot(&obs);
    (stats, snapshot)
}

/// The acceptance scenario: a 4-tenant Zipf mix with a thrashing
/// memcached tenant, demand paging, walk delays, rejections, and
/// cross-tenant shootdown storms — completing on all three engines
/// bit-identically (stats, per-tenant slice, and metrics snapshot) with
/// no watchdog kill. A 2-tenant mix rides the same matrix.
#[test]
fn tenant_storms_bit_identical_across_engines() {
    for n_tenants in [2usize, 4] {
        let run_with = |engine: EngineKind, legacy: bool, threads: usize| {
            let mut cfg = mt_cfg(Some(FaultInjectConfig::smoke(0xfa57)));
            cfg.engine = engine;
            cfg.tick_every_cycle = legacy;
            cfg.run_threads = threads;
            run_scenario(n_tenants, 7, &cfg, generous_policy())
        };
        let (skip, snap_skip) = run_with(EngineKind::Serial, false, 1);
        assert!(skip.completed, "{n_tenants}T hit the cycle cap");
        assert!(!skip.watchdog_fired, "{n_tenants}T tripped the watchdog");
        assert_eq!(skip.tenants.len(), n_tenants);
        assert!(skip.shootdowns > 0, "{n_tenants}T: no storms landed");
        assert!(skip.faults > 0, "{n_tenants}T: nothing demand-faulted");
        // `RunStats::faults` counts raised fault events per core;
        // `TenantStats::faults` counts pages the handler mapped (shared
        // pages dedup across cores), so mapped <= raised.
        let mapped: u64 = skip.tenants.iter().map(|t| t.faults).sum();
        assert!(mapped > 0, "{n_tenants}T: no fault was attributed");
        assert!(mapped <= skip.faults, "{n_tenants}T: attribution overflow");
        for t in &skip.tenants {
            assert!(
                t.instructions > 0 && t.blocks_done > 0,
                "tenant {} did no work",
                t.asid
            );
            assert!(t.finished_at <= skip.cycles);
        }

        for (engine, legacy, threads, name) in [
            (EngineKind::Serial, true, 1, "tick-every-cycle"),
            (EngineKind::Parallel, false, 2, "parallel"),
            (EngineKind::Parallel, false, 4, "parallel-4"),
            (EngineKind::Event, false, 1, "event"),
        ] {
            let (other, snap_other) = run_with(engine, legacy, threads);
            assert_same(&skip, &other, &format!("{n_tenants}T {name}"));
            assert_eq!(
                snap_skip, snap_other,
                "{n_tenants}T {name}: metrics snapshot diverged"
            );
        }
    }
}

/// `run_tenants` with a single job is the legacy single-tenant path:
/// bit-identical to `run_faulted` on the same workload, with no
/// per-tenant slice.
#[test]
fn single_tenant_run_tenants_matches_legacy() {
    let cfg = mt_cfg(Some(FaultInjectConfig::storm(0xfa57, 8_000, 3)));
    let legacy = {
        let mut w = build(Bench::Kmeans, Scale::Tiny, 7);
        Gpu::new(cfg.clone()).run_faulted(w.kernel.as_ref(), &mut w.space, &mut Observer::off())
    };
    let via_tenants = {
        let mut w = build(Bench::Kmeans, Scale::Tiny, 7);
        let mut jobs = [TenantJob {
            kernel: w.kernel.as_ref(),
            space: &mut w.space,
        }];
        Gpu::new(cfg).run_tenants(&mut jobs, TenantPolicy::default(), &mut Observer::off())
    };
    let diff = legacy.diff(&via_tenants);
    assert!(diff.is_empty(), "single-tenant path diverged: {diff:?}");
    assert!(
        via_tenants.tenants.is_empty(),
        "single-tenant runs must not grow a per-tenant slice"
    );
}

/// ASID-tagged translation must be no less fair than the
/// flush-on-switch baseline on the same scenario, and per-tenant
/// slowdown helpers must be well-formed.
#[test]
fn tagged_is_fairer_than_flush_on_switch() {
    let cfg = mt_cfg(None);
    let sc = scenario(2, Scale::Tiny, 7, true);
    let solos: Vec<RunStats> = sc
        .tenants
        .iter()
        .map(|spec| {
            let mut w = gmmu_workloads::build_tenant_paged(
                spec.bench,
                spec.scale,
                spec.seed,
                PageSize::Base4K,
                0,
            );
            Gpu::new(cfg.clone()).run_faulted(w.kernel.as_ref(), &mut w.space, &mut Observer::off())
        })
        .collect();
    let (tagged, _) = run_scenario(2, 7, &cfg, TenantPolicy::default());
    let (flush, _) = run_scenario(2, 7, &cfg, TenantPolicy::flush_on_switch());
    assert!(tagged.completed && flush.completed);
    let ut = tagged.unfairness(&solos);
    let uf = flush.unfairness(&solos);
    assert!(ut >= 1.0 && uf >= 1.0, "unfairness is a max/min ratio");
    assert!(
        ut <= uf,
        "ASID tagging must not be less fair than flush-on-switch \
         (tagged {ut:.3} vs flush {uf:.3})"
    );
    for s in tagged.tenant_slowdowns(&solos) {
        assert!(s.is_finite() && s > 0.0);
    }
}

/// When a tenant's faults outlast the per-tenant deadline, the
/// starvation watchdog kills the run — on the same cycle on every
/// engine — and the kill is not a completion.
#[test]
fn per_tenant_watchdog_kills_deterministically() {
    let run_with = |engine: EngineKind, threads: usize| {
        let mut cfg = mt_cfg(Some(FaultInjectConfig::demand_paged(0xfa57)));
        cfg.engine = engine;
        cfg.run_threads = threads;
        // Major faults take 30k cycles; a 5k-cycle per-tenant deadline
        // must catch a tenant parked on one.
        let policy = TenantPolicy {
            watchdog: 5_000,
            ..TenantPolicy::default()
        };
        let sc = scenario(2, Scale::Tiny, 7, true);
        let inj = gmmu_sim::fault::FaultInjector::new(FaultInjectConfig::demand_paged(0xfa57));
        let mut built: Vec<Workload> = sc
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let mut w = gmmu_workloads::build_tenant_paged(
                    spec.bench,
                    spec.scale,
                    spec.seed,
                    PageSize::Base4K,
                    t as u16,
                );
                let unmapped = w.space.unmap_pages_where(|vpn| inj.unmap_page(vpn.raw()));
                assert!(unmapped > 0, "tenant {t}: nothing was unmapped");
                w
            })
            .collect();
        let mut jobs: Vec<TenantJob<'_>> = built
            .iter_mut()
            .map(|w| TenantJob {
                kernel: w.kernel.as_ref(),
                space: &mut w.space,
            })
            .collect();
        Gpu::new(cfg).run_tenants(&mut jobs, policy, &mut Observer::off())
    };
    let serial = run_with(EngineKind::Serial, 1);
    assert!(serial.watchdog_fired, "per-tenant watchdog never fired");
    assert!(!serial.completed, "a watchdog kill is not a completion");
    let parallel = run_with(EngineKind::Parallel, 2);
    let event = run_with(EngineKind::Event, 1);
    for (other, name) in [(&parallel, "parallel"), (&event, "event")] {
        assert_eq!(
            serial.cycles, other.cycles,
            "{name} engine disagrees on the kill cycle"
        );
        assert!(other.watchdog_fired);
    }
}

/// Satellite 1: the metrics snapshot of a multi-tenant run carries the
/// per-tenant dimension — a `tenants` section with one row per ASID —
/// and per-ASID hot-page keys.
#[test]
fn metrics_snapshot_has_per_tenant_dimensions() {
    let cfg = mt_cfg(Some(FaultInjectConfig::smoke(0xfa57)));
    let (stats, snapshot) = run_scenario(2, 7, &cfg, generous_policy());
    assert!(stats.completed);
    let snap = snapshot.expect("metrics channel was on");
    assert!(
        snap.contains("\"tenants\""),
        "snapshot has no tenants section"
    );
    assert!(
        snap.contains("\"asid\": 1"),
        "snapshot never mentions ASID 1"
    );
}
