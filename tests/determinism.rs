//! Reproducibility: identical configurations must produce identical
//! results, and the knobs that should matter must matter.

use gmmu::experiments::{designs, ExperimentOpts, Runner};
use gmmu::prelude::*;
use gmmu_sim::metrics::Metrics;
use gmmu_sim::trace::Tracer;
use gmmu_simt::gpu::run_kernel;
use gmmu_simt::IntervalRecorder;

fn assert_same(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.completed, b.completed, "{what}: completed");
    assert_eq!(a.instructions, b.instructions, "{what}: instructions");
    assert_eq!(
        a.mem_instructions, b.mem_instructions,
        "{what}: mem_instructions"
    );
    assert_eq!(a.idle_cycles, b.idle_cycles, "{what}: idle_cycles");
    assert_eq!(
        a.stall_breakdown, b.stall_breakdown,
        "{what}: stall_breakdown"
    );
    assert_eq!(a.live_cycles, b.live_cycles, "{what}: live_cycles");
    assert_eq!(
        a.page_divergence, b.page_divergence,
        "{what}: page_divergence"
    );
    assert_eq!(
        a.l1_miss_latency, b.l1_miss_latency,
        "{what}: l1_miss_latency"
    );
    assert_eq!(
        a.tlb_miss_latency, b.tlb_miss_latency,
        "{what}: tlb_miss_latency"
    );
    assert_eq!(a.tlb_accesses, b.tlb_accesses, "{what}: tlb_accesses");
    assert_eq!(a.tlb_hits, b.tlb_hits, "{what}: tlb_hits");
    assert_eq!(a.l1_accesses, b.l1_accesses, "{what}: l1_accesses");
    assert_eq!(a.l1_hits, b.l1_hits, "{what}: l1_hits");
    assert_eq!(
        a.walk_refs_issued, b.walk_refs_issued,
        "{what}: walk_refs_issued"
    );
    assert_eq!(
        a.walk_refs_naive, b.walk_refs_naive,
        "{what}: walk_refs_naive"
    );
    assert_eq!(a.walks, b.walks, "{what}: walks");
    assert_eq!(
        a.walk_l2_hit_rate, b.walk_l2_hit_rate,
        "{what}: walk_l2_hit_rate"
    );
    assert_eq!(a.dram_requests, b.dram_requests, "{what}: dram_requests");
    assert_eq!(a.replays, b.replays, "{what}: replays");
    assert_eq!(a.dwarps_formed, b.dwarps_formed, "{what}: dwarps_formed");
    assert_eq!(a.blocks_done, b.blocks_done, "{what}: blocks_done");
    assert_eq!(a.faults, b.faults, "{what}: faults");
    assert_eq!(a.shootdowns, b.shootdowns, "{what}: shootdowns");
    assert_eq!(a.squashed_walks, b.squashed_walks, "{what}: squashed_walks");
    assert_eq!(a.watchdog_fired, b.watchdog_fired, "{what}: watchdog_fired");
}

#[test]
fn identical_configs_are_bit_identical() {
    for b in [Bench::Bfs, Bench::Memcached, Bench::Streamcluster] {
        let mut r1 = Runner::new(ExperimentOpts::quick());
        let mut r2 = Runner::new(ExperimentOpts::quick());
        let a = r1.run(b, |c| c.mmu = designs::augmented());
        let c = r2.run(b, |c| c.mmu = designs::augmented());
        assert_eq!(a.cycles, c.cycles, "{b} cycles differ");
        assert_eq!(a.instructions, c.instructions);
        assert_eq!(a.tlb_accesses, c.tlb_accesses);
        assert_eq!(a.tlb_hits, c.tlb_hits);
        assert_eq!(a.l1_accesses, c.l1_accesses);
        assert_eq!(a.dram_requests, c.dram_requests);
        assert_eq!(a.walks, c.walks);
    }
}

#[test]
fn seeds_change_workloads() {
    let w1 = build(Bench::Memcached, Scale::Tiny, 1);
    let w2 = build(Bench::Memcached, Scale::Tiny, 2);
    let cfg = || {
        let mut c = GpuConfig::experiment_scale(MmuModel::naive());
        c.n_cores = 2;
        c.mem.channels = 1;
        c
    };
    let a = run_kernel(cfg(), w1.kernel.as_ref(), &w1.space);
    let b = run_kernel(cfg(), w2.kernel.as_ref(), &w2.space);
    assert_ne!(a.cycles, b.cycles, "seed had no effect");
}

#[test]
fn policies_are_deterministic_too() {
    for policy in [
        PolicyKind::Ccws,
        PolicyKind::TaCcws { tlb_weight: 4 },
        PolicyKind::tcws_best(),
    ] {
        let mut r1 = Runner::new(ExperimentOpts::quick());
        let mut r2 = Runner::new(ExperimentOpts::quick());
        let mk = |c: &mut GpuConfig| {
            c.policy = policy;
            c.mmu = designs::augmented();
        };
        let a = r1.run(Bench::Streamcluster, mk);
        let b = r2.run(Bench::Streamcluster, mk);
        assert_eq!(a.cycles, b.cycles, "{policy:?} nondeterministic");
    }
}

#[test]
fn tbc_is_deterministic() {
    let mut r1 = Runner::new(ExperimentOpts::quick());
    let mut r2 = Runner::new(ExperimentOpts::quick());
    let mk = |c: &mut GpuConfig| {
        c.tbc = Some(TbcConfig::tlb_aware(3));
        c.mmu = designs::augmented();
    };
    let a = r1.run(Bench::Mummergpu, mk);
    let b = r2.run(Bench::Mummergpu, mk);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.dwarps_formed, b.dwarps_formed);
}

/// Full-stats equality for the execution-engine matrix: {serial,
/// parallel sweep} x {tick-every-cycle, idle-cycle skipping} must be
/// observably equivalent — identical cycles, idle/live accounting,
/// distributions, and every event counter — across benchmarks, MMU
/// models, a throttling scheduler, and TBC.
#[test]
fn execution_engines_are_observably_equivalent() {
    type Configure = fn(&mut GpuConfig);
    let matrix: [(Bench, &str, Configure); 6] = [
        (Bench::Memcached, "naive", |c| c.mmu = designs::naive3()),
        (Bench::Memcached, "augmented", |c| {
            c.mmu = designs::augmented()
        }),
        (Bench::Bfs, "naive", |c| c.mmu = designs::naive3()),
        (Bench::Bfs, "augmented", |c| c.mmu = designs::augmented()),
        (Bench::Streamcluster, "ta-ccws", |c| {
            c.mmu = designs::augmented();
            c.policy = PolicyKind::TaCcws { tlb_weight: 4 };
        }),
        (Bench::Mummergpu, "tbc", |c| {
            c.mmu = designs::augmented();
            c.tbc = Some(TbcConfig::tlb_aware(3));
        }),
    ];

    // Serial reference: tick-every-cycle, one point at a time.
    let mut reference = Vec::new();
    {
        let mut r = Runner::new(ExperimentOpts {
            jobs: 1,
            ..ExperimentOpts::quick()
        });
        for (bench, _, configure) in matrix {
            reference.push(r.run(bench, |c| {
                configure(c);
                c.tick_every_cycle = true;
            }));
        }
    }

    // Idle-cycle skipping, still serial.
    {
        let mut r = Runner::new(ExperimentOpts {
            jobs: 1,
            ..ExperimentOpts::quick()
        });
        for (i, (bench, name, configure)) in matrix.iter().enumerate() {
            let s = r.run(*bench, configure);
            assert_same(&reference[i], &s, &format!("{bench}/{name} serial+skip"));
        }
    }

    // The parallel intra-run engine at 1, 2, and 4 run-threads must be
    // bit-identical to the serial reference on every workload. One
    // thread degenerates to the serial loop (the flag must be a no-op);
    // two and four exercise worker claiming, the ordered memory gate,
    // and the per-core trace merge.
    for threads in [1usize, 2, 4] {
        let mut r = Runner::new(ExperimentOpts {
            jobs: 1,
            ..ExperimentOpts::quick()
        });
        for (i, (bench, name, configure)) in matrix.iter().enumerate() {
            let s = r.run(*bench, |c| {
                configure(c);
                c.engine = EngineKind::Parallel;
                c.run_threads = threads;
            });
            assert_same(
                &reference[i],
                &s,
                &format!("{bench}/{name} parallel run_threads={threads}"),
            );
        }
    }

    // The event-calendar engine jumps straight between scheduled wake
    // cycles and only ticks the cores whose events fire; it must be
    // bit-identical to the serial reference on every workload.
    {
        let mut r = Runner::new(ExperimentOpts {
            jobs: 1,
            ..ExperimentOpts::quick()
        });
        for (i, (bench, name, configure)) in matrix.iter().enumerate() {
            let s = r.run(*bench, |c| {
                configure(c);
                c.engine = EngineKind::Event;
            });
            assert_same(&reference[i], &s, &format!("{bench}/{name} event"));
        }
    }

    // Event engine under the tick-every-cycle escape hatch: the flag
    // forces the standard loop, which must still match.
    {
        let mut r = Runner::new(ExperimentOpts {
            jobs: 1,
            ..ExperimentOpts::quick()
        });
        for (i, (bench, name, configure)) in matrix.iter().enumerate() {
            let s = r.run(*bench, |c| {
                configure(c);
                c.engine = EngineKind::Event;
                c.tick_every_cycle = true;
            });
            assert_same(
                &reference[i],
                &s,
                &format!("{bench}/{name} event+tick-every-cycle"),
            );
        }
    }

    // Parallel engine under the tick-every-cycle global loop: the two
    // knobs are orthogonal and must compose.
    {
        let mut r = Runner::new(ExperimentOpts {
            jobs: 1,
            ..ExperimentOpts::quick()
        });
        for (i, (bench, name, configure)) in matrix.iter().enumerate() {
            let s = r.run(*bench, |c| {
                configure(c);
                c.engine = EngineKind::Parallel;
                c.run_threads = 2;
                c.tick_every_cycle = true;
            });
            assert_same(
                &reference[i],
                &s,
                &format!("{bench}/{name} parallel+tick-every-cycle"),
            );
        }
    }

    // Parallel sweep, both engines.
    for legacy in [false, true] {
        let mut r = Runner::new(ExperimentOpts {
            jobs: 4,
            ..ExperimentOpts::quick()
        });
        let stats = r.sweep(|r| {
            matrix
                .map(|(bench, _, configure)| {
                    r.run(bench, |c| {
                        configure(c);
                        c.tick_every_cycle = legacy;
                    })
                })
                .to_vec()
        });
        for (i, (bench, name, _)) in matrix.iter().enumerate() {
            let engine = if legacy { "tick-every-cycle" } else { "skip" };
            assert_same(
                &reference[i],
                &stats[i],
                &format!("{bench}/{name} sweep+{engine}"),
            );
        }
    }
}

/// Attaching the observation instruments must not perturb a run: full
/// `RunStats` (stall breakdown included) bit-identical with tracing and
/// interval sampling on versus off, the emitted trace and time-series
/// identical across the per-cycle and idle-skip engines, and the trace
/// non-empty with the spans the MMU work cares about.
#[test]
fn observation_is_invisible_and_engine_independent() {
    type Configure = fn(&mut GpuConfig);
    let matrix: [(Bench, &str, Configure); 3] = [
        (Bench::Memcached, "naive", |c| c.mmu = designs::naive3()),
        (Bench::Bfs, "augmented", |c| c.mmu = designs::augmented()),
        (Bench::Mummergpu, "tbc", |c| {
            c.mmu = designs::augmented();
            c.tbc = Some(TbcConfig::tlb_aware(3));
        }),
    ];
    let opts = ExperimentOpts::quick();
    let observer = || Observer {
        tracer: Tracer::recording(),
        intervals: Some(IntervalRecorder::new(1_000)),
        metrics: Metrics::Off,
    };
    for (bench, name, configure) in matrix {
        let w = build(bench, opts.scale, opts.seed);
        let mut cfg = opts.gpu(MmuModel::Ideal);
        configure(&mut cfg);

        let plain = Gpu::new(cfg.clone()).run(w.kernel.as_ref(), &w.space);
        assert_eq!(
            plain.stall_breakdown.total(),
            plain.idle_cycles,
            "{bench}/{name}: breakdown must sum to idle_cycles"
        );

        let mut obs = observer();
        let observed = Gpu::new(cfg.clone()).run_observed(w.kernel.as_ref(), &w.space, &mut obs);
        assert_same(
            &plain,
            &observed,
            &format!("{bench}/{name} observed-vs-plain"),
        );

        let buf = obs.tracer.buffer().expect("recording tracer");
        assert!(!buf.is_empty(), "{bench}/{name}: trace is empty");
        assert!(
            buf.events().iter().any(|e| e.name == "tlb_miss"),
            "{bench}/{name}: no tlb_miss spans"
        );
        assert!(
            buf.events().iter().any(|e| e.name == "page_walk"),
            "{bench}/{name}: no page_walk spans"
        );
        let rec = obs.intervals.as_ref().expect("interval recorder");
        assert!(
            !rec.samples().is_empty(),
            "{bench}/{name}: no interval samples"
        );
        let insns: u64 = rec.samples().iter().map(|s| s.instructions).sum();
        assert_eq!(
            insns, observed.instructions,
            "{bench}/{name}: intervals lose instructions"
        );

        let mut legacy_cfg = cfg.clone();
        legacy_cfg.tick_every_cycle = true;
        let mut obs_legacy = observer();
        let legacy =
            Gpu::new(legacy_cfg).run_observed(w.kernel.as_ref(), &w.space, &mut obs_legacy);
        assert_same(
            &observed,
            &legacy,
            &format!("{bench}/{name} skip-vs-legacy observed"),
        );
        assert_eq!(
            obs.tracer.buffer(),
            obs_legacy.tracer.buffer(),
            "{bench}/{name}: trace differs across engines"
        );
        assert_eq!(
            obs.intervals.as_ref().unwrap().samples(),
            obs_legacy.intervals.as_ref().unwrap().samples(),
            "{bench}/{name}: interval series differs across engines"
        );

        // The parallel engine stages trace events per core and merges
        // them in core-index order after each cycle: the emitted trace
        // must be byte-identical to the serial one, not merely a
        // permutation.
        let mut par_cfg = cfg.clone();
        par_cfg.engine = EngineKind::Parallel;
        par_cfg.run_threads = 4;
        let mut obs_par = observer();
        let par = Gpu::new(par_cfg).run_observed(w.kernel.as_ref(), &w.space, &mut obs_par);
        assert_same(
            &observed,
            &par,
            &format!("{bench}/{name} parallel observed"),
        );
        assert_eq!(
            obs.tracer.buffer(),
            obs_par.tracer.buffer(),
            "{bench}/{name}: trace differs under the parallel engine"
        );
        assert_eq!(
            obs.intervals.as_ref().unwrap().samples(),
            obs_par.intervals.as_ref().unwrap().samples(),
            "{bench}/{name}: interval series differs under the parallel engine"
        );

        // The event-calendar engine visits only event cycles, yet the
        // spans it emits and the interval series it samples must be
        // byte-identical to the per-cycle engines' output.
        let mut ev_cfg = cfg.clone();
        ev_cfg.engine = EngineKind::Event;
        let mut obs_ev = observer();
        let ev = Gpu::new(ev_cfg).run_observed(w.kernel.as_ref(), &w.space, &mut obs_ev);
        assert_same(&observed, &ev, &format!("{bench}/{name} event observed"));
        assert_eq!(
            obs.tracer.buffer(),
            obs_ev.tracer.buffer(),
            "{bench}/{name}: trace differs under the event engine"
        );
        assert_eq!(
            obs.intervals.as_ref().unwrap().samples(),
            obs_ev.intervals.as_ref().unwrap().samples(),
            "{bench}/{name}: interval series differs under the event engine"
        );
    }
}

/// The metrics channel must be invisible to the simulation — full
/// `RunStats` bit-identical with metrics on versus an unobserved run on
/// every engine — and the versioned snapshot it renders must be
/// byte-identical across the serial, parallel, and event engines (the
/// sink folds are commutative, so drain order cannot leak through).
#[test]
fn metrics_channel_is_invisible_and_snapshots_are_engine_invariant() {
    type Configure = fn(&mut GpuConfig);
    let matrix: [(Bench, &str, Configure); 2] = [
        (Bench::Memcached, "naive", |c| c.mmu = designs::naive3()),
        (Bench::Bfs, "augmented", |c| c.mmu = designs::augmented()),
    ];
    let opts = ExperimentOpts::quick();
    for (bench, name, configure) in matrix {
        let w = build(bench, opts.scale, opts.seed);
        let mut cfg = opts.gpu(MmuModel::Ideal);
        configure(&mut cfg);
        let plain = Gpu::new(cfg.clone()).run(w.kernel.as_ref(), &w.space);

        let mut snapshots: Vec<String> = Vec::new();
        for (label, engine, threads) in [
            ("serial", EngineKind::Serial, 1usize),
            ("parallel", EngineKind::Parallel, 4),
            ("event", EngineKind::Event, 1),
        ] {
            let mut e_cfg = cfg.clone();
            e_cfg.engine = engine;
            e_cfg.run_threads = threads;
            let mut obs = Observer::off();
            obs.metrics = Metrics::recording();
            let mut gpu = Gpu::new(e_cfg);
            let s = gpu.run_observed(w.kernel.as_ref(), &w.space, &mut obs);
            assert_same(&plain, &s, &format!("{bench}/{name} metrics-on {label}"));

            let sink = obs.metrics.sink().expect("metrics were on");
            assert!(
                sink.lookup_latency.count() > 0,
                "{bench}/{name} {label}: no lookups recorded"
            );
            assert_eq!(
                sink.walk_queue.count(),
                sink.walk_active.count(),
                "{bench}/{name} {label}: stage histograms disagree on fills"
            );
            assert!(
                !sink.hot_pages.is_empty(),
                "{bench}/{name} {label}: hot-page table is empty"
            );
            snapshots.push(gpu.metrics_snapshot(&obs).expect("metrics were on"));
        }
        assert_eq!(
            snapshots[0], snapshots[1],
            "{bench}/{name}: parallel snapshot differs from serial"
        );
        assert_eq!(
            snapshots[0], snapshots[2],
            "{bench}/{name}: event snapshot differs from serial"
        );
        assert!(
            snapshots[0].contains("\"schema\": \"gmmu-metrics\""),
            "{bench}/{name}: snapshot lost its schema header"
        );
    }
}

#[test]
fn core_count_scales_throughput() {
    let w = build(Bench::Kmeans, Scale::Tiny, 7);
    let run_with = |cores: usize, channels: usize| {
        let mut c = GpuConfig::experiment_scale(MmuModel::Ideal);
        c.n_cores = cores;
        c.mem.channels = channels;
        run_kernel(c, w.kernel.as_ref(), &w.space)
    };
    let two = run_with(2, 1);
    let eight = run_with(8, 4);
    assert!(
        eight.cycles < two.cycles,
        "more cores+channels should finish sooner ({} vs {})",
        eight.cycles,
        two.cycles
    );
}

/// A multi-tenant run is as reproducible as a single-tenant one: the
/// same 4-tenant Zipf scenario under the mixed fault soup, run twice
/// from scratch, produces bit-identical combined stats and an identical
/// per-tenant slice.
#[test]
fn multitenant_runs_are_bit_identical_across_repeats() {
    use gmmu_simt::{TenantJob, TenantPolicy};
    use gmmu_workloads::tenants::scenario;

    let run_once = || {
        let mut cfg = ExperimentOpts::quick().gpu(designs::augmented());
        cfg.fault = FaultConfig::demand();
        let inject = FaultInjectConfig::smoke(0xfa57);
        cfg.inject = Some(inject);
        let sc = scenario(4, Scale::Tiny, 7, true);
        let (mut built, _) = sc.build_demand_paged(&inject);
        let mut jobs: Vec<TenantJob<'_>> = built
            .iter_mut()
            .map(|w| TenantJob {
                kernel: w.kernel.as_ref(),
                space: &mut w.space,
            })
            .collect();
        let policy = TenantPolicy {
            watchdog: 2_000_000,
            ..TenantPolicy::default()
        };
        Gpu::new(cfg).run_tenants(&mut jobs, policy, &mut Observer::off())
    };
    let a = run_once();
    let b = run_once();
    assert!(a.completed, "scenario hit the cycle cap");
    assert_same(&a, &b, "multi-tenant repeat");
    assert_eq!(a.tenants, b.tenants, "per-tenant slice differs on repeat");
}
