//! Reproducibility: identical configurations must produce identical
//! results, and the knobs that should matter must matter.

use gmmu::experiments::{designs, ExperimentOpts, Runner};
use gmmu::prelude::*;
use gmmu_simt::gpu::run_kernel;

#[test]
fn identical_configs_are_bit_identical() {
    for b in [Bench::Bfs, Bench::Memcached, Bench::Streamcluster] {
        let mut r1 = Runner::new(ExperimentOpts::quick());
        let mut r2 = Runner::new(ExperimentOpts::quick());
        let a = r1.run(b, |c| c.mmu = designs::augmented());
        let c = r2.run(b, |c| c.mmu = designs::augmented());
        assert_eq!(a.cycles, c.cycles, "{b} cycles differ");
        assert_eq!(a.instructions, c.instructions);
        assert_eq!(a.tlb_accesses, c.tlb_accesses);
        assert_eq!(a.tlb_hits, c.tlb_hits);
        assert_eq!(a.l1_accesses, c.l1_accesses);
        assert_eq!(a.dram_requests, c.dram_requests);
        assert_eq!(a.walks, c.walks);
    }
}

#[test]
fn seeds_change_workloads() {
    let w1 = build(Bench::Memcached, Scale::Tiny, 1);
    let w2 = build(Bench::Memcached, Scale::Tiny, 2);
    let cfg = || {
        let mut c = GpuConfig::experiment_scale(MmuModel::naive());
        c.n_cores = 2;
        c.mem.channels = 1;
        c
    };
    let a = run_kernel(cfg(), w1.kernel.as_ref(), &w1.space);
    let b = run_kernel(cfg(), w2.kernel.as_ref(), &w2.space);
    assert_ne!(a.cycles, b.cycles, "seed had no effect");
}

#[test]
fn policies_are_deterministic_too() {
    for policy in [
        PolicyKind::Ccws,
        PolicyKind::TaCcws { tlb_weight: 4 },
        PolicyKind::tcws_best(),
    ] {
        let mut r1 = Runner::new(ExperimentOpts::quick());
        let mut r2 = Runner::new(ExperimentOpts::quick());
        let mk = |c: &mut GpuConfig| {
            c.policy = policy;
            c.mmu = designs::augmented();
        };
        let a = r1.run(Bench::Streamcluster, mk);
        let b = r2.run(Bench::Streamcluster, mk);
        assert_eq!(a.cycles, b.cycles, "{policy:?} nondeterministic");
    }
}

#[test]
fn tbc_is_deterministic() {
    let mut r1 = Runner::new(ExperimentOpts::quick());
    let mut r2 = Runner::new(ExperimentOpts::quick());
    let mk = |c: &mut GpuConfig| {
        c.tbc = Some(TbcConfig::tlb_aware(3));
        c.mmu = designs::augmented();
    };
    let a = r1.run(Bench::Mummergpu, mk);
    let b = r2.run(Bench::Mummergpu, mk);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.dwarps_formed, b.dwarps_formed);
}

#[test]
fn core_count_scales_throughput() {
    let w = build(Bench::Kmeans, Scale::Tiny, 7);
    let run_with = |cores: usize, channels: usize| {
        let mut c = GpuConfig::experiment_scale(MmuModel::Ideal);
        c.n_cores = cores;
        c.mem.channels = channels;
        run_kernel(c, w.kernel.as_ref(), &w.space)
    };
    let two = run_with(2, 1);
    let eight = run_with(8, 4);
    assert!(
        eight.cycles < two.cycles,
        "more cores+channels should finish sooner ({} vs {})",
        eight.cycles,
        two.cycles
    );
}
