//! Cross-crate integration tests: full-system runs at smoke scale with
//! the invariants the paper's conclusions rest on.

use gmmu::experiments::{designs, ExperimentOpts, Runner};
use gmmu::prelude::*;

fn quick() -> Runner {
    Runner::new(ExperimentOpts::quick())
}

fn quick_event() -> Runner {
    let mut opts = ExperimentOpts::quick();
    opts.engine = EngineKind::Event;
    Runner::new(opts)
}

/// Engine choice is presentation, not machine: every figure invariant
/// above holds on `--engine event` because the event engine reproduces
/// the serial engine bit for bit — checked here across every workload,
/// the naive and augmented MMUs, and the TBC / TA-CCWS features.
#[test]
fn event_engine_reproduces_serial_results_end_to_end() {
    let mut serial = quick();
    let mut event = quick_event();
    for b in Bench::all() {
        for (name, model) in [
            ("naive3", designs::naive3()),
            ("augmented", designs::augmented()),
        ] {
            let s = serial.run(b, |c| c.mmu = model);
            let e = event.run(b, |c| c.mmu = model);
            let diff = s.diff(&e);
            assert!(
                diff.is_empty(),
                "{b}/{name}: event engine diverged from serial in {diff:?}"
            );
        }
    }
    type Configure = fn(&mut GpuConfig);
    let features: [(&str, Configure); 2] = [
        ("ta-ccws", |c| {
            c.mmu = designs::augmented();
            c.policy = PolicyKind::TaCcws { tlb_weight: 4 };
        }),
        ("tbc", |c| {
            c.mmu = designs::augmented();
            c.tbc = Some(TbcConfig::tlb_aware(3));
        }),
    ];
    for (name, configure) in features {
        let s = serial.run(Bench::Mummergpu, configure);
        let e = event.run(Bench::Mummergpu, configure);
        let diff = s.diff(&e);
        assert!(
            diff.is_empty(),
            "mummergpu/{name}: event engine diverged from serial in {diff:?}"
        );
    }
}

#[test]
fn naive_tlbs_degrade_every_benchmark() {
    let mut r = quick();
    for b in Bench::all() {
        let sp = r.speedup(b, |c| c.mmu = designs::naive3());
        assert!(sp < 1.0, "{b}: naive TLBs should degrade, got {sp:.3}");
        assert!(
            sp > 0.02,
            "{b}: naive TLBs should not deadlock, got {sp:.3}"
        );
    }
}

#[test]
fn augmentation_ladder_is_monotone_enough() {
    // Each augmentation step should help (small tolerance for
    // scheduling noise), and the full design must approach the ideal.
    let mut r = quick();
    for b in [Bench::Bfs, Bench::Memcached, Bench::Mummergpu] {
        let naive = r.speedup(b, |c| c.mmu = designs::naive4());
        let hum = r.speedup(b, |c| c.mmu = designs::hum());
        let aug = r.speedup(b, |c| c.mmu = designs::augmented());
        let ideal_tlb = r.speedup(b, |c| c.mmu = designs::ideal_tlb());
        assert!(
            hum >= naive * 0.98,
            "{b}: hit-under-miss regressed ({hum} vs {naive})"
        );
        assert!(
            aug >= hum * 0.98,
            "{b}: PTW scheduling regressed ({aug} vs {hum})"
        );
        assert!(aug > 0.75, "{b}: augmented design too slow ({aug})");
        assert!(
            (aug - ideal_tlb).abs() < 0.15,
            "{b}: augmented should approach the impractical ideal ({aug} vs {ideal_tlb})"
        );
    }
}

#[test]
fn augmented_single_walker_beats_eight_naive_walkers() {
    // Figure 11's headline.
    let mut r = quick();
    for b in [Bench::Bfs, Bench::Mummergpu] {
        let aug = r.speedup(b, |c| c.mmu = designs::augmented());
        let eight = r.speedup(b, |c| c.mmu = designs::naive_multi_ptw(8));
        assert!(
            aug > eight,
            "{b}: augmented 1-PTW {aug:.3} should beat 8 naive PTWs {eight:.3}"
        );
    }
}

#[test]
fn more_walkers_help_naive_designs() {
    let mut r = quick();
    let one = r.speedup(Bench::Mummergpu, |c| c.mmu = designs::naive_multi_ptw(1));
    let eight = r.speedup(Bench::Mummergpu, |c| c.mmu = designs::naive_multi_ptw(8));
    assert!(eight > one, "8 walkers {eight:.3} !> 1 walker {one:.3}");
}

#[test]
fn mmu_models_never_change_the_work() {
    let mut r = quick();
    for b in Bench::all() {
        let base = r.baseline(b);
        for model in [designs::naive3(), designs::hum(), designs::augmented()] {
            let s = r.run(b, |c| c.mmu = model);
            assert!(s.completed, "{b} hit the cycle cap");
            assert_eq!(
                s.mem_instructions, base.mem_instructions,
                "{b}: the MMU changed committed memory instructions"
            );
            assert_eq!(s.blocks_done, base.blocks_done, "{b}: lost blocks");
        }
    }
}

#[test]
fn tlb_miss_penalty_exceeds_l1_miss_penalty() {
    // Figure 4's shape: a TLB miss costs more than an L1 miss (about
    // 2× in the paper).
    // The streaming benchmarks' L1 misses queue behind saturated DRAM
    // while their rare walks ride the priority path, so the published
    // ratio holds for the translation-stressed benchmarks.
    let mut r = quick();
    for b in [Bench::Bfs, Bench::Mummergpu, Bench::Memcached] {
        let s = r.run(b, |c| c.mmu = designs::naive3());
        if s.tlb_miss_latency.count() < 50 {
            continue; // not enough misses to compare at smoke scale
        }
        assert!(
            s.tlb_miss_latency.mean() > s.l1_miss_latency.mean() * 0.8,
            "{b}: TLB miss {:.0} vs L1 miss {:.0}",
            s.tlb_miss_latency.mean(),
            s.l1_miss_latency.mean()
        );
    }
}

#[test]
fn page_divergence_figure3_shape() {
    let mut r = quick();
    let bfs = r.run(Bench::Bfs, |c| c.mmu = designs::naive3());
    let mummer = r.run(Bench::Mummergpu, |c| c.mmu = designs::naive3());
    let kmeans = r.run(Bench::Kmeans, |c| c.mmu = designs::naive3());
    assert!(mummer.page_divergence.mean() > bfs.page_divergence.mean());
    assert!(bfs.page_divergence.mean() > kmeans.page_divergence.mean());
    assert!(kmeans.page_divergence.mean() < 1.5);
    assert!(mummer.page_divergence.max() >= 16);
    for s in [&bfs, &mummer, &kmeans] {
        assert!(s.mem_insn_fraction() < 0.30, "mem fraction out of band");
    }
}

#[test]
fn tbc_interacts_with_translation_as_published() {
    let mut r = quick();
    for b in [Bench::Bfs, Bench::Mummergpu] {
        let tbc = r.run(b, |c| {
            c.tbc = Some(TbcConfig::baseline());
            c.mmu = designs::augmented();
        });
        let aware = r.run(b, |c| {
            c.tbc = Some(TbcConfig::tlb_aware(3));
            c.mmu = designs::augmented();
        });
        let plain = r.run(b, |c| c.mmu = designs::augmented());
        // TBC raises page divergence; the CPM pulls it back down.
        assert!(
            tbc.page_divergence.mean() > plain.page_divergence.mean(),
            "{b}: TBC should raise divergence"
        );
        assert!(
            aware.page_divergence.mean() < tbc.page_divergence.mean(),
            "{b}: TLB-aware TBC should reduce divergence"
        );
        // The CPM constraint can only split compaction groups.
        assert!(aware.dwarps_formed >= tbc.dwarps_formed);
    }
}

#[test]
fn large_pages_collapse_divergence_for_coalesced_kernels() {
    let mut r = quick();
    for b in [Bench::Kmeans, Bench::Pathfinder] {
        let small = r.run(b, |c| c.mmu = designs::naive4());
        let large = r.run_large_pages(b, |c| c.mmu = designs::naive4());
        assert!(large.page_divergence.mean() <= small.page_divergence.mean());
        assert!(
            large.page_divergence.mean() < 1.2,
            "{b} still diverges at 2MB"
        );
        assert!(large.tlb_miss_rate() < small.tlb_miss_rate());
    }
    // The far-flung pair keeps residual divergence even at 2 MB
    // (Section 9's observation).
    let mummer = r.run_large_pages(Bench::Mummergpu, |c| c.mmu = designs::naive4());
    assert!(
        mummer.page_divergence.mean() > 1.5,
        "mummergpu should keep 2MB divergence, got {:.2}",
        mummer.page_divergence.mean()
    );
}
