//! Deterministic checkpoint/restore of full simulation state: a run
//! snapshotted mid-flight and resumed in a fresh process-equivalent
//! (new `Gpu`, new workload build, new observer) must finish
//! bit-identical to an uninterrupted run — same `RunStats`, same span
//! trace, same interval time-series — across the whole engine matrix
//! and under demand paging, shootdown storms, and the mixed fault soup.

use gmmu::experiments::{designs, ExperimentOpts};
use gmmu::prelude::*;
use gmmu_sim::ckpt::CkptError;
use gmmu_sim::metrics::Metrics;
use gmmu_sim::trace::Tracer;
use gmmu_simt::gpu::CheckpointOpts;
use gmmu_simt::IntervalRecorder;

fn assert_same(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.completed, b.completed, "{what}: completed");
    assert_eq!(a.instructions, b.instructions, "{what}: instructions");
    assert_eq!(
        a.mem_instructions, b.mem_instructions,
        "{what}: mem_instructions"
    );
    assert_eq!(a.idle_cycles, b.idle_cycles, "{what}: idle_cycles");
    assert_eq!(
        a.stall_breakdown, b.stall_breakdown,
        "{what}: stall_breakdown"
    );
    assert_eq!(a.live_cycles, b.live_cycles, "{what}: live_cycles");
    assert_eq!(
        a.page_divergence, b.page_divergence,
        "{what}: page_divergence"
    );
    assert_eq!(
        a.l1_miss_latency, b.l1_miss_latency,
        "{what}: l1_miss_latency"
    );
    assert_eq!(
        a.tlb_miss_latency, b.tlb_miss_latency,
        "{what}: tlb_miss_latency"
    );
    assert_eq!(a.tlb_accesses, b.tlb_accesses, "{what}: tlb_accesses");
    assert_eq!(a.tlb_hits, b.tlb_hits, "{what}: tlb_hits");
    assert_eq!(a.l1_accesses, b.l1_accesses, "{what}: l1_accesses");
    assert_eq!(a.l1_hits, b.l1_hits, "{what}: l1_hits");
    assert_eq!(
        a.walk_refs_issued, b.walk_refs_issued,
        "{what}: walk_refs_issued"
    );
    assert_eq!(
        a.walk_refs_naive, b.walk_refs_naive,
        "{what}: walk_refs_naive"
    );
    assert_eq!(a.walks, b.walks, "{what}: walks");
    assert_eq!(
        a.walk_l2_hit_rate, b.walk_l2_hit_rate,
        "{what}: walk_l2_hit_rate"
    );
    assert_eq!(a.dram_requests, b.dram_requests, "{what}: dram_requests");
    assert_eq!(a.replays, b.replays, "{what}: replays");
    assert_eq!(a.dwarps_formed, b.dwarps_formed, "{what}: dwarps_formed");
    assert_eq!(a.blocks_done, b.blocks_done, "{what}: blocks_done");
    assert_eq!(a.faults, b.faults, "{what}: faults");
    assert_eq!(a.shootdowns, b.shootdowns, "{what}: shootdowns");
    assert_eq!(a.squashed_walks, b.squashed_walks, "{what}: squashed_walks");
    assert_eq!(a.watchdog_fired, b.watchdog_fired, "{what}: watchdog_fired");
}

fn observer() -> Observer {
    Observer {
        tracer: Tracer::recording(),
        intervals: Some(IntervalRecorder::new(1_000)),
        metrics: Metrics::recording(),
    }
}

/// Runs `bench` under `cfg` on the checkpointed event engine; returns
/// the stats, the observer, and every emitted checkpoint image.
fn run_ckpt(
    bench: Bench,
    cfg: &GpuConfig,
    inject: Option<&FaultInjectConfig>,
    every: u64,
    resume: Option<&[u8]>,
) -> (RunStats, Observer, Vec<Vec<u8>>) {
    let mut w = match inject {
        Some(inj) => build_demand_paged(bench, Scale::Tiny, 7, inj).0,
        None => build(bench, Scale::Tiny, 7),
    };
    let mut obs = observer();
    let mut images: Vec<Vec<u8>> = Vec::new();
    let mut sink = |b: &[u8]| images.push(b.to_vec());
    let stats = Gpu::new(cfg.clone())
        .run_event_checkpointed(
            w.kernel.as_ref(),
            &mut w.space,
            &mut obs,
            CheckpointOpts {
                every,
                sink: &mut sink,
                resume,
            },
        )
        .expect("checkpointed run failed");
    (stats, obs, images)
}

fn assert_observers_same(a: &Observer, b: &Observer, what: &str) {
    assert_eq!(
        a.tracer.buffer(),
        b.tracer.buffer(),
        "{what}: trace differs"
    );
    assert_eq!(
        a.intervals.as_ref().unwrap().samples(),
        b.intervals.as_ref().unwrap().samples(),
        "{what}: interval series differs"
    );
    assert_eq!(
        a.metrics.sink(),
        b.metrics.sink(),
        "{what}: metrics sink differs"
    );
}

/// Snapshot/restore across the six-workload engine matrix: resume from
/// a mid-run image and from the last image, with tracing and interval
/// sampling attached, and require byte-identical results.
#[test]
fn checkpoint_roundtrip_is_bit_identical_across_the_matrix() {
    type Configure = fn(&mut GpuConfig);
    let matrix: [(Bench, &str, Configure); 6] = [
        (Bench::Memcached, "naive", |c| c.mmu = designs::naive3()),
        (Bench::Memcached, "augmented", |c| {
            c.mmu = designs::augmented()
        }),
        (Bench::Bfs, "naive", |c| c.mmu = designs::naive3()),
        (Bench::Bfs, "augmented", |c| c.mmu = designs::augmented()),
        (Bench::Streamcluster, "ta-ccws", |c| {
            c.mmu = designs::augmented();
            c.policy = PolicyKind::TaCcws { tlb_weight: 4 };
        }),
        (Bench::Mummergpu, "tbc", |c| {
            c.mmu = designs::augmented();
            c.tbc = Some(TbcConfig::tlb_aware(3));
        }),
    ];
    for (bench, name, configure) in matrix {
        let mut cfg = ExperimentOpts::quick().gpu(MmuModel::Ideal);
        configure(&mut cfg);
        cfg.engine = EngineKind::Event;

        // Uninterrupted reference (emission off: `every == 0`).
        let (reference, obs_ref, none) = run_ckpt(bench, &cfg, None, 0, None);
        assert!(none.is_empty(), "{bench}/{name}: emitted without a period");
        assert!(reference.completed, "{bench}/{name} hit the cycle cap");

        // Checkpointing run: ~3 images across the run. Emission must
        // not perturb the run itself.
        let every = (reference.cycles / 3).max(1);
        let (ckpt_stats, obs_ckpt, images) = run_ckpt(bench, &cfg, None, every, None);
        assert_same(
            &reference,
            &ckpt_stats,
            &format!("{bench}/{name} emitting-vs-plain"),
        );
        assert_observers_same(
            &obs_ref,
            &obs_ckpt,
            &format!("{bench}/{name} emitting-vs-plain"),
        );
        assert!(!images.is_empty(), "{bench}/{name}: no checkpoints emitted");

        // Resume from a mid-run image and from the last image.
        for (tag, img) in [
            ("mid", &images[images.len() / 2]),
            ("last", images.last().unwrap()),
        ] {
            let (resumed, obs_res, _) = run_ckpt(bench, &cfg, None, 0, Some(img));
            assert_same(
                &reference,
                &resumed,
                &format!("{bench}/{name} resumed-from-{tag}"),
            );
            assert_observers_same(
                &obs_ref,
                &obs_res,
                &format!("{bench}/{name} resumed-from-{tag}"),
            );
        }
    }
}

/// Snapshot/restore while the fault machinery is hot: demand-paged
/// first-touch faults, periodic shootdown storms, and the mixed smoke
/// soup. Every emitted image must resume to the identical end state —
/// including images taken while pages sit in the CPU fault queue or a
/// storm remap is pending.
#[test]
fn checkpoint_roundtrip_mid_fault_storm() {
    let cases: [(&str, Bench, FaultInjectConfig); 3] = [
        (
            "demand-paged",
            Bench::Bfs,
            FaultInjectConfig::demand_paged(0xfa57),
        ),
        (
            "storm",
            Bench::Kmeans,
            FaultInjectConfig::storm(0xfa57, 8_000, 3),
        ),
        ("smoke", Bench::Pathfinder, FaultInjectConfig::smoke(0xfa57)),
    ];
    for (name, bench, inject) in cases {
        let mut cfg = ExperimentOpts::quick().gpu(designs::augmented());
        cfg.fault = FaultConfig::demand();
        cfg.inject = Some(inject);
        cfg.engine = EngineKind::Event;
        // Storms remap fully-mapped regions; the other cases start
        // demand-paged with first-touch faults.
        let demand = name != "storm";
        let inj = demand.then_some(&inject);

        let (reference, obs_ref, _) = run_ckpt(bench, &cfg, inj, 0, None);
        assert!(reference.completed, "{name} reference hit the cycle cap");
        if demand {
            assert!(reference.faults > 0, "{name}: nothing faulted");
        } else {
            assert!(reference.shootdowns > 0, "{name}: no storms landed");
        }

        let every = (reference.cycles / 4).max(1);
        let (ckpt_stats, _, images) = run_ckpt(bench, &cfg, inj, every, None);
        assert_same(&reference, &ckpt_stats, &format!("{name} emitting"));
        assert!(!images.is_empty(), "{name}: no checkpoints emitted");
        for (i, img) in images.iter().enumerate() {
            let (resumed, obs_res, _) = run_ckpt(bench, &cfg, inj, 0, Some(img));
            assert_same(&reference, &resumed, &format!("{name} image {i}"));
            assert_observers_same(&obs_ref, &obs_res, &format!("{name} image {i}"));
        }
    }
}

/// A replayed trace is checkpointable like any other run: snapshot the
/// replay mid-flight on the event engine, resume from the image in a
/// fresh process-equivalent (new trace kernel, freshly rebuilt address
/// space, new observer), and the end state must still match the stats
/// embedded in the trace bit-identically.
#[test]
fn checkpoint_mid_replay_resumes_bit_identically() {
    use gmmu_trace::{assemble, capture_launch, rebuild_space, Recorder, Trace, TraceKernel};

    // Capture a trace of a plain run.
    let cfg = ExperimentOpts::quick().gpu(designs::augmented());
    let mut w = build(Bench::Bfs, Scale::Tiny, 7);
    let launch = capture_launch(w.kernel.as_ref(), &w.space, &cfg, "bfs tiny seed=7");
    let rec = Recorder::new(w.kernel.as_ref());
    let stats = Gpu::new(cfg.clone()).run_faulted(&rec, &mut w.space, &mut Observer::off());
    let bytes = assemble(launch, rec, &stats).encode();
    let trace = Trace::decode(&bytes).expect("trace decodes");

    // Replay on the checkpointed event engine, emitting ~3 images.
    let mut replay_cfg = trace.launch.config.clone();
    replay_cfg.engine = EngineKind::Event;
    let run = |every: u64, resume: Option<&[u8]>| -> (RunStats, Observer, Vec<Vec<u8>>) {
        let kernel = TraceKernel::from_trace(&trace).expect("records expand");
        let mut space = rebuild_space(&trace.launch).expect("space rebuilds");
        let mut obs = observer();
        let mut images: Vec<Vec<u8>> = Vec::new();
        let mut sink = |b: &[u8]| images.push(b.to_vec());
        let stats = Gpu::new(replay_cfg.clone())
            .run_event_checkpointed(
                &kernel,
                &mut space,
                &mut obs,
                CheckpointOpts {
                    every,
                    sink: &mut sink,
                    resume,
                },
            )
            .expect("checkpointed replay failed");
        (stats, obs, images)
    };
    let every = (trace.stats.cycles / 3).max(1);
    let (replayed, obs_ref, images) = run(every, None);
    assert_same(&trace.stats, &replayed, "checkpointed replay vs capture");
    assert!(!images.is_empty(), "no checkpoints emitted during replay");

    // Resume from a mid-run image in a fresh process-equivalent.
    let (resumed, obs_res, _) = run(0, Some(&images[images.len() / 2]));
    assert_same(&trace.stats, &resumed, "resumed replay vs capture");
    assert_observers_same(&obs_ref, &obs_res, "resumed replay");
}

/// A checkpoint must only load into the machine that wrote it: a
/// different configuration is a fingerprint mismatch, a truncated image
/// is refused, and garbage is rejected by magic.
#[test]
fn checkpoint_refuses_foreign_or_corrupt_images() {
    let mut cfg = ExperimentOpts::quick().gpu(designs::augmented());
    cfg.engine = EngineKind::Event;
    let (reference, _, _) = run_ckpt(Bench::Bfs, &cfg, None, 0, None);
    let every = (reference.cycles / 2).max(1);
    let (_, _, images) = run_ckpt(Bench::Bfs, &cfg, None, every, None);
    let img = images.first().expect("one checkpoint");

    let resume = |cfg: &GpuConfig, bytes: &[u8]| -> Result<RunStats, CkptError> {
        let mut w = build(Bench::Bfs, Scale::Tiny, 7);
        let mut obs = observer();
        let mut sink = |_: &[u8]| {};
        Gpu::new(cfg.clone()).run_event_checkpointed(
            w.kernel.as_ref(),
            &mut w.space,
            &mut obs,
            CheckpointOpts {
                every: 0,
                sink: &mut sink,
                resume: Some(bytes),
            },
        )
    };

    // Differently shaped machine.
    let mut other = cfg.clone();
    other.n_cores += 1;
    assert!(
        matches!(resume(&other, img), Err(CkptError::ConfigMismatch { .. })),
        "a foreign config must be a fingerprint mismatch"
    );

    // Truncated payload.
    assert!(
        resume(&cfg, &img[..img.len() / 2]).is_err(),
        "a truncated image must be refused"
    );

    // Garbage magic.
    let mut garbage = img.clone();
    garbage[0] ^= 0xff;
    assert!(
        matches!(resume(&cfg, &garbage), Err(CkptError::BadMagic)),
        "bad magic must be rejected"
    );

    // Instruments must match the snapshotting run: the image carries a
    // recorded trace, so resuming into a disabled observer is refused.
    {
        let mut w = build(Bench::Bfs, Scale::Tiny, 7);
        let mut obs = Observer::off();
        let mut sink = |_: &[u8]| {};
        let err = Gpu::new(cfg.clone())
            .run_event_checkpointed(
                w.kernel.as_ref(),
                &mut w.space,
                &mut obs,
                CheckpointOpts {
                    every: 0,
                    sink: &mut sink,
                    resume: Some(img),
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, CkptError::Corrupt(_)),
            "resuming without the snapshot's instruments must be refused"
        );
    }

    // The pristine image still loads (the helpers above didn't consume it).
    let resumed = resume(&cfg, img).expect("pristine image resumes");
    assert_same(&reference, &resumed, "pristine resume");
}

/// Multi-tenant snapshot/restore with the storm machinery hot: a
/// 2-tenant scenario under the mixed fault soup, checkpointed on the
/// event engine, must resume from every emitted image — including
/// images taken mid-storm with cross-tenant faults queued — to the
/// identical end state, per-tenant slice included.
#[test]
fn multitenant_checkpoint_mid_storm_kill_and_resume() {
    use gmmu_simt::{TenantJob, TenantPolicy};
    use gmmu_workloads::tenants::scenario;

    let inject = FaultInjectConfig::smoke(0xfa57);
    let mut cfg = ExperimentOpts::quick().gpu(designs::augmented());
    cfg.fault = FaultConfig::demand();
    cfg.inject = Some(inject);
    cfg.engine = EngineKind::Event;
    let policy = TenantPolicy {
        watchdog: 2_000_000,
        ..TenantPolicy::default()
    };

    let run = |every: u64, resume: Option<&[u8]>| -> (RunStats, Observer, Vec<Vec<u8>>) {
        let sc = scenario(2, Scale::Tiny, 7, true);
        let (mut built, _) = sc.build_demand_paged(&inject);
        let mut jobs: Vec<TenantJob<'_>> = built
            .iter_mut()
            .map(|w| TenantJob {
                kernel: w.kernel.as_ref(),
                space: &mut w.space,
            })
            .collect();
        let mut obs = observer();
        let mut images: Vec<Vec<u8>> = Vec::new();
        let mut sink = |b: &[u8]| images.push(b.to_vec());
        let stats = Gpu::new(cfg.clone())
            .run_tenants_checkpointed(
                &mut jobs,
                policy,
                &mut obs,
                CheckpointOpts {
                    every,
                    sink: &mut sink,
                    resume,
                },
            )
            .expect("multi-tenant checkpointed run failed");
        (stats, obs, images)
    };

    let (reference, obs_ref, none) = run(0, None);
    assert!(none.is_empty(), "emitted without a period");
    assert!(reference.completed, "reference hit the cycle cap");
    assert!(!reference.watchdog_fired);
    assert!(reference.shootdowns > 0, "no storms landed");
    assert!(reference.faults > 0, "nothing faulted");
    assert_eq!(reference.tenants.len(), 2);

    let every = (reference.cycles / 4).max(1);
    let (ckpt_stats, _, images) = run(every, None);
    assert_same(&reference, &ckpt_stats, "mt emitting-vs-plain");
    assert_eq!(reference.tenants, ckpt_stats.tenants);
    assert!(!images.is_empty(), "no checkpoints emitted");

    for (i, img) in images.iter().enumerate() {
        let (resumed, obs_res, _) = run(0, Some(img));
        assert_same(&reference, &resumed, &format!("mt image {i}"));
        assert_eq!(
            reference.tenants, resumed.tenants,
            "image {i}: per-tenant slice diverged after resume"
        );
        assert_observers_same(&obs_ref, &obs_res, &format!("mt image {i}"));
    }
}
