//! Deterministic fault injection.
//!
//! A [`FaultInjector`] perturbs a run with the ugly cases a unified
//! CPU/GPU address space must survive — unmapped pages (demand faults),
//! delayed page walks, transient MSHR/queue-full rejections, and
//! TLB-shootdown storms — at configurable rates. Every decision is a
//! *pure function* of the injection seed and the event's coordinates
//! (page number, cycle), computed with the counter-based mixers in
//! [`crate::rng`]: no injector state, no ordering sensitivity, so two
//! runs with the same seed inject byte-identical fault schedules
//! regardless of execution engine or sweep parallelism.
//!
//! With [`FaultInjectConfig::off`] (the default) every hook answers "no
//! fault" without touching the RNG, which keeps injection-off runs
//! bit-identical to builds that predate the harness.

use crate::rng::mix3;
use crate::Cycle;

/// Domain-separation salts so the four fault classes draw independent
/// deterministic streams from one seed.
const SALT_UNMAP: u64 = 0xFA01;
const SALT_DELAY: u64 = 0xFA02;
const SALT_REJECT: u64 = 0xFA03;
const SALT_STORM: u64 = 0xFA04;
const SALT_MAJOR: u64 = 0xFA05;
const SALT_TENANT: u64 = 0xFA06;

/// Per-tenant seed perturbation: tenant `asid` draws its fault schedule
/// from `seed ^ tenant_salt(asid)`. ASID 0 gets salt 0, so single-tenant
/// runs (and tenant 0 of a multi-tenant run) see byte-identical
/// schedules to the legacy single-space harness.
#[inline]
pub fn tenant_salt(asid: u16) -> u64 {
    (asid as u64).wrapping_mul(SALT_TENANT.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
}

/// Deterministically classifies the fault on `vpn` as *major* (backing
/// data must be fetched before mapping) with probability `fraction`.
/// Used by the GPU's modeled CPU fault handler; a pure function of the
/// seed so both execution engines service identical fault schedules.
pub fn major_fault(seed: u64, vpn: u64, fraction: f64) -> bool {
    fraction >= 1.0 || (fraction > 0.0 && unit(mix3(seed ^ SALT_MAJOR, vpn, 0)) < fraction)
}

/// Rates and magnitudes for deterministic fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjectConfig {
    /// Seed for every injection decision (`--fault-seed`).
    pub seed: u64,
    /// Fraction of data pages left unmapped before launch, so first
    /// touches demand-fault (1.0 = zero pre-mapped pages).
    pub unmap_fraction: f64,
    /// Probability that a completed page walk's fill is delayed.
    pub walk_delay_rate: f64,
    /// Extra cycles added to a delayed walk fill.
    pub walk_delay_cycles: u64,
    /// Probability that a translation request takes a transient
    /// queue-full rejection and must retry.
    pub reject_rate: f64,
    /// Cycles between TLB-shootdown storms (0 = no storms). Each storm
    /// remaps one deterministically-chosen region.
    pub storm_period: Cycle,
    /// Number of storms to inject before the schedule goes quiet.
    pub storms: u32,
}

impl FaultInjectConfig {
    /// No injection at all: every hook is a constant "no".
    pub fn off() -> Self {
        Self {
            seed: 0,
            unmap_fraction: 0.0,
            walk_delay_rate: 0.0,
            walk_delay_cycles: 0,
            reject_rate: 0.0,
            storm_period: 0,
            storms: 0,
        }
    }

    /// Fully demand-paged start: zero pre-mapped pages, no other faults.
    pub fn demand_paged(seed: u64) -> Self {
        Self {
            seed,
            unmap_fraction: 1.0,
            ..Self::off()
        }
    }

    /// A shootdown storm every `period` cycles, `storms` times.
    pub fn storm(seed: u64, period: Cycle, storms: u32) -> Self {
        Self {
            seed,
            storm_period: period,
            storms,
            ..Self::off()
        }
    }

    /// The smoke configuration `--fault-inject` runs: moderate rates of
    /// every fault class at once, so each recovery path is exercised.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            unmap_fraction: 0.25,
            walk_delay_rate: 0.05,
            walk_delay_cycles: 400,
            reject_rate: 0.02,
            storm_period: 30_000,
            storms: 4,
        }
    }

    /// The same configuration re-seeded for tenant `asid`: every fault
    /// class draws an independent deterministic stream per tenant.
    /// `for_tenant(0)` is the identity, preserving single-tenant
    /// schedules bit-for-bit.
    pub fn for_tenant(&self, asid: u16) -> Self {
        Self {
            seed: self.seed ^ tenant_salt(asid),
            ..*self
        }
    }

    /// True when any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.unmap_fraction > 0.0
            || self.walk_delay_rate > 0.0
            || self.reject_rate > 0.0
            || (self.storm_period > 0 && self.storms > 0)
    }
}

impl Default for FaultInjectConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl crate::ckpt::Ckpt for FaultInjectConfig {
    fn save(&self, w: &mut crate::ckpt::Saver) {
        w.u64(self.seed);
        w.f64(self.unmap_fraction);
        w.f64(self.walk_delay_rate);
        w.u64(self.walk_delay_cycles);
        w.f64(self.reject_rate);
        w.u64(self.storm_period);
        w.u32(self.storms);
    }
    fn load(&mut self, r: &mut crate::ckpt::Loader<'_>) -> Result<(), crate::ckpt::CkptError> {
        self.seed = r.u64()?;
        self.unmap_fraction = r.f64()?;
        self.walk_delay_rate = r.f64()?;
        self.walk_delay_cycles = r.u64()?;
        self.reject_rate = r.f64()?;
        self.storm_period = r.u64()?;
        self.storms = r.u32()?;
        Ok(())
    }
}

/// Converts a mixed 64-bit value into a uniform draw in `[0, 1)`.
#[inline]
fn unit(m: u64) -> f64 {
    (m >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Stateless decision engine over a [`FaultInjectConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    cfg: FaultInjectConfig,
}

impl FaultInjector {
    /// Wraps a configuration.
    pub fn new(cfg: FaultInjectConfig) -> Self {
        Self { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &FaultInjectConfig {
        &self.cfg
    }

    /// Should this page start unmapped (demand-fault on first touch)?
    pub fn unmap_page(&self, vpn: u64) -> bool {
        self.cfg.unmap_fraction >= 1.0
            || (self.cfg.unmap_fraction > 0.0
                && unit(mix3(self.cfg.seed, SALT_UNMAP, vpn)) < self.cfg.unmap_fraction)
    }

    /// Extra delay (possibly 0) applied to a walk for `vpn` enqueued at
    /// `enqueued`.
    pub fn walk_delay(&self, vpn: u64, enqueued: Cycle) -> Cycle {
        if self.cfg.walk_delay_rate > 0.0
            && unit(mix3(self.cfg.seed ^ SALT_DELAY, vpn, enqueued)) < self.cfg.walk_delay_rate
        {
            self.cfg.walk_delay_cycles
        } else {
            0
        }
    }

    /// Should the translation request issued at `now` by `requester` take
    /// a transient queue-full rejection?
    pub fn reject(&self, now: Cycle, requester: u64) -> bool {
        self.cfg.reject_rate > 0.0
            && unit(mix3(self.cfg.seed ^ SALT_REJECT, now, requester)) < self.cfg.reject_rate
    }

    /// Cycle at which storm number `k` (1-based) fires, if scheduled.
    pub fn storm_at(&self, k: u32) -> Option<Cycle> {
        (self.cfg.storm_period > 0 && k >= 1 && k <= self.cfg.storms)
            .then(|| self.cfg.storm_period * k as Cycle)
    }

    /// Deterministically picks which of `n_regions` regions storm `k`
    /// remaps.
    pub fn storm_region(&self, k: u32, n_regions: usize) -> usize {
        debug_assert!(n_regions > 0);
        (mix3(self.cfg.seed ^ SALT_STORM, k as u64, 0) % n_regions as u64) as usize
    }

    /// Deterministically picks which of `n_tenants` tenants storm `k`
    /// hits. Always tenant 0 for single-tenant runs, so the legacy storm
    /// schedule is unchanged.
    pub fn storm_victim(&self, k: u32, n_tenants: usize) -> u16 {
        debug_assert!(n_tenants > 0);
        if n_tenants == 1 {
            return 0;
        }
        (mix3(self.cfg.seed ^ SALT_STORM, k as u64, 1) % n_tenants as u64) as u16
    }

    /// [`FaultInjector::walk_delay`] drawn from tenant `asid`'s stream.
    /// ASID 0 is identical to the untenanted decision.
    pub fn walk_delay_t(&self, asid: u16, vpn: u64, enqueued: Cycle) -> Cycle {
        if self.cfg.walk_delay_rate > 0.0
            && unit(mix3(
                self.cfg.seed ^ tenant_salt(asid) ^ SALT_DELAY,
                vpn,
                enqueued,
            )) < self.cfg.walk_delay_rate
        {
            self.cfg.walk_delay_cycles
        } else {
            0
        }
    }

    /// [`FaultInjector::reject`] drawn from tenant `asid`'s stream.
    /// ASID 0 is identical to the untenanted decision.
    pub fn reject_t(&self, asid: u16, now: Cycle, requester: u64) -> bool {
        self.cfg.reject_rate > 0.0
            && unit(mix3(
                self.cfg.seed ^ tenant_salt(asid) ^ SALT_REJECT,
                now,
                requester,
            )) < self.cfg.reject_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_never_fires() {
        let inj = FaultInjector::new(FaultInjectConfig::off());
        assert!(!inj.config().enabled());
        for i in 0..1000u64 {
            assert!(!inj.unmap_page(i));
            assert_eq!(inj.walk_delay(i, i * 3), 0);
            assert!(!inj.reject(i, i % 7));
        }
        assert_eq!(inj.storm_at(1), None);
    }

    #[test]
    fn decisions_are_pure_functions_of_the_seed() {
        let a = FaultInjector::new(FaultInjectConfig::smoke(7));
        let b = FaultInjector::new(FaultInjectConfig::smoke(7));
        let c = FaultInjector::new(FaultInjectConfig::smoke(8));
        let mut diverged = false;
        for i in 0..4096u64 {
            assert_eq!(a.unmap_page(i), b.unmap_page(i));
            assert_eq!(a.walk_delay(i, 100 + i), b.walk_delay(i, 100 + i));
            assert_eq!(a.reject(i, i % 48), b.reject(i, i % 48));
            diverged |= a.unmap_page(i) != c.unmap_page(i);
        }
        assert!(diverged, "different seeds must inject different schedules");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let inj = FaultInjector::new(FaultInjectConfig {
            seed: 42,
            unmap_fraction: 0.25,
            ..FaultInjectConfig::off()
        });
        let hits = (0..10_000u64).filter(|&v| inj.unmap_page(v)).count();
        assert!((2_000..3_000).contains(&hits), "25% ± 5%: {hits}");
    }

    #[test]
    fn full_unmap_fraction_unmaps_everything() {
        let inj = FaultInjector::new(FaultInjectConfig::demand_paged(3));
        assert!((0..1000u64).all(|v| inj.unmap_page(v)));
    }

    #[test]
    fn tenant_zero_streams_match_legacy() {
        let inj = FaultInjector::new(FaultInjectConfig::smoke(7));
        let t0 = FaultInjector::new(FaultInjectConfig::smoke(7).for_tenant(0));
        let mut t1_diverged = false;
        for i in 0..2048u64 {
            assert_eq!(inj.walk_delay(i, 100 + i), inj.walk_delay_t(0, i, 100 + i));
            assert_eq!(inj.reject(i, i % 48), inj.reject_t(0, i, i % 48));
            assert_eq!(inj.unmap_page(i), t0.unmap_page(i));
            t1_diverged |= inj.walk_delay(i, 100 + i) != inj.walk_delay_t(1, i, 100 + i);
            t1_diverged |= inj.unmap_page(i)
                != FaultInjector::new(FaultInjectConfig::smoke(7).for_tenant(1)).unmap_page(i);
        }
        assert!(t1_diverged, "tenant 1 must draw an independent stream");
        assert_eq!(inj.storm_victim(1, 1), 0, "single tenant always storms 0");
        let victims: std::collections::HashSet<u16> =
            (1..64).map(|k| inj.storm_victim(k, 4)).collect();
        assert!(victims.len() > 1, "storms must spread across tenants");
        assert!(victims.iter().all(|&v| v < 4));
    }

    #[test]
    fn storm_schedule_is_bounded() {
        let inj = FaultInjector::new(FaultInjectConfig::storm(1, 10_000, 3));
        assert_eq!(inj.storm_at(1), Some(10_000));
        assert_eq!(inj.storm_at(3), Some(30_000));
        assert_eq!(inj.storm_at(4), None);
        for k in 1..=3 {
            assert!(inj.storm_region(k, 5) < 5);
        }
    }
}
