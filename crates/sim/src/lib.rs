#![warn(missing_docs)]

//! Simulation substrate shared by every crate in the workspace.
//!
//! This crate deliberately has no external dependencies: everything a
//! cycle-level architecture simulator needs to be *deterministic and
//! reproducible* lives here.
//!
//! * [`calendar`] — the calendar queue of per-component wake times
//!   behind the event-calendar execution engine.
//! * [`ckpt`] — the hand-rolled checkpoint codec (versioned compact
//!   binary snapshots of simulation state).
//! * [`rng`] — counter-based and xoshiro PRNGs plus distributions
//!   (uniform, Zipf, permutations) that behave identically on every
//!   platform and toolchain.
//! * [`fault`] — deterministic fault injection (demand faults, delayed
//!   walks, transient rejections, shootdown storms) driven by the
//!   counter-based mixers, so fault schedules are reproducible.
//! * [`metrics`] — translation-lifecycle telemetry: a zero-cost metric
//!   event channel, per-stage latency histograms, a hot-page table, and
//!   a labeled instrument registry rendered as versioned JSON.
//! * [`stats`] — counters, running means, and log-scale histograms used
//!   for every statistic the paper reports.
//! * [`table`] — plain-text/CSV table rendering for the figure harnesses.
//! * [`trace`] — zero-cost span tracing with a Chrome/Perfetto exporter.
//!
//! # Examples
//!
//! ```
//! use gmmu_sim::rng::Xoshiro256;
//! use gmmu_sim::stats::Histogram;
//!
//! let mut rng = Xoshiro256::seed_from(42);
//! let mut hist = Histogram::new();
//! for _ in 0..1000 {
//!     hist.record(rng.gen_range(0..32));
//! }
//! assert!(hist.mean() > 10.0 && hist.mean() < 21.0);
//! ```

pub mod calendar;
pub mod ckpt;
pub mod fault;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod table;
pub mod trace;

/// A point in simulated time, measured in shader-core clock cycles.
///
/// All components of the simulator share one clock domain (the paper's
/// GPGPU-Sim configuration also runs the interconnect and L2 at ratios
/// we fold into fixed latencies).
pub type Cycle = u64;

/// The simulated clock never reaches this value; used as "infinitely far
/// in the future" for idle components.
pub const NEVER: Cycle = Cycle::MAX;
