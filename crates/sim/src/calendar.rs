//! A calendar queue of per-component wake times.
//!
//! The event-calendar engine replaces the per-cycle "scan every core"
//! loop with one priority queue: every timer source in the machine —
//! each shader core, the CPU fault-handler queue, the shootdown-storm
//! schedule, the interval sampler, the watchdog deadline — owns one
//! *key* whose next wake cycle lives here. The engine pops the earliest
//! wake, jumps the clock straight to it, and touches only the
//! components whose keys fired.
//!
//! The structure is a *time-wheel front* over a lazy min-heap. Wakes
//! landing within the next [`WHEEL_SLOTS`] cycles — the overwhelming
//! majority: cores reschedule themselves a handful of cycles ahead —
//! go into a per-cycle bucket of a circular wheel, which costs one
//! `Vec::push` instead of a heap sift. Only far-future wakes (and
//! wakes scheduled behind the wheel's cursor) take the heap path. Both
//! tiers share one staleness rule, the same stale-entry-discard scheme
//! [`gmmu_mem`]'s MSHR file uses: rescheduling a key never removes its
//! old entry; instead, a drained entry is valid only when it still
//! matches `wake[key]`. This keeps `schedule` at `O(1)` for near wakes,
//! `O(log n)` for far ones, with no decrease-key.
//!
//! Ordering proof sketch: `take_due(now)` must emit exactly the keys
//! with `wake[key] <= now`, sorted by key. Every `schedule` that sets
//! `wake[key] = at` deposits one entry carrying `(at, key)` in either
//! tier, so an authoritative wake always has at least one live entry;
//! draining both tiers up to `now` therefore finds every due key, and
//! stale duplicates are rejected by the `wake[key] == at` check (the
//! first valid hit clears the slot to [`NEVER`], killing the rest).
//! Because the result is sorted by key at the end, the *order* in which
//! the two tiers surface entries is immaterial — the wheel cannot
//! perturb the serial engine's core-index tie-break.

use crate::{Cycle, NEVER};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of per-cycle buckets in the wheel front (power of two). Wakes
/// within `now + WHEEL_SLOTS` cycles bypass the heap entirely.
const WHEEL_SLOTS: usize = 64;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;

/// A calendar of wake times, one slot per key.
///
/// # Examples
///
/// ```
/// use gmmu_sim::calendar::Calendar;
/// let mut cal = Calendar::new(3);
/// cal.schedule(0, 10);
/// cal.schedule(1, 10);
/// cal.schedule(2, 40);
/// cal.schedule(2, 20); // reschedule: earlier entry wins
/// assert_eq!(cal.peek_cycle(), Some(10));
/// let mut due = Vec::new();
/// cal.take_due(10, &mut due);
/// assert_eq!(due, vec![0, 1]);
/// assert_eq!(cal.peek_cycle(), Some(20));
/// ```
#[derive(Debug, Clone)]
pub struct Calendar {
    /// Authoritative next wake per key; [`NEVER`] = unscheduled.
    wake: Vec<Cycle>,
    /// Wheel front: bucket `c & WHEEL_MASK` holds `(cycle, key)` entries
    /// for cycle `c` in the window `[wheel_base, wheel_base + SLOTS)`.
    /// Entries are lazily validated against `wake` when drained. Bucket
    /// `Vec`s keep their capacity forever — steady state pushes into
    /// warm buffers and never touches the allocator.
    wheel: Vec<Vec<(Cycle, u32)>>,
    /// First cycle the wheel window covers; buckets for cycles below it
    /// have been drained.
    wheel_base: Cycle,
    /// Total entries (live + stale) across wheel buckets, so empty-wheel
    /// scans and big clock jumps can skip bucket iteration entirely.
    wheel_len: usize,
    /// Lazy min-heap of `(cycle, key)` entries for wakes beyond the
    /// wheel window (or behind its cursor); an entry is stale (and
    /// discarded at pop) unless it equals `wake[key]`.
    heap: BinaryHeap<Reverse<(Cycle, u32)>>,
}

impl Calendar {
    /// Creates a calendar with `n_keys` unscheduled keys.
    pub fn new(n_keys: usize) -> Self {
        Self {
            wake: vec![NEVER; n_keys],
            wheel: vec![Vec::new(); WHEEL_SLOTS],
            wheel_base: 0,
            wheel_len: 0,
            heap: BinaryHeap::with_capacity(n_keys),
        }
    }

    /// Number of keys.
    pub fn n_keys(&self) -> usize {
        self.wake.len()
    }

    /// Schedules `key` to fire at `at`, replacing any earlier schedule.
    /// Scheduling at [`NEVER`] cancels. Re-scheduling the cycle the key
    /// already fires at is free (no heap growth).
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn schedule(&mut self, key: u32, at: Cycle) {
        let slot = &mut self.wake[key as usize];
        if *slot == at {
            return;
        }
        *slot = at;
        if at == NEVER {
            return;
        }
        // Near wakes ride the wheel; far (or behind-cursor) wakes take
        // the heap, which handles any cycle.
        if at.wrapping_sub(self.wheel_base) < WHEEL_SLOTS as u64 && at >= self.wheel_base {
            self.wheel[(at & WHEEL_MASK) as usize].push((at, key));
            self.wheel_len += 1;
        } else {
            self.heap.push(Reverse((at, key)));
        }
    }

    /// Unschedules `key` (its stale heap entries are discarded lazily).
    pub fn cancel(&mut self, key: u32) {
        self.wake[key as usize] = NEVER;
    }

    /// The wake cycle `key` is scheduled for ([`NEVER`] = unscheduled).
    pub fn wake_of(&self, key: u32) -> Cycle {
        self.wake[key as usize]
    }

    /// The earliest scheduled wake cycle, discarding stale heap entries,
    /// or `None` when nothing is scheduled.
    pub fn peek_cycle(&mut self) -> Option<Cycle> {
        let wheel_cand = self.peek_wheel();
        let mut heap_cand = None;
        while let Some(&Reverse((at, key))) = self.heap.peek() {
            if self.wake[key as usize] == at {
                heap_cand = Some(at);
                break;
            }
            self.heap.pop();
        }
        match (wheel_cand, heap_cand) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Earliest cycle with a live wheel entry, compacting stale entries
    /// as it scans (at most [`WHEEL_SLOTS`] buckets; the scan stops at
    /// the first live one, which in steady state is the very next
    /// bucket).
    fn peek_wheel(&mut self) -> Option<Cycle> {
        if self.wheel_len == 0 {
            return None;
        }
        for off in 0..WHEEL_SLOTS as u64 {
            let c = self.wheel_base + off;
            let bucket = &mut self.wheel[(c & WHEEL_MASK) as usize];
            if bucket.is_empty() {
                continue;
            }
            let before = bucket.len();
            let wake = &self.wake;
            bucket.retain(|&(at, key)| wake[key as usize] == at);
            self.wheel_len -= before - bucket.len();
            if !bucket.is_empty() {
                return Some(c);
            }
        }
        None
    }

    /// Pops every key scheduled at or before `now` into `out`, sorted
    /// ascending by key (so cores fire in index order — the serial
    /// engine's tie-break), and unschedules them.
    pub fn take_due(&mut self, now: Cycle, out: &mut Vec<u32>) {
        out.clear();
        // Wheel tier: drain every bucket covering a cycle `<= now`. A
        // clock jump past the whole window empties all buckets at once;
        // otherwise at most `now - wheel_base + 1` buckets are touched.
        if self.wheel_len > 0 && now >= self.wheel_base {
            let span = now - self.wheel_base;
            let buckets = if span >= WHEEL_SLOTS as u64 - 1 {
                WHEEL_SLOTS as u64
            } else {
                span + 1
            };
            for off in 0..buckets {
                let c = self.wheel_base + off;
                let bucket = &mut self.wheel[(c & WHEEL_MASK) as usize];
                self.wheel_len -= bucket.len();
                for (at, key) in bucket.drain(..) {
                    let slot = &mut self.wake[key as usize];
                    if *slot == at {
                        *slot = NEVER;
                        out.push(key);
                    }
                }
            }
        }
        if now >= self.wheel_base {
            self.wheel_base = now + 1;
        }
        // Heap tier.
        while let Some(&Reverse((at, key))) = self.heap.peek() {
            if at > now {
                break;
            }
            self.heap.pop();
            let slot = &mut self.wake[key as usize];
            if *slot == at {
                *slot = NEVER;
                out.push(key);
            }
        }
        out.sort_unstable();
    }

    /// The authoritative wake array (for checkpointing).
    pub fn wakes(&self) -> &[Cycle] {
        &self.wake
    }

    /// Rebuilds the calendar from an authoritative wake array (the heap
    /// is reconstructed, dropping any staleness a checkpoint never
    /// carried).
    pub fn from_wakes(wake: Vec<Cycle>) -> Self {
        // Everything starts on the heap tier; the wheel fills back up as
        // the engine reschedules (a restore-time transient only — the
        // two tiers are observationally identical).
        let heap = wake
            .iter()
            .enumerate()
            .filter(|&(_, &at)| at != NEVER)
            .map(|(k, &at)| Reverse((at, k as u32)))
            .collect();
        Self {
            wake,
            wheel: vec![Vec::new(); WHEEL_SLOTS],
            wheel_base: 0,
            wheel_len: 0,
            heap,
        }
    }
}

impl crate::ckpt::Ckpt for Calendar {
    fn save(&self, w: &mut crate::ckpt::Saver) {
        self.wake.save(w);
    }
    /// Restores into a calendar of the same key count (the count is
    /// config-derived geometry and is never serialized).
    fn load(&mut self, r: &mut crate::ckpt::Loader<'_>) -> Result<(), crate::ckpt::CkptError> {
        let mut wake: Vec<Cycle> = Vec::new();
        wake.load(r)?;
        if wake.len() != self.wake.len() {
            return Err(crate::ckpt::CkptError::Corrupt(
                "calendar key count differs from the checkpoint",
            ));
        }
        *self = Calendar::from_wakes(wake);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::mix3;

    #[test]
    fn empty_calendar_has_no_events() {
        let mut cal = Calendar::new(4);
        assert_eq!(cal.peek_cycle(), None);
        let mut due = Vec::new();
        cal.take_due(1_000, &mut due);
        assert!(due.is_empty());
    }

    #[test]
    fn due_keys_come_out_sorted_and_unscheduled() {
        let mut cal = Calendar::new(5);
        cal.schedule(3, 10);
        cal.schedule(1, 10);
        cal.schedule(4, 11);
        let mut due = Vec::new();
        cal.take_due(10, &mut due);
        assert_eq!(due, vec![1, 3]);
        assert_eq!(cal.wake_of(1), NEVER);
        assert_eq!(cal.wake_of(3), NEVER);
        assert_eq!(cal.wake_of(4), 11);
        assert_eq!(cal.peek_cycle(), Some(11));
    }

    #[test]
    fn reschedule_and_cancel_discard_stale_entries() {
        let mut cal = Calendar::new(2);
        cal.schedule(0, 50);
        cal.schedule(0, 20); // moved earlier
        cal.schedule(1, 30);
        cal.cancel(1);
        assert_eq!(cal.peek_cycle(), Some(20));
        let mut due = Vec::new();
        cal.take_due(60, &mut due);
        assert_eq!(due, vec![0], "cancelled/stale entries must not fire");
    }

    #[test]
    fn rescheduling_the_same_cycle_is_idempotent() {
        let mut cal = Calendar::new(1);
        for _ in 0..100 {
            cal.schedule(0, 7);
        }
        let mut due = Vec::new();
        cal.take_due(7, &mut due);
        assert_eq!(due, vec![0], "one key fires once");
    }

    #[test]
    fn cancel_then_reschedule_same_cycle_fires_once() {
        let mut cal = Calendar::new(1);
        cal.schedule(0, 5);
        cal.cancel(0);
        cal.schedule(0, 5); // a second (5, 0) heap entry now exists
        let mut due = Vec::new();
        cal.take_due(5, &mut due);
        assert_eq!(due, vec![0]);
        cal.take_due(5, &mut due);
        assert!(due.is_empty(), "the duplicate entry must be discarded");
    }

    #[test]
    fn checkpoint_round_trip_preserves_schedule() {
        let mut cal = Calendar::new(4);
        cal.schedule(0, 10);
        cal.schedule(2, 99);
        cal.schedule(2, 15);
        let mut restored = Calendar::from_wakes(cal.wakes().to_vec());
        assert_eq!(restored.peek_cycle(), cal.peek_cycle());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        cal.take_due(20, &mut a);
        restored.take_due(20, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn wheel_and_heap_tiers_agree_across_window_jumps() {
        let mut cal = Calendar::new(8);
        let mut due = Vec::new();
        // Near wake (wheel), far wake (heap), and a wake exactly at the
        // window edge.
        cal.schedule(0, 3);
        cal.schedule(1, 10_000);
        cal.schedule(2, 63);
        cal.schedule(3, 64);
        assert_eq!(cal.peek_cycle(), Some(3));
        // Jump the clock far past the whole wheel window.
        cal.take_due(200, &mut due);
        assert_eq!(due, vec![0, 2, 3]);
        assert_eq!(cal.peek_cycle(), Some(10_000));
        // Scheduling behind the cursor must still fire.
        cal.schedule(4, 150);
        cal.schedule(5, 201);
        assert_eq!(cal.peek_cycle(), Some(150));
        cal.take_due(201, &mut due);
        assert_eq!(due, vec![4, 5]);
        cal.take_due(10_000, &mut due);
        assert_eq!(due, vec![1]);
        assert_eq!(cal.peek_cycle(), None);
        // A reschedule from the heap tier into the wheel tier leaves a
        // stale heap entry behind; it must not double-fire.
        cal.schedule(6, 90_000);
        cal.schedule(6, 10_005);
        cal.take_due(100_000, &mut due);
        assert_eq!(due, vec![6]);
        cal.take_due(100_000, &mut due);
        assert!(due.is_empty());
    }

    /// Cross-check against a linear scan of the authoritative array
    /// under a deterministic mixed schedule/cancel/pop workload.
    #[test]
    fn matches_linear_reference_under_mixed_traffic() {
        let n = 16usize;
        let mut cal = Calendar::new(n);
        let mut now: Cycle = 0;
        let mut due = Vec::new();
        for step in 0..2_000u64 {
            let key = (mix3(step, 1, 0) % n as u64) as u32;
            match mix3(step, 2, 0) % 3 {
                0 => cal.schedule(key, now + 1 + mix3(step, 3, 0) % 64),
                1 => cal.cancel(key),
                _ => {}
            }
            // Reference: earliest wake straight from the wake array.
            let reference = cal.wakes().iter().copied().filter(|&c| c != NEVER).min();
            assert_eq!(cal.peek_cycle(), reference, "step {step}");
            if let Some(target) = reference {
                if mix3(step, 4, 0).is_multiple_of(4) {
                    let expected: Vec<u32> = cal
                        .wakes()
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c <= target)
                        .map(|(k, _)| k as u32)
                        .collect();
                    cal.take_due(target, &mut due);
                    assert_eq!(due, expected, "step {step}");
                    now = target;
                }
            }
        }
    }
}
