//! Translation-lifecycle telemetry: a zero-cost metric event stream, a
//! sink that folds events into per-stage latency histograms and a
//! per-VPN hot-page table, and a hierarchical registry of labeled
//! instruments rendered as a versioned JSON snapshot.
//!
//! The design mirrors the span tracer in [`crate::trace`]: components
//! call [`Metrics::record`] with a *closure*, so when metrics are off
//! the closure is never evaluated and the instrumented code is
//! bit-identical to an unobserved run. When metrics are on, every
//! event is commutative over the sink (histogram increments and
//! hot-page counter bumps), so the order buffers are drained in —
//! which differs between the serial, parallel, and event engines —
//! cannot change the final snapshot.
//!
//! # Lifecycle stages
//!
//! A translation request's life is attributed to four histograms:
//!
//! * `lookup_latency` — cycles from issue to TLB answer (port
//!   arbitration + probe penalty), recorded per lookup, hit or miss.
//! * `walk_queue` — cycles a missing translation waited in the walker's
//!   pending queue before a lane picked it up.
//! * `walk_active` — cycles from walk start to fill application
//!   (page-table memory references plus any injected walk delay).
//! * `fill_waiters` — number of warps woken by each fill (MSHR
//!   coalescing depth).
//!
//! For every applied fill, `queue + active` equals the end-to-end
//! per-miss latency the `tlb_miss_latency` aggregate records, so the
//! two stage histograms *sum exactly* to the existing aggregate
//! (squashed walks appear in neither). `tests/invariants.rs` pins this.

use crate::ckpt::{Ckpt, CkptError, Loader, Saver};
use crate::stats::{HistSummary, Histogram};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Snapshot schema identifier embedded in every JSON dump.
pub const SCHEMA: &str = "gmmu-metrics";
/// Snapshot schema version. Bump when the JSON shape changes; readers
/// refuse snapshots from a different major version. Version 2 added the
/// ASID dimension: hot pages are keyed `(asid, vpn)` and a per-tenant
/// `tenants` section carries walk-stage histograms per address space.
pub const SCHEMA_VERSION: u32 = 2;
/// Number of hot pages reported in the snapshot's `hot_pages` section.
pub const HOT_PAGE_TOP_N: usize = 16;

/// Exact-count bound for the TLB lookup-latency histogram (lookups are
/// a few cycles; anything longer clamps into the last bucket).
const LOOKUP_BOUND: usize = 64;
/// Exact-count bound for the walk queue/active stage histograms.
const STAGE_BOUND: usize = 2048;
/// Exact-count bound for the fill-waiters histogram (bounded by warps).
const WAITERS_BOUND: usize = 64;

/// One telemetry event emitted by an instrumented component.
///
/// Events are designed so that folding them into a [`MetricsSink`] is
/// commutative: any drain order yields the same sink state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricEvent {
    /// A TLB lookup completed; payload is its latency in cycles.
    Lookup(u64),
    /// A TLB miss was registered for this VPN (hot-page accounting).
    Miss {
        /// Address space the miss belongs to (0 for single-tenant runs).
        asid: u16,
        /// Virtual page number that missed.
        vpn: u64,
    },
    /// A page-table walk referenced one radix level for a VPN.
    WalkLevel {
        /// Address space whose table is being walked.
        asid: u16,
        /// Virtual page number being walked.
        vpn: u64,
        /// Radix level referenced (1 = leaf PTE, higher = upper levels).
        level: u8,
    },
    /// A fill was applied; payload is the walk's stage attribution.
    WalkStage {
        /// Address space the filled translation belongs to.
        asid: u16,
        /// Cycles spent queued before a walker lane started the walk.
        queue: u64,
        /// Cycles from walk start to fill application.
        active: u64,
    },
    /// A fill was applied; payload is the number of waiting warps woken.
    Fill {
        /// Waiter count released by this fill.
        waiters: u64,
    },
}

/// Per-VPN heat record: how often the page missed in the TLB and how
/// many page-table references each radix level absorbed on its behalf.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotPage {
    /// TLB misses registered against this VPN.
    pub tlb_misses: u64,
    /// Page-table references per radix level; index 0 is the leaf PTE,
    /// index 3 collects level 4 and beyond.
    pub level_refs: [u64; 4],
}

impl Ckpt for HotPage {
    fn save(&self, w: &mut Saver) {
        w.u64(self.tlb_misses);
        for r in self.level_refs {
            w.u64(r);
        }
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.tlb_misses = r.u64()?;
        for slot in &mut self.level_refs {
            *slot = r.u64()?;
        }
        Ok(())
    }
}

/// Per-tenant slices of the walk-stage histograms: one pair per ASID,
/// folded alongside the run-wide aggregates so a multi-tenant snapshot
/// shows which address space the walker cycles went to.
#[derive(Debug, Clone, PartialEq)]
pub struct AsidStages {
    /// Queue-stage cycles for this ASID's applied fills.
    pub walk_queue: Histogram,
    /// Active-stage cycles for this ASID's applied fills.
    pub walk_active: Histogram,
}

impl Default for AsidStages {
    fn default() -> Self {
        Self {
            walk_queue: Histogram::with_bound(STAGE_BOUND),
            walk_active: Histogram::with_bound(STAGE_BOUND),
        }
    }
}

impl Ckpt for AsidStages {
    fn save(&self, w: &mut Saver) {
        self.walk_queue.save(w);
        self.walk_active.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.walk_queue.load(r)?;
        self.walk_active.load(r)
    }
}

/// Accumulated lifecycle telemetry: the four stage histograms plus the
/// hot-page table. All folds are commutative, so per-cycle drain order
/// across cores never affects the final state.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSink {
    /// TLB lookup latency (issue to answer), hits and misses alike.
    pub lookup_latency: Histogram,
    /// Per-applied-fill cycles spent waiting for a walker lane.
    pub walk_queue: Histogram,
    /// Per-applied-fill cycles spent walking (memory refs + delays).
    pub walk_active: Histogram,
    /// Warps woken per applied fill.
    pub fill_waiters: Histogram,
    /// Per-(ASID, VPN) miss and walk-reference heat.
    pub hot_pages: HashMap<(u16, u64), HotPage>,
    /// Walk-stage histograms sliced per tenant (ordered for rendering).
    pub asid_stages: BTreeMap<u16, AsidStages>,
}

impl Default for MetricsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self {
            lookup_latency: Histogram::with_bound(LOOKUP_BOUND),
            walk_queue: Histogram::with_bound(STAGE_BOUND),
            walk_active: Histogram::with_bound(STAGE_BOUND),
            fill_waiters: Histogram::with_bound(WAITERS_BOUND),
            hot_pages: HashMap::new(),
            asid_stages: BTreeMap::new(),
        }
    }

    /// Folds one event into the sink.
    pub fn apply(&mut self, ev: MetricEvent) {
        match ev {
            MetricEvent::Lookup(latency) => self.lookup_latency.record(latency),
            MetricEvent::Miss { asid, vpn } => {
                self.hot_pages.entry((asid, vpn)).or_default().tlb_misses += 1
            }
            MetricEvent::WalkLevel { asid, vpn, level } => {
                let idx = (level.max(1) as usize - 1).min(3);
                self.hot_pages.entry((asid, vpn)).or_default().level_refs[idx] += 1;
            }
            MetricEvent::WalkStage {
                asid,
                queue,
                active,
            } => {
                self.walk_queue.record(queue);
                self.walk_active.record(active);
                let slice = self.asid_stages.entry(asid).or_default();
                slice.walk_queue.record(queue);
                slice.walk_active.record(active);
            }
            MetricEvent::Fill { waiters } => self.fill_waiters.record(waiters),
        }
    }

    /// Total cycles attributed to the queue and active walk stages so
    /// far, in that order — the interval recorder samples these.
    pub fn stage_cycles(&self) -> (u64, u64) {
        (self.walk_queue.sum(), self.walk_active.sum())
    }

    /// The `n` hottest pages, ordered by TLB misses (descending) then
    /// `(asid, vpn)` (ascending) so the report is deterministic.
    pub fn top_pages(&self, n: usize) -> Vec<((u16, u64), HotPage)> {
        let mut pages: Vec<((u16, u64), HotPage)> =
            self.hot_pages.iter().map(|(&k, &p)| (k, p)).collect();
        pages.sort_by(|a, b| b.1.tlb_misses.cmp(&a.1.tlb_misses).then(a.0.cmp(&b.0)));
        pages.truncate(n);
        pages
    }

    /// Renders the full versioned snapshot: schema header, the supplied
    /// registry of component instruments, the four lifecycle-stage
    /// summaries, and the top-N hot-page table. The output contains no
    /// wall-clock or engine-dependent fields, so identical simulations
    /// produce byte-identical snapshots on every engine.
    pub fn snapshot_json(&self, registry: &MetricsRegistry) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"version\": {SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"registry\": [");
        for (i, (name, inst)) in registry.entries.iter().enumerate() {
            let comma = if i + 1 < registry.entries.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    {}{comma}", inst.render(name));
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"lifecycle\": {{");
        let stages = [
            ("lookup_latency", &self.lookup_latency),
            ("walk_queue", &self.walk_queue),
            ("walk_active", &self.walk_active),
            ("fill_waiters", &self.fill_waiters),
        ];
        for (i, (name, hist)) in stages.iter().enumerate() {
            let comma = if i + 1 < stages.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    \"{name}\": {}{comma}",
                render_summary(&hist.summary())
            );
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"tenants\": [");
        let n_tenants = self.asid_stages.len();
        for (i, (asid, slice)) in self.asid_stages.iter().enumerate() {
            let comma = if i + 1 < n_tenants { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"asid\": {asid}, \"walk_queue\": {}, \"walk_active\": {}}}{comma}",
                render_summary(&slice.walk_queue.summary()),
                render_summary(&slice.walk_active.summary()),
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"hot_pages\": {{");
        let _ = writeln!(s, "    \"top_n\": {HOT_PAGE_TOP_N},");
        let _ = writeln!(s, "    \"tracked\": {},", self.hot_pages.len());
        let _ = writeln!(s, "    \"pages\": [");
        let top = self.top_pages(HOT_PAGE_TOP_N);
        for (i, ((asid, vpn), page)) in top.iter().enumerate() {
            let comma = if i + 1 < top.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "      {{\"asid\": {asid}, \"vpn\": {vpn}, \"tlb_misses\": {}, \"level_refs\": [{}, {}, {}, {}]}}{comma}",
                page.tlb_misses,
                page.level_refs[0],
                page.level_refs[1],
                page.level_refs[2],
                page.level_refs[3],
            );
        }
        let _ = writeln!(s, "    ]");
        let _ = writeln!(s, "  }}");
        let _ = writeln!(s, "}}");
        s
    }
}

impl Ckpt for MetricsSink {
    fn save(&self, w: &mut Saver) {
        self.lookup_latency.save(w);
        self.walk_queue.save(w);
        self.walk_active.save(w);
        self.fill_waiters.save(w);
        w.u64(self.hot_pages.len() as u64);
        let mut keys: Vec<(u16, u64)> = self.hot_pages.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            w.u16(key.0);
            w.u64(key.1);
            self.hot_pages[&key].save(w);
        }
        w.u64(self.asid_stages.len() as u64);
        for (asid, slice) in &self.asid_stages {
            w.u16(*asid);
            slice.save(w);
        }
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.lookup_latency.load(r)?;
        self.walk_queue.load(r)?;
        self.walk_active.load(r)?;
        self.fill_waiters.load(r)?;
        let n = r.u64()? as usize;
        self.hot_pages.clear();
        for _ in 0..n {
            let asid = r.u16()?;
            let vpn = r.u64()?;
            let mut page = HotPage::default();
            page.load(r)?;
            self.hot_pages.insert((asid, vpn), page);
        }
        let n = r.u64()? as usize;
        self.asid_stages.clear();
        for _ in 0..n {
            let asid = r.u16()?;
            let mut slice = AsidStages::default();
            slice.load(r)?;
            self.asid_stages.insert(asid, slice);
        }
        Ok(())
    }
}

/// The metric event channel a component records into.
///
/// `Off` is the default and costs one enum-tag branch per call site —
/// the event closure is never evaluated, which is what makes metrics-off
/// runs bit-identical to unobserved runs. `On` folds events straight
/// into a sink. `Buffer` stages raw events core-locally (the parallel
/// engine's workers cannot share a sink); the engine drains buffers
/// into the observer's sink once per cycle.
#[derive(Debug, Default)]
pub enum Metrics {
    /// Metrics disabled; record calls are no-ops.
    #[default]
    Off,
    /// Fold events directly into a sink.
    On(Box<MetricsSink>),
    /// Stage raw events for a later [`Metrics::absorb`].
    Buffer(Vec<MetricEvent>),
}

impl Metrics {
    /// A channel that folds into a fresh sink.
    pub fn recording() -> Self {
        Metrics::On(Box::default())
    }

    /// A core-local staging buffer.
    pub fn staging() -> Self {
        Metrics::Buffer(Vec::new())
    }

    /// Whether events are being captured at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, Metrics::Off)
    }

    /// Records one event. The closure is only evaluated when metrics
    /// are enabled, so an `Off` channel adds no work beyond the branch.
    #[inline]
    pub fn record(&mut self, f: impl FnOnce() -> MetricEvent) {
        match self {
            Metrics::Off => {}
            Metrics::On(sink) => sink.apply(f()),
            Metrics::Buffer(buf) => buf.push(f()),
        }
    }

    /// Drains a staging buffer into this channel's sink. No-op unless
    /// `self` is `On` and `staged` is `Buffer`.
    pub fn absorb(&mut self, staged: &mut Metrics) {
        if let (Metrics::On(sink), Metrics::Buffer(buf)) = (self, staged) {
            for ev in buf.drain(..) {
                sink.apply(ev);
            }
        }
    }

    /// The accumulated sink, when this channel owns one.
    pub fn sink(&self) -> Option<&MetricsSink> {
        match self {
            Metrics::On(sink) => Some(sink),
            _ => None,
        }
    }
}

impl Ckpt for Metrics {
    fn save(&self, w: &mut Saver) {
        match self {
            Metrics::Off => w.u64(0),
            Metrics::On(sink) => {
                w.u64(1);
                sink.save(w);
            }
            // Staging buffers are engine-internal and provably empty at
            // checkpoint boundaries; only Off/On channels are persisted.
            Metrics::Buffer(_) => unreachable!("staging metrics buffers are never checkpointed"),
        }
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        let tag = r.u64()?;
        match (tag, &mut *self) {
            (0, Metrics::Off) => Ok(()),
            (1, Metrics::On(sink)) => sink.load(r),
            _ => Err(CkptError::Corrupt(
                "metrics on/off state differs from the checkpoint",
            )),
        }
    }
}

/// One labeled instrument in a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub enum Instrument {
    /// A monotonic event count.
    Counter(u64),
    /// A derived scalar (rates, occupancies).
    Gauge(f64),
    /// A distribution condensed to its headline statistics.
    Dist(HistSummary),
}

impl Instrument {
    fn render(&self, name: &str) -> String {
        match self {
            Instrument::Counter(v) => {
                format!("{{\"name\": \"{name}\", \"type\": \"counter\", \"value\": {v}}}")
            }
            Instrument::Gauge(v) => {
                format!("{{\"name\": \"{name}\", \"type\": \"gauge\", \"value\": {v:.4}}}")
            }
            Instrument::Dist(s) => format!(
                "{{\"name\": \"{name}\", \"type\": \"dist\", \"value\": {}}}",
                render_summary(s)
            ),
        }
    }
}

fn render_summary(s: &HistSummary) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"mean\": {:.4}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        s.count, s.sum, s.mean, s.p50, s.p90, s.p99, s.max
    )
}

/// A flat, ordered registry of labeled instruments. Components register
/// under hierarchical dot-separated names (`core0.tlb.hits`,
/// `mem.dram.requests`); the registration order is the render order, so
/// building the registry deterministically yields a deterministic
/// snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<(String, Instrument)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a monotonic counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.entries.push((name.into(), Instrument::Counter(value)));
    }

    /// Registers a derived scalar.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.entries.push((name.into(), Instrument::Gauge(value)));
    }

    /// Registers a distribution by its headline summary.
    pub fn dist(&mut self, name: impl Into<String>, summary: HistSummary) {
        self.entries.push((name.into(), Instrument::Dist(summary)));
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no instruments are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the registered `(name, instrument)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = &(String, Instrument)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckpt::{Loader, Saver};

    #[test]
    fn off_channel_never_evaluates_closure() {
        let mut m = Metrics::Off;
        m.record(|| panic!("closure must not run when metrics are off"));
        assert!(!m.enabled());
    }

    #[test]
    fn sink_folds_are_commutative() {
        let events = [
            MetricEvent::Lookup(2),
            MetricEvent::Miss { asid: 0, vpn: 7 },
            MetricEvent::WalkLevel {
                asid: 0,
                vpn: 7,
                level: 1,
            },
            MetricEvent::WalkLevel {
                asid: 0,
                vpn: 7,
                level: 4,
            },
            MetricEvent::WalkStage {
                asid: 1,
                queue: 3,
                active: 40,
            },
            MetricEvent::Fill { waiters: 2 },
            MetricEvent::Miss { asid: 1, vpn: 9 },
            MetricEvent::Lookup(1),
        ];
        let mut fwd = MetricsSink::new();
        let mut rev = MetricsSink::new();
        for ev in events {
            fwd.apply(ev);
        }
        for ev in events.iter().rev() {
            rev.apply(*ev);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.stage_cycles(), (3, 40));
        assert_eq!(fwd.hot_pages[&(0, 7)].tlb_misses, 1);
        assert_eq!(fwd.hot_pages[&(0, 7)].level_refs, [1, 0, 0, 1]);
        // The per-tenant slice only holds ASID 1's stage cycles.
        assert_eq!(fwd.asid_stages[&1].walk_queue.sum(), 3);
        assert!(!fwd.asid_stages.contains_key(&0));
    }

    #[test]
    fn absorb_drains_buffer_into_sink() {
        let mut on = Metrics::recording();
        let mut staged = Metrics::staging();
        staged.record(|| MetricEvent::Lookup(5));
        staged.record(|| MetricEvent::Miss { asid: 0, vpn: 3 });
        on.absorb(&mut staged);
        on.absorb(&mut staged); // second drain is a no-op
        let sink = on.sink().unwrap();
        assert_eq!(sink.lookup_latency.count(), 1);
        assert_eq!(sink.hot_pages[&(0, 3)].tlb_misses, 1);
        assert!(matches!(&staged, Metrics::Buffer(b) if b.is_empty()));
    }

    #[test]
    fn top_pages_orders_by_misses_then_vpn() {
        let mut sink = MetricsSink::new();
        for (vpn, misses) in [(10u64, 2u64), (3, 5), (8, 2), (1, 1)] {
            for _ in 0..misses {
                sink.apply(MetricEvent::Miss { asid: 0, vpn });
            }
        }
        let top: Vec<u64> = sink.top_pages(3).iter().map(|((_, v), _)| *v).collect();
        assert_eq!(top, vec![3, 8, 10]);
    }

    #[test]
    fn same_vpn_under_different_asids_is_two_pages() {
        let mut sink = MetricsSink::new();
        sink.apply(MetricEvent::Miss { asid: 0, vpn: 5 });
        sink.apply(MetricEvent::Miss { asid: 1, vpn: 5 });
        sink.apply(MetricEvent::Miss { asid: 1, vpn: 5 });
        assert_eq!(sink.hot_pages.len(), 2);
        assert_eq!(sink.hot_pages[&(0, 5)].tlb_misses, 1);
        assert_eq!(sink.hot_pages[&(1, 5)].tlb_misses, 2);
        // Ties break by (asid, vpn): ASID 1 leads on miss count.
        let top = sink.top_pages(2);
        assert_eq!(top[0].0, (1, 5));
        assert_eq!(top[1].0, (0, 5));
    }

    #[test]
    fn snapshot_json_is_deterministic_and_versioned() {
        let mut sink = MetricsSink::new();
        sink.apply(MetricEvent::Miss { asid: 0, vpn: 42 });
        sink.apply(MetricEvent::WalkStage {
            asid: 0,
            queue: 1,
            active: 9,
        });
        let mut reg = MetricsRegistry::new();
        reg.counter("core0.tlb.hits", 12);
        reg.gauge("core0.tlb.hit_rate", 0.75);
        reg.dist("mem.dram.latency", HistSummary::default());
        let a = sink.snapshot_json(&reg);
        let b = sink.snapshot_json(&reg);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"gmmu-metrics\""));
        assert!(a.contains("\"version\": 2"));
        assert!(a.contains("\"core0.tlb.hits\""));
        assert!(a.contains("\"asid\": 0, \"vpn\": 42"));
        assert!(a.contains("\"tenants\": ["));
    }

    #[test]
    fn metrics_ckpt_round_trips_and_enforces_shape() {
        let mut on = Metrics::recording();
        on.record(|| MetricEvent::Lookup(3));
        on.record(|| MetricEvent::Miss { asid: 0, vpn: 5 });
        on.record(|| MetricEvent::WalkLevel {
            asid: 0,
            vpn: 5,
            level: 2,
        });
        on.record(|| MetricEvent::WalkStage {
            asid: 3,
            queue: 2,
            active: 11,
        });
        let mut w = Saver::new();
        on.save(&mut w);
        let bytes = w.into_bytes();

        let mut restored = Metrics::recording();
        restored
            .load(&mut Loader::new(&bytes))
            .expect("round trip must load");
        assert_eq!(restored.sink(), on.sink());

        let mut off = Metrics::Off;
        assert!(off.load(&mut Loader::new(&bytes)).is_err());
    }
}
