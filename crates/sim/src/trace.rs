//! Zero-cost event tracing with a Chrome/Perfetto exporter.
//!
//! The simulator emits *spans* (name, track, start cycle, duration) for
//! interesting episodes: TLB miss→fill, per-lane page walks, warp TLB
//! sleeps, and block residency. All spans are recorded retrospectively at
//! the moment the episode completes — the simulator already carries the
//! start cycle (`WalkDone::enqueued`, `Pending::slept_at`, dispatch
//! stamps), so no begin/end pairing state is needed.
//!
//! Dispatch is a two-variant enum rather than a generic parameter so the
//! simulator keeps a single monomorphization. The off path costs one
//! predictable branch per *event site* (not per cycle): [`Tracer::record`]
//! takes a closure, so event construction is never executed when tracing
//! is off, and event sites only exist on miss/fill/wake/dispatch paths
//! that are already off the hot per-cycle loop.

use crate::Cycle;

/// Track id for the per-core MMU (TLB fill spans).
pub const TID_MMU: u32 = 1000;
/// Base track id for page-walker lanes; lane `i` is `TID_WALKER + i`.
pub const TID_WALKER: u32 = 1100;
/// Base track id for block slots; slot `s` is `TID_DISPATCH + s`.
pub const TID_DISPATCH: u32 = 1200;

/// One completed span. `pid` is the core id, `tid` the track within the
/// core (warp index, walker lane, block slot, ...). Fixed-size argument
/// storage keeps events `Copy` and allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceEvent {
    /// Process id in the Chrome trace model: the core index.
    pub pid: u32,
    /// Thread id in the Chrome trace model: the track within the core.
    pub tid: u32,
    /// Span name, e.g. `"tlb_miss"`.
    pub name: &'static str,
    /// Span category, e.g. `"mmu"`.
    pub cat: &'static str,
    /// Cycle the episode began.
    pub start: Cycle,
    /// Episode length in cycles.
    pub dur: Cycle,
    /// Up to two key/value arguments; only the first `n_args` are live.
    pub args: [(&'static str, u64); 2],
    /// Number of live entries in `args`.
    pub n_args: u8,
}

impl TraceEvent {
    /// A span with no arguments.
    pub fn span(
        name: &'static str,
        cat: &'static str,
        pid: u32,
        tid: u32,
        start: Cycle,
        dur: Cycle,
    ) -> Self {
        TraceEvent {
            pid,
            tid,
            name,
            cat,
            start,
            dur,
            args: [("", 0); 2],
            n_args: 0,
        }
    }

    /// Attaches one argument (up to two; extras are dropped).
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        if (self.n_args as usize) < self.args.len() {
            self.args[self.n_args as usize] = (key, value);
            self.n_args += 1;
        }
        self
    }
}

/// Anything that can receive completed spans.
pub trait TraceSink {
    /// Delivers one completed span.
    fn event(&mut self, ev: TraceEvent);
}

/// In-memory sink that can serialize to the Chrome trace-event format.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceSink for TraceBuffer {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

impl TraceBuffer {
    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes to the Chrome trace-event JSON array format understood
    /// by Perfetto and chrome://tracing. Cycles map 1:1 to microseconds
    /// (`ts`/`dur`), so the UI's "us" readout is really cycles.
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_json_with(&[])
    }

    /// [`TraceBuffer::to_chrome_json`] with extra pre-rendered JSON
    /// objects spliced in after the span rows — used to add `"ph":"C"`
    /// counter-track samples (e.g. per-stage walk latency from the
    /// metrics channel) to a span trace. Each element of `extra` must be
    /// one complete JSON object without a trailing comma.
    pub fn to_chrome_json_with(&self, extra: &[String]) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("[\n");
        for (i, ev) in self.events.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{",
                ev.name, ev.cat, ev.start, ev.dur, ev.pid, ev.tid
            );
            for (j, (k, v)) in ev.args[..ev.n_args as usize].iter().enumerate() {
                let sep = if j == 0 { "" } else { "," };
                let _ = write!(out, "{sep}\"{k}\":{v}");
            }
            let tail = if i + 1 == self.events.len() && extra.is_empty() {
                "}}"
            } else {
                "}},"
            };
            out.push_str(tail);
            out.push('\n');
        }
        for (j, row) in extra.iter().enumerate() {
            out.push_str(row);
            if j + 1 != extra.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Writes the Chrome trace JSON to `path`.
    pub fn write_chrome_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Moves every event out of `other` onto the end of this buffer,
    /// preserving order and leaving `other` empty (capacity retained).
    /// The parallel engine records each core's spans into a staging
    /// buffer and appends them in core-index order every cycle, which
    /// reproduces the serial engine's emission order exactly.
    pub fn append(&mut self, other: &mut TraceBuffer) {
        self.events.append(&mut other.events);
    }
}

/// Enum-dispatched tracer handed through the simulator. [`Tracer::Off`]
/// is the default and records nothing; the closure passed to
/// [`Tracer::record`] is never invoked in that case.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub enum Tracer {
    /// Tracing disabled; all event sites reduce to one branch.
    #[default]
    Off,
    /// Tracing into an in-memory buffer.
    Buffer(TraceBuffer),
}

impl Tracer {
    /// A tracer recording into a fresh buffer.
    pub fn recording() -> Self {
        Tracer::Buffer(TraceBuffer::default())
    }

    /// Whether events are being recorded.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        !matches!(self, Tracer::Off)
    }

    /// Records the event built by `f`, or does nothing when off. `f` is
    /// only evaluated when a sink is attached.
    #[inline(always)]
    pub fn record(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let Tracer::Buffer(buf) = self {
            buf.event(f());
        }
    }

    /// The underlying buffer, if recording.
    pub fn buffer(&self) -> Option<&TraceBuffer> {
        match self {
            Tracer::Off => None,
            Tracer::Buffer(b) => Some(b),
        }
    }
}

/// The span names, categories, and argument keys the simulator emits.
/// Checkpoint restore maps serialized strings back onto these statics so
/// a restored trace compares pointer-for-pointer equal to a live one;
/// unknown strings (from a newer writer) are leaked once instead.
const INTERNED: &[&str] = &[
    "",
    "tlb_miss",
    "page_walk",
    "warp_sleep",
    "block",
    "mmu",
    "walker",
    "warp",
    "dispatch",
    "vpn",
];

fn intern(s: &str) -> &'static str {
    for &k in INTERNED {
        if k == s {
            return k;
        }
    }
    Box::leak(s.to_owned().into_boxed_str())
}

impl crate::ckpt::Ckpt for TraceEvent {
    fn save(&self, w: &mut crate::ckpt::Saver) {
        w.u32(self.pid);
        w.u32(self.tid);
        w.str(self.name);
        w.str(self.cat);
        w.u64(self.start);
        w.u64(self.dur);
        w.u8(self.n_args);
        for (k, v) in &self.args {
            w.str(k);
            w.u64(*v);
        }
    }
    fn load(&mut self, r: &mut crate::ckpt::Loader<'_>) -> Result<(), crate::ckpt::CkptError> {
        self.pid = r.u32()?;
        self.tid = r.u32()?;
        self.name = intern(r.str()?);
        self.cat = intern(r.str()?);
        self.start = r.u64()?;
        self.dur = r.u64()?;
        self.n_args = r.u8()?;
        for slot in &mut self.args {
            let k = intern(r.str()?);
            let v = r.u64()?;
            *slot = (k, v);
        }
        Ok(())
    }
}

impl crate::ckpt::Ckpt for TraceBuffer {
    fn save(&self, w: &mut crate::ckpt::Saver) {
        self.events.save(w);
    }
    fn load(&mut self, r: &mut crate::ckpt::Loader<'_>) -> Result<(), crate::ckpt::CkptError> {
        self.events.load(r)
    }
}

impl crate::ckpt::Ckpt for Tracer {
    fn save(&self, w: &mut crate::ckpt::Saver) {
        match self {
            Tracer::Off => w.u8(0),
            Tracer::Buffer(buf) => {
                w.u8(1);
                buf.save(w);
            }
        }
    }
    /// Restores into a tracer of the *same shape*: the caller attaches
    /// the instruments before loading, and a mismatch (checkpoint taken
    /// with tracing on, restored with it off, or vice versa) is an error
    /// rather than a silent divergence.
    fn load(&mut self, r: &mut crate::ckpt::Loader<'_>) -> Result<(), crate::ckpt::CkptError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, Tracer::Off) => Ok(()),
            (1, Tracer::Buffer(buf)) => buf.load(r),
            _ => Err(crate::ckpt::CkptError::Corrupt(
                "tracer on/off state differs from the checkpoint",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_round_trips_through_checkpoint() {
        use crate::ckpt::{Ckpt, Loader, Saver};
        let mut t = Tracer::recording();
        t.record(|| TraceEvent::span("tlb_miss", "mmu", 3, TID_MMU, 100, 250).arg("vpn", 42));
        t.record(|| TraceEvent::span("page_walk", "walker", 3, TID_WALKER, 110, 200));
        let mut w = Saver::new();
        t.save(&mut w);
        let bytes = w.into_bytes();

        let mut back = Tracer::recording();
        back.load(&mut Loader::new(&bytes)).unwrap();
        assert_eq!(t, back);

        // Shape mismatch is an error, not silence.
        let mut off = Tracer::Off;
        assert!(off.load(&mut Loader::new(&bytes)).is_err());
    }

    #[test]
    fn off_tracer_never_builds_events() {
        let mut t = Tracer::Off;
        t.record(|| unreachable!("closure must not run when tracing is off"));
        assert!(!t.enabled());
        assert!(t.buffer().is_none());
    }

    #[test]
    fn buffer_records_in_order() {
        let mut t = Tracer::recording();
        t.record(|| TraceEvent::span("a", "c", 0, 1, 10, 5));
        t.record(|| TraceEvent::span("b", "c", 0, 2, 12, 3).arg("vpn", 7));
        let buf = t.buffer().unwrap();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.events()[0].name, "a");
        assert_eq!(buf.events()[1].args[0], ("vpn", 7));
        assert_eq!(buf.events()[1].n_args, 1);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Tracer::recording();
        t.record(|| {
            TraceEvent::span("tlb_miss", "mmu", 3, TID_MMU, 100, 250)
                .arg("vpn", 42)
                .arg("warp", 5)
        });
        t.record(|| TraceEvent::span("page_walk", "walker", 3, TID_WALKER, 110, 200));
        let json = t.buffer().unwrap().to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains(r#""name":"tlb_miss""#));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ts":100,"dur":250"#));
        assert!(json.contains(r#""args":{"vpn":42,"warp":5}"#));
        assert!(json.contains(r#""args":{}"#));
        // Exactly one comma-separated top-level list: last entry has no comma.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn chrome_json_with_counter_rows_stays_well_formed() {
        let mut t = Tracer::recording();
        t.record(|| TraceEvent::span("a", "c", 0, 1, 10, 5));
        let rows = vec![
            "{\"name\":\"walk_queue\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"args\":{\"cycles\":3}}"
                .to_string(),
            "{\"name\":\"walk_active\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"args\":{\"cycles\":7}}"
                .to_string(),
        ];
        let json = t.buffer().unwrap().to_chrome_json_with(&rows);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"ph\":\"C\""));
        // Span row gains a comma; the two counter rows are separated by
        // one more; the final row has none.
        assert_eq!(json.matches("},\n").count(), 2);
        // Empty extras must render byte-identically to the plain form.
        assert_eq!(
            t.buffer().unwrap().to_chrome_json(),
            t.buffer().unwrap().to_chrome_json_with(&[])
        );
    }

    #[test]
    fn extra_args_are_dropped() {
        let ev = TraceEvent::span("x", "c", 0, 0, 0, 1)
            .arg("a", 1)
            .arg("b", 2)
            .arg("c", 3);
        assert_eq!(ev.n_args, 2);
        assert_eq!(ev.args, [("a", 1), ("b", 2)]);
    }
}
