//! Plain-text and CSV table rendering for the figure harnesses.
//!
//! Every `fig*` binary in `gmmu-bench` produces one or more [`Table`]s:
//! the same rows/series the paper's figure plots, printed in a form that
//! is easy to eyeball and to diff against `EXPERIMENTS.md`.

use std::fmt;

/// A cell value: text or a float rendered with fixed precision.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free-form text (row labels, configuration names).
    Text(String),
    /// A numeric value rendered with the given number of decimals.
    Num(f64, usize),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v, prec) => format!("{v:.*}", prec),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v, 3)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Num(v as f64, 0)
    }
}

/// A titled table with a header row and data rows.
///
/// # Examples
///
/// ```
/// use gmmu_sim::table::Table;
/// let mut t = Table::new("Figure X", &["bench", "speedup"]);
/// t.row(vec!["bfs".into(), 0.62.into()]);
/// let text = t.to_string();
/// assert!(text.contains("bfs"));
/// assert!(text.contains("0.620"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the cell at (row, col), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&Cell> {
        self.rows.get(row)?.get(col)
    }

    /// Renders as CSV (header row included, title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .map(|c| {
                    let s = c.render();
                    if s.contains(',') || s.contains('"') {
                        format!("\"{}\"", s.replace('"', "\"\""))
                    } else {
                        s
                    }
                })
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(rule_len))?;
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", &["name", "x"]);
        t.row(vec!["a".into(), 1.5f64.into()]);
        t.row(vec!["bb".into(), 10u64.into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let s = sample().to_string();
        assert!(s.contains("== T =="), "{s}");
        assert!(s.contains("1.500"), "{s}");
        assert!(s.contains("10"), "{s}");
        // Every data line has the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", &["name"]);
        t.row(vec!["a,b".into()]);
        assert_eq!(t.to_csv(), "name\n\"a,b\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn cell_accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(0, 0), Some(&Cell::Text("a".into())));
        assert_eq!(t.cell(9, 0), None);
        assert_eq!(t.title(), "T");
    }
}
