//! Deterministic pseudo-random number generation.
//!
//! The simulator must produce bit-identical results across runs, platforms
//! and toolchains, so we implement two small, well-known generators in-tree
//! rather than depending on an external crate whose stream may change:
//!
//! * [`SplitMix64`] — a counter-based mixer. Ideal for *stateless* hashing
//!   of (thread id, site, iteration) tuples into addresses: the same tuple
//!   always yields the same value regardless of evaluation order. This is
//!   what lets kernels regenerate a thread's addresses after warps are
//!   recompacted by TBC.
//! * [`Xoshiro256`] — xoshiro256** 1.0, a fast sequential generator used
//!   for building workload data sets (graphs, key traces).

/// Stateless 64-bit mixing function (the SplitMix64 finalizer).
///
/// # Examples
///
/// ```
/// use gmmu_sim::rng::mix64;
/// assert_eq!(mix64(1), mix64(1));
/// assert_ne!(mix64(1), mix64(2));
/// ```
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two words into one; used to hash tuples.
///
/// # Examples
///
/// ```
/// use gmmu_sim::rng::mix2;
/// assert_ne!(mix2(1, 2), mix2(2, 1));
/// ```
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b))
}

/// Mixes three words into one.
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix64(a ^ mix2(b, c))
}

/// 64-bit FNV-1a hash. Used for stable, human-greppable fingerprints of
/// configuration keys in run metadata — not for randomness.
///
/// ```
/// use gmmu_sim::rng::fnv1a64;
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 sequential generator.
///
/// Mostly used to seed [`Xoshiro256`]; also handy when a tiny generator
/// with a single word of state is enough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 by Blackman & Vigna.
///
/// # Examples
///
/// ```
/// use gmmu_sim::rng::Xoshiro256;
/// let mut a = Xoshiro256::seed_from(7);
/// let mut b = Xoshiro256::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the full 256-bit state from one word via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[range.start, range.end)` without modulo bias
    /// (Lemire's multiply-shift method).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..(i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

/// A Zipf-distributed sampler over ranks `0..n` with exponent `theta`.
///
/// Used to stimulate the `memcached` workload with a skewed key
/// popularity distribution, mirroring the Wikipedia trace the paper uses.
/// Sampling is done by inverting the CDF over a precomputed table.
///
/// # Examples
///
/// ```
/// use gmmu_sim::rng::{Xoshiro256, Zipf};
/// let mut rng = Xoshiro256::seed_from(1);
/// let zipf = Zipf::new(1000, 0.99);
/// let hot = (0..1000).filter(|_| zipf.sample(&mut rng) < 10).count();
/// assert!(hot > 100, "top-10 ranks should dominate, got {hot}");
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with skew `theta` (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has no ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Deterministic, stateless sample: the `i`-th draw of stream `seed`.
    pub fn sample_at(&self, seed: u64, i: u64) -> usize {
        let u = (mix2(seed, i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0xdead_beef), mix64(0xdead_beef));
        // Consecutive inputs should differ in many bits.
        let d = (mix64(1) ^ mix64(2)).count_ones();
        assert!(d > 16, "poor diffusion: {d} bits");
    }

    #[test]
    fn xoshiro_reference_stream_is_stable() {
        let mut rng = Xoshiro256::seed_from(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = Xoshiro256::seed_from(0);
        let second: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = Xoshiro256::seed_from(3);
        let _ = rng.gen_range(5..5);
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Xoshiro256::seed_from(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = Xoshiro256::seed_from(5);
        let z = Zipf::new(10_000, 0.99);
        let n = 20_000;
        let top100 = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        // Under uniform it would be ~1%; Zipf(0.99) gives tens of percent.
        assert!(top100 > n / 10, "not skewed: {top100}/{n}");
    }

    #[test]
    fn zipf_sample_at_is_stateless() {
        let z = Zipf::new(100, 0.8);
        assert_eq!(z.sample_at(7, 3), z.sample_at(7, 3));
        // Different stream positions should not all collapse to one rank.
        let distinct: std::collections::HashSet<_> = (0..50).map(|i| z.sample_at(7, i)).collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(13);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
