//! Hand-rolled checkpoint codec: a versioned, compact binary format
//! for deterministic snapshot/restore of simulation state.
//!
//! The workspace has no external dependencies, so instead of serde each
//! stateful type implements [`Ckpt`]: `save` appends its mutable state
//! to a [`Saver`], and `load` overwrites the state of an *already
//! constructed* object from a [`Loader`]. Loading into a prebuilt
//! object is the key design choice — configuration-derived geometry
//! (core counts, TLB shapes, cache ways, policy kinds) is never
//! serialized; the restorer rebuilds the machine from the same
//! configuration and the checkpoint only carries what a run mutates. A
//! fingerprint of the configuration travels in the header so a
//! checkpoint can refuse to load into a differently-shaped machine.
//!
//! Encoding: unsigned integers are LEB128 varints (checkpoints are
//! dominated by small counters and cycle deltas), `f64` is 8 raw
//! little-endian bytes of its bit pattern, and containers are a varint
//! length followed by elements. The format is versioned through
//! [`Saver::header`] / [`Loader::header`]; any layout change must bump
//! the writer's version, and readers reject versions they don't know
//! (see DESIGN.md "Checkpoint format").

use std::collections::VecDeque;
use std::fmt;

/// Why a checkpoint failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The buffer ended mid-value.
    Truncated,
    /// The leading magic bytes did not match.
    BadMagic,
    /// The format version is not one this reader understands.
    BadVersion(u32),
    /// The configuration fingerprint in the header does not match the
    /// machine being restored into.
    ConfigMismatch {
        /// Fingerprint the restoring machine computed.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
    /// A value was structurally invalid for the object being loaded.
    Corrupt(&'static str),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CkptError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CkptError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different configuration \
                 (fingerprint {found:#018x}, machine has {expected:#018x})"
            ),
            CkptError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Serializes state into a byte buffer.
#[derive(Debug, Default)]
pub struct Saver {
    buf: Vec<u8>,
}

impl Saver {
    /// An empty saver.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes the file header: magic, format version, and the
    /// configuration fingerprint [`Loader::header`] will verify.
    pub fn header(&mut self, magic: &[u8; 4], version: u32, fingerprint: u64) {
        self.buf.extend_from_slice(magic);
        self.u32(version);
        self.u64(fingerprint);
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// LEB128 varint.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// LEB128 varint.
    pub fn u16(&mut self, v: u16) {
        self.u64(v as u64);
    }

    /// LEB128 varint.
    pub fn u32(&mut self, v: u32) {
        self.u64(v as u64);
    }

    /// LEB128 varint (usize travels as u64).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Two varints (low, high 64 bits).
    pub fn u128(&mut self, v: u128) {
        self.u64(v as u64);
        self.u64((v >> 64) as u64);
    }

    /// One byte, 0 or 1.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// The bit pattern, 8 raw little-endian bytes.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Varint length + raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Varint length + UTF-8 bytes.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Deserializes state from a byte buffer.
#[derive(Debug)]
pub struct Loader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Loader<'a> {
    /// A loader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads and verifies the file header written by [`Saver::header`],
    /// returning the stored configuration fingerprint.
    pub fn header(&mut self, magic: &[u8; 4], version: u32) -> Result<u64, CkptError> {
        let mut found = [0u8; 4];
        for b in &mut found {
            *b = self.u8()?;
        }
        if &found != magic {
            return Err(CkptError::BadMagic);
        }
        let v = self.u32()?;
        if v != version {
            return Err(CkptError::BadVersion(v));
        }
        self.u64()
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        let b = *self.buf.get(self.pos).ok_or(CkptError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(CkptError::Corrupt("varint overflows u64"));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// LEB128 varint, range-checked.
    pub fn u16(&mut self) -> Result<u16, CkptError> {
        u16::try_from(self.u64()?).map_err(|_| CkptError::Corrupt("u16 out of range"))
    }

    /// LEB128 varint, range-checked.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        u32::try_from(self.u64()?).map_err(|_| CkptError::Corrupt("u32 out of range"))
    }

    /// LEB128 varint, range-checked.
    pub fn usize(&mut self) -> Result<usize, CkptError> {
        usize::try_from(self.u64()?).map_err(|_| CkptError::Corrupt("usize out of range"))
    }

    /// Two varints (low, high 64 bits).
    pub fn u128(&mut self) -> Result<u128, CkptError> {
        let lo = self.u64()? as u128;
        let hi = self.u64()? as u128;
        Ok(lo | (hi << 64))
    }

    /// One byte, 0 or 1.
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CkptError::Corrupt("bool must be 0 or 1")),
        }
    }

    /// 8 raw little-endian bytes, reinterpreted.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        let end = self.pos + 8;
        let bytes = self.buf.get(self.pos..end).ok_or(CkptError::Truncated)?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("8-byte slice"),
        )))
    }

    /// Varint length + raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let len = self.usize()?;
        let end = self.pos.checked_add(len).ok_or(CkptError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CkptError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Varint length + UTF-8 bytes.
    pub fn str(&mut self) -> Result<&'a str, CkptError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CkptError::Corrupt("invalid UTF-8"))
    }
}

/// State that can be checkpointed: `save` appends the mutable state,
/// `load` overwrites it on an already-constructed object. Geometry and
/// configuration are never serialized — `load` assumes `self` was built
/// from the same configuration the saved object was (enforced by the
/// fingerprint in the checkpoint header).
pub trait Ckpt {
    /// Appends this object's mutable state.
    fn save(&self, w: &mut Saver);
    /// Overwrites this object's mutable state from the stream.
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError>;
}

macro_rules! ckpt_prim {
    ($t:ty, $put:ident, $get:ident) => {
        impl Ckpt for $t {
            fn save(&self, w: &mut Saver) {
                w.$put(*self);
            }
            fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
                *self = r.$get()?;
                Ok(())
            }
        }
    };
}

ckpt_prim!(u8, u8, u8);
ckpt_prim!(u16, u16, u16);
ckpt_prim!(u32, u32, u32);
ckpt_prim!(u64, u64, u64);
ckpt_prim!(u128, u128, u128);
ckpt_prim!(usize, usize, usize);
ckpt_prim!(bool, bool, bool);
ckpt_prim!(f64, f64, f64);

impl<T: Ckpt + Default> Ckpt for Vec<T> {
    fn save(&self, w: &mut Saver) {
        w.usize(self.len());
        for item in self {
            item.save(w);
        }
    }

    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        let len = r.usize()?;
        self.clear();
        self.resize_with(len, T::default);
        for item in self.iter_mut() {
            item.load(r)?;
        }
        Ok(())
    }
}

impl<T: Ckpt + Default> Ckpt for VecDeque<T> {
    fn save(&self, w: &mut Saver) {
        w.usize(self.len());
        for item in self {
            item.save(w);
        }
    }

    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        let len = r.usize()?;
        self.clear();
        for _ in 0..len {
            let mut item = T::default();
            item.load(r)?;
            self.push_back(item);
        }
        Ok(())
    }
}

impl<T: Ckpt + Default> Ckpt for Option<T> {
    fn save(&self, w: &mut Saver) {
        match self {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                v.save(w);
            }
        }
    }

    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        if r.bool()? {
            let mut v = T::default();
            v.load(r)?;
            *self = Some(v);
        } else {
            *self = None;
        }
        Ok(())
    }
}

impl<A: Ckpt, B: Ckpt> Ckpt for (A, B) {
    fn save(&self, w: &mut Saver) {
        self.0.save(w);
        self.1.save(w);
    }

    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.0.load(r)?;
        self.1.load(r)
    }
}

/// FNV-1a over `bytes` — the configuration fingerprint hash. Stable
/// across platforms and toolchains (unlike `DefaultHasher`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Saver::new();
        w.u8(0xab);
        w.u16(40_000);
        w.u32(3_000_000_000);
        w.u64(u64::MAX);
        w.u128(u128::MAX - 7);
        w.usize(12345);
        w.bool(true);
        w.f64(-1.5e300);
        w.str("hello");
        let bytes = w.into_bytes();
        let mut r = Loader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 40_000);
        assert_eq!(r.u32().unwrap(), 3_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), u128::MAX - 7);
        assert_eq!(r.usize().unwrap(), 12345);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), -1.5e300);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Saver::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Loader::new(&bytes[..bytes.len() - 1]);
        assert_eq!(r.u64(), Err(CkptError::Truncated));
        let mut r = Loader::new(&[]);
        assert_eq!(r.f64(), Err(CkptError::Truncated));
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let mut w = Saver::new();
        w.header(b"GMCK", 1, 0xfeed);
        let bytes = w.into_bytes();
        let mut r = Loader::new(&bytes);
        assert_eq!(r.header(b"GMCK", 1).unwrap(), 0xfeed);
        let mut r = Loader::new(&bytes);
        assert_eq!(r.header(b"XXXX", 1), Err(CkptError::BadMagic));
        let mut r = Loader::new(&bytes);
        assert_eq!(r.header(b"GMCK", 2), Err(CkptError::BadVersion(1)));
    }

    #[test]
    fn containers_round_trip_into_prebuilt_objects() {
        let v: Vec<u64> = vec![0, 1, u64::MAX, 42];
        let dq: VecDeque<u32> = [7u32, 8, 9].into_iter().collect();
        let opt: Option<u64> = Some(99);
        let pair: (u64, bool) = (5, true);
        let mut w = Saver::new();
        v.save(&mut w);
        dq.save(&mut w);
        opt.save(&mut w);
        None::<u64>.save(&mut w);
        pair.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Loader::new(&bytes);
        let mut v2: Vec<u64> = vec![123; 17];
        let mut dq2: VecDeque<u32> = VecDeque::new();
        let mut opt2: Option<u64> = None;
        let mut opt3: Option<u64> = Some(1);
        let mut pair2: (u64, bool) = (0, false);
        v2.load(&mut r).unwrap();
        dq2.load(&mut r).unwrap();
        opt2.load(&mut r).unwrap();
        opt3.load(&mut r).unwrap();
        pair2.load(&mut r).unwrap();
        assert_eq!(v2, v);
        assert_eq!(dq2, dq);
        assert_eq!(opt2, opt);
        assert_eq!(opt3, None);
        assert_eq!(pair2, pair);
    }

    #[test]
    fn varints_are_compact_for_small_values() {
        let mut w = Saver::new();
        for v in 0..128u64 {
            w.u64(v);
        }
        assert_eq!(w.len(), 128, "one byte per small value");
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"config-a"), fnv1a64(b"config-b"));
    }
}
