//! Statistics primitives used throughout the simulator.
//!
//! Every number the paper reports (miss rates, page divergence, per-miss
//! latencies, idle-cycle fractions) is accumulated with the types here so
//! that the figure harnesses can read them back uniformly.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use gmmu_sim::stats::Counter;
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total` (0 when `total` is 0).
    pub fn rate(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Mean/min/max/stddev accumulator without storing samples.
///
/// # Examples
///
/// ```
/// use gmmu_sim::stats::Summary;
/// let mut s = Summary::new();
/// s.record(10);
/// s.record(30);
/// assert_eq!(s.mean(), 20.0);
/// assert_eq!(s.max(), 30);
/// assert_eq!(s.stddev(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    count: u64,
    sum: u64,
    sum_sq: u128,
    min: u64,
    max: u64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v as u128 * v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Population standard deviation (0 when empty). Computed from the
    /// running sum of squares; the subtraction is clamped at zero so
    /// floating-point cancellation can never produce a NaN.
    pub fn stddev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum as f64 / n;
        let var = self.sum_sq as f64 / n - mean * mean;
        var.max(0.0).sqrt()
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A dense histogram over small integer values (e.g. page divergence,
/// which is bounded by the 32-thread warp width).
///
/// Values beyond the internal bound are clamped into the last bucket.
///
/// # Examples
///
/// ```
/// use gmmu_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(1);
/// h.record(1);
/// h.record(4);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.mean(), 2.0);
/// assert_eq!(h.percentile(0.5), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

/// Default bucket capacity: one bucket per possible warp page divergence.
const DEFAULT_BUCKETS: usize = 65;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a histogram with the default bound (64).
    pub fn new() -> Self {
        Self::with_bound(DEFAULT_BUCKETS - 1)
    }

    /// Creates a histogram holding exact counts for values `0..=bound`.
    pub fn with_bound(bound: usize) -> Self {
        Self {
            buckets: vec![0; bound + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample (clamped into the last bucket when too large).
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = (v as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the (unclamped) samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of the (unclamped) samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Condenses the histogram into the fixed set of headline statistics
    /// the figure tables and metrics snapshots report.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            p50: self.percentile(0.5),
            p90: self.percentile(0.9),
            p99: self.percentile(0.99),
            max: self.max,
        }
    }

    /// The smallest bucket value `v` such that at least `p` (0..=1) of the
    /// samples are `<= v`. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // At least one sample must be accumulated before the threshold is
        // met: p = 0.0 means "the smallest non-empty bucket", not bucket 0.
        let threshold = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (v, &n) in self.buckets.iter().enumerate() {
            acc += n;
            if acc >= threshold {
                return v as u64;
            }
        }
        (self.buckets.len() - 1) as u64
    }

    /// Count of samples that fell in bucket `v`.
    pub fn bucket(&self, v: usize) -> u64 {
        self.buckets.get(v).copied().unwrap_or(0)
    }

    /// Merges another histogram of the same bound into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "merging histograms with different bounds"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// The headline statistics of one [`Histogram`], produced by
/// [`Histogram::summary`]. Percentiles inherit the histogram's bucket
/// clamping (values beyond the bound report as the bound); `sum`, `mean`
/// and `max` are exact.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of the samples.
    pub sum: u64,
    /// Exact arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (bucket-resolution).
    pub p50: u64,
    /// 90th percentile (bucket-resolution).
    pub p90: u64,
    /// 99th percentile (bucket-resolution).
    pub p99: u64,
    /// Exact largest sample.
    pub max: u64,
}

impl crate::ckpt::Ckpt for Counter {
    fn save(&self, w: &mut crate::ckpt::Saver) {
        w.u64(self.0);
    }
    fn load(&mut self, r: &mut crate::ckpt::Loader<'_>) -> Result<(), crate::ckpt::CkptError> {
        self.0 = r.u64()?;
        Ok(())
    }
}

impl crate::ckpt::Ckpt for Summary {
    fn save(&self, w: &mut crate::ckpt::Saver) {
        w.u64(self.count);
        w.u64(self.sum);
        w.u128(self.sum_sq);
        w.u64(self.min);
        w.u64(self.max);
    }
    fn load(&mut self, r: &mut crate::ckpt::Loader<'_>) -> Result<(), crate::ckpt::CkptError> {
        self.count = r.u64()?;
        self.sum = r.u64()?;
        self.sum_sq = r.u128()?;
        self.min = r.u64()?;
        self.max = r.u64()?;
        Ok(())
    }
}

impl crate::ckpt::Ckpt for Histogram {
    fn save(&self, w: &mut crate::ckpt::Saver) {
        self.buckets.save(w);
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.max);
    }
    fn load(&mut self, r: &mut crate::ckpt::Loader<'_>) -> Result<(), crate::ckpt::CkptError> {
        self.buckets.load(r)?;
        self.count = r.u64()?;
        self.sum = r.u64()?;
        self.max = r.u64()?;
        Ok(())
    }
}

/// Ratio helper: `num / den` as a percentage, 0 when `den == 0`.
pub fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Ratio helper: `num / den`, 0 when `den == 0`.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.rate(40), 0.25);
        assert_eq!(c.rate(0), 0.0);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        for v in [5, 1, 9, 3] {
            s.record(v);
        }
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 9);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 4.5);
    }

    #[test]
    fn summary_merge_matches_combined_stream() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for v in 0..10 {
            a.record(v);
            all.record(v);
        }
        for v in 100..105 {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all); // includes sum_sq, so stddev merges exactly
        assert_eq!(a.stddev(), all.stddev());
    }

    #[test]
    fn summary_stddev() {
        let mut s = Summary::new();
        assert_eq!(s.stddev(), 0.0);
        s.record(7);
        assert_eq!(s.stddev(), 0.0); // single sample has no spread
        let mut s = Summary::new();
        for v in [2, 4, 4, 4, 5, 5, 7, 9] {
            s.record(v);
        }
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 2.0);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v % 10);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(0.5), 4);
        assert_eq!(h.percentile(1.0), 9);
        assert_eq!(h.max(), 9);
    }

    #[test]
    fn percentile_zero_skips_empty_buckets() {
        // Regression: a threshold of 0 used to be satisfied before any
        // mass accumulated, reporting bucket 0 even when it was empty.
        let mut h = Histogram::new();
        h.record(5);
        h.record(7);
        assert_eq!(h.percentile(0.0), 5);
        assert_eq!(h.percentile(1.0), 7);
    }

    #[test]
    fn histogram_clamps_but_means_exactly() {
        let mut h = Histogram::with_bound(4);
        h.record(100);
        h.record(0);
        assert_eq!(h.bucket(4), 1); // clamped
        assert_eq!(h.mean(), 50.0); // mean uses true values
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::with_bound(8);
        let mut b = Histogram::with_bound(8);
        a.record(1);
        b.record(2);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(2), 1);
        assert_eq!(a.max(), 3);
    }

    #[test]
    fn histogram_summary_headline_stats() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v % 10);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, h.sum());
        assert_eq!(s.mean, 4.5);
        assert_eq!(s.p50, 4);
        assert_eq!(s.p90, 8);
        assert_eq!(s.p99, 9);
        assert_eq!(s.max, 9);
        let empty = Histogram::new().summary();
        assert_eq!(empty, HistSummary::default());
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::with_bound(4);
        let b = Histogram::with_bound(8);
        a.merge(&b);
    }

    #[test]
    fn pct_and_ratio_handle_zero_denominator() {
        assert_eq!(pct(1, 0), 0.0);
        assert_eq!(pct(1, 4), 25.0);
        assert_eq!(ratio(3, 4), 0.75);
        assert_eq!(ratio(3, 0), 0.0);
    }
}
