//! Trace replay: rebuild the captured machine and drive it from
//! recorded tables instead of a synthetic workload.
//!
//! A [`TraceKernel`] implements [`Kernel`] by answering every
//! `(thread, site, iteration)` query from the trace's record stream —
//! the same pure-function contract the synthetic workloads satisfy, so
//! all three execution engines run it unchanged and produce statistics
//! bit-identical to the captured run. [`rebuild_space`] reconstructs the
//! address space by replaying the recorded region mappings in order
//! (the frame allocator is deterministic, so identical mapping order
//! means identical page tables *and* identical allocator state) and
//! re-unmapping the pages that were demand-paged out at capture time.

use crate::format::{Trace, TraceLaunch, TraceRecord, WARP_LANES};
use gmmu_sim::ckpt::CkptError;
use gmmu_simt::gpu::RunStats;
use gmmu_simt::observe::Observer;
use gmmu_simt::program::{Kernel, Program, ThreadId};
use gmmu_simt::{Gpu, GpuConfig};
use gmmu_vm::{AddressSpace, Region, SpaceConfig, VAddr, Vpn};
use std::collections::HashSet;

/// The address-space state a trace records: creation config, regions in
/// mapping order, and which pages were unmapped at launch.
#[derive(Debug, Clone)]
pub struct SpaceSnapshot {
    /// Configuration the space was created with.
    pub config: SpaceConfig,
    /// Regions in mapping order.
    pub regions: Vec<Region>,
    /// VPNs (at each region's page stride) with no translation.
    pub unmapped_vpns: Vec<u64>,
}

/// Captures the rebuildable state of `space`. Pages are probed at each
/// region's own stride (4 KiB or 2 MiB), matching how
/// [`AddressSpace::unmap_pages_where`] walks them.
pub fn snapshot_space(space: &AddressSpace) -> SpaceSnapshot {
    let mut unmapped = Vec::new();
    for region in space.regions() {
        let step = region.page_size.bytes() / gmmu_vm::addr::PAGE_BYTES;
        let first = region.base.vpn().raw();
        let mut vpn = first;
        while vpn < first + region.num_pages() {
            if space.translate(Vpn::new(vpn).base()).is_err() {
                unmapped.push(vpn);
            }
            vpn += step;
        }
    }
    SpaceSnapshot {
        config: space.config(),
        regions: space.regions().to_vec(),
        unmapped_vpns: unmapped,
    }
}

/// Rebuilds the captured address space: same creation config, regions
/// re-mapped in recorded order, demand-paged pages re-unmapped. The
/// result is byte-for-byte the machine state the captured run launched
/// against — including the frame allocator's cursor, which the mapping
/// replay advances through the identical allocation sequence.
///
/// # Errors
///
/// [`CkptError::Corrupt`] when the recorded regions cannot be remapped
/// (frame exhaustion under the recorded `SpaceConfig`) or when a
/// rebuilt region lands at a different base than the trace recorded —
/// either means the launch section does not describe a space this
/// library could have produced.
pub fn rebuild_space(launch: &TraceLaunch) -> Result<AddressSpace, CkptError> {
    rebuild_space_asid(launch, 0)
}

/// [`rebuild_space`] into the `asid`-th physical window (multi-tenant
/// replay rebuilds tenant `t`'s space at ASID `t`). ASID 0 is
/// byte-identical to [`rebuild_space`].
///
/// # Errors
///
/// Same conditions as [`rebuild_space`].
pub fn rebuild_space_asid(launch: &TraceLaunch, asid: u16) -> Result<AddressSpace, CkptError> {
    let mut space = AddressSpace::try_with_asid(launch.space, asid)
        .map_err(|_| CkptError::Corrupt("space config cannot hold a page-table root"))?;
    for want in &launch.regions {
        let got = space
            .map_region(&want.name, want.bytes, want.page_size)
            .map_err(|_| CkptError::Corrupt("recorded regions exhaust physical frames"))?;
        if got.base != want.base || got.bytes != want.bytes {
            return Err(CkptError::Corrupt("rebuilt region layout diverged"));
        }
    }
    if !launch.unmapped_vpns.is_empty() {
        let set: HashSet<u64> = launch.unmapped_vpns.iter().copied().collect();
        space.unmap_pages_where(|vpn| set.contains(&vpn.raw()));
    }
    Ok(space)
}

/// A kernel whose data-dependent behaviour comes from recorded tables.
pub struct TraceKernel {
    name: String,
    program: Program,
    num_threads: u32,
    block_threads: u32,
    num_sites: usize,
    mem: Vec<Vec<u64>>,
    branch: Vec<Vec<bool>>,
}

impl TraceKernel {
    /// Expands a trace's record stream back into dense per-(site,
    /// thread) answer tables.
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupt`] on records that reference threads or
    /// sites outside the launch bounds, or whose iterations arrive out
    /// of order (the canonical stream is iteration-ascending per lane).
    pub fn from_trace(trace: &Trace) -> Result<Self, CkptError> {
        Self::from_parts(&trace.launch, &trace.records)
    }

    /// [`TraceKernel::from_trace`] from a launch and record stream held
    /// outside a [`Trace`] (multi-tenant traces carry one such pair per
    /// tenant).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceKernel::from_trace`].
    pub fn from_parts(launch: &TraceLaunch, records: &[TraceRecord]) -> Result<Self, CkptError> {
        let num_threads = launch.num_threads as usize;
        let num_sites = launch.program.num_sites();
        let mut mem = vec![Vec::new(); num_sites * num_threads];
        let mut branch = vec![Vec::new(); num_sites * num_threads];
        let lane_tid = |warp: u32, lane: u32| -> Result<usize, CkptError> {
            let tid = (warp * WARP_LANES + lane) as usize;
            if tid >= num_threads {
                return Err(CkptError::Corrupt(
                    "trace record names a thread out of range",
                ));
            }
            Ok(tid)
        };
        for rec in records {
            match rec {
                TraceRecord::Mem {
                    site,
                    warp,
                    iter,
                    lanes,
                    addrs,
                } => {
                    if *site as usize >= num_sites {
                        return Err(CkptError::Corrupt("trace record names an unknown site"));
                    }
                    let mut next = 0usize;
                    for lane in 0..WARP_LANES {
                        if lanes & (1 << lane) == 0 {
                            continue;
                        }
                        let tid = lane_tid(*warp, lane)?;
                        let seq = &mut mem[*site as usize * num_threads + tid];
                        if seq.len() != *iter as usize {
                            return Err(CkptError::Corrupt("memory records out of order"));
                        }
                        seq.push(addrs[next]);
                        next += 1;
                    }
                }
                TraceRecord::Branch {
                    site,
                    warp,
                    iter,
                    eval,
                    taken,
                } => {
                    if *site as usize >= num_sites {
                        return Err(CkptError::Corrupt("trace record names an unknown site"));
                    }
                    for lane in 0..WARP_LANES {
                        if eval & (1 << lane) == 0 {
                            continue;
                        }
                        let tid = lane_tid(*warp, lane)?;
                        let seq = &mut branch[*site as usize * num_threads + tid];
                        if seq.len() != *iter as usize {
                            return Err(CkptError::Corrupt("branch records out of order"));
                        }
                        seq.push(taken & (1 << lane) != 0);
                    }
                }
                TraceRecord::Sync { .. } => {}
            }
        }
        Ok(Self {
            name: launch.kernel_name.clone(),
            program: launch.program.clone(),
            num_threads: launch.num_threads,
            block_threads: launch.block_threads,
            num_sites,
            mem,
            branch,
        })
    }
}

impl Kernel for TraceKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn num_threads(&self) -> u32 {
        self.num_threads
    }
    fn block_threads(&self) -> u32 {
        self.block_threads
    }

    fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr {
        debug_assert!((site as usize) < self.num_sites);
        let seq = &self.mem[site as usize * self.num_threads as usize + tid as usize];
        let raw = seq.get(iter as usize).copied().unwrap_or_else(|| {
            panic!(
                "trace has no memory record for tid {tid} site {site} iter {iter} \
                 (recorded {} iterations) — trace and engine disagree about the \
                 execution, which a conformance run should have caught",
                seq.len()
            )
        });
        VAddr::new(raw)
    }

    fn branch_taken(&self, tid: ThreadId, site: u16, iter: u32) -> bool {
        debug_assert!((site as usize) < self.num_sites);
        let seq = &self.branch[site as usize * self.num_threads as usize + tid as usize];
        *seq.get(iter as usize).unwrap_or_else(|| {
            panic!(
                "trace has no branch record for tid {tid} site {site} iter {iter} \
                 (recorded {} iterations)",
                seq.len()
            )
        })
    }
}

/// Replays a trace on the machine described by `config` (normally
/// [`Trace::launch`]'s config, possibly with the engine or worker-count
/// overridden — both are stats-invariant) and returns the run's
/// statistics. Compare against [`Trace::stats`] with
/// [`RunStats::diff`]: an empty diff is the conformance contract.
///
/// # Errors
///
/// [`CkptError::Corrupt`] when the trace's launch section cannot be
/// rebuilt or its records are inconsistent (see
/// [`TraceKernel::from_trace`] / [`rebuild_space`]).
pub fn replay_run(trace: &Trace, config: &GpuConfig) -> Result<RunStats, CkptError> {
    let (stats, _) = replay_run_observed(trace, config, &mut Observer::off())?;
    Ok(stats)
}

/// [`replay_run`] with observation instruments attached. When the
/// observer's metrics channel is on, the returned `Option<String>` is
/// the run's versioned metrics snapshot (see `Gpu::metrics_snapshot`),
/// rendered while the replayed machine is still alive; it is `None`
/// when metrics are off. Snapshots are engine-invariant, so replaying
/// the same trace on any engine yields byte-identical snapshot JSON.
///
/// # Errors
///
/// Same conditions as [`replay_run`].
pub fn replay_run_observed(
    trace: &Trace,
    config: &GpuConfig,
    obs: &mut Observer,
) -> Result<(RunStats, Option<String>), CkptError> {
    let kernel = TraceKernel::from_trace(trace)?;
    let mut space = rebuild_space(&trace.launch)?;
    let mut gpu = Gpu::new(config.clone());
    let stats = gpu.run_faulted(&kernel, &mut space, obs);
    let snapshot = gpu.metrics_snapshot(obs);
    Ok((stats, snapshot))
}
