#![warn(missing_docs)]

//! GMTR trace capture and replay.
//!
//! The simulator's kernels supply data-dependent behaviour (memory
//! addresses, branch outcomes) as pure functions of
//! `(thread, site, iteration)`. That purity makes traces trivially
//! sufficient: record every answer a kernel gives during one run
//! ([`capture::Recorder`]), and a kernel reconstructed from those
//! answers ([`replay::TraceKernel`]) is indistinguishable to the
//! simulator — any engine replays the captured run bit-identically,
//! which the `validate` bench harness and `tests/trace.rs` enforce.
//!
//! The on-disk format (`GMTR` v1, [`format`]) is self-contained: one
//! file carries the machine configuration, program, address-space
//! layout, record stream, and the captured run's statistics, and the
//! reader refuses foreign, truncated, corrupt, or future-versioned
//! files with the same taxonomy as `GMCK` checkpoint images.

pub mod capture;
pub mod format;
pub mod replay;
pub mod tenant;

pub use capture::{assemble, capture_launch, Recorder};
pub use format::{Trace, TraceLaunch, TraceRecord, TRACE_MAGIC, TRACE_VERSION, WARP_LANES};
pub use replay::{
    rebuild_space, rebuild_space_asid, replay_run, replay_run_observed, snapshot_space,
    SpaceSnapshot, TraceKernel,
};
pub use tenant::{
    capture_tenants, replay_tenants, MultiTrace, TenantSection, MT_TRACE_MAGIC, MT_TRACE_VERSION,
};
