//! Trace capture: a [`Kernel`] wrapper that records every data-dependent
//! answer the wrapped kernel gives.
//!
//! Kernels are pure functions of `(thread, site, iteration)`, so a
//! complete recording of their answers *is* the workload: replaying the
//! recorded tables through any engine reproduces the captured run
//! bit-identically. The [`Recorder`] intercepts [`Kernel::mem_addr`] and
//! [`Kernel::branch_taken`], appends first-time answers to dense
//! per-(site, thread) tables, and verifies that replays of the same
//! coordinates (TLB-miss wakeups, dynamic-warp reissues) return the same
//! value. Tables — not an event log — make the emitted byte stream a
//! pure function of the kernel, independent of which engine (or how many
//! worker threads) drove the capture.

use crate::format::{Trace, TraceLaunch, TraceRecord, WARP_LANES};
use crate::replay::snapshot_space;
use gmmu_simt::gpu::RunStats;
use gmmu_simt::program::{Kernel, Program, ThreadId};
use gmmu_simt::GpuConfig;
use gmmu_vm::{AddressSpace, VAddr};
use std::sync::Mutex;

/// Records the wrapped kernel's data-dependent behaviour as it runs.
pub struct Recorder<'k> {
    inner: &'k dyn Kernel,
    num_threads: usize,
    num_sites: usize,
    mem: Mutex<Vec<Vec<u64>>>,
    branch: Mutex<Vec<Vec<bool>>>,
}

impl<'k> Recorder<'k> {
    /// Wraps `inner` with empty recording tables.
    pub fn new(inner: &'k dyn Kernel) -> Self {
        let num_threads = inner.num_threads() as usize;
        let num_sites = inner.program().num_sites();
        Self {
            inner,
            num_threads,
            num_sites,
            mem: Mutex::new(vec![Vec::new(); num_sites * num_threads]),
            branch: Mutex::new(vec![Vec::new(); num_sites * num_threads]),
        }
    }

    #[inline]
    fn idx(&self, tid: ThreadId, site: u16) -> usize {
        site as usize * self.num_threads + tid as usize
    }

    /// Flattens the recorded tables into the canonical record stream:
    /// warp-major, site-ascending, iteration-ascending, with one
    /// kernel-exit sync record per warp.
    pub fn into_records(self) -> Vec<TraceRecord> {
        let mem = self.mem.into_inner().expect("recorder mutex poisoned");
        let branch = self.branch.into_inner().expect("recorder mutex poisoned");
        let n_warps = (self.num_threads as u32).div_ceil(WARP_LANES);
        let mut records = Vec::new();
        for warp in 0..n_warps {
            let lane0 = (warp * WARP_LANES) as usize;
            let lanes_in = WARP_LANES.min(self.num_threads as u32 - warp * WARP_LANES) as usize;
            for site in 0..self.num_sites {
                let max_mem = (0..lanes_in)
                    .map(|l| mem[site * self.num_threads + lane0 + l].len())
                    .max()
                    .unwrap_or(0);
                for iter in 0..max_mem {
                    let mut lanes = 0u32;
                    let mut addrs = Vec::new();
                    for lane in 0..lanes_in {
                        let seq = &mem[site * self.num_threads + lane0 + lane];
                        if iter < seq.len() {
                            lanes |= 1 << lane;
                            addrs.push(seq[iter]);
                        }
                    }
                    records.push(TraceRecord::Mem {
                        site: site as u16,
                        warp,
                        iter: iter as u32,
                        lanes,
                        addrs,
                    });
                }
                let max_br = (0..lanes_in)
                    .map(|l| branch[site * self.num_threads + lane0 + l].len())
                    .max()
                    .unwrap_or(0);
                for iter in 0..max_br {
                    let mut eval = 0u32;
                    let mut taken = 0u32;
                    for lane in 0..lanes_in {
                        let seq = &branch[site * self.num_threads + lane0 + lane];
                        if iter < seq.len() {
                            eval |= 1 << lane;
                            if seq[iter] {
                                taken |= 1 << lane;
                            }
                        }
                    }
                    records.push(TraceRecord::Branch {
                        site: site as u16,
                        warp,
                        iter: iter as u32,
                        eval,
                        taken,
                    });
                }
            }
            records.push(TraceRecord::Sync { warp, kind: 0 });
        }
        records
    }
}

impl Kernel for Recorder<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn program(&self) -> &Program {
        self.inner.program()
    }
    fn num_threads(&self) -> u32 {
        self.inner.num_threads()
    }
    fn block_threads(&self) -> u32 {
        self.inner.block_threads()
    }

    fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr {
        let v = self.inner.mem_addr(tid, site, iter);
        let idx = self.idx(tid, site);
        let mut mem = self.mem.lock().expect("recorder mutex poisoned");
        let seq = &mut mem[idx];
        let iter = iter as usize;
        if iter == seq.len() {
            seq.push(v.raw());
        } else if iter < seq.len() {
            debug_assert_eq!(seq[iter], v.raw(), "kernel is not a pure function");
        } else {
            panic!("non-contiguous iteration {iter} at tid {tid} mem site {site}");
        }
        v
    }

    fn branch_taken(&self, tid: ThreadId, site: u16, iter: u32) -> bool {
        let v = self.inner.branch_taken(tid, site, iter);
        let idx = self.idx(tid, site);
        let mut branch = self.branch.lock().expect("recorder mutex poisoned");
        let seq = &mut branch[idx];
        let iter = iter as usize;
        if iter == seq.len() {
            seq.push(v);
        } else if iter < seq.len() {
            debug_assert_eq!(seq[iter], v, "kernel is not a pure function");
        } else {
            panic!("non-contiguous iteration {iter} at tid {tid} branch site {site}");
        }
        v
    }
}

/// Snapshots everything replay needs *before* a run starts: kernel
/// metadata, the address-space layout (including pages currently
/// unmapped for demand paging), and the machine configuration. Pair the
/// result with a [`Recorder`]'s records and the run's [`RunStats`] via
/// [`assemble`] once the run finishes.
pub fn capture_launch(
    kernel: &dyn Kernel,
    space: &AddressSpace,
    config: &GpuConfig,
    source: &str,
) -> TraceLaunch {
    let snap = snapshot_space(space);
    TraceLaunch {
        kernel_name: kernel.name().to_owned(),
        num_threads: kernel.num_threads(),
        block_threads: kernel.block_threads(),
        program: kernel.program().clone(),
        space: snap.config,
        regions: snap.regions,
        unmapped_vpns: snap.unmapped_vpns,
        config: config.clone(),
        source: source.to_owned(),
    }
}

/// Combines a pre-run launch snapshot, a finished recorder, and the
/// run's statistics into a [`Trace`] ready to encode.
pub fn assemble(launch: TraceLaunch, recorder: Recorder<'_>, stats: &RunStats) -> Trace {
    let mut stats = stats.clone();
    stats.wall_s = 0.0;
    Trace {
        launch,
        records: recorder.into_records(),
        stats,
    }
}
