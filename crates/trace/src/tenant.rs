//! Multi-tenant trace capture and replay (`GMTM` v1).
//!
//! A multi-tenant run is N kernels in N address spaces sharing one GPU
//! under a [`TenantPolicy`]. Its trace is a container around N
//! per-tenant sections — each the same `(launch, records)` pair a GMTR
//! file carries — plus the policy and the combined run statistics
//! (including the per-tenant slice GMTR's pinned `RunStats` layout
//! excludes). The single-tenant `GMTR` format is untouched: its byte
//! stream stays pinned by the golden fixtures while `GMTM` evolves
//! independently.
//!
//! Layout (all integers LEB128 varints via the [`gmmu_sim::ckpt`]
//! codec):
//!
//! ```text
//! header   := magic "GMTM" · version · fingerprint
//! policy   := tagged · walker_tokens · walker_max_age · watchdog
//! launches := n_tenants · n_tenants × length-prefixed launch block
//!             (fingerprint = FNV-1a of the concatenated blocks)
//! records  := n_tenants × ((tag · body)* · tag 0 · record count)
//! stats    := combined RunStats (wall_s zeroed) · per-tenant stats
//! ```
//!
//! The fingerprint covers every tenant's launch bytes, so a flipped bit
//! in any tenant's machine description is refused before interpretation,
//! with the same error taxonomy as `GMTR` and `GMCK`.

use crate::capture::{capture_launch, Recorder};
use crate::format::{
    load_launch, load_record, save_launch, save_record, TraceLaunch, TraceRecord, TAG_END,
};
use crate::replay::TraceKernel;
use gmmu_sim::ckpt::{fnv1a64, Ckpt, CkptError, Loader, Saver};
use gmmu_sim::Cycle;
use gmmu_simt::gpu::RunStats;
use gmmu_simt::observe::Observer;
use gmmu_simt::program::Kernel;
use gmmu_simt::{Gpu, GpuConfig, TenantJob, TenantPolicy, TenantStats};
use gmmu_vm::AddressSpace;

/// Magic bytes opening every multi-tenant trace file.
pub const MT_TRACE_MAGIC: [u8; 4] = *b"GMTM";
/// Multi-tenant trace format version.
pub const MT_TRACE_VERSION: u32 = 1;

/// One tenant's slice of a multi-tenant trace: the same launch state
/// and record stream a single-tenant GMTR file carries.
#[derive(Debug, Clone)]
pub struct TenantSection {
    /// Starting state of this tenant's kernel and address space.
    pub launch: TraceLaunch,
    /// This tenant's record stream, in canonical emission order.
    pub records: Vec<TraceRecord>,
}

/// A decoded multi-tenant trace.
#[derive(Debug, Clone)]
pub struct MultiTrace {
    /// Multi-tenant policy of the captured run.
    pub policy: TenantPolicy,
    /// Per-tenant sections; index == ASID.
    pub tenants: Vec<TenantSection>,
    /// Combined statistics of the captured run, `wall_s` zeroed and
    /// the per-tenant slice (`stats.tenants`) populated.
    pub stats: RunStats,
}

fn save_policy(p: &TenantPolicy, w: &mut Saver) {
    w.bool(p.tagged);
    w.u32(p.walker_tokens);
    w.u64(p.walker_max_age);
    w.u64(p.watchdog);
}

fn load_policy(r: &mut Loader<'_>) -> Result<TenantPolicy, CkptError> {
    Ok(TenantPolicy {
        tagged: r.bool()?,
        walker_tokens: r.u32()?,
        walker_max_age: r.u64()?,
        watchdog: r.u64()?,
    })
}

fn save_tenant_stats(ts: &[TenantStats], w: &mut Saver) {
    w.usize(ts.len());
    for t in ts {
        w.u16(t.asid);
        w.u64(t.instructions);
        w.u64(t.blocks_done);
        w.u64(t.finished_at);
        w.u64(t.faults);
    }
}

fn load_tenant_stats(r: &mut Loader<'_>) -> Result<Vec<TenantStats>, CkptError> {
    let n = r.usize()?;
    let mut out = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        out.push(TenantStats {
            asid: r.u16()?,
            instructions: r.u64()?,
            blocks_done: r.u64()?,
            finished_at: r.u64()? as Cycle,
            faults: r.u64()?,
        });
    }
    Ok(out)
}

impl MultiTrace {
    /// Serializes the trace; byte output is a pure function of the
    /// contents, so re-capturing a replayed run reproduces the file
    /// byte for byte (the conformance tests assert this).
    pub fn encode(&self) -> Vec<u8> {
        let mut blocks: Vec<Vec<u8>> = Vec::with_capacity(self.tenants.len());
        let mut all = Vec::new();
        for t in &self.tenants {
            let mut s = Saver::new();
            save_launch(&t.launch, &mut s);
            let b = s.into_bytes();
            all.extend_from_slice(&b);
            blocks.push(b);
        }
        let mut w = Saver::new();
        w.header(&MT_TRACE_MAGIC, MT_TRACE_VERSION, fnv1a64(&all));
        save_policy(&self.policy, &mut w);
        w.usize(self.tenants.len());
        for b in &blocks {
            w.bytes(b);
        }
        for t in &self.tenants {
            for rec in &t.records {
                save_record(rec, &mut w);
            }
            w.u8(TAG_END);
            w.u64(t.records.len() as u64);
        }
        let mut stats = self.stats.clone();
        stats.wall_s = 0.0;
        stats.save(&mut w);
        save_tenant_stats(&self.stats.tenants, &mut w);
        w.into_bytes()
    }

    /// Parses and validates a multi-tenant trace file.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`crate::Trace::decode`]: [`CkptError::BadMagic`]
    /// for foreign files (including single-tenant `GMTR` files),
    /// [`CkptError::BadVersion`] for future revisions,
    /// [`CkptError::ConfigMismatch`] when the launch blocks do not hash
    /// to the header fingerprint, [`CkptError::Truncated`] and
    /// [`CkptError::Corrupt`] for structural damage.
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Loader::new(bytes);
        let found = r.header(&MT_TRACE_MAGIC, MT_TRACE_VERSION)?;
        let policy = load_policy(&mut r)?;
        let n = r.usize()?;
        if n == 0 {
            return Err(CkptError::Corrupt("multi-tenant trace with zero tenants"));
        }
        let mut blocks: Vec<&[u8]> = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            blocks.push(r.bytes()?);
        }
        let mut all = Vec::new();
        for b in &blocks {
            all.extend_from_slice(b);
        }
        let expected = fnv1a64(&all);
        if expected != found {
            return Err(CkptError::ConfigMismatch { expected, found });
        }
        let mut tenants = Vec::with_capacity(n);
        for b in blocks {
            let mut lr = Loader::new(b);
            let launch = load_launch(&mut lr)?;
            if lr.remaining() != 0 {
                return Err(CkptError::Corrupt("trailing bytes in launch section"));
            }
            tenants.push(TenantSection {
                launch,
                records: Vec::new(),
            });
        }
        for t in &mut tenants {
            loop {
                let tag = r.u8()?;
                if tag == TAG_END {
                    break;
                }
                t.records.push(load_record(tag, &mut r)?);
            }
            let count = r.u64()?;
            if count != t.records.len() as u64 {
                return Err(CkptError::Corrupt("record count mismatch"));
            }
        }
        let mut stats = RunStats::zeroed();
        stats.load(&mut r)?;
        stats.tenants = load_tenant_stats(&mut r)?;
        if r.remaining() != 0 {
            return Err(CkptError::Corrupt("trailing bytes after trace"));
        }
        Ok(MultiTrace {
            policy,
            tenants,
            stats,
        })
    }
}

/// Captures a multi-tenant run: wraps every kernel in a [`Recorder`],
/// runs the jobs under `policy` on a fresh [`Gpu`] built from `config`,
/// and assembles the sections with the combined statistics. Returns the
/// trace and the run's stats.
///
/// `spaces[t]` must carry ASID `t` (build with
/// [`AddressSpace::with_asid`] or the workloads crate's scenario
/// builder); the run mutates the spaces (demand paging), exactly as the
/// capture-time run did.
pub fn capture_tenants(
    kernels: &[&dyn Kernel],
    spaces: &mut [AddressSpace],
    config: &GpuConfig,
    policy: TenantPolicy,
    source: &str,
) -> (MultiTrace, RunStats) {
    assert_eq!(kernels.len(), spaces.len(), "one space per kernel");
    let launches: Vec<TraceLaunch> = kernels
        .iter()
        .zip(spaces.iter())
        .enumerate()
        .map(|(t, (k, sp))| capture_launch(*k, sp, config, &format!("{source} [tenant {t}]")))
        .collect();
    let recorders: Vec<Recorder<'_>> = kernels.iter().map(|k| Recorder::new(*k)).collect();
    let mut jobs: Vec<TenantJob<'_>> = recorders
        .iter()
        .zip(spaces.iter_mut())
        .map(|(rec, space)| TenantJob {
            kernel: rec as &dyn Kernel,
            space,
        })
        .collect();
    let stats = Gpu::new(config.clone()).run_tenants(&mut jobs, policy, &mut Observer::off());
    drop(jobs);
    let tenants = launches
        .into_iter()
        .zip(recorders)
        .map(|(launch, rec)| TenantSection {
            launch,
            records: rec.into_records(),
        })
        .collect();
    (
        MultiTrace {
            policy,
            tenants,
            stats: stats.clone(),
        },
        stats,
    )
}

/// Replays a multi-tenant trace on the machine described by `config`
/// (normally tenant 0's captured config, possibly with the engine or
/// worker count overridden — both are stats-invariant). Returns the
/// run's statistics and, when the observer's metrics channel is on, the
/// versioned metrics snapshot. Compare against [`MultiTrace::stats`]
/// with [`RunStats::diff`]: an empty diff is the conformance contract.
///
/// # Errors
///
/// [`CkptError::Corrupt`] when a tenant's launch section cannot be
/// rebuilt at its ASID or its records are inconsistent.
pub fn replay_tenants(
    trace: &MultiTrace,
    config: &GpuConfig,
    obs: &mut Observer,
) -> Result<(RunStats, Option<String>), CkptError> {
    let kernels: Vec<TraceKernel> = trace
        .tenants
        .iter()
        .map(|t| TraceKernel::from_parts(&t.launch, &t.records))
        .collect::<Result<_, _>>()?;
    let mut spaces: Vec<AddressSpace> = trace
        .tenants
        .iter()
        .enumerate()
        .map(|(t, sec)| crate::replay::rebuild_space_asid(&sec.launch, t as u16))
        .collect::<Result<_, _>>()?;
    let mut jobs: Vec<TenantJob<'_>> = kernels
        .iter()
        .zip(spaces.iter_mut())
        .map(|(k, space)| TenantJob {
            kernel: k as &dyn Kernel,
            space,
        })
        .collect();
    let mut gpu = Gpu::new(config.clone());
    let stats = gpu.run_tenants(&mut jobs, trace.policy, obs);
    let snapshot = gpu.metrics_snapshot(obs);
    Ok((stats, snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu_simt::program::{MemKind, Op, Program};
    use gmmu_vm::SpaceConfig;

    fn tiny_multi() -> MultiTrace {
        let program = Program::new(vec![Op::Mem {
            site: 0,
            kind: MemKind::Load,
        }]);
        let launch = |name: &str| TraceLaunch {
            kernel_name: name.into(),
            num_threads: 32,
            block_threads: 32,
            program: program.clone(),
            space: SpaceConfig::default(),
            regions: Vec::new(),
            unmapped_vpns: Vec::new(),
            config: GpuConfig::default(),
            source: "unit".into(),
        };
        let mut stats = RunStats::zeroed();
        stats.tenants = vec![
            TenantStats {
                asid: 0,
                instructions: 10,
                blocks_done: 1,
                finished_at: 99,
                faults: 0,
            },
            TenantStats {
                asid: 1,
                instructions: 20,
                blocks_done: 1,
                finished_at: 120,
                faults: 3,
            },
        ];
        MultiTrace {
            policy: TenantPolicy::default(),
            tenants: vec![
                TenantSection {
                    launch: launch("a"),
                    records: vec![TraceRecord::Sync { warp: 0, kind: 0 }],
                },
                TenantSection {
                    launch: launch("b"),
                    records: vec![
                        TraceRecord::Mem {
                            site: 0,
                            warp: 0,
                            iter: 0,
                            lanes: 1,
                            addrs: vec![0x4000_0000],
                        },
                        TraceRecord::Sync { warp: 0, kind: 0 },
                    ],
                },
            ],
            stats,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let t = tiny_multi();
        let bytes = t.encode();
        let back = MultiTrace::decode(&bytes).unwrap();
        assert_eq!(back.policy, t.policy);
        assert_eq!(back.tenants.len(), 2);
        assert_eq!(back.tenants[0].launch.kernel_name, "a");
        assert_eq!(back.tenants[1].records, t.tenants[1].records);
        assert_eq!(back.stats.tenants, t.stats.tenants);
        assert_eq!(back.encode(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn gmtr_magic_is_refused() {
        let mut bytes = tiny_multi().encode();
        bytes[..4].copy_from_slice(b"GMTR");
        assert_eq!(MultiTrace::decode(&bytes).unwrap_err(), CkptError::BadMagic);
    }

    #[test]
    fn future_version_is_refused() {
        let mut bytes = tiny_multi().encode();
        assert_eq!(bytes[4], 1);
        bytes[4] = 9;
        assert_eq!(
            MultiTrace::decode(&bytes).unwrap_err(),
            CkptError::BadVersion(9)
        );
    }

    #[test]
    fn launch_bit_flip_is_a_fingerprint_mismatch() {
        let bytes = tiny_multi().encode();
        let idx = bytes
            .windows(4)
            .position(|w| w == b"unit")
            .expect("source string in a launch block");
        let mut bad = bytes.clone();
        bad[idx] ^= 0x20;
        assert!(matches!(
            MultiTrace::decode(&bad),
            Err(CkptError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_refused() {
        let bytes = tiny_multi().encode();
        for cut in [1, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = MultiTrace::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated | CkptError::ConfigMismatch { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn zero_tenants_is_corrupt() {
        let mut t = tiny_multi();
        t.tenants.clear();
        t.stats.tenants.clear();
        let bytes = t.encode();
        assert_eq!(
            MultiTrace::decode(&bytes).unwrap_err(),
            CkptError::Corrupt("multi-tenant trace with zero tenants")
        );
    }
}
