//! The GMTR v1 binary trace format.
//!
//! A trace is a fully self-contained replay input: one file carries the
//! machine configuration, the kernel's instruction stream, the address
//! space layout (regions plus any pages left unmapped for demand
//! paging), every data-dependent answer the kernel gave during the
//! captured run, and the run's final statistics. Replaying needs nothing
//! but the file — no workload builder, no seed, no matching binary
//! version.
//!
//! Layout (all integers LEB128 varints via the [`gmmu_sim::ckpt`]
//! codec):
//!
//! ```text
//! header   := magic "GMTR" · version · fingerprint
//! launch   := length-prefixed byte block (fingerprint = FNV-1a of it):
//!             kernel name · num_threads · block_threads · program ·
//!             space config · regions · unmapped-vpn deltas ·
//!             gpu config · source string
//! records  := (tag · body)* terminated by tag 0 · record count
//! stats    := RunStats of the captured run (wall_s zeroed)
//! ```
//!
//! The header fingerprint covers the *launch section bytes*, not a
//! machine fingerprint: any flipped bit in the launch block is refused
//! as [`CkptError::ConfigMismatch`] before the reader interprets a
//! single field. Foreign magic, unknown versions, truncation, and
//! trailing garbage are refused exactly like `GMCK` checkpoint images
//! (see DESIGN.md §11).

use gmmu_sim::ckpt::{fnv1a64, Ckpt, CkptError, Loader, Saver};
use gmmu_simt::gpu::RunStats;
use gmmu_simt::program::Program;
use gmmu_simt::GpuConfig;
use gmmu_vm::{Region, SpaceConfig};

/// Magic bytes opening every trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"GMTR";
/// Trace format version. Bumped whenever the layout changes; old
/// readers refuse newer files rather than misread them (same policy as
/// `CKPT_VERSION`, see DESIGN.md §11).
pub const TRACE_VERSION: u32 = 1;

/// Warp width, which fixes the lane-mask geometry of trace records.
pub const WARP_LANES: u32 = 32;

pub(crate) const TAG_END: u8 = 0;
const TAG_MEM: u8 = 1;
const TAG_BRANCH: u8 = 2;
const TAG_SYNC: u8 = 3;

/// Everything needed to reconstruct the captured run's starting state.
#[derive(Debug, Clone)]
pub struct TraceLaunch {
    /// Kernel name as [`gmmu_simt::Kernel::name`] reported it.
    pub kernel_name: String,
    /// Total threads launched.
    pub num_threads: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// The instruction stream all threads execute.
    pub program: Program,
    /// Configuration the captured address space was created with.
    pub space: SpaceConfig,
    /// Regions in mapping order — replay re-maps them in this order so
    /// the frame allocator replays the identical allocation sequence.
    pub regions: Vec<Region>,
    /// Virtual page numbers (region-stride granularity) that were
    /// unmapped when the captured run launched (demand-paged starts).
    pub unmapped_vpns: Vec<u64>,
    /// The full machine configuration of the captured run.
    pub config: GpuConfig,
    /// Free-form provenance string (e.g. "bfs tiny seed=7").
    pub source: String,
}

/// One event in the record stream.
///
/// Records are emitted warp-major, then site-ascending, then
/// iteration-ascending, so the byte stream is identical no matter which
/// engine (or how many worker threads) produced the capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// The access footprint of one warp's execution of a memory site:
    /// one address per set lane, in ascending lane order.
    Mem {
        /// Static memory site.
        site: u16,
        /// Warp index (`tid / 32`).
        warp: u32,
        /// Per-(thread, site) iteration number.
        iter: u32,
        /// Bit `l` set = lane `l` executed this (site, iter).
        lanes: u32,
        /// Virtual addresses of the set lanes, ascending lane order.
        addrs: Vec<u64>,
    },
    /// The outcome of one warp's execution of a branch site.
    Branch {
        /// Static branch site.
        site: u16,
        /// Warp index.
        warp: u32,
        /// Per-(thread, site) iteration number.
        iter: u32,
        /// Lanes that evaluated the branch at this iteration.
        eval: u32,
        /// Subset of `eval` that took the branch.
        taken: u32,
    },
    /// A synchronization event. Kind 0 = kernel exit; every captured
    /// warp emits exactly one at the end of its record run, which is
    /// how the reader knows the warp's stream is complete.
    Sync {
        /// Warp index.
        warp: u32,
        /// Event kind (0 = kernel exit).
        kind: u8,
    },
}

/// Maps a signed delta onto an unsigned varint (small magnitudes stay
/// short regardless of sign).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A decoded trace: launch state, record stream, and the captured
/// run's statistics.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Starting state of the captured run.
    pub launch: TraceLaunch,
    /// The record stream, in canonical emission order.
    pub records: Vec<TraceRecord>,
    /// Statistics of the captured run, `wall_s` zeroed (the one
    /// nondeterministic field never travels in a trace).
    pub stats: RunStats,
}

pub(crate) fn save_launch(launch: &TraceLaunch, w: &mut Saver) {
    w.str(&launch.kernel_name);
    w.u32(launch.num_threads);
    w.u32(launch.block_threads);
    launch.program.save(w);
    launch.space.save(w);
    launch.regions.save(w);
    // Ascending VPNs encode as first-value + deltas, so a fully
    // demand-paged start (every page unmapped) stays one byte per page.
    w.usize(launch.unmapped_vpns.len());
    let mut prev = 0u64;
    for &vpn in &launch.unmapped_vpns {
        w.u64(vpn.wrapping_sub(prev));
        prev = vpn;
    }
    launch.config.save(w);
    w.str(&launch.source);
}

pub(crate) fn load_launch(r: &mut Loader<'_>) -> Result<TraceLaunch, CkptError> {
    let kernel_name = r.str()?.to_owned();
    let num_threads = r.u32()?;
    let block_threads = r.u32()?;
    let mut program = Program::new(Vec::new());
    program.load(r)?;
    let mut space = SpaceConfig::default();
    space.load(r)?;
    let mut regions: Vec<Region> = Vec::new();
    regions.load(r)?;
    let n_unmapped = r.usize()?;
    let mut unmapped_vpns = Vec::with_capacity(n_unmapped.min(1 << 20));
    let mut prev = 0u64;
    for _ in 0..n_unmapped {
        prev = prev.wrapping_add(r.u64()?);
        unmapped_vpns.push(prev);
    }
    let mut config = GpuConfig::default();
    config.load(r)?;
    let source = r.str()?.to_owned();
    Ok(TraceLaunch {
        kernel_name,
        num_threads,
        block_threads,
        program,
        space,
        regions,
        unmapped_vpns,
        config,
        source,
    })
}

pub(crate) fn save_record(rec: &TraceRecord, w: &mut Saver) {
    match rec {
        TraceRecord::Mem {
            site,
            warp,
            iter,
            lanes,
            addrs,
        } => {
            w.u8(TAG_MEM);
            w.u16(*site);
            w.u32(*warp);
            w.u32(*iter);
            w.u32(*lanes);
            // First address raw, then zigzag lane-to-lane deltas:
            // coalesced warps (the common case) cost ~1 byte per lane.
            let mut prev: Option<u64> = None;
            for &a in addrs {
                match prev {
                    None => w.u64(a),
                    Some(p) => w.u64(zigzag(a.wrapping_sub(p) as i64)),
                }
                prev = Some(a);
            }
        }
        TraceRecord::Branch {
            site,
            warp,
            iter,
            eval,
            taken,
        } => {
            w.u8(TAG_BRANCH);
            w.u16(*site);
            w.u32(*warp);
            w.u32(*iter);
            w.u32(*eval);
            w.u32(*taken);
        }
        TraceRecord::Sync { warp, kind } => {
            w.u8(TAG_SYNC);
            w.u32(*warp);
            w.u8(*kind);
        }
    }
}

pub(crate) fn load_record(tag: u8, r: &mut Loader<'_>) -> Result<TraceRecord, CkptError> {
    match tag {
        TAG_MEM => {
            let site = r.u16()?;
            let warp = r.u32()?;
            let iter = r.u32()?;
            let lanes = r.u32()?;
            let mut addrs = Vec::with_capacity(lanes.count_ones() as usize);
            let mut prev: Option<u64> = None;
            for _ in 0..lanes.count_ones() {
                let a = match prev {
                    None => r.u64()?,
                    Some(p) => p.wrapping_add(unzigzag(r.u64()?) as u64),
                };
                addrs.push(a);
                prev = Some(a);
            }
            Ok(TraceRecord::Mem {
                site,
                warp,
                iter,
                lanes,
                addrs,
            })
        }
        TAG_BRANCH => {
            let site = r.u16()?;
            let warp = r.u32()?;
            let iter = r.u32()?;
            let eval = r.u32()?;
            let taken = r.u32()?;
            if taken & !eval != 0 {
                return Err(CkptError::Corrupt("branch takes lanes it never evaluated"));
            }
            Ok(TraceRecord::Branch {
                site,
                warp,
                iter,
                eval,
                taken,
            })
        }
        TAG_SYNC => Ok(TraceRecord::Sync {
            warp: r.u32()?,
            kind: r.u8()?,
        }),
        _ => Err(CkptError::Corrupt("unknown trace record tag")),
    }
}

impl Trace {
    /// Serializes the trace. Byte output is a pure function of the
    /// contents — the conformance suite asserts that re-capturing a
    /// replayed run reproduces the original file byte for byte.
    pub fn encode(&self) -> Vec<u8> {
        let mut launch = Saver::new();
        save_launch(&self.launch, &mut launch);
        let launch_bytes = launch.into_bytes();
        let mut w = Saver::new();
        w.header(&TRACE_MAGIC, TRACE_VERSION, fnv1a64(&launch_bytes));
        w.bytes(&launch_bytes);
        for rec in &self.records {
            save_record(rec, &mut w);
        }
        w.u8(TAG_END);
        w.u64(self.records.len() as u64);
        let mut stats = self.stats.clone();
        stats.wall_s = 0.0;
        stats.save(&mut w);
        w.into_bytes()
    }

    /// Parses and validates a trace file.
    ///
    /// # Errors
    ///
    /// * [`CkptError::BadMagic`] — not a GMTR file.
    /// * [`CkptError::BadVersion`] — written by a newer format revision.
    /// * [`CkptError::ConfigMismatch`] — launch section does not hash to
    ///   the header fingerprint (bit rot, truncated copy, hand edit).
    /// * [`CkptError::Truncated`] — the byte stream ends mid-value,
    ///   including a missing end-of-records marker.
    /// * [`CkptError::Corrupt`] — structurally invalid contents
    ///   (unknown tags, record-count mismatch, trailing bytes).
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Loader::new(bytes);
        let found = r.header(&TRACE_MAGIC, TRACE_VERSION)?;
        let launch_bytes = r.bytes()?;
        let expected = fnv1a64(launch_bytes);
        if expected != found {
            return Err(CkptError::ConfigMismatch { expected, found });
        }
        let mut lr = Loader::new(launch_bytes);
        let launch = load_launch(&mut lr)?;
        if lr.remaining() != 0 {
            return Err(CkptError::Corrupt("trailing bytes in launch section"));
        }
        let mut records = Vec::new();
        loop {
            let tag = r.u8()?;
            if tag == TAG_END {
                break;
            }
            records.push(load_record(tag, &mut r)?);
        }
        let count = r.u64()?;
        if count != records.len() as u64 {
            return Err(CkptError::Corrupt("record count mismatch"));
        }
        let mut stats = RunStats::zeroed();
        stats.load(&mut r)?;
        if r.remaining() != 0 {
            return Err(CkptError::Corrupt("trailing bytes after trace"));
        }
        Ok(Trace {
            launch,
            records,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> Trace {
        use gmmu_simt::program::{MemKind, Op};
        let program = Program::new(vec![
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            },
            Op::Branch {
                site: 1,
                taken_pc: 0,
                reconv_pc: 2,
            },
        ]);
        Trace {
            launch: TraceLaunch {
                kernel_name: "unit".into(),
                num_threads: 64,
                block_threads: 32,
                program,
                space: SpaceConfig::default(),
                regions: Vec::new(),
                unmapped_vpns: vec![5, 9, 1000],
                config: GpuConfig::default(),
                source: "unit test".into(),
            },
            records: vec![
                TraceRecord::Mem {
                    site: 0,
                    warp: 0,
                    iter: 0,
                    lanes: 0b101,
                    addrs: vec![0x4000_0000, 0x4000_0080],
                },
                TraceRecord::Branch {
                    site: 1,
                    warp: 0,
                    iter: 0,
                    eval: 0b111,
                    taken: 0b010,
                },
                TraceRecord::Sync { warp: 0, kind: 0 },
            ],
            stats: RunStats::zeroed(),
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn encode_decode_round_trips() {
        let t = tiny_trace();
        let bytes = t.encode();
        let back = Trace::decode(&bytes).unwrap();
        assert_eq!(back.launch.kernel_name, t.launch.kernel_name);
        assert_eq!(back.launch.unmapped_vpns, t.launch.unmapped_vpns);
        assert_eq!(back.launch.program, t.launch.program);
        assert_eq!(back.records, t.records);
        assert!(back.stats.diff(&t.stats).is_empty());
        assert_eq!(back.encode(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn foreign_magic_is_refused() {
        let mut bytes = tiny_trace().encode();
        bytes[..4].copy_from_slice(b"GMCK");
        assert_eq!(Trace::decode(&bytes).unwrap_err(), CkptError::BadMagic);
    }

    #[test]
    fn future_version_is_refused() {
        let mut bytes = tiny_trace().encode();
        // Version 1 encodes as the single varint byte at offset 4.
        assert_eq!(bytes[4], 1);
        bytes[4] = 2;
        assert_eq!(Trace::decode(&bytes).unwrap_err(), CkptError::BadVersion(2));
    }

    #[test]
    fn launch_bit_flip_is_a_fingerprint_mismatch() {
        let bytes = tiny_trace().encode();
        // Find a byte inside the launch block (header is 4 magic +
        // 1 version varint + 9 fingerprint varint max; flip well past it
        // but before the records) — the kernel name lives there.
        let mut bad = bytes.clone();
        let idx = bytes
            .windows(4)
            .position(|w| w == b"unit")
            .expect("kernel name in launch block");
        bad[idx] ^= 0x20;
        assert!(matches!(
            Trace::decode(&bad),
            Err(CkptError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_refused_everywhere() {
        let bytes = tiny_trace().encode();
        for cut in [1, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            let err = Trace::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated | CkptError::ConfigMismatch { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut bytes = tiny_trace().encode();
        bytes.push(0);
        assert_eq!(
            Trace::decode(&bytes).unwrap_err(),
            CkptError::Corrupt("trailing bytes after trace")
        );
    }

    #[test]
    fn impossible_branch_mask_is_corrupt() {
        let mut t = tiny_trace();
        t.records[1] = TraceRecord::Branch {
            site: 1,
            warp: 0,
            iter: 0,
            eval: 0b001,
            taken: 0b010,
        };
        let bytes = t.encode();
        assert_eq!(
            Trace::decode(&bytes).unwrap_err(),
            CkptError::Corrupt("branch takes lanes it never evaluated")
        );
    }
}
