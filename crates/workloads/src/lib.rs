#![warn(missing_docs)]

//! The paper's six evaluation workloads, rebuilt as deterministic SIMT
//! kernels (Section 5.1).
//!
//! The paper runs five Rodinia benchmarks — `bfs` (graph traversal),
//! `kmeans` (clustering), `streamcluster` (data mining), `mummergpu`
//! (DNA sequence alignment), `pathfinder` (grid dynamic programming) —
//! plus `memcached` stimulated with Wikipedia traces. CUDA binaries
//! cannot run here, so each workload is re-derived from its algorithm's
//! memory-access structure: the same data structures are laid out in the
//! simulated address space and each kernel touches them the way the
//! original does (see DESIGN.md §2 for the substitution argument).
//! What matters to the paper's experiments is preserved:
//!
//! * memory instructions stay under ~25% of all instructions;
//! * every kernel misses a 128-entry TLB steadily (9–26% of lookups
//!   here; the paper reports 22–70% — see EXPERIMENTS.md for why a
//!   lower band is required for the naive design to degrade by the
//!   published 20–50% rather than collapse);
//! * average page divergence is low for the streaming kernels, > 4 for
//!   `bfs` and ≈ 8 for `mummergpu`, with high maxima (Figure 3);
//! * `bfs`, `mummergpu` and `memcached` diverge heavily at branches
//!   (the TBC experiments), and all six have intra-warp locality that
//!   round-robin scheduling destroys (the CCWS experiments).
//!
//! Every kernel is a pure function of `(thread, site, iteration)` plus
//! an immutable pre-built data set, so runs are deterministic and
//! replay/compaction safe.

pub mod bfs;
pub mod kmeans;
pub mod memcached;
pub mod mummergpu;
pub mod pathfinder;
pub mod streamcluster;
pub mod tenants;
mod util;

use gmmu_sim::fault::{FaultInjectConfig, FaultInjector};
use gmmu_simt::Kernel;
use gmmu_vm::{AddressSpace, PageSize, SpaceConfig};

/// Workload size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Unit-test scale: hundreds of threads, megabytes of data.
    Tiny,
    /// Experiment scale: fills an 8-core GPU; figure sweeps finish in
    /// minutes while footprints still dwarf TLB reach by >100×.
    Small,
    /// Paper scale: fills the 30-core configuration.
    Full,
}

impl Scale {
    /// Total threads launched.
    pub fn threads(self) -> u32 {
        match self {
            Scale::Tiny => 1024,
            Scale::Small => 16 * 1024,
            Scale::Full => 48 * 1024,
        }
    }

    /// Data-size multiplier (working sets scale with the machine so
    /// footprints always dwarf TLB reach).
    pub fn data_factor(self) -> u64 {
        match self {
            Scale::Tiny => 4,
            Scale::Small => 16,
            Scale::Full => 48,
        }
    }
}

/// The six benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// Rodinia graph traversal.
    Bfs,
    /// Rodinia clustering.
    Kmeans,
    /// Rodinia data mining.
    Streamcluster,
    /// Rodinia DNA sequence alignment.
    Mummergpu,
    /// Rodinia grid dynamic programming.
    Pathfinder,
    /// Key-value store with a Zipf (Wikipedia-like) request trace.
    Memcached,
}

impl Bench {
    /// All six, in the paper's figure order.
    pub fn all() -> [Bench; 6] {
        [
            Bench::Bfs,
            Bench::Kmeans,
            Bench::Streamcluster,
            Bench::Mummergpu,
            Bench::Pathfinder,
            Bench::Memcached,
        ]
    }

    /// Benchmark name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Bench::Bfs => "bfs",
            Bench::Kmeans => "kmeans",
            Bench::Streamcluster => "streamcluster",
            Bench::Mummergpu => "mummergpu",
            Bench::Pathfinder => "pathfinder",
            Bench::Memcached => "memcached",
        }
    }
}

impl std::fmt::Display for Bench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A built workload: the kernel plus the address space its data lives
/// in.
pub struct Workload {
    /// The unified CPU/GPU address space with all regions pre-mapped.
    pub space: AddressSpace,
    /// The kernel to launch.
    pub kernel: Box<dyn Kernel + Send + Sync>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("kernel", &self.kernel.name())
            .field("mapped_bytes", &self.space.mapped_bytes())
            .finish()
    }
}

/// Builds a benchmark at the given scale with 4 KiB pages.
///
/// # Examples
///
/// ```
/// use gmmu_workloads::{build, Bench, Scale};
/// let w = build(Bench::Bfs, Scale::Tiny, 42);
/// assert_eq!(w.kernel.name(), "bfs");
/// assert!(w.space.mapped_bytes() > 1 << 20);
/// ```
pub fn build(bench: Bench, scale: Scale, seed: u64) -> Workload {
    build_paged(bench, scale, seed, PageSize::Base4K)
}

/// Builds a benchmark with an explicit page size (Section 9 studies
/// 2 MiB pages).
pub fn build_paged(bench: Bench, scale: Scale, seed: u64, pages: PageSize) -> Workload {
    build_tenant_paged(bench, scale, seed, pages, 0)
}

/// Builds a benchmark into an address space owning the `asid`-th
/// physical window (see [`gmmu_vm::AddressSpace::with_asid`]). ASID 0
/// is byte-identical to [`build_paged`], so single-tenant callers lose
/// nothing by going through this path.
pub fn build_tenant_paged(
    bench: Bench,
    scale: Scale,
    seed: u64,
    pages: PageSize,
    asid: u16,
) -> Workload {
    let mut space = AddressSpace::with_asid(SpaceConfig::default(), asid);
    let kernel: Box<dyn Kernel + Send + Sync> = match bench {
        Bench::Bfs => Box::new(bfs::BfsKernel::build(&mut space, scale, seed, pages)),
        Bench::Kmeans => Box::new(kmeans::KmeansKernel::build(&mut space, scale, seed, pages)),
        Bench::Streamcluster => Box::new(streamcluster::StreamclusterKernel::build(
            &mut space, scale, seed, pages,
        )),
        Bench::Mummergpu => Box::new(mummergpu::MummerKernel::build(
            &mut space, scale, seed, pages,
        )),
        Bench::Pathfinder => Box::new(pathfinder::PathfinderKernel::build(
            &mut space, scale, seed, pages,
        )),
        Bench::Memcached => Box::new(memcached::MemcachedKernel::build(
            &mut space, scale, seed, pages,
        )),
    };
    Workload { space, kernel }
}

/// Builds a benchmark, then unmaps data pages per the injection
/// config's demand-fault schedule (with
/// [`FaultInjectConfig::demand_paged`]'s `unmap_fraction = 1.0` the run
/// starts with *zero* pre-mapped data pages). Region bookkeeping stays
/// intact, so every later touch demand-faults and the modeled CPU fault
/// handler can map it. Returns the workload and how many pages start
/// unmapped.
///
/// Run the result with [`gmmu_simt::gpu::Gpu::run_faulted`] and
/// [`gmmu_simt::FaultConfig::demand`]-style settings; a plain
/// [`gmmu_simt::gpu::Gpu::run`] would panic on the first fault.
pub fn build_demand_paged(
    bench: Bench,
    scale: Scale,
    seed: u64,
    inject: &FaultInjectConfig,
) -> (Workload, u64) {
    let mut w = build(bench, scale, seed);
    let inj = FaultInjector::new(*inject);
    let unmapped = w.space.unmap_pages_where(|vpn| inj.unmap_page(vpn.raw()));
    (w, unmapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu_core::mmu::MmuModel;
    use gmmu_simt::{gpu::run_kernel, GpuConfig, RunStats};

    fn tiny_cfg(mmu: MmuModel) -> GpuConfig {
        GpuConfig {
            n_cores: 2,
            warps_per_core: 8,
            warps_per_block: 4,
            mmu,
            max_cycles: 30_000_000,
            ..GpuConfig::default()
        }
    }

    fn run(bench: Bench, mmu: MmuModel) -> RunStats {
        let w = build(bench, Scale::Tiny, 7);
        run_kernel(tiny_cfg(mmu), w.kernel.as_ref(), &w.space)
    }

    #[test]
    fn all_benches_complete_on_ideal_mmu() {
        for bench in Bench::all() {
            let s = run(bench, MmuModel::Ideal);
            assert!(s.completed, "{bench} hit the cycle cap");
            assert!(s.instructions > 1000, "{bench} did hardly anything");
            assert!(
                s.mem_insn_fraction() < 0.30,
                "{bench} mem fraction {:.2} too high",
                s.mem_insn_fraction()
            );
        }
    }

    #[test]
    fn all_benches_complete_with_naive_mmu_and_slow_down() {
        for bench in Bench::all() {
            let ideal = run(bench, MmuModel::Ideal);
            let naive = run(bench, MmuModel::naive());
            assert!(naive.completed, "{bench} hit the cycle cap");
            assert_eq!(
                ideal.mem_instructions, naive.mem_instructions,
                "{bench}: MMU changed the work"
            );
            assert!(
                naive.cycles > ideal.cycles,
                "{bench}: naive TLBs must cost cycles"
            );
            assert!(
                naive.tlb_miss_rate() > 0.03,
                "{bench} TLB miss rate {:.3} implausibly low",
                naive.tlb_miss_rate()
            );
        }
    }

    #[test]
    fn page_divergence_ordering_matches_figure3() {
        let bfs = run(Bench::Bfs, MmuModel::naive());
        let mummer = run(Bench::Mummergpu, MmuModel::naive());
        let kmeans = run(Bench::Kmeans, MmuModel::naive());
        let pathfinder = run(Bench::Pathfinder, MmuModel::naive());
        assert!(
            mummer.page_divergence.mean() > 6.0,
            "mummergpu divergence {:.2} too low",
            mummer.page_divergence.mean()
        );
        assert!(
            bfs.page_divergence.mean() > 3.0,
            "bfs divergence {:.2} too low",
            bfs.page_divergence.mean()
        );
        assert!(
            kmeans.page_divergence.mean() < bfs.page_divergence.mean(),
            "kmeans should coalesce better than bfs"
        );
        assert!(pathfinder.page_divergence.mean() < 3.0);
        // Maxima are consistently high for the divergent pair.
        assert!(mummer.page_divergence.max() >= 16);
        assert!(bfs.page_divergence.max() >= 8);
    }

    #[test]
    fn determinism_per_benchmark() {
        for bench in [Bench::Bfs, Bench::Memcached] {
            let a = run(bench, MmuModel::naive());
            let b = run(bench, MmuModel::naive());
            assert_eq!(a.cycles, b.cycles, "{bench} not deterministic");
            assert_eq!(a.tlb_accesses, b.tlb_accesses);
        }
    }

    #[test]
    fn large_pages_build_and_run() {
        let w = build_paged(Bench::Kmeans, Scale::Tiny, 7, gmmu_vm::PageSize::Large2M);
        let s = run_kernel(tiny_cfg(MmuModel::naive()), w.kernel.as_ref(), &w.space);
        assert!(s.completed);
        // 2 MB pages collapse kmeans' page divergence to ~1.
        assert!(s.page_divergence.mean() < 1.5);
    }
}
