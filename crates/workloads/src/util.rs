//! Shared helpers for workload kernels.

/// Splits a flat per-site iteration counter into (outer, inner)
/// coordinates when an inner-loop site executes a variable number of
/// times per outer iteration.
///
/// `count(o)` gives the inner trip count of outer iteration `o`; outer
/// iterations run `0..outers`. Iterations beyond the total clamp to the
/// last valid pair (defensive: the simulator never generates them for a
/// correct program).
pub fn split_iter(iter: u32, outers: u32, count: impl Fn(u32) -> u32) -> (u32, u32) {
    debug_assert!(outers > 0);
    let mut rem = iter;
    for o in 0..outers {
        let c = count(o).max(1);
        if rem < c {
            return (o, rem);
        }
        rem -= c;
    }
    let last = outers - 1;
    (last, count(last).max(1) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_variable_counts() {
        // counts: [2, 1, 3]
        let count = |o: u32| [2u32, 1, 3][o as usize];
        let pairs: Vec<(u32, u32)> = (0..6).map(|i| split_iter(i, 3, count)).collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (2, 0), (2, 1), (2, 2)]);
    }

    #[test]
    fn zero_counts_behave_as_one() {
        let (o, i) = split_iter(0, 2, |_| 0);
        assert_eq!((o, i), (0, 0));
    }

    #[test]
    fn overflow_clamps_to_last() {
        let (o, i) = split_iter(100, 2, |_| 2);
        assert_eq!((o, i), (1, 1));
    }
}
