//! `streamcluster` — Rodinia online clustering (data mining).
//!
//! Threads stream points and compare each against a series of candidate
//! centres drawn from a shared centre pool. The pool (hundreds of KB)
//! exceeds the L1 but not the L2, so it thrashes the cache under
//! 48-warp round robin — the textbook CCWS opportunity — while the
//! point stream produces steady compulsory TLB misses. Accesses are
//! fully coalesced (page divergence ≈ 1) and control flow is uniform.

use crate::Scale;
use gmmu_sim::rng::mix3;
use gmmu_simt::program::{Kernel, MemKind, Op, Program, ThreadId};
use gmmu_vm::{AddressSpace, PageSize, Region, VAddr};

/// Candidate centres compared per point.
const COMPARES: u32 = 12;
/// Points per thread.
const POINTS_PER_THREAD: u32 = 4;
/// Bytes per centre record.
const RECORD_BYTES: u64 = 128;
/// Bytes per streamed point record (weight + assignment metadata; the
/// coordinate block stays in registers across the comparison loop).
const POINT_BYTES: u64 = 8;
/// Centre-pool records per unit of [`Scale::data_factor`].
const CENTERS_PER_FACTOR: u64 = 2048;
/// Candidate centres a warp's requests revisit (its working set).
const WARP_CENTER_SET: u64 = 24;

/// The streamcluster kernel and its data set.
#[derive(Debug)]
pub struct StreamclusterKernel {
    program: Program,
    threads: u32,
    seed: u64,
    n_centers: u64,
    points: Region,
    centers: Region,
    cost_out: Region,
}

impl StreamclusterKernel {
    /// Maps the point stream and centre pool into `space`.
    ///
    /// # Panics
    ///
    /// Panics if the address space runs out of frames.
    pub fn build(space: &mut AddressSpace, scale: Scale, seed: u64, pages: PageSize) -> Self {
        let threads = scale.threads();
        let n_points = threads as u64 * POINTS_PER_THREAD as u64;
        let n_centers = CENTERS_PER_FACTOR * scale.data_factor();
        let points = space
            .map_region("sc.points", n_points * POINT_BYTES, pages)
            .expect("map points");
        let centers = space
            .map_region("sc.centers", n_centers * RECORD_BYTES, pages)
            .expect("map centers");
        let cost_out = space
            .map_region("sc.cost", n_points * 8, pages)
            .expect("map cost");
        let program = Program::new(vec![
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            }, // 0: point
            Op::Alu { cycles: 8 }, // 1
            // Centre-comparison loop (pc 2..=7).
            Op::Mem {
                site: 1,
                kind: MemKind::Load,
            }, // 2: candidate centre
            Op::Alu { cycles: 12 }, // 3: distance
            Op::Alu { cycles: 12 }, // 4
            Op::Alu { cycles: 8 },  // 5: gain accumulate
            Op::Alu { cycles: 4 },  // 6
            Op::Branch {
                site: 2,
                taken_pc: 2,
                reconv_pc: 8,
            }, // 7
            Op::Mem {
                site: 3,
                kind: MemKind::Store,
            }, // 8: cost/assign
            Op::Branch {
                site: 4,
                taken_pc: 0,
                reconv_pc: 10,
            }, // 9
        ]);
        Self {
            program,
            threads,
            seed,
            n_centers,
            points,
            centers,
            cost_out,
        }
    }

    fn point(&self, tid: ThreadId, p: u32) -> u64 {
        p as u64 * self.threads as u64 + tid as u64
    }

    /// Candidate centre for comparison `i` of pass `p` — warp-uniform
    /// (every thread compares against the same candidate). Each warp's
    /// candidates revisit a small *contiguous* run of the pool (open
    /// centres are allocated together), so a warp's TLB footprint is a
    /// page or two while its L1 footprint (24 lines vs a 256-line L1
    /// shared by 48 warps) thrashes — the locality CCWS recovers.
    fn center(&self, warp: u64, p: u32, i: u32) -> u64 {
        let j = mix3(self.seed, p as u64, i as u64) % WARP_CENTER_SET;
        let base = mix3(self.seed ^ 0x5c, warp, 0) % (self.n_centers - WARP_CENTER_SET);
        base + j
    }
}

impl Kernel for StreamclusterKernel {
    fn name(&self) -> &str {
        "streamcluster"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn num_threads(&self) -> u32 {
        self.threads
    }

    fn block_threads(&self) -> u32 {
        256
    }

    fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr {
        match site {
            0 => self.points.at(self.point(tid, iter) * POINT_BYTES),
            1 => {
                let p = iter / COMPARES;
                let i = iter % COMPARES;
                let warp = (tid / 32) as u64;
                self.centers.at(self.center(warp, p, i) * RECORD_BYTES)
            }
            3 => self.cost_out.at(self.point(tid, iter) * 8),
            _ => unreachable!("streamcluster has no memory site {site}"),
        }
    }

    fn branch_taken(&self, _tid: ThreadId, site: u16, iter: u32) -> bool {
        match site {
            2 => (iter % COMPARES) + 1 < COMPARES,
            4 => iter + 1 < POINTS_PER_THREAD,
            _ => unreachable!("streamcluster has no branch site {site}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu_vm::SpaceConfig;

    fn kernel() -> (AddressSpace, StreamclusterKernel) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let k = StreamclusterKernel::build(&mut space, Scale::Tiny, 3, PageSize::Base4K);
        (space, k)
    }

    #[test]
    fn centre_loads_are_warp_uniform() {
        let (_, k) = kernel();
        for iter in 0..COMPARES {
            let a = k.mem_addr(0, 1, iter);
            let b = k.mem_addr(31, 1, iter);
            assert_eq!(a, b, "all lanes broadcast the same centre");
        }
    }

    #[test]
    fn warps_have_small_candidate_working_sets() {
        let (_, k) = kernel();
        let kref = &k;
        let one_warp: std::collections::HashSet<u64> = (0..POINTS_PER_THREAD)
            .flat_map(|p| (0..COMPARES).map(move |i| kref.center(3, p, i)))
            .collect();
        assert!(one_warp.len() <= WARP_CENTER_SET as usize);
        // Contiguous run → at most two pages of centres.
        let span = one_warp.iter().max().unwrap() - one_warp.iter().min().unwrap();
        assert!(span < WARP_CENTER_SET);
        // Different warps draw different sets covering the pool.
        let many: std::collections::HashSet<u64> = (0..64u64)
            .flat_map(|w| (0..COMPARES).map(move |i| kref.center(w, 0, i)))
            .collect();
        assert!(many.len() > 100, "pool coverage too small: {}", many.len());
        assert!(many.iter().all(|&c| c < k.n_centers));
    }

    #[test]
    fn pool_exceeds_l1_but_fits_l2() {
        let (_, k) = kernel();
        let bytes = k.n_centers * RECORD_BYTES;
        assert!(bytes > 32 * 1024, "pool must thrash the L1");
        assert!(
            bytes >= 1024 * 1024,
            "pool must not fit even a 512-entry TLB"
        );
    }

    #[test]
    fn all_addresses_mapped() {
        let (space, k) = kernel();
        for tid in (0..k.num_threads()).step_by(97) {
            for p in 0..POINTS_PER_THREAD {
                assert!(space.translate(k.mem_addr(tid, 0, p)).is_ok());
                assert!(space.translate(k.mem_addr(tid, 3, p)).is_ok());
                for i in 0..COMPARES {
                    assert!(space
                        .translate(k.mem_addr(tid, 1, p * COMPARES + i))
                        .is_ok());
                }
            }
        }
    }
}
