//! `pathfinder` — Rodinia grid dynamic programming.
//!
//! Row-by-row DP over a cost grid: each thread owns a column segment,
//! loading the wall row, the previous row's neighbouring results, and
//! storing the new row. The grid is far wider than the machine, so
//! blocks tile it with page-sized per-warp segments: every row advance
//! lands each warp on a fresh wall page (steady compulsory TLB misses)
//! while the ping-pong row buffers are reused — the low-divergence,
//! streaming end of the paper's workload spectrum. Control flow is
//! uniform (no branch divergence).

use crate::Scale;
use gmmu_simt::program::{Kernel, MemKind, Op, Program, ThreadId};
use gmmu_vm::{AddressSpace, PageSize, Region, VAddr};

/// DP rows computed.
const ROWS: u32 = 24;
/// Grid columns owned by each thread (a 32-thread warp's row slice is
/// then 2 KiB, so two DP rows share one wall page).
const COLS_PER_THREAD: u64 = 16;

/// The pathfinder kernel and its grid.
#[derive(Debug)]
pub struct PathfinderKernel {
    program: Program,
    threads: u32,
    wall: Region,
    rows: Region,
}

impl PathfinderKernel {
    /// Maps the wall grid and row buffers into `space`.
    ///
    /// # Panics
    ///
    /// Panics if the address space runs out of frames.
    pub fn build(space: &mut AddressSpace, scale: Scale, _seed: u64, pages: PageSize) -> Self {
        let threads = scale.threads();
        let width = threads as u64 * COLS_PER_THREAD;
        let wall = space
            .map_region("pf.wall", ROWS as u64 * width * 4, pages)
            .expect("map wall");
        // Ping-pong result rows, packed by thread.
        let rows = space
            .map_region("pf.rows", 2 * threads as u64 * 4, pages)
            .expect("map rows");
        let program = Program::new(vec![
            // Row loop (pc 0..=12).
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            }, // 0: wall[r][cols]
            Op::Alu { cycles: 4 }, // 1
            Op::Mem {
                site: 1,
                kind: MemKind::Load,
            }, // 2: prev[cols±1]
            Op::Alu { cycles: 8 }, // 3: min of three
            Op::Alu { cycles: 8 }, // 4
            Op::Alu { cycles: 4 }, // 5
            Op::Alu { cycles: 4 }, // 6
            Op::Mem {
                site: 2,
                kind: MemKind::Store,
            }, // 7: cur[cols]
            Op::Alu { cycles: 4 }, // 8
            Op::Alu { cycles: 4 }, // 9
            Op::Alu { cycles: 4 }, // 10
            Op::Alu { cycles: 4 }, // 11
            Op::Branch {
                site: 3,
                taken_pc: 0,
                reconv_pc: 13,
            }, // 12: next row
        ]);
        Self {
            program,
            threads,
            wall,
            rows,
        }
    }
}

impl Kernel for PathfinderKernel {
    fn name(&self) -> &str {
        "pathfinder"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn num_threads(&self) -> u32 {
        self.threads
    }

    fn block_threads(&self) -> u32 {
        256
    }

    fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr {
        let r = iter as u64 % ROWS as u64;
        match site {
            // The wall is stored warp-tiled (each warp's ROWS×slice
            // block is contiguous), the standard GPU blocking for this
            // kernel; a warp's slice advances 2 KiB per row.
            0 => {
                let warp = (tid / 32) as u64;
                let lane = (tid % 32) as u64;
                let tile = warp * ROWS as u64 * 32 * COLS_PER_THREAD;
                self.wall
                    .at((tile + r * 32 * COLS_PER_THREAD + lane * COLS_PER_THREAD) * 4)
            }
            // DP results are packed by thread (each thread keeps its
            // segment's running minima), so the ping-pong buffers stay
            // resident while the wall streams.
            1 => self
                .rows
                .at(((r % 2) * self.threads as u64 + tid as u64) * 4),
            2 => self
                .rows
                .at((((r + 1) % 2) * self.threads as u64 + tid as u64) * 4),
            _ => unreachable!("pathfinder has no memory site {site}"),
        }
    }

    fn branch_taken(&self, _tid: ThreadId, site: u16, iter: u32) -> bool {
        match site {
            3 => iter + 1 < ROWS,
            _ => unreachable!("pathfinder has no branch site {site}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu_vm::SpaceConfig;

    fn kernel() -> (AddressSpace, PathfinderKernel) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let k = PathfinderKernel::build(&mut space, Scale::Tiny, 0, PageSize::Base4K);
        (space, k)
    }

    #[test]
    fn two_wall_rows_share_one_page_per_warp() {
        let (_, k) = kernel();
        // Lanes of warp 0, row 0: 32 loads inside one page.
        let pages: std::collections::HashSet<_> =
            (0..32).map(|l| k.mem_addr(l, 0, 0).vpn()).collect();
        assert_eq!(pages.len(), 1);
        // Rows 0 and 1 share the page; row 2 starts a fresh one.
        assert_eq!(k.mem_addr(0, 0, 0).vpn(), k.mem_addr(0, 0, 1).vpn());
        assert_ne!(k.mem_addr(0, 0, 0).vpn(), k.mem_addr(0, 0, 2).vpn());
    }

    #[test]
    fn row_buffers_ping_pong() {
        let (_, k) = kernel();
        // The row written at r is the row read at r+1.
        assert_eq!(k.mem_addr(5, 2, 0), k.mem_addr(5, 1, 1));
        assert_eq!(k.mem_addr(5, 2, 1), k.mem_addr(5, 1, 2));
    }

    #[test]
    fn warp_wall_tiles_are_disjoint() {
        let (_, k) = kernel();
        let w0_last = k.mem_addr(31, 0, ROWS - 1).raw() + COLS_PER_THREAD * 4;
        let w1_first = k.mem_addr(32, 0, 0).raw();
        assert!(w0_last <= w1_first);
    }

    #[test]
    fn uniform_row_loop() {
        let (_, k) = kernel();
        for iter in 0..ROWS {
            assert_eq!(k.branch_taken(0, 3, iter), iter + 1 < ROWS);
            assert_eq!(k.branch_taken(0, 3, iter), k.branch_taken(999, 3, iter));
        }
    }

    #[test]
    fn all_addresses_mapped() {
        let (space, k) = kernel();
        for tid in (0..k.num_threads()).step_by(83) {
            for r in 0..ROWS {
                for site in 0..3u16 {
                    assert!(space.translate(k.mem_addr(tid, site, r)).is_ok());
                }
            }
        }
    }
}
