//! Deterministic multi-tenant scenario generation.
//!
//! A *scenario* assigns each of N concurrent tenants a benchmark, a
//! scale, and a data seed, all derived from a single scenario seed.
//! Benchmark choice is Zipf-weighted over the six evaluation workloads
//! in the paper's figure order, mirroring how consolidated GPUs see a
//! skewed popularity distribution of co-resident kernels rather than a
//! uniform one. Optionally one tenant is designated the *thrasher*: it
//! runs `memcached` (the workload with the largest, flattest reuse
//! footprint) one scale step up, so its TLB working set dwarfs every
//! co-runner's and the scenario stresses cross-tenant eviction and
//! fairness.
//!
//! Everything is a pure function of `(scenario seed, tenant index)`, so
//! scenarios are reproducible across engines, processes, and replays.

use crate::{build_tenant_paged, Bench, Scale, Workload};
use gmmu_sim::fault::{FaultInjectConfig, FaultInjector};
use gmmu_sim::rng::{mix2, Zipf};
use gmmu_vm::PageSize;

/// Zipf skew used for tenant-arrival popularity. Matches the skew of
/// the memcached request trace (Wikipedia-like, theta = 0.99).
pub const ARRIVAL_THETA: f64 = 0.99;

/// One tenant's assignment within a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Benchmark the tenant runs.
    pub bench: Bench,
    /// Scale the tenant runs at.
    pub scale: Scale,
    /// Data seed for the tenant's workload build.
    pub seed: u64,
    /// Whether this tenant is the designated thrasher.
    pub thrasher: bool,
}

/// A generated multi-tenant scenario: per-tenant specs in ASID order.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario seed everything was derived from.
    pub seed: u64,
    /// One spec per tenant; index == ASID.
    pub tenants: Vec<TenantSpec>,
}

impl Scale {
    /// The next scale up (saturating at [`Scale::Full`]); the thrasher
    /// runs at this scale relative to its co-runners.
    pub fn step_up(self) -> Scale {
        match self {
            Scale::Tiny => Scale::Small,
            Scale::Small => Scale::Full,
            Scale::Full => Scale::Full,
        }
    }
}

/// Zipf-weighted benchmark mix: tenant `t` runs the benchmark at the
/// Zipf rank sampled at `(seed, t)` over [`Bench::all`] in figure
/// order. Deterministic and independent per index, so extending a
/// scenario by one tenant never reshuffles the existing ones.
///
/// # Examples
///
/// ```
/// use gmmu_workloads::tenants::zipf_mix;
/// let a = zipf_mix(4, 7);
/// let b = zipf_mix(4, 7);
/// assert_eq!(a, b);
/// // A prefix of a larger scenario is the smaller scenario.
/// assert_eq!(zipf_mix(8, 7)[..4], a[..]);
/// ```
pub fn zipf_mix(n_tenants: usize, seed: u64) -> Vec<Bench> {
    let z = Zipf::new(Bench::all().len(), ARRIVAL_THETA);
    (0..n_tenants)
        .map(|t| Bench::all()[z.sample_at(seed, t as u64)])
        .collect()
}

/// Generates an `n_tenants`-way scenario at `scale`. When
/// `with_thrasher` is set, the tenant whose Zipf rank is *least*
/// popular (ties broken toward the highest ASID) is replaced by
/// `memcached` one scale step up.
pub fn scenario(n_tenants: usize, scale: Scale, seed: u64, with_thrasher: bool) -> Scenario {
    assert!(n_tenants > 0, "a scenario needs at least one tenant");
    let mix = zipf_mix(n_tenants, seed);
    let mut tenants: Vec<TenantSpec> = mix
        .into_iter()
        .enumerate()
        .map(|(t, bench)| TenantSpec {
            bench,
            scale,
            seed: mix2(seed, t as u64) | 1,
            thrasher: false,
        })
        .collect();
    if with_thrasher && n_tenants > 1 {
        // Deterministic victim choice: the tenant running the rarest
        // bench in this mix (popularity by Zipf rank = figure order).
        let rank = |b: Bench| Bench::all().iter().position(|&x| x == b).unwrap_or(0);
        let victim = tenants
            .iter()
            .enumerate()
            .max_by_key(|(t, s)| (rank(s.bench), *t))
            .map(|(t, _)| t)
            .expect("n_tenants > 1");
        tenants[victim] = TenantSpec {
            bench: Bench::Memcached,
            scale: scale.step_up(),
            seed: tenants[victim].seed,
            thrasher: true,
        };
    }
    Scenario { seed, tenants }
}

impl Scenario {
    /// Builds every tenant's workload with 4 KiB pages. Workload `t`
    /// owns the `t`-th physical window (ASID `t`), matching the ASID
    /// order `Gpu::run_tenants` requires.
    pub fn build(&self) -> Vec<Workload> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                build_tenant_paged(
                    spec.bench,
                    spec.scale,
                    spec.seed,
                    PageSize::Base4K,
                    t as u16,
                )
            })
            .collect()
    }

    /// [`Scenario::build`], then demand-unmaps each tenant's data pages
    /// per the injection config re-seeded for that tenant
    /// ([`FaultInjectConfig::for_tenant`]), so every tenant runs its own
    /// deterministic first-touch fault schedule. Returns the workloads
    /// and how many pages start unmapped per tenant.
    pub fn build_demand_paged(&self, inject: &FaultInjectConfig) -> (Vec<Workload>, Vec<u64>) {
        let mut unmapped = Vec::with_capacity(self.tenants.len());
        let built = self
            .build()
            .into_iter()
            .enumerate()
            .map(|(t, mut w)| {
                let inj = FaultInjector::new(inject.for_tenant(t as u16));
                unmapped.push(w.space.unmap_pages_where(|vpn| inj.unmap_page(vpn.raw())));
                w
            })
            .collect();
        (built, unmapped)
    }

    /// One-line description, e.g. `"4T seed=7: bfs kmeans bfs memcached*"`
    /// (`*` marks the thrasher).
    pub fn describe(&self) -> String {
        let mut s = format!("{}T seed={}:", self.tenants.len(), self.seed);
        for spec in &self.tenants {
            s.push(' ');
            s.push_str(spec.bench.name());
            if spec.thrasher {
                s.push('*');
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_prefix_stable() {
        let a = scenario(4, Scale::Tiny, 7, true);
        let b = scenario(4, Scale::Tiny, 7, true);
        assert_eq!(a, b);
        let plain4 = scenario(4, Scale::Tiny, 7, false);
        let plain6 = scenario(6, Scale::Tiny, 7, false);
        assert_eq!(plain6.tenants[..4], plain4.tenants[..]);
    }

    #[test]
    fn thrasher_runs_memcached_one_scale_up() {
        let s = scenario(4, Scale::Tiny, 9, true);
        let thrashers: Vec<_> = s.tenants.iter().filter(|t| t.thrasher).collect();
        assert_eq!(thrashers.len(), 1);
        assert_eq!(thrashers[0].bench, Bench::Memcached);
        assert_eq!(thrashers[0].scale, Scale::Small);
    }

    #[test]
    fn built_workloads_carry_their_asid() {
        let s = scenario(3, Scale::Tiny, 11, false);
        let built = s.build();
        for (t, w) in built.iter().enumerate() {
            assert_eq!(w.space.asid(), t as u16);
            assert!(w.space.mapped_bytes() > 0);
        }
    }

    #[test]
    fn zipf_mix_favors_popular_ranks() {
        // Over many draws the head of the figure order must dominate.
        let mix = zipf_mix(256, 3);
        let head = mix.iter().filter(|&&b| b == Bench::Bfs).count();
        let tail = mix.iter().filter(|&&b| b == Bench::Memcached).count();
        assert!(head > tail, "Zipf head {head} should beat tail {tail}");
    }
}
