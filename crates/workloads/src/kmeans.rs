//! `kmeans` — Rodinia clustering.
//!
//! Each thread assigns points to the nearest of K centroids: a
//! perfectly coalesced streaming load of the point's feature line, K
//! broadcast centroid loads (a hot few-KB table), and a streaming
//! result store. Page divergence is ≈1 (Figure 3), but the *streaming*
//! structure means every new point page is a compulsory TLB miss, and
//! round-robin across 48 warps destroys any reuse — the paper's
//! motivating observation. Control flow is uniform, so kmeans is inert
//! under TBC but still participates in the CCWS studies.

use crate::Scale;
use gmmu_simt::program::{Kernel, MemKind, Op, Program, ThreadId};
use gmmu_vm::{AddressSpace, PageSize, Region, VAddr};

/// Centroids compared per point.
const K: u32 = 8;
/// Points per thread.
const POINTS_PER_THREAD: u32 = 4;
/// Bytes per point (one 128-byte feature line).
const POINT_BYTES: u64 = 128;

/// The kmeans kernel and its data set.
#[derive(Debug)]
pub struct KmeansKernel {
    program: Program,
    threads: u32,
    points: Region,
    centroids: Region,
    assign_out: Region,
}

impl KmeansKernel {
    /// Maps points/centroids into `space` and builds the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the address space runs out of frames.
    pub fn build(space: &mut AddressSpace, scale: Scale, _seed: u64, pages: PageSize) -> Self {
        let threads = scale.threads();
        let n_points = threads as u64 * POINTS_PER_THREAD as u64;
        let points = space
            .map_region("kmeans.points", n_points * POINT_BYTES, pages)
            .expect("map points");
        let centroids = space
            .map_region("kmeans.centroids", K as u64 * POINT_BYTES, pages)
            .expect("map centroids");
        // Membership array: one 4-byte cluster id per point, so a warp's
        // stores share a page across 32 point iterations.
        let assign_out = space
            .map_region("kmeans.assign", n_points * 4, pages)
            .expect("map assign");
        let program = Program::new(vec![
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            }, // 0: point line
            Op::Alu { cycles: 6 }, // 1
            // Centroid loop (pc 2..=6).
            Op::Mem {
                site: 1,
                kind: MemKind::Load,
            }, // 2: centroid c
            Op::Alu { cycles: 8 }, // 3: distance accumulate
            Op::Alu { cycles: 8 }, // 4
            Op::Alu { cycles: 4 }, // 5: min update
            Op::Branch {
                site: 2,
                taken_pc: 2,
                reconv_pc: 7,
            }, // 6: next centroid
            Op::Alu { cycles: 6 }, // 7
            Op::Mem {
                site: 3,
                kind: MemKind::Store,
            }, // 8: assignment
            Op::Branch {
                site: 4,
                taken_pc: 0,
                reconv_pc: 10,
            }, // 9: next point
        ]);
        Self {
            program,
            threads,
            points,
            centroids,
            assign_out,
        }
    }

    /// Point processed by `tid` on pass `p`: pass-major layout, so each
    /// pass streams a fresh contiguous slab (one 4 KiB page per warp).
    fn point(&self, tid: ThreadId, p: u32) -> u64 {
        p as u64 * self.threads as u64 + tid as u64
    }
}

impl Kernel for KmeansKernel {
    fn name(&self) -> &str {
        "kmeans"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn num_threads(&self) -> u32 {
        self.threads
    }

    fn block_threads(&self) -> u32 {
        256
    }

    fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr {
        match site {
            0 => self.points.at(self.point(tid, iter) * POINT_BYTES),
            1 => self.centroids.at((iter % K) as u64 * POINT_BYTES),
            3 => self.assign_out.at(self.point(tid, iter) * 4),
            _ => unreachable!("kmeans has no memory site {site}"),
        }
    }

    fn branch_taken(&self, _tid: ThreadId, site: u16, iter: u32) -> bool {
        match site {
            2 => (iter % K) + 1 < K,
            4 => iter + 1 < POINTS_PER_THREAD,
            _ => unreachable!("kmeans has no branch site {site}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu_vm::SpaceConfig;

    fn kernel() -> (AddressSpace, KmeansKernel) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let k = KmeansKernel::build(&mut space, Scale::Tiny, 1, PageSize::Base4K);
        (space, k)
    }

    #[test]
    fn warp_point_loads_fill_exactly_one_page() {
        let (_, k) = kernel();
        // Threads 0..31, pass 0: 32 × 128 B = 4096 B, page aligned.
        let first = k.mem_addr(0, 0, 0);
        let last = k.mem_addr(31, 0, 0);
        assert_eq!(last.raw() - first.raw(), 31 * 128);
        assert_eq!(first.vpn(), last.vpn());
    }

    #[test]
    fn passes_stream_disjoint_slabs() {
        let (_, k) = kernel();
        let a = k.mem_addr(0, 0, 0);
        let b = k.mem_addr(0, 0, 1);
        assert_eq!(b.raw() - a.raw(), k.threads as u64 * 128);
    }

    #[test]
    fn centroid_loop_is_uniform_and_bounded() {
        let (_, k) = kernel();
        for iter in 0..K * 2 {
            let t = k.branch_taken(0, 2, iter);
            assert_eq!(t, (iter % K) + 1 < K);
            assert_eq!(t, k.branch_taken(77, 2, iter), "uniform across threads");
        }
    }

    #[test]
    fn centroids_fit_in_one_page() {
        let (_, k) = kernel();
        let pages: std::collections::HashSet<_> =
            (0..K).map(|c| k.mem_addr(0, 1, c).vpn()).collect();
        assert_eq!(pages.len(), 1);
    }

    #[test]
    fn all_addresses_mapped() {
        let (space, k) = kernel();
        for tid in (0..k.num_threads()).step_by(61) {
            for p in 0..POINTS_PER_THREAD {
                assert!(space.translate(k.mem_addr(tid, 0, p)).is_ok());
                assert!(space.translate(k.mem_addr(tid, 3, p)).is_ok());
            }
        }
    }
}
