//! `memcached` — key-value store lookup, stimulated with a Zipf trace.
//!
//! The paper drives memcached with a representative slice of the
//! Wikipedia request trace [22]; we substitute a Zipf(0.99) key
//! popularity distribution, the standard synthetic stand-in for that
//! trace. Each request hashes its key, loads the hash bucket, walks a
//! short chain comparing keys, loads the value, and stores the
//! response. Bucket and chain loads scatter (hash-randomized pages);
//! item storage is id-ordered, so the Zipf head concentrates on a few
//! hot pages — locality a TLB-aware scheduler can protect — while the
//! tail produces misses. Chain lengths and hit depths differ per
//! thread, so the chain loop diverges.

use crate::util::split_iter;
use crate::Scale;
use gmmu_sim::rng::{mix2, mix3, Zipf};
use gmmu_simt::program::{Kernel, MemKind, Op, Program, ThreadId};
use gmmu_vm::{AddressSpace, PageSize, Region, VAddr};

/// Requests served per thread.
const REQUESTS_PER_THREAD: u32 = 3;
/// Bytes per item record (key line + value line).
const ITEM_BYTES: u64 = 256;
/// Bytes per hash bucket.
const BUCKET_BYTES: u64 = 64;
/// Items per unit of [`Scale::data_factor`].
const ITEMS_PER_FACTOR: u64 = 65_536;
/// Zipf skew, matching common web-trace fits.
const ZIPF_THETA: f64 = 0.99;

/// The memcached kernel and its store.
pub struct MemcachedKernel {
    program: Program,
    threads: u32,
    seed: u64,
    n_items: u64,
    n_buckets: u64,
    zipf: Zipf,
    buckets: Region,
    items: Region,
    response_out: Region,
}

impl std::fmt::Debug for MemcachedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemcachedKernel")
            .field("threads", &self.threads)
            .field("n_items", &self.n_items)
            .finish()
    }
}

impl MemcachedKernel {
    /// Maps the store into `space` and builds the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the address space runs out of frames.
    pub fn build(space: &mut AddressSpace, scale: Scale, seed: u64, pages: PageSize) -> Self {
        let threads = scale.threads();
        let n_items = ITEMS_PER_FACTOR * scale.data_factor();
        let n_buckets = n_items / 16;
        let buckets = space
            .map_region("mc.buckets", n_buckets * BUCKET_BYTES, pages)
            .expect("map buckets");
        let items = space
            .map_region("mc.items", n_items * ITEM_BYTES, pages)
            .expect("map items");
        let response_out = space
            .map_region(
                "mc.responses",
                threads as u64 * REQUESTS_PER_THREAD as u64 * 8,
                pages,
            )
            .expect("map responses");
        let program = Program::new(vec![
            Op::Alu { cycles: 6 }, // 0: hash key
            Op::Alu { cycles: 6 }, // 1
            Op::Alu { cycles: 4 }, // 2
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            }, // 3: bucket head
            Op::Alu { cycles: 4 }, // 4
            // Chain-walk loop (pc 5..=9).
            Op::Mem {
                site: 1,
                kind: MemKind::Load,
            }, // 5: candidate key line
            Op::Alu { cycles: 6 }, // 6: key compare
            Op::Alu { cycles: 4 }, // 7
            Op::Alu { cycles: 4 }, // 8
            Op::Branch {
                site: 2,
                taken_pc: 5,
                reconv_pc: 10,
            }, // 9: next link
            Op::Mem {
                site: 3,
                kind: MemKind::Load,
            }, // 10: value line
            Op::Alu { cycles: 6 }, // 11
            Op::Alu { cycles: 4 }, // 12
            Op::Mem {
                site: 4,
                kind: MemKind::Store,
            }, // 13: response
            Op::Alu { cycles: 4 }, // 14
            Op::Branch {
                site: 5,
                taken_pc: 0,
                reconv_pc: 16,
            }, // 15: next request
        ]);
        Self {
            program,
            threads,
            seed,
            n_items,
            n_buckets,
            zipf: Zipf::new(n_items as usize, ZIPF_THETA),
            buckets,
            items,
            response_out,
        }
    }

    /// Item requested by `(tid, r)`: requests arrive in batches, so a
    /// warp's lanes serve neighbouring ranks of one Zipf draw (rank 0 is
    /// the hottest item and storage is rank-ordered, so hot ranks share
    /// pages).
    fn item(&self, tid: ThreadId, r: u32) -> u64 {
        let warp = (tid / 32) as u64;
        let base = self.zipf.sample_at(self.seed ^ 0x9c, mix2(warp, r as u64)) as u64;
        (base + mix3(tid as u64, r as u64, self.seed) % 32) % self.n_items
    }

    /// Bucket of an item: the store keeps an id-ordered index, so hot
    /// items' buckets cluster like the items themselves.
    fn bucket(&self, item: u64) -> u64 {
        (item / 16) % self.n_buckets
    }

    /// Chain position at which the requested key is found (1..=2 links
    /// walked).
    fn chain_len(&self, tid: ThreadId, r: u32) -> u32 {
        1 + (mix3(tid as u64, r as u64, self.seed ^ 0xc4) % 2) as u32
    }

    /// Item occupying link `j` of the chain for request `(tid, r)`: the
    /// final link is the requested item, earlier links are hash
    /// neighbours.
    fn chain_item(&self, tid: ThreadId, r: u32, j: u32) -> u64 {
        let target = self.item(tid, r);
        if j + 1 == self.chain_len(tid, r) {
            target
        } else {
            // Chain neighbours share the bucket's item page.
            (target & !15) + mix3(self.bucket(target), j as u64, self.seed ^ 0xd1) % 16
        }
    }

    fn chain_coords(&self, tid: ThreadId, iter: u32) -> (u32, u32) {
        split_iter(iter, REQUESTS_PER_THREAD, |r| self.chain_len(tid, r))
    }
}

impl Kernel for MemcachedKernel {
    fn name(&self) -> &str {
        "memcached"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn num_threads(&self) -> u32 {
        self.threads
    }

    fn block_threads(&self) -> u32 {
        256
    }

    fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr {
        match site {
            0 => {
                let b = self.bucket(self.item(tid, iter));
                self.buckets.at(b * BUCKET_BYTES)
            }
            1 => {
                let (r, j) = self.chain_coords(tid, iter);
                self.items.at(self.chain_item(tid, r, j) * ITEM_BYTES)
            }
            3 => self.items.at(self.item(tid, iter) * ITEM_BYTES + 128),
            4 => self
                .response_out
                .at((tid as u64 * REQUESTS_PER_THREAD as u64 + iter as u64) * 8),
            _ => unreachable!("memcached has no memory site {site}"),
        }
    }

    fn branch_taken(&self, tid: ThreadId, site: u16, iter: u32) -> bool {
        match site {
            2 => {
                let (r, j) = self.chain_coords(tid, iter);
                j + 1 < self.chain_len(tid, r)
            }
            5 => iter + 1 < REQUESTS_PER_THREAD,
            _ => unreachable!("memcached has no branch site {site}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu_vm::SpaceConfig;

    fn kernel() -> (AddressSpace, MemcachedKernel) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let k = MemcachedKernel::build(&mut space, Scale::Tiny, 9, PageSize::Base4K);
        (space, k)
    }

    #[test]
    fn requests_are_zipf_skewed() {
        let (_, k) = kernel();
        let total = 4000u32;
        let hot = (0..total)
            .filter(|&i| k.item(i / REQUESTS_PER_THREAD, i % REQUESTS_PER_THREAD) < 132)
            .count();
        // Uniform would give ~0.6%; Zipf(0.99) gives tens of percent.
        assert!(hot > total as usize / 10, "not skewed: {hot}/{total}");
    }

    #[test]
    fn chain_ends_at_requested_item() {
        let (_, k) = kernel();
        for tid in 0..50 {
            for r in 0..REQUESTS_PER_THREAD {
                let len = k.chain_len(tid, r);
                assert_eq!(k.chain_item(tid, r, len - 1), k.item(tid, r));
            }
        }
    }

    #[test]
    fn chain_loop_matches_chain_len() {
        let (_, k) = kernel();
        let tid = 3;
        let len0 = k.chain_len(tid, 0);
        assert_eq!(k.branch_taken(tid, 2, 0), len0 > 1);
        assert!(!k.branch_taken(tid, 2, len0 - 1));
    }

    #[test]
    fn hot_items_share_pages() {
        let (_, k) = kernel();
        // The 16 hottest items span exactly one 4 KiB page (256 B each).
        let pages: std::collections::HashSet<_> = (0..4000u32)
            .map(|i| k.mem_addr(i / 3, 3, i % 3).vpn())
            .collect();
        let footprint_pages = k.n_items * ITEM_BYTES / 4096;
        // Uniform sampling of 4000 requests over this many pages would
        // touch ~60% of them; Zipf concentration touches far fewer.
        assert!(
            (pages.len() as u64) < footprint_pages * 2 / 5,
            "no hot-page concentration: {} of {footprint_pages}",
            pages.len()
        );
    }

    #[test]
    fn all_addresses_mapped() {
        let (space, k) = kernel();
        for tid in (0..k.num_threads()).step_by(89) {
            let mut flat = 0;
            for r in 0..REQUESTS_PER_THREAD {
                assert!(space.translate(k.mem_addr(tid, 0, r)).is_ok());
                for _ in 0..k.chain_len(tid, r) {
                    assert!(space.translate(k.mem_addr(tid, 1, flat)).is_ok());
                    flat += 1;
                }
                assert!(space.translate(k.mem_addr(tid, 3, r)).is_ok());
                assert!(space.translate(k.mem_addr(tid, 4, r)).is_ok());
            }
        }
    }
}
