//! `mummergpu` — DNA sequence alignment by suffix-trie traversal.
//!
//! Each thread matches a query against a reference suffix trie: a chain
//! of data-dependent node loads from the root downward. The trie's top
//! levels are tiny and shared by every thread (hot pages), but level
//! width grows geometrically, so deep loads scatter across a multi-MB
//! node pool — this is the paper's page-divergence worst case (average
//! above 8, maxima at the full warp width of 32; Figure 3). Match
//! lengths differ per query, so the walk loop is heavily divergent —
//! mummergpu is the headline workload for both the port-count study
//! (Figure 6) and the TBC experiments.
//!
//! Threads of one home warp process queries drawn from the same genome
//! neighbourhood, so their deep-trie paths cluster; dynamic warps that
//! mix home warps lose that affinity, exactly the effect the Common
//! Page Matrix recovers (Section 8.2).

use crate::util::split_iter;
use crate::Scale;
use gmmu_sim::rng::{mix2, mix3};
use gmmu_simt::program::{Kernel, MemKind, Op, Program, ThreadId};
use gmmu_vm::{AddressSpace, PageSize, Region, VAddr};

/// Queries matched per thread.
const QUERIES_PER_THREAD: u32 = 2;
/// Bytes per trie node.
const NODE_BYTES: u64 = 64;
/// Deepest level of the trie.
const MAX_DEPTH: u32 = 28;
/// Popular top-of-trie nodes (4 pages); nodes are allocated on demand,
/// so hot branches cluster at the start of the pool.
const HOT_NODES: u64 = 512;
/// Nodes in a thread block's genome-neighbourhood window (2 pages).
const BLOCK_WINDOW: u64 = 128;
/// Nodes in a warp's own sub-window (2 pages); adjacent warps' windows
/// half-overlap, giving the Common Page Matrix a gradient to learn.
const WARP_WINDOW: u64 = 256;
/// Node distance between adjacent warps' window bases.
const WARP_STRIDE: u64 = 128;
/// Draw classes out of 256: hot | block | warp | uniform tail.
const HOT_NUM: u64 = 100;
const BLOCK_NUM: u64 = 60;
const WARP_NUM: u64 = 90;

/// The mummergpu kernel and its trie.
#[derive(Debug)]
pub struct MummerKernel {
    program: Program,
    threads: u32,
    seed: u64,
    /// Total trie nodes.
    n_nodes: u64,
    trie: Region,
    result_out: Region,
}

impl MummerKernel {
    /// Maps the trie into `space` and builds the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the address space runs out of frames.
    pub fn build(space: &mut AddressSpace, scale: Scale, seed: u64, pages: PageSize) -> Self {
        let threads = scale.threads();
        let n_nodes = 64 * 16_384 * scale.data_factor();
        let trie = space
            .map_region("mummer.trie", n_nodes * NODE_BYTES, pages)
            .expect("map trie");
        let result_out = space
            .map_region(
                "mummer.results",
                threads as u64 * QUERIES_PER_THREAD as u64 * 8,
                pages,
            )
            .expect("map results");
        let program = Program::new(vec![
            Op::Alu { cycles: 6 }, // 0: load query chars
            // Walk loop (pc 1..=7).
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            }, // 1: trie node
            Op::Alu { cycles: 6 }, // 2: char compare
            Op::Alu { cycles: 6 }, // 3
            Op::Alu { cycles: 4 }, // 4
            Op::Alu { cycles: 4 }, // 5
            Op::Alu { cycles: 4 }, // 6
            Op::Branch {
                site: 1,
                taken_pc: 1,
                reconv_pc: 8,
            }, // 7: descend?
            Op::Mem {
                site: 2,
                kind: MemKind::Store,
            }, // 8: match result
            Op::Branch {
                site: 3,
                taken_pc: 0,
                reconv_pc: 10,
            }, // 9: next query
        ]);
        Self {
            program,
            threads,
            seed,
            n_nodes,
            trie,
            result_out,
        }
    }

    /// Match length of `(tid, q)` — the walk's trip count, 4..=27.
    fn match_len(&self, tid: ThreadId, q: u32) -> u32 {
        4 + (mix3(tid as u64, q as u64, self.seed ^ 0x3a7) % (MAX_DEPTH as u64 - 5)) as u32
    }

    /// First node of `tid`'s block window (queries are batched from one
    /// genome region, so a block's walks revisit its neighbourhood).
    fn block_base(&self, tid: ThreadId) -> u64 {
        let block = (tid / 256) as u64;
        let span = self.n_nodes / 2 - HOT_NODES - BLOCK_WINDOW;
        HOT_NODES + mix2(block, self.seed ^ 0x42) % span
    }

    /// First node of `tid`'s home-warp window; adjacent warps'
    /// windows half-overlap.
    fn warp_base(&self, tid: ThreadId) -> u64 {
        let warp = (tid / 32) as u64;
        let half = self.n_nodes / 2;
        half + (warp * WARP_STRIDE) % (half - WARP_WINDOW)
    }

    /// Trie node visited at depth `d` of query `(tid, q)`.
    ///
    /// Four populations, mirroring a demand-allocated suffix trie:
    /// popular top branches (hot, shared machine-wide), a block-level
    /// genome neighbourhood, a home-warp sub-window (the affinity the
    /// Common Page Matrix learns), and a uniform tail (the cold page
    /// walks).
    fn node(&self, tid: ThreadId, q: u32, d: u32) -> u64 {
        if d < 3 {
            // The root and its first levels: one shared hot path.
            return mix2(d as u64, self.seed) % 64;
        }
        let h = mix3(tid as u64, q as u64, d as u64 ^ self.seed);
        let class = h % 256;
        let r = h >> 8;
        if class < HOT_NUM {
            r % HOT_NODES
        } else if class < HOT_NUM + BLOCK_NUM {
            self.block_base(tid) + r % BLOCK_WINDOW
        } else if class < HOT_NUM + BLOCK_NUM + WARP_NUM {
            self.warp_base(tid) + r % WARP_WINDOW
        } else {
            r % self.n_nodes
        }
    }

    fn walk_coords(&self, tid: ThreadId, iter: u32) -> (u32, u32) {
        split_iter(iter, QUERIES_PER_THREAD, |q| self.match_len(tid, q))
    }
}

impl Kernel for MummerKernel {
    fn name(&self) -> &str {
        "mummergpu"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn num_threads(&self) -> u32 {
        self.threads
    }

    fn block_threads(&self) -> u32 {
        256
    }

    fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr {
        match site {
            0 => {
                let (q, d) = self.walk_coords(tid, iter);
                self.trie.at(self.node(tid, q, d) * NODE_BYTES)
            }
            2 => self
                .result_out
                .at((tid as u64 * QUERIES_PER_THREAD as u64 + iter as u64) * 8),
            _ => unreachable!("mummergpu has no memory site {site}"),
        }
    }

    fn branch_taken(&self, tid: ThreadId, site: u16, iter: u32) -> bool {
        match site {
            1 => {
                let (q, d) = self.walk_coords(tid, iter);
                d + 1 < self.match_len(tid, q)
            }
            3 => iter + 1 < QUERIES_PER_THREAD,
            _ => unreachable!("mummergpu has no branch site {site}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu_vm::SpaceConfig;

    fn kernel() -> (AddressSpace, MummerKernel) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let k = MummerKernel::build(&mut space, Scale::Tiny, 5, PageSize::Base4K);
        (space, k)
    }

    #[test]
    fn root_is_shared_by_every_thread() {
        let (_, k) = kernel();
        let a = k.node(0, 0, 0);
        let b = k.node(999, 1, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn deep_draws_stay_in_bounds_and_scatter() {
        let (_, k) = kernel();
        let mut distinct = std::collections::HashSet::new();
        for tid in 0..512 {
            for d in 3..16 {
                let n = k.node(tid, 0, d);
                assert!(n < k.n_nodes);
                distinct.insert(n);
            }
        }
        assert!(distinct.len() > 100, "walks too concentrated");
    }

    #[test]
    fn deep_draws_favour_the_hot_pool() {
        let (_, k) = kernel();
        let hot = (0..512u32)
            .filter(|&t| k.node(t, 0, 12) < HOT_NODES)
            .count();
        assert!(hot > 130, "hot pool underused: {hot}/512");
        assert!(hot < 350, "windows/tail missing: {hot}/512");
    }

    #[test]
    fn adjacent_warps_share_half_their_windows() {
        let (_, k) = kernel();
        let a = k.warp_base(0);
        let b = k.warp_base(32);
        assert_eq!(b - a, WARP_STRIDE);
        const { assert!(WARP_STRIDE < WARP_WINDOW, "windows must overlap") };
        // Distant warps' windows are disjoint.
        let far = k.warp_base(32 * 40);
        assert!(far.abs_diff(a) >= WARP_WINDOW);
    }

    #[test]
    fn match_lengths_diverge() {
        let (_, k) = kernel();
        let lens: std::collections::HashSet<u32> = (0..64).map(|t| k.match_len(t, 0)).collect();
        assert!(lens.len() > 8, "match lengths too uniform");
        assert!(lens.iter().all(|&l| (4..MAX_DEPTH).contains(&l)));
    }

    #[test]
    fn walk_loop_trips_match_lengths() {
        let (_, k) = kernel();
        let tid = 7;
        let len0 = k.match_len(tid, 0);
        // Last step of query 0 exits the loop.
        assert!(!k.branch_taken(tid, 1, len0 - 1));
        // First step of query 1 continues iff its length > 1 (always).
        assert!(k.branch_taken(tid, 1, len0));
    }

    #[test]
    fn all_addresses_mapped() {
        let (space, k) = kernel();
        for tid in (0..k.num_threads()).step_by(71) {
            let mut flat = 0;
            for q in 0..QUERIES_PER_THREAD {
                for _ in 0..k.match_len(tid, q) {
                    assert!(space.translate(k.mem_addr(tid, 0, flat)).is_ok());
                    flat += 1;
                }
                assert!(space.translate(k.mem_addr(tid, 2, q)).is_ok());
            }
        }
    }
}
