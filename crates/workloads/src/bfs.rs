//! `bfs` — Rodinia breadth-first search (graph traversal).
//!
//! Frontier threads walk their node's adjacency list in compressed
//! sparse row form: a coalesced `row_offsets` load, a streaming edge
//! load per neighbour, then a *scattered* `visited` lookup whose target
//! is wherever the neighbour happens to live — the access that gives
//! bfs its high page divergence (Figure 3 reports an average above 4).
//! The visited check diverges per thread, and per-node degrees differ,
//! so the edge loop also diverges — which is why bfs appears in both
//! the CCWS and the TBC experiments.
//!
//! The graph is synthetic but structured like a real one: mostly local
//! neighbours (community structure → intra-warp page reuse that CCWS
//! can protect) with a uniform-random tail (the divergence source).
//! Warps own contiguous node chunks, as Rodinia's frontier layout
//! produces.

use crate::util::split_iter;
use crate::Scale;
use gmmu_sim::rng::{mix2, mix3};
use gmmu_simt::program::{Kernel, MemKind, Op, Program, ThreadId};
use gmmu_vm::{AddressSpace, PageSize, Region, VAddr};

/// Padded CSR row width (max degree).
const MAX_DEG: u64 = 16;
/// Nodes processed per thread.
const NODES_PER_THREAD: u32 = 2;
/// Fraction (out of 256) of neighbours drawn from the local community.
const LOCAL_NEIGHBOR_NUM: u64 = 250;

/// The bfs kernel and its graph.
#[derive(Debug)]
pub struct BfsKernel {
    program: Program,
    threads: u32,
    seed: u64,
    nodes: u64,
    row_offsets: Region,
    edges: Region,
    visited: Region,
    frontier_out: Region,
}

impl BfsKernel {
    /// Maps the graph into `space` and builds the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the address space runs out of frames.
    pub fn build(space: &mut AddressSpace, scale: Scale, seed: u64, pages: PageSize) -> Self {
        let threads = scale.threads();
        let nodes = 262_144 * scale.data_factor();
        let row_offsets = space
            .map_region("bfs.row_offsets", nodes * 8, pages)
            .expect("map row_offsets");
        let edges = space
            .map_region("bfs.edges", nodes * MAX_DEG * 4, pages)
            .expect("map edges");
        let visited = space
            .map_region("bfs.visited", nodes * 4, pages)
            .expect("map visited");
        let frontier_out = space
            .map_region(
                "bfs.frontier_out",
                threads as u64 * NODES_PER_THREAD as u64 * 4,
                pages,
            )
            .expect("map frontier_out");
        let program = Program::new(vec![
            // Per-node prologue.
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            }, // 0: row_offsets[node]
            Op::Alu { cycles: 6 }, // 1
            Op::Alu { cycles: 6 }, // 2
            // Edge loop body (pc 3..=11).
            Op::Mem {
                site: 1,
                kind: MemKind::Load,
            }, // 3: edges[node][j]
            Op::Alu { cycles: 4 }, // 4
            Op::Alu { cycles: 4 }, // 5
            Op::Mem {
                site: 2,
                kind: MemKind::Load,
            }, // 6: visited[neighbor]
            Op::Alu { cycles: 4 }, // 7
            Op::Alu { cycles: 4 }, // 8
            Op::Branch {
                site: 3,
                taken_pc: 11,
                reconv_pc: 11,
            }, // 9: skip if visited
            Op::Alu { cycles: 8 }, // 10: frontier update work
            Op::Alu { cycles: 4 }, // 11
            Op::Alu { cycles: 4 }, // 12
            Op::Branch {
                site: 4,
                taken_pc: 3,
                reconv_pc: 14,
            }, // 13: next edge
            // Per-node epilogue.
            Op::Mem {
                site: 5,
                kind: MemKind::Store,
            }, // 14: frontier_out
            Op::Branch {
                site: 6,
                taken_pc: 0,
                reconv_pc: 16,
            }, // 15: next node
        ]);
        Self {
            program,
            threads,
            seed,
            nodes,
            row_offsets,
            edges,
            visited,
            frontier_out,
        }
    }

    /// Node processed by thread `tid` on pass `p`: warps own contiguous
    /// chunks of the frontier.
    fn node(&self, tid: ThreadId, p: u32) -> u64 {
        let warp = (tid / 32) as u64;
        let lane = (tid % 32) as u64;
        (warp * NODES_PER_THREAD as u64 * 32 + p as u64 * 32 + lane) % self.nodes
    }

    /// Synthetic degree in 2..=16, skewed low like a power-law graph.
    fn degree(&self, node: u64) -> u32 {
        let r = mix2(node, self.seed) % 32;
        (2 + r * r / 40).min(MAX_DEG) as u32
    }

    /// The j-th neighbour of `node`: mostly local (community), with a
    /// uniform-random tail.
    fn neighbor(&self, node: u64, j: u32) -> u64 {
        let h = mix3(node, j as u64, self.seed ^ 0xbf5);
        if h % 256 < LOCAL_NEIGHBOR_NUM {
            (node + 1 + (h >> 8) % 8192) % self.nodes
        } else {
            (h >> 8) % self.nodes
        }
    }

    /// Locates (pass, edge index) from the flat edge-site iteration.
    fn edge_coords(&self, tid: ThreadId, iter: u32) -> (u32, u32) {
        split_iter(iter, NODES_PER_THREAD, |p| self.degree(self.node(tid, p)))
    }
}

impl Kernel for BfsKernel {
    fn name(&self) -> &str {
        "bfs"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn num_threads(&self) -> u32 {
        self.threads
    }

    fn block_threads(&self) -> u32 {
        256
    }

    fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr {
        match site {
            0 => self.row_offsets.at(self.node(tid, iter) * 8),
            1 => {
                let (p, j) = self.edge_coords(tid, iter);
                let node = self.node(tid, p);
                self.edges.at((node * MAX_DEG + j as u64) * 4)
            }
            2 => {
                let (p, j) = self.edge_coords(tid, iter);
                let node = self.node(tid, p);
                self.visited.at(self.neighbor(node, j) * 4)
            }
            5 => self
                .frontier_out
                .at((tid as u64 * NODES_PER_THREAD as u64 + iter as u64) * 4),
            _ => unreachable!("bfs has no memory site {site}"),
        }
    }

    fn branch_taken(&self, tid: ThreadId, site: u16, iter: u32) -> bool {
        match site {
            // Visited check: skip the update for already-seen
            // neighbours (~55%).
            3 => {
                let (p, j) = self.edge_coords(tid, iter);
                let node = self.node(tid, p);
                mix2(self.neighbor(node, j), self.seed ^ 0x715) % 100 < 55
            }
            // Edge loop: continue while edges remain.
            4 => {
                let (p, j) = self.edge_coords(tid, iter);
                j + 1 < self.degree(self.node(tid, p))
            }
            // Node loop.
            6 => iter + 1 < NODES_PER_THREAD,
            _ => unreachable!("bfs has no branch site {site}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu_vm::SpaceConfig;

    fn kernel() -> (AddressSpace, BfsKernel) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let k = BfsKernel::build(&mut space, Scale::Tiny, 1, PageSize::Base4K);
        (space, k)
    }

    #[test]
    fn addresses_are_always_mapped() {
        let (space, k) = kernel();
        for tid in (0..k.num_threads()).step_by(37) {
            for p in 0..NODES_PER_THREAD {
                let node = k.node(tid, p);
                for j in 0..k.degree(node) {
                    let flat = (0..p).map(|q| k.degree(k.node(tid, q))).sum::<u32>() + j;
                    for site in [1u16, 2] {
                        let va = k.mem_addr(tid, site, flat);
                        assert!(space.translate(va).is_ok(), "unmapped {va}");
                    }
                }
                assert!(space.translate(k.mem_addr(tid, 0, p)).is_ok());
                assert!(space.translate(k.mem_addr(tid, 5, p)).is_ok());
            }
        }
    }

    #[test]
    fn edge_loop_trip_counts_match_degrees() {
        let (_, k) = kernel();
        let tid = 123;
        let d0 = k.degree(k.node(tid, 0));
        // The last edge of pass 0 does not continue; the first edge of
        // pass 1 exists if there is a pass 1.
        assert!(!k.branch_taken(tid, 4, d0 - 1) || d0 != d0);
        assert!(k.branch_taken(tid, 4, 0) == (d0 > 1));
    }

    #[test]
    fn neighbors_are_mostly_local() {
        let (_, k) = kernel();
        let node = 1000;
        let local = (0..200)
            .filter(|&j| {
                let n = k.neighbor(node, j);
                n > node && n <= node + 8193
            })
            .count();
        assert!(local > 160, "only {local}/200 neighbours local");
    }

    #[test]
    fn degrees_are_in_range_and_varied() {
        let (_, k) = kernel();
        let degs: Vec<u32> = (0..100).map(|n| k.degree(n)).collect();
        assert!(degs.iter().all(|&d| (2..=MAX_DEG as u32).contains(&d)));
        let distinct: std::collections::HashSet<_> = degs.iter().collect();
        assert!(distinct.len() > 3, "degrees too uniform");
    }

    #[test]
    fn warp_nodes_are_contiguous() {
        let (_, k) = kernel();
        // Lanes of one warp get consecutive nodes (coalesced offsets).
        let base = k.node(64, 0);
        for lane in 0..32 {
            assert_eq!(k.node(64 + lane, 0), base + lane as u64);
        }
    }
}
