//! The shared memory system: interconnect + sliced L2 + DRAM channels.
//!
//! Every shader core's L1 misses and every page-table walker reference is
//! issued into one [`MemorySystem`]. The L2 is sliced by physical line
//! address across the memory channels (Section 5.2: "8 memory channels
//! with 128KB of unified L2 cache space per channel"). Page-walk
//! references are tagged so their hit rates can be reported separately —
//! the paper's PTW scheduler is evaluated by how much it raises exactly
//! that hit rate (Section 6.3).

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Channel, DramConfig};
use gmmu_sim::stats::{Counter, Summary};
use gmmu_sim::Cycle;

/// What kind of request is entering the shared memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand data load (an L1 miss).
    Load,
    /// A store (write-through traffic; consumes bandwidth, nobody waits).
    Store,
    /// A page-table-walker PTE reference.
    PageWalk,
}

/// Result of a shared-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResult {
    /// Cycle at which data is back at the requester.
    pub complete: Cycle,
    /// Whether the request hit in the L2.
    pub l2_hit: bool,
}

/// Timing and geometry of the shared memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Memory channels (each carries one L2 slice).
    pub channels: usize,
    /// Geometry of each L2 slice.
    pub l2_slice: CacheConfig,
    /// One-way interconnect latency between a core cluster and a
    /// memory partition.
    pub icnt_latency: u64,
    /// L2 slice access latency.
    pub l2_latency: u64,
    /// Minimum cycles between successive accesses to one L2 slice.
    pub l2_service: u64,
    /// DRAM channel timing.
    pub dram: DramConfig,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            channels: 8,
            l2_slice: CacheConfig::l2_slice(),
            icnt_latency: 16,
            l2_latency: 24,
            l2_service: 2,
            dram: DramConfig::default(),
        }
    }
}

impl gmmu_sim::ckpt::Ckpt for MemConfig {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.usize(self.channels);
        self.l2_slice.save(w);
        w.u64(self.icnt_latency);
        w.u64(self.l2_latency);
        w.u64(self.l2_service);
        self.dram.save(w);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.channels = r.usize()?;
        self.l2_slice.load(r)?;
        self.icnt_latency = r.u64()?;
        self.l2_latency = r.u64()?;
        self.l2_service = r.u64()?;
        self.dram.load(r)
    }
}

impl MemConfig {
    /// Latency of an L1 miss that hits in an uncontended L2.
    pub fn min_l2_hit_latency(&self) -> u64 {
        2 * self.icnt_latency + self.l2_latency
    }

    /// Latency of an L1 miss served by uncontended DRAM.
    pub fn min_dram_latency(&self) -> u64 {
        self.min_l2_hit_latency() + self.dram.latency
    }
}

/// The requester-side interface to the shared memory system.
///
/// Cores, walkers, and TBC units issue every L2/DRAM request through
/// this trait rather than a concrete [`MemorySystem`], so an execution
/// engine can interpose on the path — the parallel intra-run engine
/// wraps the shared system in an ordering gate that serializes
/// cross-core accesses into core-index order without the callers
/// noticing. [`MemorySystem`] itself is the identity implementation.
pub trait MemPort {
    /// Issues one request at cycle `now` for physical line index
    /// `line`; returns when it completes and where it hit. Semantics
    /// are exactly [`MemorySystem::access`].
    fn access(&mut self, now: Cycle, line: u64, kind: AccessKind) -> MemResult;
}

impl MemPort for MemorySystem {
    #[inline]
    fn access(&mut self, now: Cycle, line: u64, kind: AccessKind) -> MemResult {
        MemorySystem::access(self, now, line, kind)
    }
}

/// The shared L2 + DRAM system used by all cores and walkers.
///
/// # Examples
///
/// ```
/// use gmmu_mem::system::{AccessKind, MemConfig, MemorySystem};
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let cold = mem.access(0, 0x1000, AccessKind::Load);
/// let warm = mem.access(cold.complete, 0x1000, AccessKind::Load);
/// assert!(!cold.l2_hit);
/// assert!(warm.l2_hit);
/// assert!(warm.complete - cold.complete < cold.complete);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemConfig,
    slices: Vec<Cache>,
    slice_next_free: Vec<Cycle>,
    channels: Vec<Channel>,
    /// Demand loads entering the system.
    pub loads: Counter,
    /// Stores entering the system.
    pub stores: Counter,
    /// Page-walk references entering the system.
    pub walk_refs: Counter,
    /// Page-walk references that hit in L2.
    pub walk_l2_hits: Counter,
    /// Observed load round-trip latency.
    pub load_latency: Summary,
    /// Observed page-walk reference round-trip latency.
    pub walk_latency: Summary,
}

impl MemorySystem {
    /// Creates an idle memory system.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(config: MemConfig) -> Self {
        assert!(config.channels > 0, "need at least one memory channel");
        Self {
            config,
            slices: (0..config.channels)
                .map(|_| Cache::new(config.l2_slice))
                .collect(),
            slice_next_free: vec![0; config.channels],
            channels: (0..config.channels)
                .map(|_| Channel::new(config.dram))
                .collect(),
            loads: Counter::new(),
            stores: Counter::new(),
            walk_refs: Counter::new(),
            walk_l2_hits: Counter::new(),
            load_latency: Summary::new(),
            walk_latency: Summary::new(),
        }
    }

    /// Configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Issues one request at cycle `now` for physical line index `line`;
    /// returns when it completes and where it hit.
    ///
    /// Page-walk references are 8-byte PTE reads: they occupy a cache
    /// line's worth of state but negligible bandwidth, and memory
    /// controllers prioritize them, so they pay latencies without
    /// consuming the slice/channel bandwidth reservations that demand
    /// traffic queues behind.
    pub fn access(&mut self, now: Cycle, line: u64, kind: AccessKind) -> MemResult {
        let slice_idx = (line % self.config.channels as u64) as usize;
        let priority = kind == AccessKind::PageWalk;
        // Cross the interconnect, then queue for the L2 slice port.
        let at_l2 = if priority {
            now + self.config.icnt_latency
        } else {
            let t = (now + self.config.icnt_latency).max(self.slice_next_free[slice_idx]);
            self.slice_next_free[slice_idx] = t + self.config.l2_service;
            t
        };
        let l2_done = at_l2 + self.config.l2_latency;
        let l2_hit = self.slices[slice_idx].access(line, 0, at_l2).is_hit();
        let data_ready = if l2_hit {
            l2_done
        } else if priority {
            l2_done + self.config.dram.latency
        } else {
            self.channels[slice_idx].request(l2_done)
        };
        let complete = data_ready + self.config.icnt_latency;
        match kind {
            AccessKind::Load => {
                self.loads.inc();
                self.load_latency.record(complete - now);
            }
            AccessKind::Store => self.stores.inc(),
            AccessKind::PageWalk => {
                self.walk_refs.inc();
                if l2_hit {
                    self.walk_l2_hits.inc();
                }
                self.walk_latency.record(complete - now);
            }
        }
        MemResult { complete, l2_hit }
    }

    /// The earliest cycle after `now` at which a slice port or DRAM
    /// channel frees up, or `None` when the system is uncontended.
    ///
    /// The memory system is purely *reactive*: it holds no queued work
    /// of its own — every access computes its completion time the
    /// moment it is issued, and the per-slice / per-channel
    /// reservations are only consulted by later accesses. The
    /// event-skipping engine therefore does not need this in its skip
    /// bound (cores already track their own completion times); it is
    /// exposed for diagnostics and API symmetry with the cores.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        self.slice_next_free
            .iter()
            .copied()
            .chain(self.channels.iter().map(|c| c.next_free()))
            .filter(|&c| c > now)
            .min()
    }

    /// Whether `line` is currently resident in its L2 slice (no side
    /// effects).
    pub fn probe_l2(&self, line: u64) -> bool {
        let slice_idx = (line % self.config.channels as u64) as usize;
        self.slices[slice_idx].probe(line)
    }

    /// Aggregate L2 statistics across slices: (accesses, hits).
    pub fn l2_totals(&self) -> (u64, u64) {
        let acc = self.slices.iter().map(|s| s.accesses.get()).sum();
        let hits = self.slices.iter().map(|s| s.hits.get()).sum();
        (acc, hits)
    }

    /// Total DRAM requests across channels.
    pub fn dram_requests(&self) -> u64 {
        self.channels.iter().map(|c| c.requests.get()).sum()
    }

    /// Page-walk L2 hit rate in `[0, 1]`.
    pub fn walk_l2_hit_rate(&self) -> f64 {
        self.walk_l2_hits.rate(self.walk_refs.get())
    }

    /// Flushes all L2 slices (used by shootdown tests).
    pub fn flush_l2(&mut self) {
        for s in &mut self.slices {
            s.flush();
        }
    }

    /// Registers the shared memory system's instruments under `prefix`:
    /// aggregate request/latency counters, sliced-L2 totals, and one
    /// group per DRAM channel, all in deterministic order.
    pub fn register_metrics(&self, prefix: &str, reg: &mut gmmu_sim::metrics::MetricsRegistry) {
        reg.counter(format!("{prefix}.loads"), self.loads.get());
        reg.counter(format!("{prefix}.stores"), self.stores.get());
        reg.counter(format!("{prefix}.walk_refs"), self.walk_refs.get());
        reg.counter(format!("{prefix}.walk_l2_hits"), self.walk_l2_hits.get());
        reg.gauge(
            format!("{prefix}.walk_l2_hit_rate"),
            self.walk_l2_hit_rate(),
        );
        reg.gauge(
            format!("{prefix}.load_latency.mean"),
            self.load_latency.mean(),
        );
        reg.gauge(
            format!("{prefix}.walk_latency.mean"),
            self.walk_latency.mean(),
        );
        let (l2_accesses, l2_hits) = self.l2_totals();
        reg.counter(format!("{prefix}.l2.accesses"), l2_accesses);
        reg.counter(format!("{prefix}.l2.hits"), l2_hits);
        for (i, ch) in self.channels.iter().enumerate() {
            ch.register_metrics(&format!("{prefix}.dram{i}"), reg);
        }
    }
}

impl gmmu_sim::ckpt::Ckpt for MemorySystem {
    /// Slice and channel counts are geometry (rebuilt from config), so
    /// the stream holds each element in index order without a length.
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        for slice in &self.slices {
            slice.save(w);
        }
        self.slice_next_free.save(w);
        for ch in &self.channels {
            ch.save(w);
        }
        self.loads.save(w);
        self.stores.save(w);
        self.walk_refs.save(w);
        self.walk_l2_hits.save(w);
        self.load_latency.save(w);
        self.walk_latency.save(w);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        for slice in &mut self.slices {
            slice.load(r)?;
        }
        self.slice_next_free.load(r)?;
        for ch in &mut self.channels {
            ch.load(r)?;
        }
        self.loads.load(r)?;
        self.stores.load(r)?;
        self.walk_refs.load(r)?;
        self.walk_l2_hits.load(r)?;
        self.load_latency.load(r)?;
        self.walk_latency.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig::default())
    }

    #[test]
    fn l2_hit_is_much_cheaper_than_dram() {
        let mut m = mem();
        let cfg = *m.config();
        let cold = m.access(0, 42, AccessKind::Load);
        assert!(!cold.l2_hit);
        assert_eq!(cold.complete, cfg.min_dram_latency());
        let warm = m.access(10_000, 42, AccessKind::Load);
        assert!(warm.l2_hit);
        assert_eq!(warm.complete - 10_000, cfg.min_l2_hit_latency());
    }

    #[test]
    fn lines_spread_across_slices() {
        let mut m = mem();
        for line in 0..8u64 {
            m.access(0, line, AccessKind::Load);
        }
        // Each line went to its own slice → every slice saw one access.
        for s in &m.slices {
            assert_eq!(s.accesses.get(), 1);
        }
    }

    #[test]
    fn same_slice_contention_queues() {
        let mut m = mem();
        // Warm the line first so both requests hit L2.
        let warm = m.access(0, 8, AccessKind::Load);
        let t0 = warm.complete + 1000;
        let a = m.access(t0, 8, AccessKind::Load);
        let b = m.access(t0, 8, AccessKind::Load);
        assert!(a.l2_hit && b.l2_hit);
        assert_eq!(b.complete - a.complete, m.config().l2_service);
    }

    #[test]
    fn walk_stats_tracked_separately() {
        let mut m = mem();
        m.access(0, 100, AccessKind::PageWalk);
        m.access(1000, 100, AccessKind::PageWalk);
        assert_eq!(m.walk_refs.get(), 2);
        assert_eq!(m.walk_l2_hits.get(), 1);
        assert_eq!(m.walk_l2_hit_rate(), 0.5);
        assert_eq!(m.loads.get(), 0);
    }

    #[test]
    fn stores_consume_bandwidth_but_track_separately() {
        let mut m = mem();
        m.access(0, 7, AccessKind::Store);
        assert_eq!(m.stores.get(), 1);
        assert_eq!(m.loads.get(), 0);
        let (acc, _) = m.l2_totals();
        assert_eq!(acc, 1);
    }

    #[test]
    fn flush_l2_forces_refetch() {
        let mut m = mem();
        m.access(0, 5, AccessKind::Load);
        m.flush_l2();
        let again = m.access(10_000, 5, AccessKind::Load);
        assert!(!again.l2_hit);
    }

    #[test]
    fn page_walk_requests_bypass_bandwidth_queues() {
        let mut m = mem();
        // Two demand loads to one slice queue behind each other...
        let a = m.access(0, 16, AccessKind::Load);
        let b = m.access(0, 24, AccessKind::Load);
        assert!(b.complete > a.complete);
        // ...but two PTE reads issued together are latency-only.
        let mut m2 = mem();
        let c = m2.access(0, 16, AccessKind::PageWalk);
        let d = m2.access(0, 24, AccessKind::PageWalk);
        assert_eq!(c.complete, d.complete);
        // And a PTE read does not delay later demand traffic.
        let mut m3 = mem();
        m3.access(0, 16, AccessKind::PageWalk);
        let e = m3.access(0, 24, AccessKind::Load);
        let mut m4 = mem();
        let f = m4.access(0, 24, AccessKind::Load);
        assert_eq!(e.complete, f.complete);
    }

    #[test]
    fn page_walk_fills_still_warm_the_l2() {
        let mut m = mem();
        let cold = m.access(0, 99, AccessKind::PageWalk);
        assert!(!cold.l2_hit);
        let warm = m.access(cold.complete, 99, AccessKind::Load);
        assert!(warm.l2_hit, "walk fills must be visible to demand loads");
    }

    #[test]
    fn dram_requests_counted() {
        let mut m = mem();
        m.access(0, 1, AccessKind::Load);
        m.access(0, 2, AccessKind::Load);
        m.access(50_000, 1, AccessKind::Load); // hit, no DRAM
        assert_eq!(m.dram_requests(), 2);
    }
}
