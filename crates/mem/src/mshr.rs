//! Miss-status holding registers.
//!
//! Both the L1 data caches and the per-core TLBs own MSHR files
//! (Section 6.2: "we assume, like both GPU caches and past work on TLBs,
//! that there is one TLB MSHR per warp thread (32 in total)"). An MSHR
//! file tracks outstanding misses keyed by line (or page) and merges
//! same-key misses so only one request goes downstream.

use gmmu_sim::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Bit position of the ASID tag inside a tenant-qualified MSHR key.
pub const TENANT_KEY_SHIFT: u32 = 48;

/// Builds a tenant-qualified MSHR key: the ASID occupies the top 16 bits
/// and the page (or line) number the low 48. For ASID 0 this is the
/// identity on `key`, so single-tenant keys are unchanged byte for byte.
///
/// # Panics
///
/// Panics (in debug builds) if `key` overflows 48 bits — virtual page
/// numbers top out at 36 bits on a 48-bit VA, far below the tag.
#[inline]
pub fn tenant_key(asid: u16, key: u64) -> u64 {
    debug_assert!(key < 1 << TENANT_KEY_SHIFT, "key overflows the ASID tag");
    ((asid as u64) << TENANT_KEY_SHIFT) | key
}

/// Outcome of trying to register a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated; the caller must issue the downstream request.
    Allocated,
    /// Merged with an in-flight miss on the same key; the returned cycle
    /// is when that request completes.
    Merged(Cycle),
    /// No free entry; the requester must stall and retry.
    Full,
}

/// A fixed-capacity MSHR file keyed by an opaque `u64` (cache line index
/// or virtual page number).
///
/// # Examples
///
/// ```
/// use gmmu_mem::mshr::{MshrFile, MshrOutcome};
/// let mut mshrs = MshrFile::new(2);
/// assert_eq!(mshrs.lookup(0xabc), None);
/// assert_eq!(mshrs.allocate(0xabc), MshrOutcome::Allocated);
/// mshrs.set_completion(0xabc, 500);
/// assert_eq!(mshrs.allocate(0xabc), MshrOutcome::Merged(500));
/// mshrs.expire(600);
/// assert_eq!(mshrs.lookup(0xabc), None);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    // key → completion cycle (NEVER until known).
    entries: HashMap<u64, Cycle>,
    // Known completions, lazily deleted: a heap element is live only
    // while `entries[key]` still holds the same cycle. [`MshrFile::expire`]
    // and [`MshrFile::earliest_completion`] pop (and discard) stale tops,
    // turning both from O(entries) scans into O(log n) per in-flight
    // completion — they run every core cycle on the TLB hot path.
    heap: BinaryHeap<Reverse<(Cycle, u64)>>,
    /// Peak simultaneous occupancy (diagnostics).
    peak: usize,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        Self {
            capacity,
            // Twice the occupancy bound: insert/remove churn leaves
            // tombstones, and hashbrown resizes (allocating) on an
            // insert that finds no free growth slot *unless* the live
            // items fit in half the table, in which case it rehashes in
            // place. The headroom pins every such rehash to the
            // in-place path, keeping the steady state allocation-free
            // regardless of the process's hash seed.
            entries: HashMap::with_capacity(2 * capacity),
            heap: BinaryHeap::with_capacity(capacity),
            peak: 0,
        }
    }

    /// Entries currently in flight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Peak occupancy seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Entries in flight whose [`tenant_key`] tag matches `asid`
    /// (watchdog diagnostics; single-tenant keys all report under 0).
    pub fn len_asid(&self, asid: u16) -> usize {
        self.entries
            .keys()
            .filter(|&&k| (k >> TENANT_KEY_SHIFT) as u16 == asid)
            .count()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers this MSHR file's instruments under `prefix`.
    pub fn register_metrics(&self, prefix: &str, reg: &mut gmmu_sim::metrics::MetricsRegistry) {
        reg.counter(format!("{prefix}.capacity"), self.capacity as u64);
        reg.counter(format!("{prefix}.peak"), self.peak as u64);
    }

    /// Completion cycle of an in-flight miss on `key`, if any.
    pub fn lookup(&self, key: u64) -> Option<Cycle> {
        self.entries.get(&key).copied()
    }

    /// Registers a miss on `key`.
    pub fn allocate(&mut self, key: u64) -> MshrOutcome {
        if let Some(&done) = self.entries.get(&key) {
            return MshrOutcome::Merged(done);
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(key, gmmu_sim::NEVER);
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Records when the downstream request for `key` completes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `key` was never allocated.
    pub fn set_completion(&mut self, key: u64, done: Cycle) {
        let entry = self.entries.get_mut(&key);
        debug_assert!(entry.is_some(), "set_completion on unallocated MSHR");
        if let Some(e) = entry {
            *e = done;
            if done != gmmu_sim::NEVER {
                self.heap.push(Reverse((done, key)));
            }
        }
    }

    /// Releases every entry whose completion is `<= now`.
    pub fn expire(&mut self, now: Cycle) {
        while let Some(&Reverse((done, key))) = self.heap.peek() {
            if done > now {
                break;
            }
            self.heap.pop();
            // Stale heap elements (released, re-timed, or already expired
            // entries) are simply discarded.
            if self.entries.get(&key) == Some(&done) {
                self.entries.remove(&key);
            }
        }
    }

    /// Releases a specific entry (e.g. a squashed walk).
    pub fn release(&mut self, key: u64) -> bool {
        self.entries.remove(&key).is_some()
    }

    /// Earliest completion among in-flight entries (NEVER when empty or
    /// all unknown) — used to decide when a blocked TLB frees up.
    pub fn earliest_completion(&mut self) -> Cycle {
        while let Some(&Reverse((done, key))) = self.heap.peek() {
            if self.entries.get(&key) == Some(&done) {
                return done;
            }
            self.heap.pop();
        }
        gmmu_sim::NEVER
    }
}

impl gmmu_sim::ckpt::Ckpt for MshrFile {
    /// Entries are serialized sorted by key (the `HashMap` iteration
    /// order must never leak into the byte stream); the lazy-deletion
    /// heap is rebuilt from the live entries on load, which drops
    /// staleness a checkpoint never carried.
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        let mut entries: Vec<(u64, Cycle)> = self.entries.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        entries.save(w);
        w.usize(self.peak);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        let mut entries: Vec<(u64, Cycle)> = Vec::new();
        entries.load(r)?;
        self.entries.clear();
        self.heap.clear();
        for (key, done) in entries {
            self.entries.insert(key, done);
            if done != gmmu_sim::NEVER {
                self.heap.push(Reverse((done, key)));
            }
        }
        self.peak = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_full_cycle() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(1), MshrOutcome::Allocated);
        m.set_completion(1, 100);
        assert_eq!(m.allocate(1), MshrOutcome::Merged(100));
        assert_eq!(m.allocate(2), MshrOutcome::Allocated);
        assert_eq!(m.allocate(3), MshrOutcome::Full);
        assert_eq!(m.peak(), 2);
    }

    #[test]
    fn expire_releases_only_completed() {
        let mut m = MshrFile::new(4);
        m.allocate(1);
        m.set_completion(1, 100);
        m.allocate(2);
        m.set_completion(2, 200);
        m.expire(150);
        assert_eq!(m.lookup(1), None);
        assert_eq!(m.lookup(2), Some(200));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn unknown_completion_never_expires() {
        let mut m = MshrFile::new(4);
        m.allocate(7);
        m.expire(u64::MAX - 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn earliest_completion_tracks_minimum() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.earliest_completion(), gmmu_sim::NEVER);
        m.allocate(1);
        m.set_completion(1, 300);
        m.allocate(2);
        m.set_completion(2, 100);
        assert_eq!(m.earliest_completion(), 100);
    }

    #[test]
    fn release_frees_entry() {
        let mut m = MshrFile::new(1);
        m.allocate(9);
        assert!(m.release(9));
        assert!(!m.release(9));
        assert_eq!(m.allocate(10), MshrOutcome::Allocated);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn tenant_keys_partition_the_file() {
        assert_eq!(tenant_key(0, 0xabc), 0xabc, "ASID 0 is the identity");
        assert_ne!(tenant_key(1, 0xabc), tenant_key(2, 0xabc));
        let mut m = MshrFile::new(8);
        m.allocate(tenant_key(0, 5));
        m.allocate(tenant_key(1, 5));
        m.allocate(tenant_key(1, 6));
        assert_eq!(m.len(), 3, "same page under two ASIDs never merges");
        assert_eq!(m.len_asid(0), 1);
        assert_eq!(m.len_asid(1), 2);
        assert_eq!(m.len_asid(2), 0);
        m.release(tenant_key(1, 5));
        assert_eq!(m.len_asid(1), 1);
        assert_eq!(m.lookup(tenant_key(0, 5)), Some(gmmu_sim::NEVER));
    }

    #[test]
    fn retimed_completion_expires_at_latest_value_only() {
        let mut m = MshrFile::new(4);
        m.allocate(1);
        m.set_completion(1, 100);
        m.set_completion(1, 200); // e.g. injected walk delay
        m.expire(150);
        assert_eq!(m.lookup(1), Some(200), "stale earlier time must not expire");
        assert_eq!(m.earliest_completion(), 200);
        m.expire(200);
        assert_eq!(m.lookup(1), None);
        assert_eq!(m.earliest_completion(), gmmu_sim::NEVER);
    }

    #[test]
    fn retimed_completion_can_move_earlier() {
        let mut m = MshrFile::new(4);
        m.allocate(1);
        m.set_completion(1, 200);
        m.set_completion(1, 100);
        assert_eq!(m.earliest_completion(), 100);
        m.expire(100);
        assert_eq!(m.lookup(1), None);
        m.expire(250); // the stale (200, 1) element must not resurrect it
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn release_then_reallocate_ignores_stale_heap_elements() {
        let mut m = MshrFile::new(2);
        m.allocate(5);
        m.set_completion(5, 100);
        m.release(5); // squashed walk
        assert_eq!(m.earliest_completion(), gmmu_sim::NEVER);
        m.allocate(5);
        m.set_completion(5, 100); // same cycle as the stale element
        m.expire(100);
        assert_eq!(m.lookup(5), None);
        m.allocate(5);
        m.expire(u64::MAX - 1); // unknown completion still never expires
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn matches_linear_reference_under_mixed_traffic() {
        // Exhaustive cross-check of the heap against a straightforward
        // map-scan implementation over a deterministic traffic pattern.
        let mut m = MshrFile::new(8);
        let mut reference: HashMap<u64, Cycle> = HashMap::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for step in 0..4096u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 32) % 16;
            match x % 4 {
                0 => {
                    if m.allocate(key) == MshrOutcome::Allocated {
                        reference.insert(key, gmmu_sim::NEVER);
                    }
                }
                1 => {
                    if reference.contains_key(&key) {
                        let done = step + (x % 64);
                        m.set_completion(key, done);
                        reference.insert(key, done);
                    }
                }
                2 => {
                    m.release(key);
                    reference.remove(&key);
                }
                _ => {
                    m.expire(step);
                    reference.retain(|_, done| *done > step);
                }
            }
            let want = reference.values().copied().min().unwrap_or(gmmu_sim::NEVER);
            assert_eq!(m.earliest_completion(), want, "step {step}");
            assert_eq!(m.len(), reference.len(), "step {step}");
        }
    }
}
