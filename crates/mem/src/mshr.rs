//! Miss-status holding registers.
//!
//! Both the L1 data caches and the per-core TLBs own MSHR files
//! (Section 6.2: "we assume, like both GPU caches and past work on TLBs,
//! that there is one TLB MSHR per warp thread (32 in total)"). An MSHR
//! file tracks outstanding misses keyed by line (or page) and merges
//! same-key misses so only one request goes downstream.

use gmmu_sim::Cycle;
use std::collections::HashMap;

/// Outcome of trying to register a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated; the caller must issue the downstream request.
    Allocated,
    /// Merged with an in-flight miss on the same key; the returned cycle
    /// is when that request completes.
    Merged(Cycle),
    /// No free entry; the requester must stall and retry.
    Full,
}

/// A fixed-capacity MSHR file keyed by an opaque `u64` (cache line index
/// or virtual page number).
///
/// # Examples
///
/// ```
/// use gmmu_mem::mshr::{MshrFile, MshrOutcome};
/// let mut mshrs = MshrFile::new(2);
/// assert_eq!(mshrs.lookup(0xabc), None);
/// assert_eq!(mshrs.allocate(0xabc), MshrOutcome::Allocated);
/// mshrs.set_completion(0xabc, 500);
/// assert_eq!(mshrs.allocate(0xabc), MshrOutcome::Merged(500));
/// mshrs.expire(600);
/// assert_eq!(mshrs.lookup(0xabc), None);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    // key → completion cycle (NEVER until known).
    entries: HashMap<u64, Cycle>,
    /// Peak simultaneous occupancy (diagnostics).
    peak: usize,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        Self {
            capacity,
            entries: HashMap::with_capacity(capacity),
            peak: 0,
        }
    }

    /// Entries currently in flight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Peak occupancy seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Completion cycle of an in-flight miss on `key`, if any.
    pub fn lookup(&self, key: u64) -> Option<Cycle> {
        self.entries.get(&key).copied()
    }

    /// Registers a miss on `key`.
    pub fn allocate(&mut self, key: u64) -> MshrOutcome {
        if let Some(&done) = self.entries.get(&key) {
            return MshrOutcome::Merged(done);
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(key, gmmu_sim::NEVER);
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Records when the downstream request for `key` completes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `key` was never allocated.
    pub fn set_completion(&mut self, key: u64, done: Cycle) {
        let entry = self.entries.get_mut(&key);
        debug_assert!(entry.is_some(), "set_completion on unallocated MSHR");
        if let Some(e) = entry {
            *e = done;
        }
    }

    /// Releases every entry whose completion is `<= now`.
    pub fn expire(&mut self, now: Cycle) {
        self.entries.retain(|_, done| *done > now);
    }

    /// Releases a specific entry (e.g. a squashed walk).
    pub fn release(&mut self, key: u64) -> bool {
        self.entries.remove(&key).is_some()
    }

    /// Earliest completion among in-flight entries (NEVER when empty or
    /// all unknown) — used to decide when a blocked TLB frees up.
    pub fn earliest_completion(&self) -> Cycle {
        self.entries
            .values()
            .copied()
            .min()
            .unwrap_or(gmmu_sim::NEVER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_full_cycle() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(1), MshrOutcome::Allocated);
        m.set_completion(1, 100);
        assert_eq!(m.allocate(1), MshrOutcome::Merged(100));
        assert_eq!(m.allocate(2), MshrOutcome::Allocated);
        assert_eq!(m.allocate(3), MshrOutcome::Full);
        assert_eq!(m.peak(), 2);
    }

    #[test]
    fn expire_releases_only_completed() {
        let mut m = MshrFile::new(4);
        m.allocate(1);
        m.set_completion(1, 100);
        m.allocate(2);
        m.set_completion(2, 200);
        m.expire(150);
        assert_eq!(m.lookup(1), None);
        assert_eq!(m.lookup(2), Some(200));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn unknown_completion_never_expires() {
        let mut m = MshrFile::new(4);
        m.allocate(7);
        m.expire(u64::MAX - 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn earliest_completion_tracks_minimum() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.earliest_completion(), gmmu_sim::NEVER);
        m.allocate(1);
        m.set_completion(1, 300);
        m.allocate(2);
        m.set_completion(2, 100);
        assert_eq!(m.earliest_completion(), 100);
    }

    #[test]
    fn release_frees_entry() {
        let mut m = MshrFile::new(1);
        m.allocate(9);
        assert!(m.release(9));
        assert!(!m.release(9));
        assert_eq!(m.allocate(10), MshrOutcome::Allocated);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
