//! Set-associative cache state with LRU replacement and per-line metadata.
//!
//! Used for L1 data caches (32 KB, 128 B lines — Section 5.2) and the
//! shared L2 slices. The cache is a *state* model: hit/miss/victim are
//! decided here; request timing is computed by the surrounding latency
//! model. Each line carries a small metadata word — the shader core stores
//! the allocating warp id there, which CCWS reads when an eviction feeds a
//! victim tag array (Section 7.1: "the cache holds tags and data, but also
//! an identifier for the warp that allocated the cache line").

use gmmu_sim::stats::Counter;

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// The paper's L1D: 32 KB, 128-byte lines, 4-way → 64 sets.
    pub fn l1_data() -> Self {
        Self { sets: 64, ways: 4 }
    }

    /// One L2 slice: 128 KB, 128-byte lines, 8-way → 128 sets.
    pub fn l2_slice() -> Self {
        Self { sets: 128, ways: 8 }
    }

    /// Total lines.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }
}

impl gmmu_sim::ckpt::Ckpt for CacheConfig {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.usize(self.sets);
        w.usize(self.ways);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.sets = r.usize()?;
        self.ways = r.usize()?;
        Ok(())
    }
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line index (address >> line shift) of the evicted line.
    pub line: u64,
    /// Metadata stored with the line (allocating warp id).
    pub meta: u32,
}

/// Outcome of [`Cache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled, possibly evicting a
    /// victim.
    Miss {
        /// The line that was displaced, if the set was full.
        victim: Option<Victim>,
    },
}

impl CacheAccess {
    /// True for [`CacheAccess::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheAccess::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    meta: u32,
    last_use: u64,
    valid: bool,
}

const INVALID: Way = Way {
    tag: 0,
    meta: 0,
    last_use: 0,
    valid: false,
};

/// A set-associative LRU cache over line indices.
///
/// # Examples
///
/// ```
/// use gmmu_mem::cache::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { sets: 2, ways: 2 });
/// assert!(!c.access(0x10, 0, 1).is_hit());
/// assert!(c.access(0x10, 0, 2).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    ways: Vec<Way>,
    set_mask: u64,
    /// Accesses observed (hits + misses).
    pub accesses: Counter,
    /// Hits observed.
    pub hits: Counter,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0, "cache needs at least one way");
        Self {
            config,
            ways: vec![INVALID; config.lines()],
            set_mask: config.sets as u64 - 1,
            accesses: Counter::new(),
            hits: Counter::new(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.accesses.get() - self.hits.get()
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses.get() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses.get() as f64
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & self.set_mask) as usize;
        set * self.config.ways..(set + 1) * self.config.ways
    }

    /// Accesses `line`, allocating on miss (LRU victim), tagging any fill
    /// with `meta`, and using `stamp` (any monotone value, e.g. the cycle)
    /// for recency.
    pub fn access(&mut self, line: u64, meta: u32, stamp: u64) -> CacheAccess {
        self.accesses.inc();
        let range = self.set_range(line);
        let ways = &mut self.ways[range];
        // Hit?
        for w in ways.iter_mut() {
            if w.valid && w.tag == line {
                w.last_use = stamp;
                self.hits.inc();
                return CacheAccess::Hit;
            }
        }
        // Miss: fill into invalid or LRU way.
        let mut victim_idx = 0;
        let mut oldest = u64::MAX;
        for (i, w) in ways.iter().enumerate() {
            if !w.valid {
                victim_idx = i;
                break;
            }
            if w.last_use < oldest {
                oldest = w.last_use;
                victim_idx = i;
            }
        }
        let victim = ways[victim_idx].valid.then_some(Victim {
            line: ways[victim_idx].tag,
            meta: ways[victim_idx].meta,
        });
        ways[victim_idx] = Way {
            tag: line,
            meta,
            last_use: stamp,
            valid: true,
        };
        CacheAccess::Miss { victim }
    }

    /// Checks presence without updating recency or statistics.
    pub fn probe(&self, line: u64) -> bool {
        let range = self.set_range(line);
        self.ways[range].iter().any(|w| w.valid && w.tag == line)
    }

    /// Invalidates one line; returns `true` if it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidates everything (e.g. a TLB-shootdown-driven flush of
    /// page-walk lines is modelled as a full flush in tests).
    pub fn flush(&mut self) {
        self.ways.fill(INVALID);
    }

    /// Registers this cache's instruments under `prefix`.
    pub fn register_metrics(&self, prefix: &str, reg: &mut gmmu_sim::metrics::MetricsRegistry) {
        reg.counter(format!("{prefix}.accesses"), self.accesses.get());
        reg.counter(format!("{prefix}.hits"), self.hits.get());
        reg.gauge(
            format!("{prefix}.hit_rate"),
            self.hits.rate(self.accesses.get()),
        );
    }

    /// Number of valid lines (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for Way {
    fn save(&self, w: &mut Saver) {
        w.u64(self.tag);
        w.u32(self.meta);
        w.u64(self.last_use);
        w.bool(self.valid);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.tag = r.u64()?;
        self.meta = r.u32()?;
        self.last_use = r.u64()?;
        self.valid = r.bool()?;
        Ok(())
    }
}

impl Ckpt for Cache {
    /// Geometry (`config`, `set_mask`) is rebuilt by the caller; only
    /// the tag/LRU state and hit counters are serialized.
    fn save(&self, w: &mut Saver) {
        self.ways.save(w);
        self.accesses.save(w);
        self.hits.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.ways.load(r)?;
        self.accesses.load(r)?;
        self.hits.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig { sets: 2, ways: 2 })
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line indices).
        c.access(0, 10, 1);
        c.access(2, 11, 2);
        c.access(0, 10, 3); // touch 0 again → 2 is LRU
        let res = c.access(4, 12, 4);
        match res {
            CacheAccess::Miss { victim: Some(v) } => {
                assert_eq!(v.line, 2);
                assert_eq!(v.meta, 11);
            }
            other => panic!("expected eviction of line 2, got {other:?}"),
        }
        assert!(c.probe(0));
        assert!(!c.probe(2));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        c.access(0, 0, 1);
        c.access(1, 0, 2); // odd → set 1
        c.access(2, 0, 3);
        c.access(4, 0, 4); // evicts within set 0 only
        assert!(c.probe(1));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = tiny();
        c.access(0, 0, 1);
        c.access(0, 0, 2);
        c.access(2, 0, 3);
        assert_eq!(c.accesses.get(), 3);
        assert_eq!(c.hits.get(), 1);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = tiny();
        c.access(0, 0, 1);
        let before = c.accesses.get();
        assert!(c.probe(0));
        assert!(!c.probe(2));
        assert_eq!(c.accesses.get(), before);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        c.access(0, 0, 1);
        c.access(1, 0, 2);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(0));
        assert_eq!(c.occupancy(), 1);
        c.flush();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn cold_miss_has_no_victim() {
        let mut c = tiny();
        match c.access(0, 0, 1) {
            CacheAccess::Miss { victim: None } => {}
            other => panic!("expected cold miss, got {other:?}"),
        }
    }

    #[test]
    fn paper_geometries() {
        let l1 = CacheConfig::l1_data();
        assert_eq!(l1.lines() as u64 * crate::LINE_BYTES, 32 * 1024);
        let l2 = CacheConfig::l2_slice();
        assert_eq!(l2.lines() as u64 * crate::LINE_BYTES, 128 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        let _ = Cache::new(CacheConfig { sets: 3, ways: 1 });
    }
}
