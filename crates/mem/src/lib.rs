#![warn(missing_docs)]

//! Memory-hierarchy substrate: the cache/DRAM system underneath the MMU.
//!
//! The paper's GPU (Section 5.2) has per-shader-core 32 KB L1 data caches
//! (128-byte lines, LRU), a shared L2 sliced across 8 memory channels
//! (128 KB per channel), and an interconnection network between core
//! clusters and memory partitions. This crate implements those pieces:
//!
//! * [`cache`] — a set-associative, LRU, per-line-metadata cache used for
//!   both L1s and L2 slices. Line metadata carries the allocating warp id,
//!   which cache-conscious wavefront scheduling needs when a victim is
//!   inserted into a victim tag array.
//! * [`mshr`] — miss-status holding registers with same-line merging.
//! * [`dram`] — per-channel bandwidth/latency queues.
//! * [`system`] — [`system::MemorySystem`], the shared L2 + DRAM +
//!   interconnect timing model every shader core and page-table walker
//!   issues requests into.
//!
//! Timing model: components are *state machines with reservations* —
//! a request at cycle `t` updates cache/queue state immediately and
//! returns its completion cycle, with per-channel `next_free` reservations
//! providing bandwidth contention. All cores tick in lock-step in the
//! global simulation loop, so state updates stay causally ordered.

pub mod cache;
pub mod dram;
pub mod mshr;
pub mod system;

pub use cache::{Cache, CacheAccess, CacheConfig, Victim};
pub use mshr::MshrFile;
pub use system::{AccessKind, MemConfig, MemPort, MemResult, MemorySystem};

/// log2 of the 128-byte line size used throughout the hierarchy.
pub const LINE_SHIFT: u32 = 7;
/// Line size in bytes.
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;
