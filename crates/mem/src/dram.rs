//! DRAM channel timing.
//!
//! The paper's configuration has 8 memory channels (Section 5.2). Each
//! channel is modelled as a fixed access latency plus a bandwidth
//! reservation queue: back-to-back requests to one channel serialize at
//! the channel's service interval, which is how memory-intensive phases
//! see queueing delay without simulating DRAM banks row-by-row.

use gmmu_sim::stats::{Counter, Summary};
use gmmu_sim::Cycle;

/// Timing parameters of one DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Cycles from request issue (post-queue) to data return.
    pub latency: u64,
    /// Minimum cycles between successive line transfers on one channel
    /// (128 B per `service` cycles = channel bandwidth).
    pub service: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            latency: 200,
            service: 4,
        }
    }
}

impl gmmu_sim::ckpt::Ckpt for DramConfig {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.u64(self.latency);
        w.u64(self.service);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.latency = r.u64()?;
        self.service = r.u64()?;
        Ok(())
    }
}

/// One DRAM channel.
///
/// # Examples
///
/// ```
/// use gmmu_mem::dram::{Channel, DramConfig};
/// let mut ch = Channel::new(DramConfig { latency: 100, service: 4 });
/// let first = ch.request(10);
/// let second = ch.request(10); // same-cycle request queues behind first
/// assert_eq!(first, 110);
/// assert_eq!(second, 114);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    config: DramConfig,
    next_free: Cycle,
    /// Requests serviced.
    pub requests: Counter,
    /// Observed per-request total latency (queueing + access).
    pub latency: Summary,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        Self {
            config,
            next_free: 0,
            requests: Counter::new(),
            latency: Summary::new(),
        }
    }

    /// Issues one line request at cycle `now`; returns the completion
    /// cycle (including any queueing delay).
    pub fn request(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_free);
        self.next_free = start + self.config.service;
        let done = start + self.config.latency;
        self.requests.inc();
        self.latency.record(done - now);
        done
    }

    /// Cycle at which the channel can accept the next request.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Registers this channel's instruments under `prefix`.
    pub fn register_metrics(&self, prefix: &str, reg: &mut gmmu_sim::metrics::MetricsRegistry) {
        reg.counter(format!("{prefix}.requests"), self.requests.get());
        reg.gauge(format!("{prefix}.latency.mean"), self.latency.mean());
    }
}

impl gmmu_sim::ckpt::Ckpt for Channel {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        w.u64(self.next_free);
        self.requests.save(w);
        self.latency.save(w);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.next_free = r.u64()?;
        self.requests.load(r)?;
        self.latency.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_channel_has_pure_latency() {
        let cfg = DramConfig::default();
        let mut ch = Channel::new(cfg);
        assert_eq!(ch.request(1000), 1000 + cfg.latency);
    }

    #[test]
    fn burst_requests_queue() {
        let mut ch = Channel::new(DramConfig {
            latency: 100,
            service: 4,
        });
        let times: Vec<Cycle> = (0..4).map(|_| ch.request(0)).collect();
        assert_eq!(times, vec![100, 104, 108, 112]);
        assert_eq!(ch.requests.get(), 4);
        assert_eq!(ch.latency.max(), 112);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut ch = Channel::new(DramConfig {
            latency: 100,
            service: 4,
        });
        ch.request(0);
        ch.request(0);
        // By cycle 50 the channel is free again.
        assert_eq!(ch.request(50), 150);
    }
}
