//! The memory unit's address generator and coalescer.
//!
//! Figure 5: "the memory unit's address generator calculates virtual
//! addresses, which are coalesced into unique cache line references. We
//! enhance this logic by also coalescing multiple intra-warp requests to
//! the same virtual page (and hence PTE). This reduces TLB access
//! traffic and port counts." The number of unique pages a warp requests
//! is its **page divergence** (Figure 3), the quantity that stresses the
//! TLB ports and the walker.

use gmmu_core::mmu::PageReq;
use gmmu_vm::{PageSize, VAddr, Vpn};

/// log2 of the L1 line size (128 bytes).
const LINE_SHIFT: u32 = gmmu_mem::LINE_SHIFT;

/// One coalesced line reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRef {
    /// Virtual line index (virtual address >> 7).
    pub vline: u64,
    /// Index into [`CoalesceBuf::pages`] of the page containing it.
    pub page_idx: u32,
}

/// Reusable output of one warp memory instruction's coalescing.
#[derive(Debug, Clone, Default)]
pub struct CoalesceBuf {
    /// Unique cache lines.
    pub lines: Vec<LineRef>,
    /// Unique virtual pages (the warp's page divergence is
    /// `pages.len()`), each tagged with the home warp of its first
    /// referencing thread — the warp identity used for TLB history and
    /// the CPM, which track original warps rather than dynamic ones
    /// (Section 8.2).
    pub pages: Vec<PageReq>,
}

impl CoalesceBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Page divergence of the last coalesced instruction.
    pub fn page_divergence(&self) -> usize {
        self.pages.len()
    }

    /// Clears the buffer (done automatically by [`coalesce`]).
    pub fn clear(&mut self) {
        self.lines.clear();
        self.pages.clear();
    }
}

/// Coalesces the active threads' addresses of one warp memory
/// instruction into unique lines and unique pages.
///
/// `accesses` yields `(address, home_warp)` for each active lane.
/// Linear-scan dedup: a warp has at most 32 lanes, so this is faster
/// than hashing.
///
/// # Examples
///
/// ```
/// use gmmu_simt::coalesce::{coalesce, CoalesceBuf};
/// use gmmu_vm::VAddr;
///
/// let mut buf = CoalesceBuf::new();
/// // Four threads touching two lines on one page.
/// let accesses = [0u64, 8, 128, 136].map(|o| (VAddr::new(0x10000 + o), 0u16));
/// coalesce(accesses.into_iter(), &mut buf);
/// assert_eq!(buf.lines.len(), 2);
/// assert_eq!(buf.page_divergence(), 1);
/// ```
pub fn coalesce(accesses: impl Iterator<Item = (VAddr, u16)>, out: &mut CoalesceBuf) {
    coalesce_granule(accesses, PageSize::Base4K, out)
}

/// Like [`coalesce`], but deduplicating pages at an explicit translation
/// granule (2 MiB for the paper's Section 9 large-page study). The
/// emitted [`PageReq::vpn`] is the granule's first 4 KiB page number, so
/// downstream page-table walks and TLB fills work unchanged.
pub fn coalesce_granule(
    accesses: impl Iterator<Item = (VAddr, u16)>,
    granule: PageSize,
    out: &mut CoalesceBuf,
) {
    let shift = granule.shift();
    out.clear();
    for (va, home_warp) in accesses {
        let vpn = Vpn::new((va.raw() >> shift) << (shift - 12));
        let page_idx = match out.pages.iter().position(|p| p.vpn == vpn) {
            Some(i) => i as u32,
            None => {
                out.pages.push(PageReq::new(vpn, home_warp));
                (out.pages.len() - 1) as u32
            }
        };
        let vline = va.line(LINE_SHIFT);
        if !out.lines.iter().any(|l| l.vline == vline) {
            out.lines.push(LineRef { vline, page_idx });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(addrs: &[u64]) -> CoalesceBuf {
        let mut buf = CoalesceBuf::new();
        coalesce(addrs.iter().map(|&a| (VAddr::new(a), 0)), &mut buf);
        buf
    }

    #[test]
    fn fully_coalesced_warp_is_one_line_one_page() {
        // 32 threads × 4 bytes, consecutive → one 128-byte line.
        let addrs: Vec<u64> = (0..32).map(|i| 0x40_0000 + i * 4).collect();
        let buf = run(&addrs);
        assert_eq!(buf.lines.len(), 1);
        assert_eq!(buf.page_divergence(), 1);
    }

    #[test]
    fn strided_access_spans_lines_but_one_page() {
        // 8-byte elements, stride 128 → every thread its own line.
        let addrs: Vec<u64> = (0..32).map(|i| 0x40_0000 + i * 128).collect();
        let buf = run(&addrs);
        assert_eq!(buf.lines.len(), 32);
        assert_eq!(buf.page_divergence(), 1); // 32 × 128 B = 4 KiB
    }

    #[test]
    fn pathological_warp_has_divergence_32() {
        // Each thread on its own page.
        let addrs: Vec<u64> = (0..32).map(|i| 0x40_0000 + i * 4096).collect();
        let buf = run(&addrs);
        assert_eq!(buf.page_divergence(), 32);
        assert_eq!(buf.lines.len(), 32);
    }

    #[test]
    fn duplicate_addresses_collapse() {
        let buf = run(&[0x1000, 0x1000, 0x1004, 0x1008]);
        assert_eq!(buf.lines.len(), 1);
        assert_eq!(buf.page_divergence(), 1);
    }

    #[test]
    fn lines_know_their_pages() {
        let buf = run(&[0x1000, 0x2000, 0x2080]);
        assert_eq!(buf.pages.len(), 2);
        assert_eq!(buf.lines.len(), 3);
        assert_eq!(buf.lines[0].page_idx, 0);
        assert_eq!(buf.lines[1].page_idx, 1);
        assert_eq!(buf.lines[2].page_idx, 1);
    }

    #[test]
    fn rep_warp_is_first_contributor() {
        let mut buf = CoalesceBuf::new();
        let accesses = [
            (VAddr::new(0x1000), 3u16),
            (VAddr::new(0x1008), 5),
            (VAddr::new(0x2000), 5),
        ];
        coalesce(accesses.into_iter(), &mut buf);
        assert_eq!(buf.pages[0].warp, 3);
        assert_eq!(buf.pages[1].warp, 5);
    }

    #[test]
    fn large_granule_merges_pages_within_two_megabytes() {
        use gmmu_vm::PageSize;
        let mut buf = CoalesceBuf::new();
        // Two addresses on different 4 KiB pages of one 2 MiB region,
        // plus one in the next region.
        let accesses = [
            (VAddr::new(0x4000_0000), 0u16),
            (VAddr::new(0x4000_0000 + 5 * 4096), 0),
            (VAddr::new(0x4000_0000 + (2 << 20)), 0),
        ];
        coalesce_granule(accesses.into_iter(), PageSize::Large2M, &mut buf);
        assert_eq!(buf.page_divergence(), 2);
        // The emitted vpn is the granule's first 4 KiB page.
        assert_eq!(buf.pages[0].vpn.raw() % 512, 0);
        assert_eq!(buf.pages[1].vpn.raw() - buf.pages[0].vpn.raw(), 512);
        // Lines are still tracked individually.
        assert_eq!(buf.lines.len(), 3);
        // With the base granule the same accesses diverge to 3 pages.
        coalesce(accesses.into_iter(), &mut buf);
        assert_eq!(buf.page_divergence(), 3);
    }

    #[test]
    fn granule_page_indices_stay_consistent() {
        use gmmu_vm::PageSize;
        let mut buf = CoalesceBuf::new();
        let accesses = (0..8u64).map(|i| (VAddr::new(0x4000_0000 + i * 300_000), 0u16));
        coalesce_granule(accesses, PageSize::Large2M, &mut buf);
        for line in &buf.lines {
            let page = &buf.pages[line.page_idx as usize];
            // The line's address lies inside its page's 2 MiB granule.
            let line_base = line.vline << 7;
            let granule_base = page.vpn.raw() << 12;
            assert!(line_base >= granule_base);
            assert!(line_base < granule_base + (2 << 20));
        }
    }

    #[test]
    fn buffer_reuse_clears_previous_state() {
        let mut buf = CoalesceBuf::new();
        coalesce([(VAddr::new(0x1000), 0u16)].into_iter(), &mut buf);
        coalesce([(VAddr::new(0x9000), 0u16)].into_iter(), &mut buf);
        assert_eq!(buf.lines.len(), 1);
        assert_eq!(buf.pages[0].vpn, VAddr::new(0x9000).vpn());
    }
}
