//! Thread block compaction (Section 8).
//!
//! TBC [18] exploits control-flow locality within a thread block: at a
//! (potentially) divergent branch all dynamic warps of the block
//! synchronize, threads are partitioned by branch outcome, and each side
//! is *compacted* into fresh dynamic warps — preserving each thread's
//! home lane, since the register file is banked by lane. A block-wide
//! reconvergence stack tracks the paths; when both sides finish, the
//! pre-branch warps resume at the reconvergence point.
//!
//! **TLB-aware TBC** (Section 8.2) threads the Common Page Matrix into
//! the compactor: a thread joins a dynamic warp only if its home warp's
//! CPM counters against every member already compacted are saturated —
//! grouping threads that have historically shared PTEs, which lowers
//! page divergence at a possible cost of more dynamic warps (Figure 19).

use crate::config::{GpuConfig, TbcConfig};
use crate::core::{BlockWork, MemIssue, MemPath, Pending, WaitKind};
use crate::program::{Kernel, Op, ThreadId};
use crate::stall::StallCause;
use gmmu_mem::MemPort;
use gmmu_sim::trace::{TraceEvent, Tracer, TID_DISPATCH};
use gmmu_sim::Cycle;
use gmmu_vm::AddressSpace;
use std::collections::VecDeque;

/// A dynamic warp: up to 32 threads, one per home lane.
#[derive(Debug, Clone)]
pub(crate) struct Dwarp {
    pub lanes: [Option<ThreadId>; 32],
    pub block: u16,
    pub pc: u32,
    pub ready_at: Cycle,
    pub pending: Option<Pending>,
    pub waiting_pages: usize,
    /// Pages whose walks ended in a page fault; the unit is parked until
    /// the modeled CPU fault handler maps them all.
    pub faulted_pages: usize,
    pub at_branch: bool,
    pub done_at_rpc: bool,
    pub alive: bool,
    pub wait: WaitKind,
}

impl Dwarp {
    fn dead() -> Self {
        Self {
            lanes: [None; 32],
            block: 0,
            pc: 0,
            ready_at: 0,
            pending: None,
            waiting_pages: 0,
            faulted_pages: 0,
            at_branch: false,
            done_at_rpc: false,
            alive: false,
            wait: WaitKind::default(),
        }
    }

    fn schedulable(&self, now: Cycle) -> bool {
        self.alive
            && !self.at_branch
            && !self.done_at_rpc
            && self.waiting_pages == 0
            && self.faulted_pages == 0
            && self.ready_at <= now
    }
}

impl Default for Dwarp {
    fn default() -> Self {
        Dwarp::dead()
    }
}

/// One level of a block-wide reconvergence stack.
#[derive(Debug, Clone, Default)]
struct TbcLevel {
    /// Pc at which this level's units are done.
    rpc: u32,
    /// Dynamic warps executing (top level) or paused (lower levels).
    units: Vec<u16>,
    /// Where the paused units resume once the levels above pop.
    resume_pc: Option<u32>,
}

/// Per-block compaction state.
#[derive(Debug, Clone)]
struct TbcBlock {
    active: bool,
    first_tid: ThreadId,
    /// Core-local static warp id of the block's first warp.
    base_warp: u16,
    levels: Vec<TbcLevel>,
    /// Cycle the block was dispatched (the `block` trace span's start).
    started: Cycle,
}

/// A dynamic warp being assembled by [`TbcState::compact_threads`].
#[derive(Debug)]
struct Building {
    lanes: [Option<ThreadId>; 32],
    homes: Vec<u16>,
}

/// The TBC executor of one shader core.
#[derive(Debug)]
pub(crate) struct TbcState {
    cfg: TbcConfig,
    warps_per_block: usize,
    blocks: Vec<TbcBlock>,
    units: Vec<Dwarp>,
    free_units: Vec<u16>,
    rr: usize,
    cand_scratch: Vec<u16>,
    /// Recycled unit-list allocations: retired [`TbcLevel::units`]
    /// vectors parked here for the next dispatch or compaction, so
    /// block/branch events stop heap-allocating in steady state.
    u16_pool: Vec<Vec<u16>>,
    /// Branch-evaluation scratch: taken/fall-through thread sets and a
    /// copy of the level's units, reused across branch events.
    taken_scratch: Vec<ThreadId>,
    fall_scratch: Vec<ThreadId>,
    old_units_scratch: Vec<u16>,
    /// Compaction scratch: dynamic warps under construction, reused via
    /// a live-prefix convention (entries beyond the current call's
    /// count are stale but keep their `homes` allocations).
    building_scratch: Vec<Building>,
}

impl TbcState {
    pub(crate) fn new(cfg: &GpuConfig, tbc: TbcConfig) -> Self {
        let slots = cfg.warps_per_core / cfg.warps_per_block;
        Self {
            cfg: tbc,
            warps_per_block: cfg.warps_per_block,
            blocks: (0..slots)
                .map(|s| TbcBlock {
                    active: false,
                    first_tid: 0,
                    base_warp: (s * cfg.warps_per_block) as u16,
                    levels: Vec::new(),
                    started: 0,
                })
                .collect(),
            units: Vec::new(),
            free_units: Vec::new(),
            rr: 0,
            cand_scratch: Vec::new(),
            u16_pool: Vec::new(),
            taken_scratch: Vec::new(),
            fall_scratch: Vec::new(),
            old_units_scratch: Vec::new(),
            building_scratch: Vec::new(),
        }
    }

    pub(crate) fn has_work(&self) -> bool {
        self.blocks.iter().any(|b| b.active)
    }

    /// Whether an inactive block slot could accept a queued block.
    pub(crate) fn has_free_slot(&self) -> bool {
        self.blocks.iter().any(|b| !b.active)
    }

    /// The earliest cycle after `now` at which a currently-idle dynamic
    /// warp could issue. Only top-of-stack units can be scheduled;
    /// units at a branch or done at their reconvergence point wait on
    /// siblings (whose own timers, or the MMU's, bound the skip), and
    /// page-waiting units are woken by MMU fills.
    pub(crate) fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut next = Cycle::MAX;
        for block in &self.blocks {
            if !block.active {
                continue;
            }
            if let Some(top) = block.levels.last() {
                for &u in &top.units {
                    let unit = &self.units[u as usize];
                    if unit.alive
                        && !unit.at_branch
                        && !unit.done_at_rpc
                        && unit.waiting_pages == 0
                        && unit.faulted_pages == 0
                    {
                        next = next.min(unit.ready_at.max(now + 1));
                    }
                }
            }
        }
        (next != Cycle::MAX).then_some(next)
    }

    /// Whether an [`TbcState::issue`] call at `now` would do anything:
    /// some unit is schedulable, or barrier/completion maintenance is
    /// pending on a block (a level whose units are all done or all at a
    /// branch — popping or compacting arms new timers even though
    /// nothing issues). The core's next-event cache treats a tick as
    /// quiet only when this is false, so state the cache depends on
    /// cannot change behind its back.
    pub(crate) fn has_ready_work(&self, now: Cycle) -> bool {
        for block in &self.blocks {
            if !block.active {
                continue;
            }
            let Some(top) = block.levels.last() else {
                return true; // empty stack: the block finishes this tick
            };
            let mut all_done = true;
            let mut all_at_branch = !top.units.is_empty();
            let mut any_at_branch = false;
            for &u in &top.units {
                let unit = &self.units[u as usize];
                if unit.schedulable(now) {
                    return true;
                }
                all_done &= unit.done_at_rpc;
                any_at_branch |= unit.at_branch;
                all_at_branch &= unit.at_branch || unit.done_at_rpc;
            }
            if all_done || (all_at_branch && any_at_branch) {
                return true;
            }
        }
        false
    }

    /// Maximum dynamic-warp contexts ever live (diagnostics).
    #[allow(dead_code)]
    pub(crate) fn peak_units(&self) -> usize {
        self.units.len()
    }

    /// Reports one [`StallCause`] per live unit to `note` (stall
    /// attribution; see `core::classify_stall`). Units parked at a
    /// branch barrier, done at their reconvergence point, or buried
    /// below the top of their block's stack are dispatch/barrier
    /// droughts; top-level units waiting on pages or timers report
    /// their wait kind.
    pub(crate) fn classify_stall(&self, now: Cycle, note: &mut dyn FnMut(StallCause)) {
        for block in &self.blocks {
            if !block.active {
                continue;
            }
            let n_levels = block.levels.len();
            for (li, level) in block.levels.iter().enumerate() {
                let top = li + 1 == n_levels;
                for &u in &level.units {
                    let unit = &self.units[u as usize];
                    if !unit.alive {
                        continue;
                    }
                    if !top || unit.at_branch || unit.done_at_rpc {
                        note(StallCause::Dispatch);
                    } else if unit.faulted_pages > 0 {
                        note(StallCause::FaultService);
                    } else if unit.waiting_pages > 0 {
                        note(StallCause::TlbFill);
                    } else if unit.ready_at > now {
                        note(unit.wait.cause());
                    } else {
                        // Schedulable yet nothing issued anywhere: only
                        // possible transiently; count as a drought.
                        note(StallCause::Dispatch);
                    }
                }
            }
        }
    }

    fn alloc_unit(&mut self, d: Dwarp) -> u16 {
        if let Some(id) = self.free_units.pop() {
            self.units[id as usize] = d;
            id
        } else {
            self.units.push(d);
            (self.units.len() - 1) as u16
        }
    }

    fn free_unit(&mut self, id: u16) {
        self.units[id as usize] = Dwarp::dead();
        self.free_units.push(id);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn wake(
        &mut self,
        unit: u16,
        vpn: gmmu_vm::Vpn,
        ppn: gmmu_vm::Ppn,
        path: &mut MemPath,
        now: Cycle,
        mem: &mut dyn MemPort,
        tracer: &mut Tracer,
        pid: u32,
    ) {
        let u = &mut self.units[unit as usize];
        debug_assert!(u.alive && u.waiting_pages > 0);
        if let Some(pending) = u.pending.as_mut() {
            path.service_page(now, pending, vpn, ppn, mem);
        }
        u.waiting_pages = u.waiting_pages.saturating_sub(1);
        if u.waiting_pages == 0 {
            let slept = u.pending.as_ref().map_or(now, |p| p.slept_at);
            tracer.record(|| {
                TraceEvent::span("warp_sleep", "warp", pid, unit as u32, slept, now - slept)
                    .arg("vpn", vpn.raw())
            });
            let all_serviced = u.pending.as_ref().is_some_and(|p| p.accesses.is_empty());
            if all_serviced {
                let p = u.pending.take().expect("checked");
                u.ready_at = p.overlap_done_at.max(now + 1);
                u.wait = WaitKind::MemData {
                    dram: p.touched_dram,
                };
                path.stash_accesses(p.accesses);
                u.pc += 1;
                // done_at_rpc is fixed up against the unit's level by
                // maintain_block via the rpc check below.
                u.done_at_rpc = false;
                self.fixup_done(unit);
            } else {
                u.ready_at = now + 1;
                u.wait = WaitKind::Replay;
            }
        }
    }

    /// A walk for one of `unit`'s pages ended in a page fault: move the
    /// page from the waiting count to the faulted count (the core tracks
    /// which units each faulted page parks).
    pub(crate) fn fault(&mut self, unit: u16) {
        let u = &mut self.units[unit as usize];
        debug_assert!(u.alive && u.waiting_pages > 0);
        u.waiting_pages = u.waiting_pages.saturating_sub(1);
        u.faulted_pages += 1;
    }

    /// One of `unit`'s in-flight walks was squashed by a TLB shootdown;
    /// with nothing else outstanding the unit retries after `backoff`.
    pub(crate) fn squash(&mut self, unit: u16, now: Cycle, backoff: Cycle) {
        let u = &mut self.units[unit as usize];
        u.waiting_pages = u.waiting_pages.saturating_sub(1);
        if u.waiting_pages == 0 && u.faulted_pages == 0 {
            u.ready_at = now + backoff.max(1);
            u.wait = WaitKind::Reject;
        }
    }

    /// The CPU fault handler mapped one of `unit`'s faulted pages; with
    /// nothing else outstanding the unit replays next cycle.
    pub(crate) fn resolve_fault(&mut self, unit: u16, now: Cycle) {
        let u = &mut self.units[unit as usize];
        debug_assert!(u.faulted_pages > 0);
        u.faulted_pages = u.faulted_pages.saturating_sub(1);
        if u.faulted_pages == 0 && u.waiting_pages == 0 {
            u.ready_at = now + 1;
            u.wait = WaitKind::Replay;
        }
    }

    /// Appends per-unit state to the watchdog's diagnostic dump.
    pub(crate) fn stall_diagnostics(&self, s: &mut String, now: Cycle) {
        use std::fmt::Write as _;
        for (i, u) in self.units.iter().enumerate() {
            if !u.alive {
                continue;
            }
            let _ = writeln!(
                s,
                "  dwarp {i}: block={} pc={} waiting_pages={} faulted_pages={} ready_at={} \
                 (now {now}) wait={:?} at_branch={} done_at_rpc={} pending_accesses={}",
                u.block,
                u.pc,
                u.waiting_pages,
                u.faulted_pages,
                u.ready_at,
                u.wait,
                u.at_branch,
                u.done_at_rpc,
                u.pending.as_ref().map_or(0, |p| p.accesses.len()),
            );
        }
    }

    /// After a wake-completed instruction advanced a unit's pc, check it
    /// against its level's rpc.
    fn fixup_done(&mut self, unit: u16) {
        let b = self.units[unit as usize].block as usize;
        if let Some(top) = self.blocks[b].levels.last() {
            if top.units.contains(&unit) {
                let rpc = top.rpc;
                let u = &mut self.units[unit as usize];
                u.done_at_rpc = u.pc == rpc;
            }
        }
    }

    /// Fills idle block slots from the queue; returns whether any block
    /// was dispatched.
    pub(crate) fn dispatch_blocks(
        &mut self,
        queue: &mut VecDeque<BlockWork>,
        end_pc: u32,
        now: Cycle,
    ) -> bool {
        let mut dispatched = false;
        for b in 0..self.blocks.len() {
            if self.blocks[b].active {
                continue;
            }
            let Some(work) = queue.pop_front() else {
                return dispatched;
            };
            dispatched = true;
            let mut units = self.grab_units();
            for w in 0..self.warps_per_block {
                let first = work.first_tid + (w as u32) * 32;
                let in_block = work.n_threads.saturating_sub((w as u32) * 32).min(32);
                if in_block == 0 {
                    break;
                }
                let mut lanes = [None; 32];
                for l in 0..in_block {
                    lanes[l as usize] = Some(first + l);
                }
                let id = self.alloc_unit(Dwarp {
                    lanes,
                    block: b as u16,
                    pc: 0,
                    alive: true,
                    ..Dwarp::dead()
                });
                units.push(id);
            }
            let block = &mut self.blocks[b];
            block.active = true;
            block.first_tid = work.first_tid;
            block.started = now;
            block.levels.clear();
            block.levels.push(TbcLevel {
                rpc: end_pc,
                units,
                resume_pc: None,
            });
        }
        dispatched
    }

    /// One issue attempt: barrier/completion maintenance, then execute
    /// one instruction from a schedulable dynamic warp.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn issue(
        &mut self,
        path: &mut MemPath,
        now: Cycle,
        mem: &mut dyn MemPort,
        space: &AddressSpace,
        kernel: &dyn Kernel,
        iters: &mut [u32],
        tracer: &mut Tracer,
        pid: u32,
    ) -> bool {
        for b in 0..self.blocks.len() {
            self.maintain_block(b, path, now, kernel, iters, tracer, pid);
        }
        // Collect schedulable units (top level of each active block).
        let mut cands = std::mem::take(&mut self.cand_scratch);
        cands.clear();
        for block in &self.blocks {
            if !block.active {
                continue;
            }
            if let Some(top) = block.levels.last() {
                for &u in &top.units {
                    if self.units[u as usize].schedulable(now) {
                        cands.push(u);
                    }
                }
            }
        }
        let issued = if cands.is_empty() {
            false
        } else {
            let pick = cands[self.rr % cands.len()];
            self.rr = self.rr.wrapping_add(1);
            self.exec_unit(pick, path, now, mem, space, kernel, iters);
            true
        };
        self.cand_scratch = cands;
        issued
    }

    /// Handles barrier-complete (compaction) and level-complete (pop)
    /// conditions for one block.
    #[allow(clippy::too_many_arguments)]
    fn maintain_block(
        &mut self,
        b: usize,
        path: &mut MemPath,
        now: Cycle,
        kernel: &dyn Kernel,
        iters: &mut [u32],
        tracer: &mut Tracer,
        pid: u32,
    ) {
        loop {
            if !self.blocks[b].active {
                return;
            }
            let Some(top) = self.blocks[b].levels.last() else {
                // Block finished.
                self.blocks[b].active = false;
                path.stats.blocks_done.inc();
                let started = self.blocks[b].started;
                tracer.record(|| {
                    TraceEvent::span(
                        "block",
                        "dispatch",
                        pid,
                        TID_DISPATCH + b as u32,
                        started,
                        now - started,
                    )
                });
                return;
            };
            let all_done = top
                .units
                .iter()
                .all(|&u| self.units[u as usize].done_at_rpc);
            if all_done {
                self.pop_level(b, now);
                continue;
            }
            let all_at_branch = !top.units.is_empty()
                && top.units.iter().all(|&u| {
                    self.units[u as usize].at_branch || self.units[u as usize].done_at_rpc
                });
            let any_at_branch = top.units.iter().any(|&u| self.units[u as usize].at_branch);
            if all_at_branch && any_at_branch {
                self.compact_at_branch(b, path, now, kernel, iters);
                continue;
            }
            return;
        }
    }

    /// Takes a recycled unit-list allocation (or a fresh one).
    fn grab_units(&mut self) -> Vec<u16> {
        self.u16_pool.pop().unwrap_or_default()
    }

    /// Parks a retired unit-list allocation for reuse.
    fn stash_units(&mut self, mut v: Vec<u16>) {
        v.clear();
        self.u16_pool.push(v);
    }

    fn pop_level(&mut self, b: usize, now: Cycle) {
        let level = self.blocks[b].levels.pop().expect("pop on empty stack");
        for &u in &level.units {
            self.free_unit(u);
        }
        self.stash_units(level.units);
        // If the new top is a paused parent, its children have all
        // popped (children always sit above their parent): resume it.
        let Some(top) = self.blocks[b].levels.last_mut() else {
            return; // maintain_block notices the empty stack
        };
        if let Some(resume) = top.resume_pc.take() {
            let rpc = top.rpc;
            for &u in &top.units {
                let unit = &mut self.units[u as usize];
                unit.pc = resume;
                unit.at_branch = false;
                unit.done_at_rpc = resume == rpc;
                unit.ready_at = now + 1;
                unit.wait = WaitKind::Pipeline;
            }
        }
    }

    /// All units of the top level reached the same branch: synchronize,
    /// partition by outcome, compact.
    fn compact_at_branch(
        &mut self,
        b: usize,
        path: &mut MemPath,
        now: Cycle,
        kernel: &dyn Kernel,
        iters: &mut [u32],
    ) {
        let num_sites = kernel.program().num_sites().max(1);
        let top = self.blocks[b].levels.last().expect("compact needs a level");
        let level_rpc = top.rpc;
        // All branch-waiting units sit at the same pc (same entry pc,
        // straight-line segment).
        let branch_pc = top
            .units
            .iter()
            .map(|&u| &self.units[u as usize])
            .find(|u| u.at_branch)
            .expect("compaction requires a unit at the branch")
            .pc;
        let Op::Branch {
            site,
            taken_pc,
            reconv_pc,
        } = kernel.program().op(branch_pc)
        else {
            panic!("unit at_branch on a non-branch op");
        };
        let fall_pc = branch_pc + 1;
        // Evaluate outcomes; threads in units already done-at-rpc do not
        // participate (they exited this level earlier). All three
        // buffers are pooled scratch, handed back on every exit path.
        let mut taken_threads = std::mem::take(&mut self.taken_scratch);
        taken_threads.clear();
        let mut fall_threads = std::mem::take(&mut self.fall_scratch);
        fall_threads.clear();
        let mut old_units = std::mem::take(&mut self.old_units_scratch);
        old_units.clone_from(&self.blocks[b].levels.last().expect("non-empty").units);
        for &u in &old_units {
            let unit = &self.units[u as usize];
            if !unit.at_branch {
                continue;
            }
            for lane in unit.lanes.iter().flatten() {
                let tid = *lane;
                let slot = tid as usize * num_sites + site as usize;
                let iter = iters[slot];
                iters[slot] += 1;
                if kernel.branch_taken(tid, site, iter) {
                    taken_threads.push(tid);
                } else {
                    fall_threads.push(tid);
                }
            }
        }
        taken_threads.sort_unstable();
        fall_threads.sort_unstable();

        if taken_threads.is_empty() || fall_threads.is_empty() {
            // Uniform outcome: recompact everyone onto the single target.
            let (threads, pc) = if fall_threads.is_empty() {
                (&taken_threads, taken_pc)
            } else {
                (&fall_threads, fall_pc)
            };
            self.retarget_level(b, threads, pc, now, path);
            self.taken_scratch = taken_threads;
            self.fall_scratch = fall_threads;
            self.old_units_scratch = old_units;
            return;
        }

        // Divergent. Loop-style when one side's target is this level's
        // own rpc (== reconv): exiting threads just drop out (an
        // ancestor level holds them), the other side continues in place.
        if reconv_pc == level_rpc && (taken_pc == reconv_pc) != (fall_pc == reconv_pc) {
            let (cont, cont_pc) = if taken_pc == reconv_pc {
                (&fall_threads, fall_pc)
            } else {
                (&taken_threads, taken_pc)
            };
            self.retarget_level(b, cont, cont_pc, now, path);
            self.taken_scratch = taken_threads;
            self.fall_scratch = fall_threads;
            self.old_units_scratch = old_units;
            return;
        }

        // General case: pause this level, push one child level per
        // non-trivial side (sides targeting the reconvergence point just
        // wait in the paused parent).
        {
            let top = self.blocks[b].levels.last_mut().expect("non-empty");
            top.resume_pc = Some(reconv_pc);
            for &u in &top.units {
                self.units[u as usize].at_branch = false;
            }
        }
        if fall_pc != reconv_pc {
            let units = self.compact_threads(b, &fall_threads, fall_pc, now, path);
            self.blocks[b].levels.push(TbcLevel {
                rpc: reconv_pc,
                units,
                resume_pc: None,
            });
        }
        if taken_pc != reconv_pc {
            let units = self.compact_threads(b, &taken_threads, taken_pc, now, path);
            self.blocks[b].levels.push(TbcLevel {
                rpc: reconv_pc,
                units,
                resume_pc: None,
            });
        }
        // Degenerate branch with both targets at the reconvergence
        // point: no children were pushed, so resume immediately.
        if fall_pc == reconv_pc && taken_pc == reconv_pc {
            let top = self.blocks[b].levels.last_mut().expect("non-empty");
            if let Some(resume) = top.resume_pc.take() {
                let rpc = top.rpc;
                for &u in &top.units {
                    let unit = &mut self.units[u as usize];
                    unit.pc = resume;
                    unit.done_at_rpc = resume == rpc;
                    unit.ready_at = now + path.timings.branch_latency;
                    unit.wait = WaitKind::Pipeline;
                }
            }
        }
        self.taken_scratch = taken_threads;
        self.fall_scratch = fall_threads;
        self.old_units_scratch = old_units;
    }

    /// Replaces the top level's units with a fresh compaction of
    /// `threads` starting at `pc`.
    fn retarget_level(
        &mut self,
        b: usize,
        threads: &[ThreadId],
        pc: u32,
        now: Cycle,
        path: &mut MemPath,
    ) {
        let old = std::mem::take(
            &mut self.blocks[b]
                .levels
                .last_mut()
                .expect("retarget needs a level")
                .units,
        );
        for &u in &old {
            self.free_unit(u);
        }
        self.stash_units(old);
        let units = self.compact_threads(b, threads, pc, now, path);
        let top = self.blocks[b].levels.last_mut().expect("non-empty");
        let rpc = top.rpc;
        top.units = units;
        for &u in &self.blocks[b].levels.last().expect("non-empty").units {
            let unit = &mut self.units[u as usize];
            unit.done_at_rpc = unit.pc == rpc;
        }
    }

    /// Lane-preserving compaction, optionally constrained by the CPM.
    fn compact_threads(
        &mut self,
        b: usize,
        threads: &[ThreadId],
        pc: u32,
        now: Cycle,
        path: &mut MemPath,
    ) -> Vec<u16> {
        let block_first = self.blocks[b].first_tid;
        let base_warp = self.blocks[b].base_warp;
        let tlb_aware = self.cfg.tlb_aware;
        // Live-prefix scratch: `building[..n_build]` are this call's
        // warps; stale entries beyond keep their `homes` allocations.
        let mut building = std::mem::take(&mut self.building_scratch);
        let mut n_build = 0usize;
        for &tid in threads {
            let lane = ((tid - block_first) % 32) as usize;
            let home = base_warp + ((tid - block_first) / 32) as u16;
            let slot = building[..n_build].iter_mut().find(|d| {
                d.lanes[lane].is_none()
                    && (!tlb_aware
                        || path
                            .cpm
                            .as_ref()
                            .is_none_or(|c| c.is_compatible(home, d.homes.iter().copied())))
            });
            match slot {
                Some(d) => {
                    d.lanes[lane] = Some(tid);
                    if !d.homes.contains(&home) {
                        d.homes.push(home);
                    }
                }
                None => {
                    let mut lanes = [None; 32];
                    lanes[lane] = Some(tid);
                    if n_build < building.len() {
                        let d = &mut building[n_build];
                        d.lanes = lanes;
                        d.homes.clear();
                        d.homes.push(home);
                    } else {
                        building.push(Building {
                            lanes,
                            homes: vec![home],
                        });
                    }
                    n_build += 1;
                }
            }
        }
        let ready = now + path.timings.branch_latency;
        let mut out = self.grab_units();
        for built in building.iter().take(n_build) {
            path.stats.dwarps_formed.inc();
            let lanes = built.lanes;
            let id = self.alloc_unit(Dwarp {
                lanes,
                block: b as u16,
                pc,
                ready_at: ready,
                alive: true,
                ..Dwarp::dead()
            });
            out.push(id);
        }
        self.building_scratch = building;
        out
    }

    /// Executes one instruction of dynamic warp `u`.
    #[allow(clippy::too_many_arguments)]
    fn exec_unit(
        &mut self,
        u: u16,
        path: &mut MemPath,
        now: Cycle,
        mem: &mut dyn MemPort,
        space: &AddressSpace,
        kernel: &dyn Kernel,
        iters: &mut [u32],
    ) {
        let num_sites = kernel.program().num_sites().max(1);
        let block_idx = self.units[u as usize].block as usize;
        let level_rpc = self.blocks[block_idx]
            .levels
            .last()
            .expect("scheduled unit has a level")
            .rpc;
        let pc = self.units[u as usize].pc;
        debug_assert!(pc != level_rpc, "done unit scheduled");
        match kernel.program().op(pc) {
            Op::Alu { cycles } => {
                let unit = &mut self.units[u as usize];
                unit.ready_at = now + cycles as u64;
                unit.wait = WaitKind::Pipeline;
                unit.pc = pc + 1;
                unit.done_at_rpc = unit.pc == level_rpc;
                path.stats.instructions.inc();
            }
            Op::Branch { .. } => {
                let unit = &mut self.units[u as usize];
                unit.at_branch = true;
                unit.ready_at = now + path.timings.branch_latency;
                unit.wait = WaitKind::Pipeline;
                path.stats.instructions.inc();
            }
            Op::Mem { site, kind } => {
                let block_first = self.blocks[block_idx].first_tid;
                let base_warp = self.blocks[block_idx].base_warp;
                if self.units[u as usize].pending.is_none() {
                    let mut accesses = path.grab_accesses();
                    let unit = &self.units[u as usize];
                    for tid in unit.lanes.iter().flatten() {
                        let slot = *tid as usize * num_sites + site as usize;
                        let iter = iters[slot];
                        iters[slot] += 1;
                        let home = base_warp + ((*tid - block_first) / 32) as u16;
                        accesses.push((kernel.mem_addr(*tid, site, iter), home));
                    }
                    self.units[u as usize].pending = Some(Pending {
                        kind,
                        accesses,
                        tlb_missed: false,
                        overlap_done_at: 0,
                        diverge_recorded: false,
                        touched_dram: false,
                        slept_at: 0,
                    });
                    path.stats.instructions.inc();
                    path.stats.mem_instructions.inc();
                } else {
                    path.stats.replays.inc();
                }
                let mut pending = self.units[u as usize].pending.take().expect("just set");
                match path.issue_mem(now, u, 0, &mut pending, mem, space) {
                    MemIssue::Done(ready) => {
                        let unit = &mut self.units[u as usize];
                        unit.ready_at = ready;
                        unit.wait = WaitKind::MemData {
                            dram: pending.touched_dram,
                        };
                        unit.pc = pc + 1;
                        unit.done_at_rpc = unit.pc == level_rpc;
                        path.stash_accesses(pending.accesses);
                    }
                    MemIssue::WaitTlb(misses) => {
                        let unit = &mut self.units[u as usize];
                        unit.waiting_pages = misses;
                        pending.slept_at = now;
                        unit.pending = Some(pending);
                    }
                    MemIssue::Retry(at) => {
                        let unit = &mut self.units[u as usize];
                        unit.ready_at = at;
                        unit.wait = WaitKind::Reject;
                        unit.pending = Some(pending);
                    }
                }
            }
        }
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for Dwarp {
    /// The lane array is fixed-width (32), so each slot is written in
    /// index order without a length.
    fn save(&self, w: &mut Saver) {
        for lane in &self.lanes {
            lane.save(w);
        }
        w.u16(self.block);
        w.u32(self.pc);
        w.u64(self.ready_at);
        self.pending.save(w);
        w.usize(self.waiting_pages);
        w.usize(self.faulted_pages);
        w.bool(self.at_branch);
        w.bool(self.done_at_rpc);
        w.bool(self.alive);
        self.wait.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        for lane in &mut self.lanes {
            lane.load(r)?;
        }
        self.block = r.u16()?;
        self.pc = r.u32()?;
        self.ready_at = r.u64()?;
        self.pending.load(r)?;
        self.waiting_pages = r.usize()?;
        self.faulted_pages = r.usize()?;
        self.at_branch = r.bool()?;
        self.done_at_rpc = r.bool()?;
        self.alive = r.bool()?;
        self.wait.load(r)
    }
}

impl Ckpt for TbcLevel {
    fn save(&self, w: &mut Saver) {
        w.u32(self.rpc);
        self.units.save(w);
        self.resume_pc.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.rpc = r.u32()?;
        self.units.load(r)?;
        self.resume_pc.load(r)
    }
}

impl Ckpt for TbcBlock {
    /// `base_warp` is derived from the slot index at construction and is
    /// not part of the stream.
    fn save(&self, w: &mut Saver) {
        w.bool(self.active);
        w.u32(self.first_tid);
        self.levels.save(w);
        w.u64(self.started);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.active = r.bool()?;
        self.first_tid = r.u32()?;
        self.levels.load(r)?;
        self.started = r.u64()?;
        Ok(())
    }
}

impl Ckpt for TbcState {
    /// `cfg` and `warps_per_block` are configuration, and the block-slot
    /// count is config-derived, so block slots are written per element
    /// without a length. `cand_scratch` is transient within one `issue`
    /// call and is cleared instead of saved.
    fn save(&self, w: &mut Saver) {
        for b in &self.blocks {
            b.save(w);
        }
        self.units.save(w);
        self.free_units.save(w);
        w.usize(self.rr);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        for b in &mut self.blocks {
            b.load(r)?;
        }
        self.units.load(r)?;
        self.free_units.load(r)?;
        self.rr = r.usize()?;
        self.cand_scratch.clear();
        self.taken_scratch.clear();
        self.fall_scratch.clear();
        self.old_units_scratch.clear();
        self.building_scratch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{GpuConfig, TbcConfig};
    use crate::gpu::run_kernel;
    use crate::program::{Kernel, MemKind, Op, Program, ThreadId};
    use gmmu_core::mmu::MmuModel;
    use gmmu_vm::{AddressSpace, PageSize, Region, SpaceConfig, VAddr};

    /// Which lanes take the branch.
    #[derive(Clone, Copy)]
    enum Pattern {
        /// `lane % 2 == 0` in every warp: taken lanes collide across
        /// warps, so lane-preserving compaction cannot merge anything.
        Parity,
        /// `(lane + warp) % 2 == 0`: adjacent warps take complementary
        /// lanes, the best case for compaction.
        Xor,
        /// Everyone takes: no divergence at all.
        Uniform,
    }

    /// One if-then over a load, so divergence affects both instruction
    /// counts and memory behaviour.
    struct BranchKernel {
        program: Program,
        region: Region,
        threads: u32,
        pattern: Pattern,
    }

    impl BranchKernel {
        fn new(space: &mut AddressSpace, threads: u32, pattern: Pattern) -> Self {
            let region = space
                .map_region("bk", threads as u64 * 8, PageSize::Base4K)
                .unwrap();
            Self {
                program: Program::new(vec![
                    Op::Mem {
                        site: 0,
                        kind: MemKind::Load,
                    },
                    // taken → skip the extra work at pc 2.
                    Op::Branch {
                        site: 1,
                        taken_pc: 3,
                        reconv_pc: 3,
                    },
                    Op::Alu { cycles: 4 },
                    Op::Alu { cycles: 4 },
                ]),
                region,
                threads,
                pattern,
            }
        }
    }

    impl Kernel for BranchKernel {
        fn name(&self) -> &str {
            "branch-test"
        }
        fn program(&self) -> &Program {
            &self.program
        }
        fn num_threads(&self) -> u32 {
            self.threads
        }
        fn block_threads(&self) -> u32 {
            64
        }
        fn mem_addr(&self, tid: ThreadId, _site: u16, _iter: u32) -> VAddr {
            self.region.at(tid as u64 * 8)
        }
        fn branch_taken(&self, tid: ThreadId, _site: u16, _iter: u32) -> bool {
            let lane = tid % 32;
            let warp = tid / 32;
            match self.pattern {
                Pattern::Parity => lane.is_multiple_of(2),
                Pattern::Xor => (lane + warp).is_multiple_of(2),
                Pattern::Uniform => true,
            }
        }
    }

    fn run(pattern: Pattern, tbc: Option<TbcConfig>) -> crate::gpu::RunStats {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let kernel = BranchKernel::new(&mut space, 128, pattern);
        let cfg = GpuConfig {
            n_cores: 1,
            warps_per_core: 4,
            warps_per_block: 2,
            mmu: MmuModel::Ideal,
            tbc,
            max_cycles: 1_000_000,
            ..GpuConfig::default()
        };
        run_kernel(cfg, &kernel, &space)
    }

    #[test]
    fn complementary_lanes_compact_but_colliding_lanes_cannot() {
        let xor = run(Pattern::Xor, Some(TbcConfig::baseline()));
        let parity = run(Pattern::Parity, Some(TbcConfig::baseline()));
        assert!(xor.completed && parity.completed);
        // Identical thread-level work either way.
        assert_eq!(xor.mem_instructions, parity.mem_instructions);
        // Complementary lanes merge the else-side of two warps into one
        // dynamic warp; colliding lanes cannot merge anything.
        assert!(
            xor.instructions < parity.instructions,
            "xor {} !< parity {}",
            xor.instructions,
            parity.instructions
        );
    }

    #[test]
    fn parity_compaction_matches_per_warp_stacks() {
        // When lane collisions forbid merging, TBC degenerates to the
        // baseline instruction count.
        let tbc = run(Pattern::Parity, Some(TbcConfig::baseline()));
        let base = run(Pattern::Parity, None);
        assert_eq!(tbc.instructions, base.instructions);
    }

    #[test]
    fn uniform_branches_form_no_extra_warps() {
        let tbc = run(Pattern::Uniform, Some(TbcConfig::baseline()));
        let base = run(Pattern::Uniform, None);
        assert!(tbc.completed);
        assert_eq!(tbc.instructions, base.instructions);
        assert_eq!(tbc.blocks_done, base.blocks_done);
    }

    #[test]
    fn cold_cpm_restricts_compaction_to_home_warps() {
        // With an ideal MMU there are no TLB hits, so the CPM never
        // saturates and TLB-aware compaction cannot mix home warps: it
        // forms at least as many dynamic warps as TLB-agnostic TBC.
        let plain = run(Pattern::Xor, Some(TbcConfig::baseline()));
        let aware = run(Pattern::Xor, Some(TbcConfig::tlb_aware(1)));
        assert!(aware.completed);
        assert_eq!(aware.mem_instructions, plain.mem_instructions);
        assert!(aware.dwarps_formed >= plain.dwarps_formed);
        assert!(aware.instructions >= plain.instructions);
    }
}
