//! The whole GPU: block dispatch, global cycle loop, aggregate results.
//!
//! All shader cores tick in lock-step against one shared
//! [`MemorySystem`], which is what makes cross-core contention (L2
//! slices, DRAM channels, page-walk traffic) causally consistent. A run
//! executes one kernel to completion and returns [`RunStats`], the
//! flattened statistics every figure harness reads. The paper's speedup
//! metric is [`RunStats::speedup_vs`] against the ideal-MMU run of the
//! same configuration.

use crate::config::{EngineKind, GpuConfig};
use crate::core::{RunCtx, ShaderCore};
use crate::observe::{CounterSnapshot, Observer};
use crate::parallel::{worker_loop, ParallelPool};
use crate::program::Kernel;
use crate::stall::StallBreakdown;
use gmmu_mem::MemorySystem;
use gmmu_sim::calendar::Calendar;
use gmmu_sim::ckpt::{fnv1a64, Ckpt, CkptError, Loader, Saver};
use gmmu_sim::fault::{major_fault, FaultInjector};
use gmmu_sim::metrics::{Metrics, MetricsRegistry};
use gmmu_sim::stats::{Histogram, Summary};
use gmmu_sim::trace::Tracer;
use gmmu_sim::Cycle;
use gmmu_vm::{AddressSpace, Vpn};

/// Aggregated results of one kernel run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Total cycles to completion.
    pub cycles: Cycle,
    /// False when the safety cycle cap was hit.
    pub completed: bool,
    /// Warp instructions committed.
    pub instructions: u64,
    /// Memory instructions committed.
    pub mem_instructions: u64,
    /// Sum over cores of cycles with live warps but no issue.
    pub idle_cycles: u64,
    /// `idle_cycles` split by dominant stall cause; its total equals
    /// `idle_cycles` exactly, on every run and both engines.
    pub stall_breakdown: StallBreakdown,
    /// Sum over cores of cycles with live warps.
    pub live_cycles: u64,
    /// Per-memory-instruction page divergence (Figure 3 right).
    pub page_divergence: Histogram,
    /// L1 miss service latency (Figure 4 baseline bar).
    pub l1_miss_latency: Summary,
    /// TLB miss resolution latency (Figure 4 TLB bar).
    pub tlb_miss_latency: Summary,
    /// TLB lookups (per coalesced page).
    pub tlb_accesses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// L1 accesses / hits.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// Page-walker PTE loads actually issued.
    pub walk_refs_issued: u64,
    /// PTE loads a naive serial walker would have issued.
    pub walk_refs_naive: u64,
    /// Completed page walks.
    pub walks: u64,
    /// L2 hit rate of page-walk references.
    pub walk_l2_hit_rate: f64,
    /// DRAM line transfers.
    pub dram_requests: u64,
    /// Memory instructions replayed (TLB wakes / rejects).
    pub replays: u64,
    /// Dynamic warps formed (TBC only).
    pub dwarps_formed: u64,
    /// Thread blocks completed.
    pub blocks_done: u64,
    /// Page faults serviced by the modeled CPU fault handler (demand
    /// paging; 0 whenever the fault model is off).
    pub faults: u64,
    /// TLB shootdowns observed (per core) via epoch bumps.
    pub shootdowns: u64,
    /// In-flight page walks squashed by shootdowns and replayed.
    pub squashed_walks: u64,
    /// True when the forward-progress watchdog killed the run (implies
    /// `completed == false`).
    pub watchdog_fired: bool,
    /// Per-tenant results, populated by multi-tenant runs
    /// ([`Gpu::run_tenants`] with two or more jobs) and empty otherwise.
    /// Deterministic like every other field, but excluded from the
    /// pinned [`Ckpt`] layout — cached single-tenant records predate it.
    pub tenants: Vec<TenantStats>,
    /// Wall-clock seconds the run took on the host. The only
    /// nondeterministic field: every other field is bit-identical
    /// across engines, thread counts, and repeat runs.
    pub wall_s: f64,
}

/// One tenant's slice of a multi-tenant run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's address-space identifier.
    pub asid: u16,
    /// Warp instructions this tenant committed.
    pub instructions: u64,
    /// Thread blocks this tenant completed.
    pub blocks_done: u64,
    /// Cycle the tenant's last block completed (the run's final cycle
    /// when the tenant never finished).
    pub finished_at: Cycle,
    /// Pages the CPU fault handler mapped for this tenant.
    pub faults: u64,
}

/// Policy knobs for a multi-tenant run. Deliberately *not* part of
/// [`GpuConfig`]: that struct's checkpoint layout is pinned, and these
/// knobs only shape scheduling, never the machine's geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// `true`: TLB entries, MSHR waiters, and in-flight walks carry the
    /// owning ASID, so shootdowns and fault squashes are scoped to one
    /// tenant. `false`: the flush-on-switch fallback — the TLB holds
    /// only the current tenant's entries and is flushed whole on every
    /// tenant switch (the comparison baseline).
    pub tagged: bool,
    /// Walk-scheduler fairness: translation grants per ASID per
    /// round-robin round (0 leaves the legacy FIFO, for comparison).
    pub walker_tokens: u32,
    /// Walk-scheduler fairness: a queued walk older than this many
    /// cycles is served unconditionally, oldest first.
    pub walker_max_age: u64,
    /// Per-tenant starvation watchdog: kill the run when a tenant with
    /// remaining work has issued nothing for this many cycles, naming
    /// the starved tenant (0 = off; the global watchdog still applies).
    pub watchdog: Cycle,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self {
            tagged: true,
            walker_tokens: 4,
            walker_max_age: 50_000,
            watchdog: 0,
        }
    }
}

impl TenantPolicy {
    /// The flush-on-switch comparison baseline: untagged TLB, legacy
    /// FIFO walker.
    pub fn flush_on_switch() -> Self {
        Self {
            tagged: false,
            walker_tokens: 0,
            ..Self::default()
        }
    }
}

/// One tenant of a multi-tenant run: a kernel bound to the address
/// space it executes in. The space must have been built with
/// [`AddressSpace::with_asid`] matching its position in the job slice.
pub struct TenantJob<'a> {
    /// The tenant's kernel.
    pub kernel: &'a dyn Kernel,
    /// The tenant's address space (owned mutably: demand paging and
    /// shootdown storms remap pages mid-run).
    pub space: &'a mut AddressSpace,
}

impl RunStats {
    /// An all-zero result, used as a placeholder by the experiment
    /// runner's recording pass before any simulation has run.
    pub fn zeroed() -> Self {
        Self {
            cycles: 0,
            completed: true,
            instructions: 0,
            mem_instructions: 0,
            idle_cycles: 0,
            stall_breakdown: StallBreakdown::new(),
            live_cycles: 0,
            page_divergence: Histogram::new(),
            l1_miss_latency: Summary::new(),
            tlb_miss_latency: Summary::new(),
            tlb_accesses: 0,
            tlb_hits: 0,
            l1_accesses: 0,
            l1_hits: 0,
            walk_refs_issued: 0,
            walk_refs_naive: 0,
            walks: 0,
            walk_l2_hit_rate: 0.0,
            dram_requests: 0,
            replays: 0,
            dwarps_formed: 0,
            blocks_done: 0,
            faults: 0,
            shootdowns: 0,
            squashed_walks: 0,
            watchdog_fired: false,
            tenants: Vec::new(),
            wall_s: 0.0,
        }
    }

    /// Simulated cycles per wall-clock second — the throughput metric
    /// the engine comparison tracks (0 when the run was too fast for
    /// the clock to resolve).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cycles as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Paper speedup metric: `baseline.cycles / self.cycles` (1.0 =
    /// parity with the baseline, <1 = slowdown).
    pub fn speedup_vs(&self, baseline: &RunStats) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// TLB miss rate in `[0, 1]`.
    pub fn tlb_miss_rate(&self) -> f64 {
        if self.tlb_accesses == 0 {
            0.0
        } else {
            (self.tlb_accesses - self.tlb_hits) as f64 / self.tlb_accesses as f64
        }
    }

    /// L1 miss rate in `[0, 1]`.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            (self.l1_accesses - self.l1_hits) as f64 / self.l1_accesses as f64
        }
    }

    /// Memory instructions as a fraction of all instructions (Figure 3
    /// left).
    pub fn mem_insn_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem_instructions as f64 / self.instructions as f64
        }
    }

    /// Fraction of page-walk references eliminated by walk scheduling.
    pub fn walk_refs_eliminated(&self) -> f64 {
        if self.walk_refs_naive == 0 {
            0.0
        } else {
            1.0 - self.walk_refs_issued as f64 / self.walk_refs_naive as f64
        }
    }

    /// Warp instructions per cycle across the whole GPU.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    /// Fraction of live core-cycles that issued nothing.
    pub fn idle_fraction(&self) -> f64 {
        if self.live_cycles == 0 {
            0.0
        } else {
            self.idle_cycles as f64 / self.live_cycles as f64
        }
    }

    /// Names of fields that differ between two results, ignoring
    /// `wall_s` (the only nondeterministic field). Empty means the runs
    /// were behaviourally identical — the equality the trace-replay
    /// conformance harness enforces.
    pub fn diff(&self, other: &RunStats) -> Vec<&'static str> {
        let mut out = Vec::new();
        macro_rules! cmp {
            ($field:ident) => {
                if self.$field != other.$field {
                    out.push(stringify!($field));
                }
            };
        }
        cmp!(cycles);
        cmp!(completed);
        cmp!(instructions);
        cmp!(mem_instructions);
        cmp!(idle_cycles);
        cmp!(stall_breakdown);
        cmp!(live_cycles);
        cmp!(page_divergence);
        cmp!(l1_miss_latency);
        cmp!(tlb_miss_latency);
        cmp!(tlb_accesses);
        cmp!(tlb_hits);
        cmp!(l1_accesses);
        cmp!(l1_hits);
        cmp!(walk_refs_issued);
        cmp!(walk_refs_naive);
        cmp!(walks);
        cmp!(walk_l2_hit_rate);
        cmp!(dram_requests);
        cmp!(replays);
        cmp!(dwarps_formed);
        cmp!(blocks_done);
        cmp!(faults);
        cmp!(shootdowns);
        cmp!(squashed_walks);
        cmp!(watchdog_fired);
        cmp!(tenants);
        out
    }

    /// Per-tenant slowdowns against each tenant's solo run of the same
    /// configuration: `finished_at / solo.cycles` (1.0 = no
    /// interference). Empty unless this was a multi-tenant run and
    /// `solos` matches its tenant count.
    pub fn tenant_slowdowns(&self, solos: &[RunStats]) -> Vec<f64> {
        if self.tenants.is_empty() || solos.len() != self.tenants.len() {
            return Vec::new();
        }
        self.tenants
            .iter()
            .zip(solos)
            .map(|(t, solo)| t.finished_at as f64 / solo.cycles.max(1) as f64)
            .collect()
    }

    /// Unfairness of a multi-tenant run: max over tenants of slowdown
    /// divided by min (1.0 = perfectly fair interference, per the MASK
    /// metric). Returns 1.0 when slowdowns are unavailable.
    pub fn unfairness(&self, solos: &[RunStats]) -> f64 {
        let s = self.tenant_slowdowns(solos);
        let max = s.iter().cloned().fold(f64::MIN, f64::max);
        let min = s.iter().cloned().fold(f64::MAX, f64::min);
        if s.is_empty() || min <= 0.0 {
            1.0
        } else {
            max / min
        }
    }
}

/// Magic bytes opening every checkpoint image.
pub const CKPT_MAGIC: [u8; 4] = *b"GMCK";
/// Checkpoint format version. Bumped whenever the payload layout
/// changes; old images are refused rather than misread (see
/// `DESIGN.md`, "Checkpoint format versioning"). Version 2 added the
/// walk-start cycle to in-flight walk records, the per-stage walk
/// columns to interval snapshots, and the observer's metrics channel.
/// Version 3 added multi-tenant state: ASID tags throughout the fault
/// queue, per-tenant shootdown epochs, progress clocks, and finish
/// times, plus one address-space image per tenant.
pub const CKPT_VERSION: u32 = 3;

/// The configuration fingerprint stored in a checkpoint header: a
/// stable hash of the GPU configuration and every tenant's kernel name
/// and thread count (plus the tenant policy for multi-tenant runs).
/// [`Gpu::run_event_checkpointed`] refuses to resume a checkpoint whose
/// fingerprint differs — state can only be loaded into an identically
/// shaped machine.
fn ckpt_fingerprint(
    config: &GpuConfig,
    tenants: &[TenantCtx<'_, '_>],
    policy: &TenantPolicy,
) -> u64 {
    let mut key = format!("{config:?}");
    for t in tenants {
        key.push_str(&format!("|{}|{}", t.kernel.name(), t.kernel.num_threads()));
    }
    if tenants.len() > 1 {
        key.push_str(&format!("|{policy:?}"));
    }
    fnv1a64(key.as_bytes())
}

/// Checkpoint emission and resume controls for one
/// [`Gpu::run_event_checkpointed`] run.
pub struct CheckpointOpts<'a> {
    /// Emit a checkpoint at the first visited cycle at or after every
    /// multiple of this many cycles (0 = never emit).
    pub every: Cycle,
    /// Receives each emitted checkpoint image.
    pub sink: &'a mut dyn FnMut(&[u8]),
    /// A checkpoint image to resume from instead of starting at cycle 0.
    pub resume: Option<&'a [u8]>,
}

/// How a run borrows the address space: shared (read-only translation,
/// the historical contract) or owned (the fault handler and shootdown
/// storms may map/remap pages mid-run).
enum SpaceAccess<'a> {
    Shared(&'a AddressSpace),
    Owned(&'a mut AddressSpace),
}

impl SpaceAccess<'_> {
    fn get(&self) -> &AddressSpace {
        match self {
            SpaceAccess::Shared(s) => s,
            SpaceAccess::Owned(s) => s,
        }
    }

    fn get_mut(&mut self) -> Option<&mut AddressSpace> {
        match self {
            SpaceAccess::Shared(_) => None,
            SpaceAccess::Owned(s) => Some(s),
        }
    }
}

/// One tenant as the engines see it: a kernel bound to an address
/// space, with whatever mutability the caller granted. Single-tenant
/// runs are a one-element slice of these, which is exactly the legacy
/// code path.
struct TenantCtx<'k, 'a> {
    kernel: &'k dyn Kernel,
    space: SpaceAccess<'a>,
}

/// Sentinel for "this tenant has not finished yet" in per-tenant finish
/// time tracking.
const UNFINISHED: Cycle = Cycle::MAX;

/// Recycles a `Vec` of shared references across borrow regions: clears
/// it and re-types the (now empty) allocation with a fresh lifetime.
/// The drive loops rebuild their tenant `spaces` slice every cycle —
/// fault handling takes `&mut` access to the spaces in between, so the
/// references themselves cannot be kept — and this lets the rebuild
/// reuse one allocation instead of heap-allocating per cycle.
fn recycle_refs<'b, T>(mut v: Vec<&T>) -> Vec<&'b T> {
    v.clear();
    // SAFETY: the vector is empty, so no reference values survive the
    // cast; the layout of `Vec<&T>` is independent of the reference
    // lifetime, which is the only thing that changes.
    unsafe { std::mem::transmute(v) }
}

/// The drive loop's clock state bundled for checkpointing.
struct DriveClocks<'s> {
    now: Cycle,
    last_progress: Cycle,
    next_storm: u32,
    last_epoch: &'s [u64],
    progress_t: &'s [Cycle],
    finished_at: &'s [Cycle],
    faults_t: &'s [u64],
}

/// A configured GPU ready to run kernels.
///
/// # Examples
///
/// See `gmmu-workloads` and the repository examples; constructing a
/// kernel requires a workload implementation.
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    cores: Vec<ShaderCore>,
    mem: MemorySystem,
}

impl Gpu {
    /// Builds the GPU described by `config`.
    pub fn new(config: GpuConfig) -> Self {
        let cores = (0..config.n_cores)
            .map(|id| ShaderCore::new(id, &config))
            .collect();
        let mem = MemorySystem::new(config.mem);
        Self { config, cores, mem }
    }

    /// The configuration this GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs `kernel` to completion against `space` and returns the
    /// aggregate statistics.
    ///
    /// # Panics
    ///
    /// Panics if a kernel touches an unmapped page while demand paging
    /// ([`crate::config::FaultConfig::demand_paging`]) is off, or the
    /// kernel has zero threads.
    pub fn run(&mut self, kernel: &dyn Kernel, space: &AddressSpace) -> RunStats {
        self.run_observed(kernel, space, &mut Observer::off())
    }

    /// [`Gpu::run`] with observation instruments attached. With
    /// [`Observer::off`] this is exactly `run` — same results, no
    /// recording cost (the determinism suite asserts bit-identity).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Gpu::run`].
    pub fn run_observed(
        &mut self,
        kernel: &dyn Kernel,
        space: &AddressSpace,
        obs: &mut Observer,
    ) -> RunStats {
        self.run_inner(kernel, SpaceAccess::Shared(space), obs)
    }

    /// [`Gpu::run_observed`] with a *mutable* address space: page faults
    /// raised by demand-paged warps are serviced by the modeled CPU
    /// fault handler (which maps the page after the configured
    /// minor/major latency), and injected shootdown storms may remap
    /// regions mid-run. Required whenever
    /// [`crate::config::FaultConfig::demand_paging`] expects faults to
    /// actually resolve — with a shared space a faulted page can never
    /// be mapped and the forward-progress watchdog ends the run.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Gpu::run`].
    pub fn run_faulted(
        &mut self,
        kernel: &dyn Kernel,
        space: &mut AddressSpace,
        obs: &mut Observer,
    ) -> RunStats {
        self.run_inner(kernel, SpaceAccess::Owned(space), obs)
    }

    /// Runs several tenants — distinct kernels in distinct address
    /// spaces — concurrently on this one GPU until every tenant
    /// finishes. Tenant `t`'s space must carry ASID `t`
    /// ([`AddressSpace::with_asid`]); translation state (TLB entries,
    /// MSHR waiters, in-flight walks) is ASID-tagged per `policy`, so
    /// one tenant's shootdowns and faults never touch another's entries.
    /// Spaces are owned mutably (the [`Gpu::run_faulted`] contract):
    /// demand paging and injected cross-tenant shootdown storms remap
    /// pages mid-run. The result's [`RunStats::tenants`] carries each
    /// tenant's slice of the run.
    ///
    /// Deterministic like every single-tenant run: bit-identical across
    /// the serial, parallel, and event engines.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Gpu::run`], plus: no jobs, more than 64
    /// jobs, an ASID mismatch, or a TBC configuration with more than one
    /// job (thread-block compaction is single-tenant).
    pub fn run_tenants(
        &mut self,
        jobs: &mut [TenantJob<'_>],
        policy: TenantPolicy,
        obs: &mut Observer,
    ) -> RunStats {
        let mut tenants: Vec<TenantCtx<'_, '_>> = jobs
            .iter_mut()
            .map(|j| TenantCtx {
                kernel: j.kernel,
                space: SpaceAccess::Owned(&mut *j.space),
            })
            .collect();
        self.run_prepared(&mut tenants, &policy, obs)
    }

    /// [`Gpu::run_tenants`] on the event-calendar engine with
    /// checkpoint/restore, the multi-tenant analogue of
    /// [`Gpu::run_event_checkpointed`]: every tenant's address space and
    /// all ASID-tagged translation state travel in the image, and a
    /// resumed storm finishes bit-identical to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gpu::run_event_checkpointed`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Gpu::run_tenants`].
    pub fn run_tenants_checkpointed(
        &mut self,
        jobs: &mut [TenantJob<'_>],
        policy: TenantPolicy,
        obs: &mut Observer,
        opts: CheckpointOpts<'_>,
    ) -> Result<RunStats, CkptError> {
        let mut tenants: Vec<TenantCtx<'_, '_>> = jobs
            .iter_mut()
            .map(|j| TenantCtx {
                kernel: j.kernel,
                space: SpaceAccess::Owned(&mut *j.space),
            })
            .collect();
        self.run_ckpt_prepared(&mut tenants, &policy, obs, opts)
    }

    /// Shared run preamble: validates every kernel against its space,
    /// distributes thread blocks round-robin over the cores (interleaved
    /// one block per tenant per round, so co-runners contend from cycle
    /// 0 — for one tenant this is exactly the legacy distribution), and
    /// applies the tenant policy. Returns the per-thread-per-site
    /// iteration counters, each tenant's base offset into them, and each
    /// tenant's total block count.
    fn prepare_run_tenants(
        &mut self,
        tenants: &[TenantCtx<'_, '_>],
        policy: &TenantPolicy,
        obs: &mut Observer,
    ) -> (Vec<u32>, Vec<usize>, Vec<u64>) {
        let n_t = tenants.len();
        assert!(n_t > 0, "a run needs at least one tenant");
        assert!(n_t <= 64, "at most 64 tenants (the issue mask is a u64)");
        assert!(
            n_t == 1 || self.config.tbc.is_none(),
            "thread-block compaction is single-tenant only"
        );
        for (t, ctx) in tenants.iter().enumerate() {
            assert_eq!(
                ctx.space.get().asid(),
                t as u16,
                "tenant {t}'s space must carry ASID {t} (AddressSpace::with_asid)"
            );
            assert!(ctx.kernel.num_threads() > 0, "kernel has no threads");
            if self.config.granule == gmmu_vm::PageSize::Large2M {
                assert!(
                    ctx.space
                        .get()
                        .regions()
                        .iter()
                        .all(|r| r.page_size == gmmu_vm::PageSize::Large2M),
                    "a 2MB translation granule requires 2MB-backed regions"
                );
            }
            let bt = ctx.kernel.block_threads();
            assert!(
                bt > 0 && bt.is_multiple_of(32),
                "block size must be a warp multiple"
            );
        }
        let n_cores = self.cores.len();
        let blocks_total: Vec<u64> = tenants
            .iter()
            .map(|c| c.kernel.num_threads().div_ceil(c.kernel.block_threads()) as u64)
            .collect();
        let max_blocks = blocks_total.iter().copied().max().unwrap_or(0);
        let mut seq = 0usize;
        for b in 0..max_blocks {
            for (t, ctx) in tenants.iter().enumerate() {
                if b >= blocks_total[t] {
                    continue;
                }
                let bt = ctx.kernel.block_threads();
                let threads = ctx.kernel.num_threads();
                let first = b as u32 * bt;
                let count = (threads - first).min(bt);
                self.cores[seq % n_cores].push_block_asid(t as u16, first, count);
                seq += 1;
            }
        }
        let mut iters_base = Vec::with_capacity(n_t);
        let mut total_slots = 0usize;
        for ctx in tenants {
            iters_base.push(total_slots);
            total_slots +=
                ctx.kernel.num_threads() as usize * ctx.kernel.program().num_sites().max(1);
        }
        // Arm (or disarm) each core's metric staging buffer: cores
        // record lifecycle events locally and the engines drain them in
        // core-index order each cycle, keeping the aggregation path off
        // the parallel workers.
        let metrics_on = obs.metrics.enabled();
        for core in &mut self.cores {
            core.set_metrics_staging(metrics_on);
            core.set_tagging(policy.tagged);
            if n_t > 1 && policy.walker_tokens > 0 {
                core.set_walker_fairness(n_t, policy.walker_tokens, policy.walker_max_age);
            }
        }
        if let Some(rec) = obs.intervals.as_mut() {
            let lanes: usize = self
                .cores
                .iter()
                .map(|c| c.mmu().walker().map_or(0, |w| w.lane_count()))
                .sum();
            rec.set_lanes(lanes as u64);
        }
        (vec![0u32; total_slots], iters_base, blocks_total)
    }

    /// Runs `kernel` on the event-calendar engine with deterministic
    /// checkpoint/restore: a versioned snapshot of the *entire*
    /// simulation state (cores, TLBs, MSHRs, page tables, calendar,
    /// statistics, observer buffers) is handed to `opts.sink` every
    /// `opts.every` cycles, and a run resumed from such a snapshot
    /// (`opts.resume`) finishes bit-identical to an uninterrupted one —
    /// same stats, traces, and interval series.
    ///
    /// The space is always owned (the `run_faulted` contract): demand
    /// paging and shootdown storms mutate it, so its state is part of
    /// the snapshot.
    ///
    /// # Errors
    ///
    /// Fails when `opts.resume` is truncated, corrupt, from a different
    /// format version, or from a differently configured machine
    /// (fingerprint mismatch). Never fails when `opts.resume` is `None`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Gpu::run`].
    pub fn run_event_checkpointed(
        &mut self,
        kernel: &dyn Kernel,
        space: &mut AddressSpace,
        obs: &mut Observer,
        opts: CheckpointOpts<'_>,
    ) -> Result<RunStats, CkptError> {
        let mut tenants = [TenantCtx {
            kernel,
            space: SpaceAccess::Owned(space),
        }];
        self.run_ckpt_prepared(&mut tenants, &TenantPolicy::default(), obs, opts)
    }

    fn run_ckpt_prepared(
        &mut self,
        tenants: &mut [TenantCtx<'_, '_>],
        policy: &TenantPolicy,
        obs: &mut Observer,
        mut opts: CheckpointOpts<'_>,
    ) -> Result<RunStats, CkptError> {
        let wall_start = std::time::Instant::now();
        let (mut iters, iters_base, blocks_total) = self.prepare_run_tenants(tenants, policy, obs);
        let mut stats = self.drive_event_ckpt(
            tenants,
            policy,
            obs,
            &mut iters,
            &iters_base,
            &blocks_total,
            Some(&mut opts),
        )?;
        stats.wall_s = wall_start.elapsed().as_secs_f64();
        Ok(stats)
    }

    fn run_inner(
        &mut self,
        kernel: &dyn Kernel,
        space: SpaceAccess<'_>,
        obs: &mut Observer,
    ) -> RunStats {
        let mut tenants = [TenantCtx { kernel, space }];
        self.run_prepared(&mut tenants, &TenantPolicy::default(), obs)
    }

    fn run_prepared<'k>(
        &mut self,
        tenants: &mut [TenantCtx<'k, '_>],
        policy: &TenantPolicy,
        obs: &mut Observer,
    ) -> RunStats {
        let wall_start = std::time::Instant::now();
        let (mut iters, iters_base, blocks_total) = self.prepare_run_tenants(tenants, policy, obs);

        // The parallel engine ticks cores concurrently within each
        // cycle behind a lock-step barrier; an ordered memory gate and
        // a core-index-ordered result merge make it bit-identical to
        // serial (see crate::parallel). The worker count excludes the
        // calling thread, which participates in every cycle — so
        // `run_threads: 1` (and a 1-core GPU) degenerate to serial.
        let run_threads = self.config.run_threads;
        let legacy =
            self.config.tick_every_cycle || std::env::var_os("GMMU_TICK_EVERY_CYCLE").is_some();
        let mut stats = if self.config.engine == EngineKind::Parallel
            && run_threads > 1
            && self.cores.len() > 1
        {
            let n_workers = (run_threads - 1).min(self.cores.len() - 1);
            let pool = ParallelPool::new(self.cores.len());
            std::thread::scope(|s| {
                for _ in 0..n_workers {
                    s.spawn(|| worker_loop(&pool));
                }
                let stats = self.drive(
                    tenants,
                    policy,
                    obs,
                    &mut iters,
                    &iters_base,
                    &blocks_total,
                    Some(&pool),
                );
                pool.shutdown();
                stats
            })
        } else if self.config.engine == EngineKind::Event && !legacy {
            self.drive_event(tenants, policy, obs, &mut iters, &iters_base, &blocks_total)
        } else {
            self.drive(
                tenants,
                policy,
                obs,
                &mut iters,
                &iters_base,
                &blocks_total,
                None,
            )
        };
        stats.wall_s = wall_start.elapsed().as_secs_f64();
        stats
    }

    /// The global cycle loop, shared by every engine: `pool` selects
    /// how the per-cycle core ticks execute; all cross-core phases run
    /// on the calling thread either way. Handles any tenant count — a
    /// one-element slice is the legacy single-tenant path, bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    fn drive<'k>(
        &mut self,
        tenants: &mut [TenantCtx<'k, '_>],
        policy: &TenantPolicy,
        obs: &mut Observer,
        iters: &mut [u32],
        iters_base: &[usize],
        blocks_total: &[u64],
        pool: Option<&ParallelPool<'k>>,
    ) -> RunStats {
        let n_t = tenants.len();
        let track_tenants = n_t > 1;
        let kernels: Vec<&'k dyn Kernel> = tenants.iter().map(|t| t.kernel).collect();
        let owned = tenants.iter_mut().any(|t| t.space.get_mut().is_some());
        // Per-core staging tracers for the parallel engine, merged into
        // the observer's buffer in core-index order after every cycle.
        let mut staging: Vec<Tracer> = match pool {
            Some(_) if obs.tracer.enabled() => {
                (0..self.cores.len()).map(|_| Tracer::recording()).collect()
            }
            Some(_) => (0..self.cores.len()).map(|_| Tracer::Off).collect(),
            None => Vec::new(),
        };
        // The idle-cycle-skipping engine is observably equivalent to
        // ticking every cycle: whenever no core issues, core state can
        // only change at a future completion / wake / epoch boundary,
        // so the loop jumps `now` straight to the earliest such event
        // and credits the skipped cycles to the same idle/live
        // counters the per-cycle loop would have bumped.
        let legacy =
            self.config.tick_every_cycle || std::env::var_os("GMMU_TICK_EVERY_CYCLE").is_some();
        let fault_cfg = self.config.fault;
        let injector = self
            .config
            .inject
            .filter(|i| i.enabled())
            .map(FaultInjector::new);
        // Pages in CPU fault service: ((tenant, page), landing cycle).
        let mut fault_q: Vec<((u16, Vpn), Cycle)> = Vec::new();
        let mut fault_scratch: Vec<(u16, Vpn)> = Vec::new();
        let mut resolved_scratch: Vec<(u16, Vpn)> = Vec::new();
        let mut spaces_pool: Vec<&AddressSpace> = Vec::with_capacity(n_t);
        let mut last_epoch: Vec<u64> = tenants
            .iter()
            .map(|t| t.space.get().shootdown_epoch())
            .collect();
        let mut next_storm: u32 = 1;
        let mut last_progress: Cycle = 0;
        let mut progress_t: Vec<Cycle> = vec![0; n_t];
        let mut finished_at: Vec<Cycle> = vec![UNFINISHED; n_t];
        let mut faults_t: Vec<u64> = vec![0; n_t];
        let mut watchdog_fired = false;
        let mut now: Cycle = 0;
        let mut completed = true;
        loop {
            // Injected shootdown storms: remap a deterministically-chosen
            // region of a deterministically-chosen victim tenant, bumping
            // the epoch the check below observes. Storm cycles are folded
            // into the skip target, so both engines land on them exactly.
            if let Some(inj) = &injector {
                while inj.storm_at(next_storm).is_some_and(|c| c <= now) {
                    let k = next_storm;
                    next_storm += 1;
                    let victim = inj.storm_victim(k, n_t) as usize;
                    if let Some(sp) = tenants[victim].space.get_mut() {
                        if !sp.regions().is_empty() {
                            let idx = inj.storm_region(k, sp.regions().len());
                            let name = sp.regions()[idx].name.clone();
                            // OOM during a storm leaves the old mapping
                            // in place — the run continues unharmed.
                            let _ = sp.remap_region(&name);
                        }
                    }
                }
            }
            // The GPU observes unmap/remap activity through each space's
            // shootdown epoch: on a bump every core flushes that
            // tenant's TLB entries and squashes its in-flight walks (the
            // squash events wake their warps for a backed-off retry this
            // very cycle). Other tenants' state is untouched.
            for (t, ctx) in tenants.iter().enumerate() {
                let epoch = ctx.space.get().shootdown_epoch();
                if epoch != last_epoch[t] {
                    last_epoch[t] = epoch;
                    for core in &mut self.cores {
                        if track_tenants {
                            core.shootdown_asid(now, t as u16);
                        } else {
                            core.shootdown(now);
                        }
                    }
                }
            }
            // CPU fault handler completions due this cycle: map the page
            // into the faulting tenant's space (idempotent), then
            // release every parked warp of that tenant.
            if !fault_q.is_empty() {
                resolved_scratch.clear();
                fault_q.retain(|&(key, at)| {
                    if at <= now {
                        resolved_scratch.push(key);
                        false
                    } else {
                        true
                    }
                });
                for &(asid, vpn) in &resolved_scratch {
                    let mapped = match tenants[asid as usize].space.get_mut() {
                        Some(sp) => sp.map_page(vpn).is_ok(),
                        // A shared space cannot be mapped into — see
                        // `run_faulted`.
                        None => false,
                    };
                    if mapped {
                        faults_t[asid as usize] += 1;
                        for core in &mut self.cores {
                            core.resolve_fault(asid, vpn, now);
                        }
                    } else {
                        // Couldn't map (shared space, region gone, out of
                        // frames): keep the warps parked and retry the
                        // handler later. Releasing them would replay,
                        // refault, and count as issue progress — hiding
                        // the livelock from the watchdog.
                        fault_q.push(((asid, vpn), now + fault_cfg.minor_latency.max(1)));
                    }
                }
            }
            let mut spaces = recycle_refs(std::mem::take(&mut spaces_pool));
            spaces.extend(tenants.iter().map(|t| t.space.get()));
            let (issued, live) = match pool {
                None => {
                    let mut ctx = RunCtx {
                        spaces: &spaces,
                        kernels: &kernels,
                        iters: &mut *iters,
                        iters_base,
                    };
                    let mut live = false;
                    let mut issued = 0u64;
                    for core in &mut self.cores {
                        issued |= core.tick_tenants(now, &mut self.mem, &mut ctx, &mut obs.tracer);
                        live |= core.has_work();
                    }
                    (issued, live)
                }
                Some(pool) => {
                    let issued = pool.run_cycle(
                        &mut self.cores,
                        &mut self.mem,
                        &spaces,
                        &kernels,
                        iters,
                        iters_base,
                        &mut staging,
                        now,
                    );
                    if let Tracer::Buffer(dst) = &mut obs.tracer {
                        for t in &mut staging {
                            if let Tracer::Buffer(src) = t {
                                dst.append(src);
                            }
                        }
                    }
                    let live = self.cores.iter().any(|c| c.has_work());
                    (issued, live)
                }
            };
            spaces_pool = recycle_refs(spaces);
            // Metric staging buffers drain into the observer's sink in
            // core-index order every cycle; sink folds are commutative,
            // so the snapshot is independent of which engine produced
            // the events.
            if obs.metrics.enabled() {
                for core in &mut self.cores {
                    core.drain_metrics(&mut obs.metrics);
                }
            }
            // New page faults raised this cycle enter the handler queue
            // once each; minor/major classification is a pure function
            // of the seed and the ASID-salted page (for ASID 0 the salt
            // is the identity, preserving single-tenant schedules).
            fault_scratch.clear();
            for core in &mut self.cores {
                core.drain_faults(&mut fault_scratch);
            }
            for &(asid, vpn) in &fault_scratch {
                if fault_q.iter().any(|&(k, _)| k == (asid, vpn)) {
                    continue;
                }
                let salted = gmmu_mem::mshr::tenant_key(asid, vpn.raw());
                let latency = if major_fault(self.config.seed, salted, fault_cfg.major_fraction) {
                    fault_cfg.major_latency
                } else {
                    fault_cfg.minor_latency
                };
                fault_q.push(((asid, vpn), now + latency.max(1)));
            }
            // A tenant finishes on the first visited cycle all its
            // blocks are reaped; reaps happen inside ticks, so every
            // engine observes the same finish cycle.
            if track_tenants {
                for t in 0..n_t {
                    if finished_at[t] == UNFINISHED {
                        let done: u64 = self
                            .cores
                            .iter()
                            .map(|c| {
                                c.stats()
                                    .tenant_blocks_done
                                    .get(t)
                                    .map_or(0, |ctr| ctr.get())
                            })
                            .sum();
                        if done >= blocks_total[t] {
                            finished_at[t] = now;
                        }
                    }
                }
            }
            if !live {
                break;
            }
            if issued != 0 {
                last_progress = now;
            } else if fault_cfg.watchdog > 0 && now - last_progress >= fault_cfg.watchdog {
                eprintln!(
                    "gmmu watchdog: no instruction issued for {} cycles \
                     (last progress at cycle {last_progress}, now {now})",
                    now - last_progress
                );
                Self::fault_q_diagnostics(&fault_q);
                if track_tenants {
                    Self::tenant_diagnostics(&progress_t, &finished_at, &faults_t);
                }
                for core in &self.cores {
                    eprint!("{}", core.stall_diagnostics(now));
                }
                watchdog_fired = true;
                completed = false;
                break;
            }
            // Per-tenant starvation watchdog: a tenant with remaining
            // work must issue at least once per window, no matter what
            // its co-runners do. Fires even on cycles where *other*
            // tenants made progress — that is the whole point.
            if policy.watchdog > 0 && track_tenants {
                for (t, p) in progress_t.iter_mut().enumerate() {
                    if issued & (1u64 << (t as u32 & 63)) != 0 {
                        *p = now;
                    }
                }
                if let Some(starved) = (0..n_t).find(|&t| {
                    finished_at[t] == UNFINISHED && now - progress_t[t] >= policy.watchdog
                }) {
                    eprintln!(
                        "gmmu tenant watchdog: tenant {starved} issued nothing for {} cycles \
                         (last progress at cycle {}, now {now})",
                        now - progress_t[starved],
                        progress_t[starved]
                    );
                    Self::fault_q_diagnostics(&fault_q);
                    Self::tenant_diagnostics(&progress_t, &finished_at, &faults_t);
                    for core in &self.cores {
                        eprint!("{}", core.stall_diagnostics(now));
                    }
                    watchdog_fired = true;
                    completed = false;
                    break;
                }
            }
            now += 1;
            if let Some(rec) = obs.intervals.as_mut() {
                while rec.due(now) {
                    let totals = Self::totals(&self.cores, &self.mem, &obs.metrics);
                    rec.sample(totals);
                }
            }
            if now >= self.config.max_cycles {
                completed = false;
                break;
            }
            if legacy || issued != 0 {
                continue;
            }
            let mut target = Cycle::MAX;
            for core in &self.cores {
                if let Some(c) = core.next_event_at(now - 1) {
                    target = target.min(c);
                }
            }
            // Fault-handler completions, the storm schedule, and the
            // watchdog deadlines are global timers the cores know nothing
            // about; folding them in keeps both engines on identical
            // cycles.
            for &(_, at) in &fault_q {
                target = target.min(at);
            }
            if let Some(inj) = &injector {
                if owned {
                    if let Some(c) = inj.storm_at(next_storm) {
                        target = target.min(c.max(now));
                    }
                }
            }
            if fault_cfg.watchdog > 0 {
                target = target.min(last_progress + fault_cfg.watchdog);
            }
            if policy.watchdog > 0 && track_tenants {
                for t in 0..n_t {
                    if finished_at[t] == UNFINISHED {
                        target = target.min(progress_t[t] + policy.watchdog);
                    }
                }
            }
            if target == Cycle::MAX || target <= now {
                continue;
            }
            let capped = target.min(self.config.max_cycles);
            let skipped = capped - now;
            if skipped > 0 {
                for core in &mut self.cores {
                    core.note_idle_skip(now, skipped);
                }
                now = capped;
                if let Some(rec) = obs.intervals.as_mut() {
                    // No observed counter moves inside an idle span, so
                    // boundaries crossed by the jump record zero activity
                    // — exactly what the per-cycle engine records.
                    while rec.due(now) {
                        let totals = Self::totals(&self.cores, &self.mem, &obs.metrics);
                        rec.sample(totals);
                    }
                }
            }
            if now >= self.config.max_cycles {
                completed = false;
                break;
            }
        }
        if let Some(rec) = obs.intervals.as_mut() {
            rec.finish(now, Self::totals(&self.cores, &self.mem, &obs.metrics));
        }
        let mut stats = self.collect(now, completed);
        stats.watchdog_fired = watchdog_fired;
        if track_tenants {
            stats.tenants = self.tenant_stats(&finished_at, &faults_t, now);
        }
        stats
    }

    /// Watchdog helper: the pages currently in CPU fault service.
    fn fault_q_diagnostics(fault_q: &[((u16, Vpn), Cycle)]) {
        eprintln!(
            "  {} page(s) in CPU fault service: {:?}",
            fault_q.len(),
            fault_q
        );
    }

    /// Watchdog helper: each tenant's progress clock, completion state,
    /// and mapped-fault count — the first place to look when a
    /// multi-tenant run stalls.
    fn tenant_diagnostics(progress_t: &[Cycle], finished_at: &[Cycle], faults_t: &[u64]) {
        for (t, &p) in progress_t.iter().enumerate() {
            eprintln!(
                "  tenant {t}: last issue at cycle {p}, finished={}, faults_mapped={}",
                finished_at[t] != UNFINISHED,
                faults_t[t]
            );
        }
    }

    /// Assembles [`RunStats::tenants`] from the per-core tenant counters
    /// plus the drive loop's finish/fault tracking.
    fn tenant_stats(
        &self,
        finished_at: &[Cycle],
        faults_t: &[u64],
        end: Cycle,
    ) -> Vec<TenantStats> {
        (0..finished_at.len())
            .map(|t| {
                let mut instructions = 0;
                let mut blocks_done = 0;
                for core in &self.cores {
                    let st = core.stats();
                    instructions += st.tenant_instructions.get(t).map_or(0, |c| c.get());
                    blocks_done += st.tenant_blocks_done.get(t).map_or(0, |c| c.get());
                }
                TenantStats {
                    asid: t as u16,
                    instructions,
                    blocks_done,
                    finished_at: if finished_at[t] == UNFINISHED {
                        end
                    } else {
                        finished_at[t]
                    },
                    faults: faults_t[t],
                }
            })
            .collect()
    }

    /// The event-calendar engine: every timer source — each core, the
    /// CPU fault-handler queue, the shootdown-storm schedule, the
    /// watchdog deadline, and the interval sampler — owns a key in one
    /// [`Calendar`], and the clock jumps straight between event cycles,
    /// ticking only the cores whose keys fire.
    ///
    /// Bit-identity with [`Gpu::drive`] rests on three facts the
    /// determinism suite enforces end-to-end:
    ///
    /// 1. A core that is not due would have had a *quiet* tick (see
    ///    [`ShaderCore::tick`]): no dispatch, no MMU activity, no
    ///    events, no issuable unit. Quiet ticks touch only catch-up
    ///    state (MSHR expiry, policy/CPM decay epochs) that replays
    ///    identically when the next real tick arrives, so eliding them
    ///    is unobservable — and since elided cores make no memory
    ///    accesses, ticking the due subset in core-index order
    ///    reproduces the serial engine's shared-memory access order
    ///    exactly.
    /// 2. Idle/live accounting for elided cycles is deferred and
    ///    flushed before anything at the current cycle can mutate core
    ///    state: a deferred span's stall classification is constant
    ///    (any state change would have made the core due), so charging
    ///    it at flush time equals per-cycle charging.
    /// 3. Global timers fire on exactly the cycles the serial loop
    ///    folds into its skip target, and ties are broken identically
    ///    (phases in the same order, cores in index order).
    fn drive_event(
        &mut self,
        tenants: &mut [TenantCtx<'_, '_>],
        policy: &TenantPolicy,
        obs: &mut Observer,
        iters: &mut [u32],
        iters_base: &[usize],
        blocks_total: &[u64],
    ) -> RunStats {
        self.drive_event_ckpt(tenants, policy, obs, iters, iters_base, blocks_total, None)
            .expect("an event run without a resume image cannot fail")
    }

    /// [`Gpu::drive_event`] with optional checkpoint emission/resume.
    /// Snapshots are taken at the top of a visited cycle, before any
    /// phase of that cycle runs, so a resumed run re-enters the loop in
    /// exactly the captured state and replays the remainder
    /// bit-identically.
    #[allow(clippy::too_many_arguments)]
    fn drive_event_ckpt(
        &mut self,
        tenants: &mut [TenantCtx<'_, '_>],
        policy: &TenantPolicy,
        obs: &mut Observer,
        iters: &mut [u32],
        iters_base: &[usize],
        blocks_total: &[u64],
        mut ckpt: Option<&mut CheckpointOpts<'_>>,
    ) -> Result<RunStats, CkptError> {
        let n = self.cores.len();
        let n_t = tenants.len();
        let track_tenants = n_t > 1;
        let kernels: Vec<&dyn Kernel> = tenants.iter().map(|t| t.kernel).collect();
        let owned = tenants.iter_mut().any(|t| t.space.get_mut().is_some());
        let key_fault = n as u32;
        let key_storm = key_fault + 1;
        let key_watchdog = key_storm + 1;
        let key_sampler = key_watchdog + 1;
        let fault_cfg = self.config.fault;
        let injector = self
            .config
            .inject
            .filter(|i| i.enabled())
            .map(FaultInjector::new);
        let mut cal = Calendar::new(n + 4);
        let mut due: Vec<u32> = Vec::with_capacity(n + 4);
        let mut fault_q: Vec<((u16, Vpn), Cycle)> = Vec::new();
        let mut fault_scratch: Vec<(u16, Vpn)> = Vec::new();
        let mut resolved_scratch: Vec<(u16, Vpn)> = Vec::new();
        let mut spaces_pool: Vec<&AddressSpace> = Vec::with_capacity(n_t);
        // Per core: the last cycle whose live/idle accounting has been
        // recorded (by a tick or a flushed idle span).
        let mut accounted: Vec<Cycle> = vec![0; n];
        let mut live_mask: Vec<bool> = self.cores.iter().map(|c| c.has_work()).collect();
        let mut last_epoch: Vec<u64> = tenants
            .iter()
            .map(|t| t.space.get().shootdown_epoch())
            .collect();
        let mut next_storm: u32 = 1;
        let mut last_progress: Cycle = 0;
        let mut progress_t: Vec<Cycle> = vec![0; n_t];
        let mut finished_at: Vec<Cycle> = vec![UNFINISHED; n_t];
        let mut faults_t: Vec<u64> = vec![0; n_t];
        let mut watchdog_fired = false;
        let mut now: Cycle = 0;
        let mut completed = true;
        for i in 0..n as u32 {
            cal.schedule(i, 0);
        }
        if fault_cfg.watchdog > 0 {
            cal.schedule(key_watchdog, fault_cfg.watchdog);
        }
        if policy.watchdog > 0 && track_tenants {
            // The tenant deadline shares the watchdog key; at start every
            // progress clock is 0, so the first deadline is the smaller
            // of the two windows.
            let dl = if fault_cfg.watchdog > 0 {
                fault_cfg.watchdog.min(policy.watchdog)
            } else {
                policy.watchdog
            };
            cal.schedule(key_watchdog, dl);
        }
        if let Some(inj) = &injector {
            if owned {
                if let Some(c) = inj.storm_at(next_storm) {
                    cal.schedule(key_storm, c);
                }
            }
        }
        if let Some(rec) = obs.intervals.as_ref() {
            cal.schedule(key_sampler, rec.next_boundary());
        }
        let mut next_emit: Cycle = ckpt.as_ref().map_or(0, |c| c.every.max(1));
        if let Some(opts) = ckpt.as_mut() {
            if let Some(bytes) = opts.resume {
                let mut r = Loader::new(bytes);
                let found = r.header(&CKPT_MAGIC, CKPT_VERSION)?;
                let expected = ckpt_fingerprint(&self.config, tenants, policy);
                if found != expected {
                    return Err(CkptError::ConfigMismatch { expected, found });
                }
                now = r.u64()?;
                last_progress = r.u64()?;
                next_storm = r.u32()?;
                for e in last_epoch.iter_mut() {
                    *e = r.u64()?;
                }
                for p in progress_t.iter_mut() {
                    *p = r.u64()?;
                }
                for f in finished_at.iter_mut() {
                    *f = r.u64()?;
                }
                for f in faults_t.iter_mut() {
                    *f = r.u64()?;
                }
                fault_q.load(&mut r)?;
                for a in accounted.iter_mut() {
                    *a = r.u64()?;
                }
                cal.load(&mut r)?;
                for it in iters.iter_mut() {
                    *it = r.u32()?;
                }
                for ctx in tenants.iter_mut() {
                    match ctx.space.get_mut() {
                        Some(sp) => sp.load(&mut r)?,
                        None => {
                            return Err(CkptError::Corrupt(
                                "resume requires an owned address space",
                            ))
                        }
                    }
                }
                self.mem.load(&mut r)?;
                for core in &mut self.cores {
                    core.load(&mut r)?;
                }
                obs.tracer.load(&mut r)?;
                if let Some(rec) = obs.intervals.as_mut() {
                    rec.load(&mut r)?;
                }
                obs.metrics.load(&mut r)?;
                if r.remaining() != 0 {
                    return Err(CkptError::Corrupt("trailing bytes after checkpoint"));
                }
                for (i, core) in self.cores.iter().enumerate() {
                    live_mask[i] = core.has_work();
                }
                next_emit = now + opts.every.max(1);
            }
        }
        loop {
            // Snapshot at the top of a visited cycle, before any phase
            // of the cycle runs: the resume path re-enters the loop
            // here with identical state.
            if let Some(opts) = ckpt.as_mut() {
                if opts.every > 0 && now > 0 && now >= next_emit {
                    let clocks = DriveClocks {
                        now,
                        last_progress,
                        next_storm,
                        last_epoch: &last_epoch,
                        progress_t: &progress_t,
                        finished_at: &finished_at,
                        faults_t: &faults_t,
                    };
                    let image = self.save_checkpoint(
                        tenants, policy, obs, iters, &clocks, &fault_q, &accounted, &cal,
                    );
                    (opts.sink)(&image);
                    next_emit = now + opts.every;
                }
            }
            // Deferred idle spans flush before anything at `now` can
            // change a core's stall classification.
            if now > 0 {
                let upto = now - 1;
                for (core, acc) in self.cores.iter_mut().zip(accounted.iter_mut()) {
                    if *acc < upto {
                        core.note_idle_skip(*acc + 1, upto - *acc);
                        *acc = upto;
                    }
                }
            }
            // Storm catch-up, exactly as the serial loop: the counter
            // advances through every storm at or before `now`; the
            // remap itself needs an owned space.
            if let Some(inj) = &injector {
                while inj.storm_at(next_storm).is_some_and(|c| c <= now) {
                    let k = next_storm;
                    next_storm += 1;
                    let victim = inj.storm_victim(k, n_t) as usize;
                    if let Some(sp) = tenants[victim].space.get_mut() {
                        if !sp.regions().is_empty() {
                            let idx = inj.storm_region(k, sp.regions().len());
                            let name = sp.regions()[idx].name.clone();
                            let _ = sp.remap_region(&name);
                        }
                    }
                }
                if owned {
                    match inj.storm_at(next_storm) {
                        Some(c) => cal.schedule(key_storm, c),
                        None => cal.cancel(key_storm),
                    }
                }
            }
            for (t, ctx) in tenants.iter().enumerate() {
                let epoch = ctx.space.get().shootdown_epoch();
                if epoch != last_epoch[t] {
                    last_epoch[t] = epoch;
                    for (i, core) in self.cores.iter_mut().enumerate() {
                        if track_tenants {
                            core.shootdown_asid(now, t as u16);
                        } else {
                            core.shootdown(now);
                        }
                        cal.schedule(i as u32, now);
                    }
                }
            }
            if !fault_q.is_empty() {
                resolved_scratch.clear();
                fault_q.retain(|&(key, at)| {
                    if at <= now {
                        resolved_scratch.push(key);
                        false
                    } else {
                        true
                    }
                });
                for &(asid, vpn) in &resolved_scratch {
                    let mapped = match tenants[asid as usize].space.get_mut() {
                        Some(sp) => sp.map_page(vpn).is_ok(),
                        None => false,
                    };
                    if mapped {
                        faults_t[asid as usize] += 1;
                        for (i, core) in self.cores.iter_mut().enumerate() {
                            core.resolve_fault(asid, vpn, now);
                            cal.schedule(i as u32, now);
                        }
                    } else {
                        fault_q.push(((asid, vpn), now + fault_cfg.minor_latency.max(1)));
                    }
                }
            }
            cal.take_due(now, &mut due);
            let mut issued = 0u64;
            fault_scratch.clear();
            {
                let mut spaces = recycle_refs(std::mem::take(&mut spaces_pool));
                spaces.extend(tenants.iter().map(|t| t.space.get()));
                let mut ctx = RunCtx {
                    spaces: &spaces,
                    kernels: &kernels,
                    iters: &mut *iters,
                    iters_base,
                };
                for &key in &due {
                    if key >= n as u32 {
                        continue; // global timers: their phases already ran
                    }
                    let i = key as usize;
                    let core = &mut self.cores[i];
                    let fired = core.tick_tenants(now, &mut self.mem, &mut ctx, &mut obs.tracer);
                    issued |= fired;
                    accounted[i] = now;
                    live_mask[i] = core.has_work();
                    core.drain_faults(&mut fault_scratch);
                    if fired != 0 {
                        // After an issue the very next cycle may issue
                        // again (round-robin arbitration carries no timer).
                        cal.schedule(key, now + 1);
                    } else {
                        match core.next_event_at(now) {
                            Some(c) => cal.schedule(key, c),
                            None => cal.cancel(key),
                        }
                    }
                }
                spaces_pool = recycle_refs(spaces);
            }
            // Same drain as the serial loop; cores not due this cycle
            // ran no MMU work and so staged nothing.
            if obs.metrics.enabled() {
                for core in &mut self.cores {
                    core.drain_metrics(&mut obs.metrics);
                }
            }
            for &(asid, vpn) in &fault_scratch {
                if fault_q.iter().any(|&(k, _)| k == (asid, vpn)) {
                    continue;
                }
                let salted = gmmu_mem::mshr::tenant_key(asid, vpn.raw());
                let latency = if major_fault(self.config.seed, salted, fault_cfg.major_fraction) {
                    fault_cfg.major_latency
                } else {
                    fault_cfg.minor_latency
                };
                fault_q.push(((asid, vpn), now + latency.max(1)));
            }
            match fault_q.iter().map(|&(_, at)| at).min() {
                Some(at) => cal.schedule(key_fault, at),
                None => cal.cancel(key_fault),
            }
            // Same finish tracking as the serial loop: blocks reap only
            // inside ticks, and a core that reaped was due, so the first
            // cycle the count is complete is a visited cycle on every
            // engine.
            if track_tenants {
                for t in 0..n_t {
                    if finished_at[t] == UNFINISHED {
                        let done: u64 = self
                            .cores
                            .iter()
                            .map(|c| {
                                c.stats()
                                    .tenant_blocks_done
                                    .get(t)
                                    .map_or(0, |ctr| ctr.get())
                            })
                            .sum();
                        if done >= blocks_total[t] {
                            finished_at[t] = now;
                        }
                    }
                }
            }
            if !live_mask.iter().any(|&l| l) {
                break;
            }
            if issued != 0 {
                last_progress = now;
                if fault_cfg.watchdog > 0 {
                    cal.schedule(key_watchdog, now + fault_cfg.watchdog);
                }
            } else if fault_cfg.watchdog > 0 && now - last_progress >= fault_cfg.watchdog {
                eprintln!(
                    "gmmu watchdog: no instruction issued for {} cycles \
                     (last progress at cycle {last_progress}, now {now})",
                    now - last_progress
                );
                Self::fault_q_diagnostics(&fault_q);
                if track_tenants {
                    Self::tenant_diagnostics(&progress_t, &finished_at, &faults_t);
                }
                for core in &self.cores {
                    eprint!("{}", core.stall_diagnostics(now));
                }
                watchdog_fired = true;
                completed = false;
                // The serial loop ticked every live core on the kill
                // cycle; account it for the cores that were not due.
                for (core, acc) in self.cores.iter_mut().zip(accounted.iter_mut()) {
                    if *acc < now {
                        core.note_idle_skip(*acc + 1, now - *acc);
                        *acc = now;
                    }
                }
                break;
            }
            // Per-tenant starvation watchdog, mirroring the serial loop;
            // the shared watchdog key is rescheduled to the earliest of
            // the global and per-tenant deadlines so the kill cycle is
            // always visited.
            if policy.watchdog > 0 && track_tenants {
                for (t, p) in progress_t.iter_mut().enumerate() {
                    if issued & (1u64 << (t as u32 & 63)) != 0 {
                        *p = now;
                    }
                }
                if let Some(starved) = (0..n_t).find(|&t| {
                    finished_at[t] == UNFINISHED && now - progress_t[t] >= policy.watchdog
                }) {
                    eprintln!(
                        "gmmu tenant watchdog: tenant {starved} issued nothing for {} cycles \
                         (last progress at cycle {}, now {now})",
                        now - progress_t[starved],
                        progress_t[starved]
                    );
                    Self::fault_q_diagnostics(&fault_q);
                    Self::tenant_diagnostics(&progress_t, &finished_at, &faults_t);
                    for core in &self.cores {
                        eprint!("{}", core.stall_diagnostics(now));
                    }
                    watchdog_fired = true;
                    completed = false;
                    for (core, acc) in self.cores.iter_mut().zip(accounted.iter_mut()) {
                        if *acc < now {
                            core.note_idle_skip(*acc + 1, now - *acc);
                            *acc = now;
                        }
                    }
                    break;
                }
                let mut dl = Cycle::MAX;
                if fault_cfg.watchdog > 0 {
                    dl = dl.min(last_progress + fault_cfg.watchdog);
                }
                for t in 0..n_t {
                    if finished_at[t] == UNFINISHED {
                        dl = dl.min(progress_t[t] + policy.watchdog);
                    }
                }
                if dl != Cycle::MAX {
                    cal.schedule(key_watchdog, dl);
                }
            }
            let next = cal
                .peek_cycle()
                .expect("a live machine must have a scheduled event");
            debug_assert!(next > now, "calendar must advance the clock");
            now = next.min(self.config.max_cycles);
            if let Some(rec) = obs.intervals.as_mut() {
                while rec.due(now) {
                    let totals = Self::totals(&self.cores, &self.mem, &obs.metrics);
                    rec.sample(totals);
                }
                cal.schedule(key_sampler, rec.next_boundary());
            }
            if now >= self.config.max_cycles {
                completed = false;
                let upto = now - 1;
                for (core, acc) in self.cores.iter_mut().zip(accounted.iter_mut()) {
                    if *acc < upto {
                        core.note_idle_skip(*acc + 1, upto - *acc);
                        *acc = upto;
                    }
                }
                break;
            }
        }
        if let Some(rec) = obs.intervals.as_mut() {
            rec.finish(now, Self::totals(&self.cores, &self.mem, &obs.metrics));
        }
        let mut stats = self.collect(now, completed);
        stats.watchdog_fired = watchdog_fired;
        if track_tenants {
            stats.tenants = self.tenant_stats(&finished_at, &faults_t, now);
        }
        Ok(stats)
    }

    /// Serializes the full simulation state at the top of cycle
    /// `clocks.now`. Layout (after the header) is fixed by
    /// [`CKPT_VERSION`]: engine clocks (including the per-tenant epoch,
    /// progress, finish, and fault arrays), fault queue, per-core idle
    /// accounting, calendar, iteration counters, every tenant's address
    /// space in ASID order, memory system, cores, then observer buffers.
    /// Geometry-length sequences (per-tenant arrays, accounted, iters,
    /// cores) are written per element without a length — the machine
    /// shape is pinned by the fingerprint.
    #[allow(clippy::too_many_arguments)]
    fn save_checkpoint(
        &self,
        tenants: &[TenantCtx<'_, '_>],
        policy: &TenantPolicy,
        obs: &Observer,
        iters: &[u32],
        clocks: &DriveClocks<'_>,
        fault_q: &[((u16, Vpn), Cycle)],
        accounted: &[Cycle],
        cal: &Calendar,
    ) -> Vec<u8> {
        let mut w = Saver::new();
        w.header(
            &CKPT_MAGIC,
            CKPT_VERSION,
            ckpt_fingerprint(&self.config, tenants, policy),
        );
        w.u64(clocks.now);
        w.u64(clocks.last_progress);
        w.u32(clocks.next_storm);
        for &e in clocks.last_epoch {
            w.u64(e);
        }
        for &p in clocks.progress_t {
            w.u64(p);
        }
        for &f in clocks.finished_at {
            w.u64(f);
        }
        for &f in clocks.faults_t {
            w.u64(f);
        }
        // Same wire shape as `Vec::save` (the resume path loads with it).
        w.usize(fault_q.len());
        for entry in fault_q {
            entry.save(&mut w);
        }
        for &a in accounted {
            w.u64(a);
        }
        cal.save(&mut w);
        for &it in iters {
            w.u32(it);
        }
        for ctx in tenants {
            ctx.space.get().save(&mut w);
        }
        self.mem.save(&mut w);
        for core in &self.cores {
            core.save(&mut w);
        }
        obs.tracer.save(&mut w);
        if let Some(rec) = obs.intervals.as_ref() {
            rec.save(&mut w);
        }
        // Snapshots are taken at the top of a cycle, after the previous
        // cycle's drain: per-core staging buffers are empty, so only the
        // observer's aggregation sink needs to travel.
        obs.metrics.save(&mut w);
        w.into_bytes()
    }

    /// Current whole-GPU totals of the counters interval samples track.
    /// The per-stage walk columns come from the metrics channel and stay
    /// zero when it is off.
    fn totals(cores: &[ShaderCore], mem: &MemorySystem, metrics: &Metrics) -> CounterSnapshot {
        let mut t = CounterSnapshot {
            dram_requests: mem.dram_requests(),
            ..CounterSnapshot::default()
        };
        if let Some(sink) = metrics.sink() {
            let (queue, active) = sink.stage_cycles();
            t.walk_queue_cycles = queue;
            t.walk_active_cycles = active;
        }
        for core in cores {
            t.instructions += core.stats().instructions.get();
            let mmu = core.mmu();
            if let Some(tlb) = mmu.tlb() {
                t.tlb_accesses += tlb.accesses.get();
                t.tlb_hits += tlb.hits.get();
            }
            if let Some(w) = mmu.walker() {
                t.walker_busy_cycles += w.stats.lane_busy_cycles.get();
            }
        }
        t
    }

    fn collect(&self, cycles: Cycle, completed: bool) -> RunStats {
        let mut s = RunStats::zeroed();
        s.cycles = cycles;
        s.completed = completed;
        s.walk_l2_hit_rate = self.mem.walk_l2_hit_rate();
        s.dram_requests = self.mem.dram_requests();
        for core in &self.cores {
            let st = core.stats();
            s.instructions += st.instructions.get();
            s.mem_instructions += st.mem_instructions.get();
            s.idle_cycles += st.idle_cycles.get();
            debug_assert_eq!(
                st.stall_breakdown.total(),
                st.idle_cycles.get(),
                "stall breakdown must refine idle_cycles exactly"
            );
            s.stall_breakdown.merge(&st.stall_breakdown);
            s.live_cycles += st.live_cycles.get();
            s.page_divergence.merge(&st.page_divergence);
            s.l1_miss_latency.merge(&st.l1_miss_latency);
            s.replays += st.replays.get();
            s.dwarps_formed += st.dwarps_formed.get();
            s.blocks_done += st.blocks_done.get();
            s.l1_accesses += core.l1().accesses.get();
            s.l1_hits += core.l1().hits.get();
            let mmu = core.mmu();
            s.tlb_miss_latency.merge(&mmu.miss_latency);
            s.faults += mmu.faults.get();
            s.shootdowns += mmu.shootdowns.get();
            s.squashed_walks += mmu.squashed_walks.get();
            if let Some(tlb) = mmu.tlb() {
                s.tlb_accesses += tlb.accesses.get();
                s.tlb_hits += tlb.hits.get();
            }
            if let Some(w) = mmu.walker() {
                s.walk_refs_issued += w.stats.refs_issued.get();
                s.walk_refs_naive += w.stats.refs_naive.get();
                s.walks += w.stats.walks.get();
            }
        }
        s
    }

    /// Per-core access for diagnostics and tests.
    pub fn cores(&self) -> &[ShaderCore] {
        &self.cores
    }

    /// The shared memory system (L2/DRAM statistics).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Renders the versioned metrics snapshot of a finished (or paused)
    /// run: the full instrument registry — every core in index order,
    /// then the memory system — plus the observer sink's lifecycle
    /// histograms and hot-page table. Returns `None` when the metrics
    /// channel is off. The output contains no wall-clock or engine
    /// fields, so identical simulations produce identical snapshots on
    /// every engine.
    pub fn metrics_snapshot(&self, obs: &Observer) -> Option<String> {
        let sink = obs.metrics.sink()?;
        let mut reg = MetricsRegistry::new();
        for (i, core) in self.cores.iter().enumerate() {
            core.register_metrics(&format!("core{i}"), &mut reg);
        }
        self.mem.register_metrics("mem", &mut reg);
        Some(sink.snapshot_json(&reg))
    }
}

/// Convenience: build a GPU, run one kernel, return the stats.
pub fn run_kernel(config: GpuConfig, kernel: &dyn Kernel, space: &AddressSpace) -> RunStats {
    Gpu::new(config).run(kernel, space)
}

impl Ckpt for RunStats {
    fn save(&self, w: &mut Saver) {
        w.u64(self.cycles);
        w.bool(self.completed);
        w.u64(self.instructions);
        w.u64(self.mem_instructions);
        w.u64(self.idle_cycles);
        self.stall_breakdown.save(w);
        w.u64(self.live_cycles);
        self.page_divergence.save(w);
        self.l1_miss_latency.save(w);
        self.tlb_miss_latency.save(w);
        w.u64(self.tlb_accesses);
        w.u64(self.tlb_hits);
        w.u64(self.l1_accesses);
        w.u64(self.l1_hits);
        w.u64(self.walk_refs_issued);
        w.u64(self.walk_refs_naive);
        w.u64(self.walks);
        w.f64(self.walk_l2_hit_rate);
        w.u64(self.dram_requests);
        w.u64(self.replays);
        w.u64(self.dwarps_formed);
        w.u64(self.blocks_done);
        w.u64(self.faults);
        w.u64(self.shootdowns);
        w.u64(self.squashed_walks);
        w.bool(self.watchdog_fired);
        w.f64(self.wall_s);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.cycles = r.u64()?;
        self.completed = r.bool()?;
        self.instructions = r.u64()?;
        self.mem_instructions = r.u64()?;
        self.idle_cycles = r.u64()?;
        self.stall_breakdown.load(r)?;
        self.live_cycles = r.u64()?;
        self.page_divergence.load(r)?;
        self.l1_miss_latency.load(r)?;
        self.tlb_miss_latency.load(r)?;
        self.tlb_accesses = r.u64()?;
        self.tlb_hits = r.u64()?;
        self.l1_accesses = r.u64()?;
        self.l1_hits = r.u64()?;
        self.walk_refs_issued = r.u64()?;
        self.walk_refs_naive = r.u64()?;
        self.walks = r.u64()?;
        self.walk_l2_hit_rate = r.f64()?;
        self.dram_requests = r.u64()?;
        self.replays = r.u64()?;
        self.dwarps_formed = r.u64()?;
        self.blocks_done = r.u64()?;
        self.faults = r.u64()?;
        self.shootdowns = r.u64()?;
        self.squashed_walks = r.u64()?;
        self.watchdog_fired = r.bool()?;
        self.wall_s = r.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TbcConfig;
    use crate::program::{MemKind, Op, Program, ThreadId};
    use gmmu_core::mmu::MmuModel;
    use gmmu_sim::rng::mix3;
    use gmmu_vm::{PageSize, Region, SpaceConfig, VAddr};

    /// A divergent kernel: threads loop a data-dependent number of
    /// times, each iteration loading from a scattered page, with an
    /// if/else inside the loop.
    struct DivergentKernel {
        program: Program,
        region: Region,
        threads: u32,
        pages: u64,
    }

    impl DivergentKernel {
        /// Program layout:
        /// 0: alu
        /// 1: load (scattered)
        /// 2: branch if-site → taken 4, reconv 5
        /// 3: alu (else body)
        /// 4: alu (join of if — then path starts here)   [simplified if]
        /// 5: branch loop-site → taken 0 (continue), reconv 6
        /// 6: store
        fn new(space: &mut AddressSpace, threads: u32) -> Result<Self, gmmu_vm::VmError> {
            let bytes = 4u64 << 20;
            let region = space.map_region("data", bytes, PageSize::Base4K)?;
            Ok(Self {
                program: Program::new(vec![
                    Op::Alu { cycles: 4 },
                    Op::Mem {
                        site: 0,
                        kind: MemKind::Load,
                    },
                    Op::Branch {
                        site: 1,
                        taken_pc: 4,
                        reconv_pc: 5,
                    },
                    Op::Alu { cycles: 8 },
                    Op::Alu { cycles: 4 },
                    Op::Branch {
                        site: 2,
                        taken_pc: 0,
                        reconv_pc: 6,
                    },
                    Op::Mem {
                        site: 3,
                        kind: MemKind::Store,
                    },
                ]),
                region,
                threads,
                pages: bytes / 4096,
            })
        }

        fn trips(&self, tid: ThreadId) -> u32 {
            1 + (mix3(tid as u64, 99, 0) % 4) as u32
        }
    }

    impl Kernel for DivergentKernel {
        fn name(&self) -> &str {
            "divergent-test"
        }
        fn program(&self) -> &Program {
            &self.program
        }
        fn num_threads(&self) -> u32 {
            self.threads
        }
        fn block_threads(&self) -> u32 {
            128
        }
        fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr {
            let page = mix3(tid as u64, site as u64, iter as u64) % self.pages;
            let off = (tid as u64 * 8) % 4096;
            self.region.at(page * 4096 + (off & !7))
        }
        fn branch_taken(&self, tid: ThreadId, site: u16, iter: u32) -> bool {
            match site {
                1 => mix3(tid as u64, 1, iter as u64).is_multiple_of(2),
                2 => iter + 1 < self.trips(tid),
                _ => false,
            }
        }
    }

    fn cfg(mmu: MmuModel) -> GpuConfig {
        GpuConfig {
            n_cores: 2,
            warps_per_core: 8,
            warps_per_block: 4,
            mmu,
            max_cycles: 5_000_000,
            ..GpuConfig::default()
        }
    }

    fn run(c: GpuConfig, threads: u32) -> RunStats {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let kernel =
            DivergentKernel::new(&mut space, threads).expect("test space has frames to spare");
        run_kernel(c, &kernel, &space)
    }

    #[test]
    fn divergent_kernel_completes_on_ideal_mmu() {
        let s = run(cfg(MmuModel::Ideal), 512);
        assert!(s.completed, "hit the cycle cap");
        assert!(s.instructions > 0);
        assert_eq!(s.blocks_done, 4);
        assert_eq!(s.tlb_accesses, 0, "ideal MMU has no TLB");
    }

    #[test]
    fn naive_mmu_slows_the_same_work_down() {
        let ideal = run(cfg(MmuModel::Ideal), 512);
        let naive = run(cfg(MmuModel::naive()), 512);
        assert!(naive.completed);
        // The MMU changes timing, never the executed work.
        assert_eq!(ideal.mem_instructions, naive.mem_instructions);
        assert_eq!(ideal.blocks_done, naive.blocks_done);
        assert!(naive.cycles > ideal.cycles);
        let speedup = naive.speedup_vs(&ideal);
        assert!(speedup < 1.0, "TLBs cannot speed things up: {speedup}");
        assert!(naive.tlb_miss_rate() > 0.0);
        assert!(naive.walks > 0);
    }

    #[test]
    fn augmented_mmu_beats_naive() {
        let naive = run(cfg(MmuModel::naive()), 512);
        let aug = run(cfg(MmuModel::augmented()), 512);
        assert!(
            aug.cycles < naive.cycles,
            "augmented {} !< naive {}",
            aug.cycles,
            naive.cycles
        );
        assert!(aug.walk_refs_eliminated() > 0.0);
    }

    #[test]
    fn tbc_reduces_warp_instructions_on_divergent_code() {
        let base = run(cfg(MmuModel::Ideal), 512);
        let mut c = cfg(MmuModel::Ideal);
        c.tbc = Some(TbcConfig::baseline());
        let tbc = run(c, 512);
        assert!(tbc.completed);
        assert_eq!(tbc.blocks_done, base.blocks_done);
        // Same thread-level work.
        assert!(tbc.dwarps_formed > 0);
        // Compaction must not lose or duplicate memory accesses:
        // per-thread loads are fixed by trip counts, but warp-level
        // instruction counts shrink when divergent halves compact.
        assert!(
            tbc.instructions < base.instructions,
            "tbc {} !< base {}",
            tbc.instructions,
            base.instructions
        );
    }

    #[test]
    fn tlb_aware_tbc_completes_and_forms_more_warps() {
        let mut c = cfg(MmuModel::augmented());
        c.tbc = Some(TbcConfig::baseline());
        let tbc = run(c.clone(), 512);
        c.tbc = Some(TbcConfig::tlb_aware(3));
        let aware = run(c, 512);
        assert!(aware.completed);
        assert_eq!(aware.blocks_done, tbc.blocks_done);
        // The CPM constraint can only split groups, never merge more.
        assert!(aware.dwarps_formed >= tbc.dwarps_formed);
    }

    #[test]
    fn determinism_end_to_end() {
        let a = run(cfg(MmuModel::augmented()), 256);
        let b = run(cfg(MmuModel::augmented()), 256);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.tlb_accesses, b.tlb_accesses);
        assert_eq!(a.dram_requests, b.dram_requests);
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_serial() {
        let serial = run(cfg(MmuModel::augmented()), 512);
        for threads in [2, 4] {
            let mut c = cfg(MmuModel::augmented());
            c.engine = crate::config::EngineKind::Parallel;
            c.run_threads = threads;
            let par = run(c, 512);
            assert_eq!(serial.cycles, par.cycles, "{threads} threads");
            assert_eq!(serial.instructions, par.instructions, "{threads} threads");
            assert_eq!(serial.idle_cycles, par.idle_cycles, "{threads} threads");
            assert_eq!(serial.tlb_accesses, par.tlb_accesses, "{threads} threads");
            assert_eq!(serial.tlb_hits, par.tlb_hits, "{threads} threads");
            assert_eq!(serial.l1_accesses, par.l1_accesses, "{threads} threads");
            assert_eq!(serial.dram_requests, par.dram_requests, "{threads} threads");
            assert_eq!(serial.walks, par.walks, "{threads} threads");
            assert_eq!(serial.replays, par.replays, "{threads} threads");
        }
    }

    #[test]
    fn event_engine_is_bit_identical_to_serial() {
        let serial = run(cfg(MmuModel::augmented()), 512);
        let mut c = cfg(MmuModel::augmented());
        c.engine = crate::config::EngineKind::Event;
        let event = run(c, 512);
        assert_eq!(serial.cycles, event.cycles);
        assert_eq!(serial.instructions, event.instructions);
        assert_eq!(serial.idle_cycles, event.idle_cycles);
        assert_eq!(serial.stall_breakdown, event.stall_breakdown);
        assert_eq!(serial.live_cycles, event.live_cycles);
        assert_eq!(serial.tlb_accesses, event.tlb_accesses);
        assert_eq!(serial.tlb_hits, event.tlb_hits);
        assert_eq!(serial.l1_accesses, event.l1_accesses);
        assert_eq!(serial.dram_requests, event.dram_requests);
        assert_eq!(serial.walks, event.walks);
        assert_eq!(serial.replays, event.replays);
    }

    #[test]
    fn partial_last_block_runs() {
        let s = run(cfg(MmuModel::Ideal), 100); // not a multiple of 128
        assert!(s.completed);
        assert_eq!(s.blocks_done, 1);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let s = run(cfg(MmuModel::naive()), 256);
        assert!(s.tlb_hits <= s.tlb_accesses);
        assert!(s.l1_hits <= s.l1_accesses);
        assert!(s.walk_refs_issued <= s.walk_refs_naive);
        assert!(s.mem_insn_fraction() > 0.0 && s.mem_insn_fraction() < 1.0);
        assert!(s.page_divergence.count() == s.mem_instructions);
        assert!(s.idle_cycles <= s.live_cycles);
        assert_eq!(
            s.stall_breakdown.total(),
            s.idle_cycles,
            "stall breakdown must sum exactly to idle_cycles"
        );
        assert!(s.stall_breakdown.get(crate::StallCause::TlbFill) > 0);
    }
}
