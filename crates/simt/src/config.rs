//! GPU configuration.
//!
//! Defaults follow the paper's methodology (Section 5.2): 30 SIMT cores,
//! 32-thread warps, 48 warps (1024+ threads) per core, 32 KB L1 data
//! caches with 128-byte lines and LRU, 8 memory channels with 128 KB of
//! L2 each. Experiment presets scale the core count down so a full
//! figure sweep runs in minutes; speedups are relative within one
//! configuration, so the shapes are preserved (see DESIGN.md §2).

use gmmu_core::ccws::{PolicyConfig, PolicyKind};
use gmmu_core::cpm::CpmConfig;
use gmmu_core::mmu::MmuModel;
use gmmu_mem::{CacheConfig, MemConfig};
use gmmu_sim::fault::FaultInjectConfig;
use gmmu_sim::Cycle;
use gmmu_vm::PageSize;

/// Fixed pipeline latencies of a shader core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreTimings {
    /// Cycles before a warp may issue its next instruction after an ALU
    /// op (result latency through the SIMD pipeline).
    pub alu_latency: u64,
    /// Cycles to resolve a branch (mask generation + stack update).
    pub branch_latency: u64,
    /// L1 hit load-to-use latency.
    pub l1_hit_latency: u64,
    /// Cycles a store occupies the memory pipeline (fire-and-forget).
    pub store_issue: u64,
    /// Write-buffer depth in cycles: a warp stalls when its stores run
    /// further than this ahead of the memory system (models finite
    /// store buffering; prevents unbounded write queues).
    pub store_window: u64,
}

impl Default for CoreTimings {
    fn default() -> Self {
        Self {
            alu_latency: 8,
            branch_latency: 4,
            l1_hit_latency: 16,
            store_issue: 2,
            store_window: 1024,
        }
    }
}

/// Thread block compaction configuration (Section 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbcConfig {
    /// Steer compaction with the Common Page Matrix (TLB-aware TBC).
    pub tlb_aware: bool,
    /// CPM geometry, used when `tlb_aware` is set.
    pub cpm: CpmConfig,
}

impl TbcConfig {
    /// Baseline (TLB-agnostic) TBC.
    pub fn baseline() -> Self {
        Self {
            tlb_aware: false,
            cpm: CpmConfig::default(),
        }
    }

    /// TLB-aware TBC with `bits`-bit CPM counters (Figure 22 sweeps
    /// 1–3).
    pub fn tlb_aware(bits: u8) -> Self {
        Self {
            tlb_aware: true,
            cpm: CpmConfig {
                counter_bits: bits,
                ..CpmConfig::default()
            },
        }
    }
}

/// The fault-and-recovery model: demand paging, shootdown replay, and
/// the forward-progress watchdog. The default ([`FaultConfig::off`])
/// disables all of it, and a disabled model is bit-identical to a build
/// without the machinery (the determinism suite enforces this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Park faulting warps and service them through the modeled CPU
    /// fault handler instead of aborting the run. Requires running via
    /// [`crate::gpu::Gpu::run_faulted`] so the handler can map pages.
    pub demand_paging: bool,
    /// CPU handler latency for a *minor* fault (page resident, just
    /// needs a PTE): interrupt + handler + map.
    pub minor_latency: Cycle,
    /// CPU handler latency for a *major* fault (backing data must be
    /// fetched first).
    pub major_latency: Cycle,
    /// Fraction of faulting pages treated as major, decided
    /// deterministically per page from the GPU seed.
    pub major_fraction: f64,
    /// Cycles a warp backs off before retrying an access whose walk was
    /// squashed by a TLB shootdown (bounded, fixed backoff).
    pub shootdown_backoff: Cycle,
    /// Forward-progress watchdog: fail the run with a diagnostic dump
    /// after this many cycles without a single issued instruction
    /// (0 = disabled).
    pub watchdog: Cycle,
}

impl FaultConfig {
    /// Everything disabled — the bit-identical default.
    pub fn off() -> Self {
        Self {
            demand_paging: false,
            minor_latency: 3_000,
            major_latency: 30_000,
            major_fraction: 0.25,
            shootdown_backoff: 32,
            watchdog: 0,
        }
    }

    /// Demand paging on, with the watchdog armed as a safety net.
    pub fn demand() -> Self {
        Self {
            demand_paging: true,
            watchdog: 10_000_000,
            ..Self::off()
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Which engine drives the per-cycle core loop inside a run.
///
/// Both engines produce bit-identical [`crate::gpu::RunStats`], traces,
/// and fault schedules; the determinism suite enforces this. See
/// DESIGN.md ("Execution engine") for the ordering protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// One thread ticks every core in index order (the reference).
    #[default]
    Serial,
    /// Cores tick concurrently on a worker pool within each cycle;
    /// shared-memory accesses are serialized into exact core-index
    /// order, so the result is bit-identical to [`EngineKind::Serial`].
    Parallel,
    /// The event-calendar engine: per-component wake times live in a
    /// [`gmmu_sim::calendar::Calendar`] and the clock jumps straight
    /// between event cycles, ticking only the cores whose events fire.
    /// Bit-identical to [`EngineKind::Serial`]; additionally supports
    /// deterministic checkpoint/restore
    /// ([`crate::gpu::Gpu::run_event_checkpointed`]). Ignored (falls
    /// back to the standard loop) when `tick_every_cycle` or
    /// `GMMU_TICK_EVERY_CYCLE` forces per-cycle ticking.
    Event,
}

/// Full GPU configuration.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Shader cores (paper: 30; experiment presets use fewer).
    pub n_cores: usize,
    /// Warp contexts per core (paper: 48).
    pub warps_per_core: usize,
    /// Warps per thread block (paper-style 256-thread blocks → 8).
    pub warps_per_block: usize,
    /// Address-translation hardware per core.
    pub mmu: MmuModel,
    /// Warp scheduling locality policy.
    pub policy: PolicyKind,
    /// Policy tunables.
    pub policy_config: PolicyConfig,
    /// Thread block compaction (None = per-warp reconvergence stacks).
    pub tbc: Option<TbcConfig>,
    /// Shared memory system.
    pub mem: MemConfig,
    /// Per-core L1 data cache geometry.
    pub l1: CacheConfig,
    /// Per-core L1 MSHR entries.
    pub l1_mshrs: usize,
    /// Pipeline latencies.
    pub timings: CoreTimings,
    /// Translation granule: 4 KiB by default; set to 2 MiB to study
    /// large pages (Section 9). With a 2 MiB granule every region the
    /// kernel touches must be backed by 2 MiB mappings.
    pub granule: PageSize,
    /// Force the legacy tick-every-cycle global loop instead of the
    /// idle-cycle-skipping engine. Both produce bit-identical
    /// [`crate::gpu::RunStats`]; this exists as an escape hatch and for
    /// the equivalence tests. The `GMMU_TICK_EVERY_CYCLE` environment
    /// variable forces it on regardless of this field.
    pub tick_every_cycle: bool,
    /// Intra-run execution engine (orthogonal to `tick_every_cycle`:
    /// the parallel engine supports both the idle-skipping and legacy
    /// global loops).
    pub engine: EngineKind,
    /// Threads the parallel engine may use for one run, *including* the
    /// calling thread (so `1` degenerates to serial even when `engine`
    /// is [`EngineKind::Parallel`]). Has no effect under
    /// [`EngineKind::Serial`]. Results never depend on this value.
    pub run_threads: usize,
    /// Safety valve: abort a run after this many cycles.
    pub max_cycles: u64,
    /// Seed folded into workload construction (kept here so a whole
    /// experiment is reproducible from its config).
    pub seed: u64,
    /// Fault-and-recovery model (demand paging, shootdown backoff,
    /// watchdog). [`FaultConfig::off`] by default.
    pub fault: FaultConfig,
    /// Deterministic fault injection (delayed walks, transient rejects,
    /// shootdown storms). `None` = no perturbation.
    pub inject: Option<FaultInjectConfig>,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            n_cores: 30,
            warps_per_core: 48,
            warps_per_block: 8,
            mmu: MmuModel::Ideal,
            policy: PolicyKind::None,
            policy_config: PolicyConfig::default(),
            tbc: None,
            mem: MemConfig::default(),
            l1: CacheConfig::l1_data(),
            l1_mshrs: 64,
            timings: CoreTimings::default(),
            granule: PageSize::Base4K,
            tick_every_cycle: false,
            engine: EngineKind::Serial,
            run_threads: 1,
            max_cycles: 200_000_000,
            seed: 0x5eed,
            fault: FaultConfig::off(),
            inject: None,
        }
    }
}

impl GpuConfig {
    /// The paper's full-scale machine with the given MMU.
    pub fn paper_scale(mmu: MmuModel) -> Self {
        Self {
            mmu,
            ..Self::default()
        }
    }

    /// A reduced machine for fast experiment sweeps: fewer cores with
    /// the memory system scaled to keep the paper's ~4:1
    /// core-to-channel ratio, so per-core bandwidth, contention, and
    /// all MMU behaviour match the full configuration.
    pub fn experiment_scale(mmu: MmuModel) -> Self {
        Self {
            n_cores: 8,
            mem: MemConfig {
                channels: 2,
                ..MemConfig::default()
            },
            mmu,
            ..Self::default()
        }
    }

    /// Threads resident per core.
    pub fn threads_per_core(&self) -> u32 {
        (self.warps_per_core * 32) as u32
    }

    /// Warp size (fixed at 32, like the paper's hardware).
    pub const WARP_SIZE: usize = 32;
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for CoreTimings {
    fn save(&self, w: &mut Saver) {
        w.u64(self.alu_latency);
        w.u64(self.branch_latency);
        w.u64(self.l1_hit_latency);
        w.u64(self.store_issue);
        w.u64(self.store_window);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.alu_latency = r.u64()?;
        self.branch_latency = r.u64()?;
        self.l1_hit_latency = r.u64()?;
        self.store_issue = r.u64()?;
        self.store_window = r.u64()?;
        Ok(())
    }
}

impl Ckpt for TbcConfig {
    fn save(&self, w: &mut Saver) {
        w.bool(self.tlb_aware);
        self.cpm.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.tlb_aware = r.bool()?;
        self.cpm.load(r)
    }
}

impl Ckpt for FaultConfig {
    fn save(&self, w: &mut Saver) {
        w.bool(self.demand_paging);
        w.u64(self.minor_latency);
        w.u64(self.major_latency);
        w.f64(self.major_fraction);
        w.u64(self.shootdown_backoff);
        w.u64(self.watchdog);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.demand_paging = r.bool()?;
        self.minor_latency = r.u64()?;
        self.major_latency = r.u64()?;
        self.major_fraction = r.f64()?;
        self.shootdown_backoff = r.u64()?;
        self.watchdog = r.u64()?;
        Ok(())
    }
}

impl Ckpt for EngineKind {
    fn save(&self, w: &mut Saver) {
        w.u8(match self {
            EngineKind::Serial => 0,
            EngineKind::Parallel => 1,
            EngineKind::Event => 2,
        });
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        *self = match r.u8()? {
            0 => EngineKind::Serial,
            1 => EngineKind::Parallel,
            2 => EngineKind::Event,
            _ => return Err(CkptError::Corrupt("unknown engine kind")),
        };
        Ok(())
    }
}

impl Ckpt for GpuConfig {
    /// Serializes *every* field, so a trace or image carrying a
    /// `GpuConfig` can rebuild the exact machine in another process —
    /// unlike checkpoint payloads, which pin the shape by fingerprint
    /// and never serialize configuration.
    fn save(&self, w: &mut Saver) {
        w.usize(self.n_cores);
        w.usize(self.warps_per_core);
        w.usize(self.warps_per_block);
        self.mmu.save(w);
        self.policy.save(w);
        self.policy_config.save(w);
        match &self.tbc {
            None => w.bool(false),
            Some(tbc) => {
                w.bool(true);
                tbc.save(w);
            }
        }
        self.mem.save(w);
        self.l1.save(w);
        w.usize(self.l1_mshrs);
        self.timings.save(w);
        self.granule.save(w);
        w.bool(self.tick_every_cycle);
        self.engine.save(w);
        w.usize(self.run_threads);
        w.u64(self.max_cycles);
        w.u64(self.seed);
        self.fault.save(w);
        self.inject.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.n_cores = r.usize()?;
        self.warps_per_core = r.usize()?;
        self.warps_per_block = r.usize()?;
        self.mmu.load(r)?;
        self.policy.load(r)?;
        self.policy_config.load(r)?;
        self.tbc = if r.bool()? {
            let mut tbc = TbcConfig::baseline();
            tbc.load(r)?;
            Some(tbc)
        } else {
            None
        };
        self.mem.load(r)?;
        self.l1.load(r)?;
        self.l1_mshrs = r.usize()?;
        self.timings.load(r)?;
        self.granule.load(r)?;
        self.tick_every_cycle = r.bool()?;
        self.engine.load(r)?;
        self.run_threads = r.usize()?;
        self.max_cycles = r.u64()?;
        self.seed = r.u64()?;
        self.fault.load(r)?;
        self.inject.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_methodology() {
        let c = GpuConfig::default();
        assert_eq!(c.n_cores, 30);
        assert_eq!(c.warps_per_core, 48);
        assert_eq!(c.threads_per_core(), 1536);
        assert_eq!(c.mem.channels, 8);
        assert_eq!(c.l1.lines() * 128, 32 * 1024);
    }

    #[test]
    fn experiment_scale_changes_only_core_count() {
        let full = GpuConfig::paper_scale(MmuModel::naive());
        let fast = GpuConfig::experiment_scale(MmuModel::naive());
        assert_eq!(full.warps_per_core, fast.warps_per_core);
        assert_eq!(full.l1, fast.l1);
        assert!(fast.n_cores < full.n_cores);
    }

    #[test]
    fn tbc_config_presets() {
        assert!(!TbcConfig::baseline().tlb_aware);
        let t = TbcConfig::tlb_aware(3);
        assert!(t.tlb_aware);
        assert_eq!(t.cpm.counter_bits, 3);
    }
}
