//! Per-warp SIMT reconvergence stacks.
//!
//! The baseline divergence mechanism (Section 8: "SIMD architectures
//! have supported divergent branch execution by masking vector lanes and
//! stack reconvergence"). Each warp owns a stack of `(pc, reconvergence
//! pc, active mask)` entries; a divergent branch turns the current entry
//! into the reconvergence entry and pushes one child per taken path.
//! Children pop when they reach their reconvergence pc; execution of the
//! merged mask resumes there. Backward (loop) branches fall out of the
//! same mechanism: exiting threads simply wait in the ancestor entry.

/// One stack level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StackEntry {
    /// Next pc this entry will execute.
    pub pc: u32,
    /// Reconvergence pc: when `pc` reaches it, the entry pops.
    pub rpc: u32,
    /// Active lanes (bit per lane).
    pub mask: u32,
}

/// A warp's reconvergence stack.
///
/// # Examples
///
/// ```
/// use gmmu_simt::stack::SimtStack;
/// // 4 active lanes, program of length 10.
/// let mut s = SimtStack::new(0b1111, 10);
/// let (pc, mask) = s.current().unwrap();
/// assert_eq!((pc, mask), (0, 0b1111));
/// // Lanes 0-1 take a branch at pc 0 to pc 5; reconverge at 8.
/// s.branch(0b0011, 5, 1, 8);
/// assert_eq!(s.current().unwrap(), (5, 0b0011)); // taken side first
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimtStack {
    entries: Vec<StackEntry>,
}

impl SimtStack {
    /// Creates a stack for a warp whose active lanes are `mask`,
    /// executing a program that ends at `end_pc`.
    ///
    /// # Panics
    ///
    /// Panics if `mask` is zero.
    pub fn new(mask: u32, end_pc: u32) -> Self {
        assert!(mask != 0, "a warp needs at least one active lane");
        Self {
            entries: vec![StackEntry {
                pc: 0,
                rpc: end_pc,
                mask,
            }],
        }
    }

    /// The pc and mask to execute next, or `None` when the warp is done.
    pub fn current(&self) -> Option<(u32, u32)> {
        self.entries.last().map(|e| (e.pc, e.mask))
    }

    /// Whether every lane has finished the program.
    pub fn is_done(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current stack depth (diagnostics).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    fn maybe_pop(&mut self) {
        while let Some(top) = self.entries.last() {
            if top.pc == top.rpc {
                self.entries.pop();
            } else {
                break;
            }
        }
    }

    /// Advances past a non-branch instruction to `next_pc`.
    ///
    /// # Panics
    ///
    /// Panics if the warp is already done.
    pub fn advance(&mut self, next_pc: u32) {
        let top = self.entries.last_mut().expect("advance on finished warp");
        top.pc = next_pc;
        self.maybe_pop();
    }

    /// Executes a branch at the current pc: lanes in `taken` (intersected
    /// with the active mask) jump to `taken_pc`, the rest fall through to
    /// `fall_pc`; both re-join at `reconv_pc`.
    ///
    /// # Panics
    ///
    /// Panics if the warp is already done.
    pub fn branch(&mut self, taken: u32, taken_pc: u32, fall_pc: u32, reconv_pc: u32) {
        let top = self.entries.last_mut().expect("branch on finished warp");
        let t = taken & top.mask;
        let n = top.mask & !t;
        if t == 0 {
            top.pc = fall_pc;
            self.maybe_pop();
            return;
        }
        if n == 0 {
            top.pc = taken_pc;
            self.maybe_pop();
            return;
        }
        // Divergent: the current entry becomes the reconvergence entry.
        top.pc = reconv_pc;
        let rpc_redundant = top.pc == top.rpc && self.entries.len() > 1;
        if rpc_redundant {
            // The ancestor already waits at this reconvergence point with
            // a superset mask (loop-exit case); drop the redundant level
            // so loop iteration does not grow the stack.
            self.entries.pop();
        }
        if fall_pc != reconv_pc {
            self.entries.push(StackEntry {
                pc: fall_pc,
                rpc: reconv_pc,
                mask: n,
            });
        }
        if taken_pc != reconv_pc {
            self.entries.push(StackEntry {
                pc: taken_pc,
                rpc: reconv_pc,
                mask: t,
            });
        }
        self.maybe_pop();
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for StackEntry {
    fn save(&self, w: &mut Saver) {
        w.u32(self.pc);
        w.u32(self.rpc);
        w.u32(self.mask);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.pc = r.u32()?;
        self.rpc = r.u32()?;
        self.mask = r.u32()?;
        Ok(())
    }
}

impl Ckpt for SimtStack {
    fn save(&self, w: &mut Saver) {
        self.entries.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.entries.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_execution_finishes() {
        let mut s = SimtStack::new(0xf, 3);
        for pc in 1..=3 {
            assert!(!s.is_done());
            s.advance(pc);
        }
        assert!(s.is_done());
        assert_eq!(s.current(), None);
    }

    #[test]
    fn if_else_executes_both_paths_then_reconverges() {
        // 0: branch (taken → 3), 1-2: else, 3-4: then... layout:
        //   0 branch(t→3, reconv 5); 1,2 = else path; 3,4 = then path; 5 = join
        let mut s = SimtStack::new(0b1111, 6);
        s.branch(0b0011, 3, 1, 5);
        // Taken side first.
        assert_eq!(s.current().unwrap(), (3, 0b0011));
        s.advance(4);
        s.advance(5); // reaches reconv → pop to else side
        assert_eq!(s.current().unwrap(), (1, 0b1100));
        s.advance(2);
        s.advance(5); // pop to reconvergence entry
        assert_eq!(s.current().unwrap(), (5, 0b1111));
        s.advance(6);
        assert!(s.is_done());
    }

    #[test]
    fn uniform_branches_do_not_push() {
        let mut s = SimtStack::new(0xff, 10);
        s.branch(0xff, 4, 1, 6); // all taken
        assert_eq!(s.depth(), 1);
        assert_eq!(s.current().unwrap(), (4, 0xff));
        s.advance(5);
        s.advance(6);
        s.branch(0, 2, 7, 9); // none taken
        assert_eq!(s.current().unwrap(), (7, 0xff));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn loop_with_divergent_trip_counts() {
        // 0: body ; 1: branch(taken → 0 = continue, reconv 2) ; 2: tail
        let mut s = SimtStack::new(0b111, 3);
        let trips = [1u32, 3, 2]; // per-lane loop iterations
        let mut executed_body = [0u32; 3];
        let mut guard = 0;
        while !s.is_done() {
            guard += 1;
            assert!(guard < 100, "loop did not terminate");
            let (pc, mask) = s.current().unwrap();
            match pc {
                0 => {
                    for (lane, n) in executed_body.iter_mut().enumerate() {
                        if mask & (1 << lane) != 0 {
                            *n += 1;
                        }
                    }
                    s.advance(1);
                }
                1 => {
                    // Lane continues while it has trips left.
                    let mut taken = 0u32;
                    for lane in 0..3 {
                        if mask & (1 << lane) != 0 && executed_body[lane] < trips[lane] {
                            taken |= 1 << lane;
                        }
                    }
                    s.branch(taken, 0, 2, 2);
                }
                2 => {
                    // Tail executes once with the full mask.
                    assert_eq!(mask, 0b111);
                    s.advance(3);
                }
                other => panic!("unexpected pc {other}"),
            }
        }
        assert_eq!(executed_body, trips);
    }

    #[test]
    fn loop_iteration_does_not_grow_the_stack() {
        let mut s = SimtStack::new(0b11, 3);
        // Lane 0 exits after 1 trip, lane 1 loops 50 times.
        let mut counts = [0u32; 2];
        let trips = [1u32, 50];
        let mut max_depth = 0;
        while !s.is_done() {
            let (pc, mask) = s.current().unwrap();
            max_depth = max_depth.max(s.depth());
            match pc {
                0 => {
                    for (lane, n) in counts.iter_mut().enumerate() {
                        if mask & (1 << lane) != 0 {
                            *n += 1;
                        }
                    }
                    s.advance(1);
                }
                1 => {
                    let mut taken = 0;
                    for lane in 0..2 {
                        if mask & (1 << lane) != 0 && counts[lane] < trips[lane] {
                            taken |= 1 << lane;
                        }
                    }
                    s.branch(taken, 0, 2, 2);
                }
                _ => s.advance(3),
            }
        }
        assert_eq!(counts, trips);
        assert!(max_depth <= 2, "stack grew with iterations: {max_depth}");
    }

    #[test]
    fn nested_divergence() {
        // 0: br A (t→4, r 8); 1: br B (t→3, r 4); 2: ...; layout:
        //  0: branch outer (taken→4, reconv 8)
        //  1: branch inner (taken→3, reconv 4)   [else path of outer]
        //  2: inner-else ; 3: inner-then ; 4..7 outer-then/join etc; 8 end-join
        let mut s = SimtStack::new(0b1111, 9);
        s.branch(0b0011, 4, 1, 8); // outer: lanes 0,1 → 4; lanes 2,3 → 1
        assert_eq!(s.current().unwrap(), (4, 0b0011));
        // Taken side walks 4..8.
        for pc in 5..=8 {
            s.advance(pc);
        }
        // Now the else side at pc 1 runs the inner branch.
        assert_eq!(s.current().unwrap(), (1, 0b1100));
        s.branch(0b0100, 3, 2, 4); // lane 2 → 3; lane 3 → 2
        assert_eq!(s.current().unwrap(), (3, 0b0100));
        s.advance(4); // inner-taken reaches inner reconv
        assert_eq!(s.current().unwrap(), (2, 0b1000));
        s.advance(3);
        s.advance(4); // inner reconverged
        assert_eq!(s.current().unwrap(), (4, 0b1100));
        for pc in 5..=8 {
            s.advance(pc);
        }
        // Everything reconverges at 8 with the full mask.
        assert_eq!(s.current().unwrap(), (8, 0b1111));
        s.advance(9);
        assert!(s.is_done());
    }

    #[test]
    fn every_lane_executes_its_path_exactly_once() {
        // Count per-lane executions through an if/else and assert each
        // lane saw exactly one path plus the join.
        let mut s = SimtStack::new(0b1111, 4);
        // 0: branch (t→2, reconv 3); 1: else; 2: then; 3: join
        let mut then_hits = 0u32;
        let mut else_hits = 0u32;
        let mut join = 0u32;
        s.branch(0b0101, 2, 1, 3);
        while !s.is_done() {
            let (pc, mask) = s.current().unwrap();
            match pc {
                1 => {
                    else_hits |= mask;
                    s.advance(3);
                }
                2 => {
                    then_hits |= mask;
                    s.advance(3);
                }
                3 => {
                    join |= mask;
                    s.advance(4);
                }
                other => panic!("unexpected pc {other}"),
            }
        }
        assert_eq!(then_hits, 0b0101);
        assert_eq!(else_hits, 0b1010);
        assert_eq!(join, 0b1111);
        assert_eq!(then_hits & else_hits, 0);
    }

    #[test]
    #[should_panic(expected = "at least one active lane")]
    fn empty_mask_rejected() {
        let _ = SimtStack::new(0, 4);
    }
}
