//! Deterministic intra-run parallel execution engine.
//!
//! Shards the per-cycle `for core in cores` loop across a worker pool
//! while producing results **bit-identical** to the serial engine. The
//! protocol has three pieces:
//!
//! 1. **Ticket claiming.** One `AtomicU64` packs `(generation << 32) |
//!    next_core`. The main thread publishes a cycle's work by writing
//!    the [`CycleWork`] cell and then Release-storing a fresh ticket
//!    with the generation bumped and the index reset to zero. Workers
//!    (and the main thread, which participates as a peer) claim cores
//!    in ascending index order with a CAS; the Acquire load feeding a
//!    successful CAS synchronizes with the publication, so claimed work
//!    is always the current cycle's. The generation tag makes stale
//!    CASes from the previous cycle fail (no ABA).
//!
//! 2. **Ordered memory gate.** Each core ticks against a [`GatedMem`]
//!    instead of the shared [`MemorySystem`]. Core `i`'s first memory
//!    access blocks until every core `j < i` has finished its entire
//!    tick (per-core `done` flags, Release-stored / Acquire-loaded).
//!    The shared memory system therefore observes *exactly* the serial
//!    access sequence — all of core 0's requests, then core 1's, ... —
//!    and at most one thread touches it at a time. Cores that issue no
//!    memory request this cycle never wait at all, which is where the
//!    parallelism comes from: translation, scheduling, compaction, and
//!    ALU bookkeeping overlap freely. Deadlock-free because waiting is
//!    strictly index-ordered: core 0 never waits, and the claimer of
//!    core `i` waits only on lower indices, all claimed before `i`.
//!
//! 3. **Ordered result merge.** Everything a tick emits ends up in
//!    per-core staging (trace events in per-core [`Tracer`]s, the
//!    per-tenant issue mask in a per-core slot). After the cycle
//!    barrier the main thread folds the staging in core-index order,
//!    reproducing the serial emission order byte for byte. All
//!    cross-core phases — storms, shootdowns, fault service, watchdog,
//!    idle-skip targets, interval samples, final collection — run on
//!    the main thread between barriers, untouched.
//!
//! Per-core state is only ever accessed by the thread that claimed the
//! core (raw-pointer indexing into the cores slice with disjoint
//! indices), kernels are shared as `&dyn Kernel` (hence `Kernel:
//! Sync`), the address spaces are read-only during ticks, and the
//! per-thread iteration counters are disjoint per core because a block
//! is dispatched to exactly one core and never migrates (tenants'
//! counter ranges are disjoint by construction on top of that).

use crate::core::{RunCtx, ShaderCore};
use crate::program::Kernel;
use gmmu_mem::{AccessKind, MemPort, MemResult, MemorySystem};
use gmmu_sim::trace::Tracer;
use gmmu_sim::Cycle;
use gmmu_vm::AddressSpace;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Brief busy-wait, then yield: cycles are short, so waits usually
/// resolve within a few spins, but on an oversubscribed (or single-CPU)
/// host the yield lets the thread that owns the awaited core run.
#[inline]
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// One cycle's shared inputs, republished by the main thread before
/// each generation bump. Raw pointers because the underlying borrows
/// (`&mut self.cores`, `&mut self.mem`, the per-cycle space refs, ...)
/// only live for the `run_cycle` call; the protocol guarantees workers
/// dereference them only inside that window.
struct CycleWork<'k> {
    cores: *mut ShaderCore,
    mem: *mut MemorySystem,
    /// `&[&AddressSpace]` with the reference layer erased (reference
    /// and pointer layouts are identical); rebuilt in `tick_core`.
    spaces: *const *const AddressSpace,
    kernels: *const &'k dyn Kernel,
    n_tenants: usize,
    iters: *mut u32,
    iters_len: usize,
    iters_base: *const usize,
    tracers: *mut Tracer,
    now: Cycle,
}

impl CycleWork<'_> {
    fn empty() -> Self {
        Self {
            cores: std::ptr::null_mut(),
            mem: std::ptr::null_mut(),
            spaces: std::ptr::null(),
            kernels: std::ptr::null(),
            n_tenants: 0,
            iters: std::ptr::null_mut(),
            iters_len: 0,
            iters_base: std::ptr::null(),
            tracers: std::ptr::null_mut(),
            now: 0,
        }
    }
}

/// Shared state of one run's worker pool. Created on the main thread,
/// borrowed by scoped workers, dropped when the run's scope ends.
pub(crate) struct ParallelPool<'k> {
    /// `(generation << 32) | next_unclaimed_core`. The initial index is
    /// `n_cores`, i.e. "nothing to claim".
    ticket: AtomicU64,
    /// Per-core completion flags for the current generation; also the
    /// ordering gate [`GatedMem`] waits on.
    done: Vec<AtomicBool>,
    /// Per-core "ASIDs that issued this tick" bitmasks (bit `t` = tenant
    /// `t` issued; single-tenant runs use bit 0).
    issued: Vec<AtomicU64>,
    /// Tells workers the run is over.
    quit: AtomicBool,
    work: UnsafeCell<CycleWork<'k>>,
    n_cores: usize,
}

// SAFETY: the `UnsafeCell<CycleWork>` is written by the main thread
// only while no core of the current generation is claimable (ticket
// index ≥ n_cores and all previous claims finished), and read by
// workers only after an Acquire load of a ticket value that the main
// thread Release-stored after the write. All other fields are atomics.
unsafe impl Sync for ParallelPool<'_> {}

impl<'k> ParallelPool<'k> {
    pub(crate) fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0 && n_cores < u32::MAX as usize);
        Self {
            ticket: AtomicU64::new(n_cores as u64),
            done: (0..n_cores).map(|_| AtomicBool::new(false)).collect(),
            issued: (0..n_cores).map(|_| AtomicU64::new(0)).collect(),
            quit: AtomicBool::new(false),
            work: UnsafeCell::new(CycleWork::empty()),
            n_cores,
        }
    }

    /// Releases the workers; call once after the last `run_cycle`.
    pub(crate) fn shutdown(&self) {
        self.quit.store(true, Ordering::Release);
    }

    /// Executes one cycle's core ticks across the pool (the calling
    /// thread participates). Returns the OR of every core's per-tenant
    /// issue mask. On return every tick has completed, `tracers[i]`
    /// holds core `i`'s spans for this cycle, and the borrows passed in
    /// are quiescent again.
    #[allow(clippy::too_many_arguments)] // mirrors ShaderCore::tick_tenants + the cores slice
    pub(crate) fn run_cycle(
        &self,
        cores: &mut [ShaderCore],
        mem: &mut MemorySystem,
        spaces: &[&AddressSpace],
        kernels: &[&'k dyn Kernel],
        iters: &mut [u32],
        iters_base: &[usize],
        tracers: &mut [Tracer],
        now: Cycle,
    ) -> u64 {
        debug_assert_eq!(cores.len(), self.n_cores);
        debug_assert_eq!(tracers.len(), self.n_cores);
        debug_assert_eq!(spaces.len(), kernels.len());
        debug_assert_eq!(spaces.len(), iters_base.len());
        for d in &self.done {
            d.store(false, Ordering::Relaxed);
        }
        // SAFETY: no claimable work exists right now (see the Sync
        // impl's invariant), so no worker reads the cell concurrently.
        unsafe {
            *self.work.get() = CycleWork {
                cores: cores.as_mut_ptr(),
                mem,
                spaces: spaces.as_ptr().cast::<*const AddressSpace>(),
                kernels: kernels.as_ptr(),
                n_tenants: kernels.len(),
                iters: iters.as_mut_ptr(),
                iters_len: iters.len(),
                iters_base: iters_base.as_ptr(),
                tracers: tracers.as_mut_ptr(),
                now,
            };
        }
        let generation = (self.ticket.load(Ordering::Relaxed) >> 32) + 1;
        self.ticket.store(generation << 32, Ordering::Release);
        self.claim_loop();
        // Barrier: the claim loop returning only means every core was
        // *claimed*; wait until every tick has finished.
        for d in &self.done {
            let mut spins = 0u32;
            while !d.load(Ordering::Acquire) {
                backoff(&mut spins);
            }
        }
        self.issued
            .iter()
            .fold(0u64, |m, i| m | i.load(Ordering::Relaxed))
    }

    /// Claims and ticks cores until the current generation is
    /// exhausted.
    fn claim_loop(&self) {
        loop {
            let t = self.ticket.load(Ordering::Acquire);
            let idx = (t & 0xffff_ffff) as usize;
            if idx >= self.n_cores {
                return;
            }
            if self
                .ticket
                .compare_exchange_weak(t, t + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: the CAS succeeded on a ticket the main thread
                // published after writing `work`, and index `idx` is
                // claimed exactly once per generation.
                unsafe { self.tick_core(idx) };
            }
        }
    }

    /// Ticks core `idx` of the current generation.
    ///
    /// # Safety
    ///
    /// Caller must hold a claim on `idx` obtained from the ticket CAS,
    /// which guarantees `work` is current and no other thread touches
    /// core `idx`, `tracers[idx]`, or this core's iteration counters.
    unsafe fn tick_core(&self, idx: usize) {
        let w = &*self.work.get();
        debug_assert!(!w.kernels.is_null(), "ticket claimed before work published");
        let core = &mut *w.cores.add(idx);
        let tracer = &mut *w.tracers.add(idx);
        // Cores write disjoint counter slots (a block lives on exactly
        // one core), so handing each claim a full view of the slice is
        // race-free.
        let iters = std::slice::from_raw_parts_mut(w.iters, w.iters_len);
        let spaces: &[&AddressSpace] =
            std::slice::from_raw_parts(w.spaces.cast::<&AddressSpace>(), w.n_tenants);
        let kernels: &[&dyn Kernel] = std::slice::from_raw_parts(w.kernels, w.n_tenants);
        let iters_base = std::slice::from_raw_parts(w.iters_base, w.n_tenants);
        let mut ctx = RunCtx {
            spaces,
            kernels,
            iters,
            iters_base,
        };
        let mut gate = GatedMem {
            mem: w.mem,
            done: &self.done,
            core_index: idx,
            cleared: idx == 0,
        };
        let issued = core.tick_tenants(w.now, &mut gate, &mut ctx, tracer);
        self.issued[idx].store(issued, Ordering::Relaxed);
        self.done[idx].store(true, Ordering::Release);
    }
}

/// Worker body: claim-and-tick until the pool shuts down.
pub(crate) fn worker_loop(pool: &ParallelPool<'_>) {
    let mut spins = 0u32;
    loop {
        if pool.quit.load(Ordering::Acquire) {
            return;
        }
        let t = pool.ticket.load(Ordering::Acquire);
        if ((t & 0xffff_ffff) as usize) < pool.n_cores {
            pool.claim_loop();
            spins = 0;
        } else {
            backoff(&mut spins);
        }
    }
}

/// The [`MemPort`] the parallel engine hands each core: delegates to
/// the shared memory system once every lower-indexed core has finished
/// its tick. This serializes cross-core memory traffic into exact
/// core-index order — the serial engine's order — and doubles as the
/// mutual-exclusion proof: while core `i` accesses memory, cores `< i`
/// are done (no further accesses) and cores `> i` are parked in their
/// own gate.
struct GatedMem<'p> {
    mem: *mut MemorySystem,
    done: &'p [AtomicBool],
    core_index: usize,
    /// Set once the gate has been passed; `done` flags are monotone
    /// within a generation, so later accesses skip the scan.
    cleared: bool,
}

impl MemPort for GatedMem<'_> {
    fn access(&mut self, now: Cycle, line: u64, kind: AccessKind) -> MemResult {
        if !self.cleared {
            for d in &self.done[..self.core_index] {
                let mut spins = 0u32;
                while !d.load(Ordering::Acquire) {
                    backoff(&mut spins);
                }
            }
            self.cleared = true;
        }
        // SAFETY: exclusive by the gate protocol (see type docs); the
        // Acquire loads above synchronize with lower cores' writes.
        unsafe { MemPort::access(&mut *self.mem, now, line, kind) }
    }
}
