#![warn(missing_docs)]

//! Cycle-level SIMT GPU timing model.
//!
//! The evaluation substrate of the reproduction: a from-scratch model of
//! the paper's GPGPU-Sim configuration (Section 5.2) — 30 SIMT cores,
//! 32-thread warps, 48 warps per core, per-core 32 KB L1 data caches, a
//! shared sliced L2 over 8 memory channels — with the paper's per-core
//! MMU (TLB + page-table walker from [`gmmu_core`]) dropped in next to
//! each L1.
//!
//! * [`program`] — the kernel IR: straight-line ops, memory sites, and
//!   structured branches executed by all threads in SIMT fashion, plus
//!   the [`program::Kernel`] trait workloads implement (addresses and
//!   branch outcomes as *pure functions* of thread/site/iteration, so
//!   dynamic warp formation can regroup threads freely).
//! * [`stack`] — per-warp SIMT reconvergence stacks (the baseline
//!   divergence mechanism).
//! * [`coalesce`] — the memory unit's address generator/coalescer,
//!   producing unique 128-byte lines *and unique virtual pages* per warp
//!   memory instruction (the pre-TLB coalescing of Figure 5).
//! * [`core`] — the shader core pipeline: warp scheduling (round robin
//!   with optional CCWS/TA-CCWS/TCWS throttling), TLB-parallel L1
//!   access, replay on TLB miss, per-warp in-order issue.
//! * [`tbc`] — thread block compaction with block-wide reconvergence
//!   stacks and lane-preserving dynamic warp formation, plus the
//!   TLB-aware variant driven by the Common Page Matrix.
//! * [`gpu`] — the whole GPU: block dispatch, the global cycle loop,
//!   aggregate statistics ([`gpu::RunStats`]).
//! * `parallel` (internal) — the deterministic intra-run parallel
//!   engine: cores tick concurrently within a cycle behind lock-step
//!   barriers with an ordered memory gate, bit-identical to serial
//!   (select with [`config::EngineKind`] and `GpuConfig::run_threads`).
//! * [`stall`] — idle-cycle attribution by dominant stall cause.
//! * [`observe`] — per-run observation: span tracing and interval
//!   time-series, both strictly zero-cost when off.

pub mod coalesce;
pub mod config;
pub mod core;
pub mod gpu;
pub mod observe;
mod parallel;
pub mod program;
pub mod stack;
pub mod stall;
pub mod tbc;

pub use config::{CoreTimings, EngineKind, FaultConfig, GpuConfig};
pub use gpu::{Gpu, RunStats, TenantJob, TenantPolicy, TenantStats};
pub use observe::{IntervalRecorder, IntervalSample, Observer};
pub use program::{Kernel, MemKind, Op, Program};
pub use stack::SimtStack;
pub use stall::{StallBreakdown, StallCause};
