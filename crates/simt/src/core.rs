//! The shader core pipeline.
//!
//! One [`ShaderCore`] models a SIMT core of the paper's GPU (Figure 5):
//! warps issue in-order, one warp instruction per cycle, selected by a
//! loose round-robin scheduler optionally filtered by a CCWS-family
//! locality policy. Memory instructions flow through the address
//! generator/coalescer, present their unique pages to the per-core MMU
//! *in parallel* with L1 access, and replay after TLB misses resolve.
//! With thread block compaction enabled, scheduling units are dynamic
//! warps managed by [`crate::tbc`].

use crate::coalesce::{coalesce_granule, CoalesceBuf};
use crate::config::{CoreTimings, FaultConfig, GpuConfig, TbcConfig};
use crate::program::{Kernel, MemKind, Op, ThreadId};
use crate::stack::SimtStack;
use crate::stall::{StallBreakdown, StallCause};
use crate::tbc::TbcState;
use gmmu_core::ccws::LocalityPolicy;
use gmmu_core::cpm::CommonPageMatrix;
use gmmu_core::mmu::{Mmu, MmuEvent, TranslateBuf, TranslateOutcome};
use gmmu_mem::mshr::{MshrFile, MshrOutcome};
use gmmu_mem::{AccessKind, Cache, CacheAccess, MemPort};
use gmmu_sim::metrics::{Metrics, MetricsRegistry};
use gmmu_sim::stats::{Counter, Histogram, Summary};
use gmmu_sim::trace::{TraceEvent, Tracer, TID_DISPATCH};
use gmmu_sim::Cycle;
use gmmu_vm::{AddressSpace, PageSize, Ppn, VAddr, Vpn};
use std::cell::Cell;

/// Statistics gathered by one shader core.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Warp instructions committed (TBC: dynamic-warp instructions).
    pub instructions: Counter,
    /// Memory instructions committed.
    pub mem_instructions: Counter,
    /// Cycles with live warps but no issue (stalls — Figure 10's idle
    /// cycles).
    pub idle_cycles: Counter,
    /// The same idle cycles, attributed to their dominant stall cause;
    /// sums exactly to `idle_cycles`.
    pub stall_breakdown: StallBreakdown,
    /// Cycles with at least one live warp.
    pub live_cycles: Counter,
    /// Page divergence per memory instruction (Figure 3 right).
    pub page_divergence: Histogram,
    /// L1 miss service latency (Figure 4's comparison point).
    pub l1_miss_latency: Summary,
    /// Memory instructions re-issued after TLB-miss wakes or rejects.
    pub replays: Counter,
    /// Dynamic warps formed by compaction (TBC only).
    pub dwarps_formed: Counter,
    /// Thread blocks completed.
    pub blocks_done: Counter,
    /// Per-ASID slice of `instructions` (index = ASID, grown on
    /// demand). Feeds the per-tenant watchdog and slowdown accounting.
    /// TBC runs are single-tenant and leave these empty.
    pub tenant_instructions: Vec<Counter>,
    /// Per-ASID slice of `blocks_done` (index = ASID).
    pub tenant_blocks_done: Vec<Counter>,
}

impl CoreStats {
    fn tenant_counter(v: &mut Vec<Counter>, asid: u16) -> &mut Counter {
        let i = asid as usize;
        if v.len() <= i {
            v.resize_with(i + 1, Counter::default);
        }
        &mut v[i]
    }
}

/// A memory instruction in flight for one warp (generated once; replays
/// reuse the stored addresses so TLB-miss retries are idempotent).
#[derive(Debug, Clone, Default)]
pub(crate) struct Pending {
    pub kind: MemKind,
    /// `(address, home static warp)` per active lane; lanes whose pages
    /// were serviced by cache overlap are removed.
    pub accesses: Vec<(VAddr, u16)>,
    /// Whether this instruction has taken a TLB miss (TA-CCWS weighting).
    pub tlb_missed: bool,
    /// Completion of overlap-issued L1 accesses.
    pub overlap_done_at: Cycle,
    /// Page divergence was recorded (first issue only).
    pub diverge_recorded: bool,
    /// Whether any access of this instruction missed L2 and went to DRAM
    /// (stall attribution).
    pub touched_dram: bool,
    /// Cycle the owning unit last went to sleep on TLB misses (the
    /// `warp_sleep` trace span's start).
    pub slept_at: Cycle,
}

/// Why a scheduling unit's issue timer is armed. Written wherever
/// `ready_at` is set; read by stall attribution to name the blocker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum WaitKind {
    /// ALU/branch pipeline latency (also the fresh-unit default).
    #[default]
    Pipeline,
    /// Data return from the memory hierarchy.
    MemData {
        /// Whether the slowest access went to DRAM.
        dram: bool,
    },
    /// Backing off after an MMU reject.
    Reject,
    /// Woken from a TLB sleep; re-presents remaining pages next cycle.
    Replay,
}

impl WaitKind {
    pub(crate) fn cause(self) -> StallCause {
        match self {
            WaitKind::Pipeline => StallCause::Pipeline,
            WaitKind::MemData { dram: true } => StallCause::Dram,
            WaitKind::MemData { dram: false } => StallCause::L1Mshr,
            WaitKind::Reject => StallCause::MmuReject,
            WaitKind::Replay => StallCause::ReplayWake,
        }
    }
}

/// Result of trying to issue a pending memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemIssue {
    /// The instruction completed; the warp may issue again at the given
    /// cycle.
    Done(Cycle),
    /// TLB misses are in flight; sleep until that many wakes arrive.
    WaitTlb(usize),
    /// The MMU rejected the access; retry at the given cycle.
    Retry(Cycle),
}

/// A baseline (non-TBC) warp context.
#[derive(Debug, Clone)]
pub(crate) struct Warp {
    /// The tenant this warp's block belongs to (selects the address
    /// space, kernel, and iteration-slot base in the [`RunCtx`]).
    pub asid: u16,
    pub first_tid: ThreadId,
    pub stack: Option<SimtStack>,
    pub ready_at: Cycle,
    pub pending: Option<Pending>,
    pub waiting_pages: usize,
    /// Pages whose walks ended in a page fault; the warp is parked until
    /// the modeled CPU fault handler maps them all.
    pub faulted_pages: usize,
    pub wait: WaitKind,
}

impl Warp {
    fn empty() -> Self {
        Self {
            asid: 0,
            first_tid: 0,
            stack: None,
            ready_at: 0,
            pending: None,
            waiting_pages: 0,
            faulted_pages: 0,
            wait: WaitKind::default(),
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.stack.as_ref().is_none_or(|s| s.is_done())
    }

    fn schedulable(&self, now: Cycle) -> bool {
        !self.is_done()
            && self.waiting_pages == 0
            && self.faulted_pages == 0
            && self.ready_at <= now
    }
}

impl Default for Warp {
    fn default() -> Self {
        Warp::empty()
    }
}

/// Execution mode: per-warp stacks or thread block compaction.
//
// `TbcState` dwarfs the baseline variant, but there is exactly one
// `ExecMode` per shader core and it is matched on every cycle — boxing
// the TBC side would trade a few hundred idle bytes per core for a
// pointer chase on the hot tick path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum ExecMode {
    Baseline { warps: Vec<Warp> },
    Tbc(TbcState),
}

/// Everything the executors need to run warps from several tenants in
/// one tick: the address space and kernel of each ASID (index = ASID)
/// plus each tenant's base offset into the shared branch/mem
/// iteration-counter array. Single-tenant callers wrap their one space
/// and kernel with base 0 ([`ShaderCore::tick`]).
pub struct RunCtx<'a, 'b> {
    /// Address space per ASID.
    pub spaces: &'a [&'a AddressSpace],
    /// Kernel per ASID.
    pub kernels: &'a [&'a dyn Kernel],
    /// Per-thread, per-site iteration counters for all tenants.
    pub iters: &'b mut [u32],
    /// Each tenant's first slot in `iters`.
    pub iters_base: &'a [usize],
}

/// The pieces of a core that the memory path needs; split out so the
/// baseline and TBC executors can borrow them while iterating their own
/// unit containers.
#[derive(Debug)]
pub(crate) struct MemPath {
    pub granule: PageSize,
    pub mmu: Mmu,
    pub l1: Cache,
    pub l1_mshrs: MshrFile,
    pub policy: LocalityPolicy,
    pub cpm: Option<CommonPageMatrix>,
    pub stats: CoreStats,
    pub timings: CoreTimings,
    pub cbuf: CoalesceBuf,
    pub tbuf: TranslateBuf,
    /// Scratch for [`MemPath::service_page`]'s line dedup; kept across
    /// calls so the steady state allocates nothing.
    seen_lines: Vec<u64>,
    /// Scratch for [`MemPath::issue_mem`]'s hit-page retain filter.
    hit_pages: Vec<Vpn>,
    /// Recycled [`Pending::accesses`] allocations: every committed
    /// memory instruction parks its address list here for the next one,
    /// so the issue path stops allocating per instruction.
    access_pool: Vec<Vec<(VAddr, u16)>>,
}

impl MemPath {
    /// Takes a recycled access-list allocation (or a fresh one).
    pub(crate) fn grab_accesses(&mut self) -> Vec<(VAddr, u16)> {
        self.access_pool.pop().unwrap_or_default()
    }

    /// Parks a committed instruction's access list for reuse.
    pub(crate) fn stash_accesses(&mut self, mut v: Vec<(VAddr, u16)>) {
        v.clear();
        self.access_pool.push(v);
    }

    /// Accesses the L1 (and below) for one physical line; returns the
    /// cycle the data is usable and whether the request went to DRAM.
    fn access_line(
        &mut self,
        at: Cycle,
        phys_line: u64,
        warp: u16,
        tlb_missed: bool,
        mem: &mut dyn MemPort,
    ) -> (Cycle, bool) {
        // A line already being fetched merges into the outstanding miss.
        if let Some(done) = self.l1_mshrs.lookup(phys_line) {
            return (done.max(at + self.timings.l1_hit_latency), false);
        }
        match self.l1.access(phys_line, warp as u32, at) {
            CacheAccess::Hit => (at + self.timings.l1_hit_latency, false),
            CacheAccess::Miss { victim } => {
                if let Some(v) = victim {
                    self.policy.on_l1_evict(v.meta as u16, v.line);
                }
                self.policy.on_l1_miss(warp, phys_line, tlb_missed);
                let res = mem.access(at, phys_line, AccessKind::Load);
                let done = res.complete;
                self.stats.l1_miss_latency.record(done - at);
                match self.l1_mshrs.allocate(phys_line) {
                    MshrOutcome::Allocated => self.l1_mshrs.set_completion(phys_line, done),
                    // MSHR pressure beyond capacity still costs the
                    // memory-system bandwidth charged above.
                    MshrOutcome::Merged(_) | MshrOutcome::Full => {}
                }
                (done, !res.l2_hit)
            }
        }
    }

    /// Delivers a completed walk's translation straight to a waiting
    /// instruction: the accesses on `vpn` run against the memory
    /// hierarchy now and are removed from the pending set. This is the
    /// hardware fill-bypass path — the translation is consumed even if
    /// the TLB entry is evicted before the warp is scheduled again.
    pub(crate) fn service_page(
        &mut self,
        now: Cycle,
        pending: &mut Pending,
        vpn: gmmu_vm::Vpn,
        ppn: Ppn,
        mem: &mut dyn MemPort,
    ) -> Cycle {
        let mut done = now;
        let granule = self.granule;
        let mut dram_seen = false;
        let mut seen_lines = std::mem::take(&mut self.seen_lines);
        seen_lines.clear();
        for &(va, home) in pending
            .accesses
            .iter()
            .filter(|(va, _)| granule_vpn(*va, granule) == vpn)
        {
            let vline = va.line(gmmu_mem::LINE_SHIFT);
            if seen_lines.contains(&vline) {
                continue;
            }
            seen_lines.push(vline);
            let pl = phys_line(ppn, vline, granule);
            match pending.kind {
                MemKind::Load => {
                    let (c, dram) = self.access_line(now, pl, home, pending.tlb_missed, mem);
                    dram_seen |= dram;
                    done = done.max(c);
                }
                MemKind::Store => {
                    let res = mem.access(now, pl, gmmu_mem::AccessKind::Store);
                    dram_seen |= !res.l2_hit;
                    let backpressure = res.complete.saturating_sub(self.timings.store_window);
                    done = done.max(now + self.timings.store_issue).max(backpressure);
                }
            }
        }
        self.seen_lines = seen_lines;
        pending.touched_dram |= dram_seen;
        pending
            .accesses
            .retain(|(va, _)| granule_vpn(*va, granule) != vpn);
        pending.overlap_done_at = pending.overlap_done_at.max(done);
        done
    }

    /// Issues (or replays) a pending memory instruction for scheduling
    /// unit `requester` on behalf of tenant `asid`. The unit's home
    /// pages carry their own static warp ids (TBC).
    pub(crate) fn issue_mem(
        &mut self,
        now: Cycle,
        requester: u16,
        asid: u16,
        pending: &mut Pending,
        mem: &mut dyn MemPort,
        space: &AddressSpace,
    ) -> MemIssue {
        debug_assert!(!pending.accesses.is_empty());
        let mut cbuf = std::mem::take(&mut self.cbuf);
        coalesce_granule(pending.accesses.iter().copied(), self.granule, &mut cbuf);
        if !pending.diverge_recorded {
            pending.diverge_recorded = true;
            self.stats
                .page_divergence
                .record(cbuf.page_divergence() as u64);
        }
        let mut tbuf = std::mem::take(&mut self.tbuf);
        let outcome =
            self.mmu
                .translate_tenant(now, requester, asid, &cbuf.pages, space, &mut tbuf);
        let result = match outcome {
            TranslateOutcome::Reject { retry_at } => MemIssue::Retry(retry_at.max(now + 1)),
            TranslateOutcome::AllHit { ready_at } => {
                self.note_hits(&tbuf, &cbuf);
                let done = self.run_accesses(ready_at, &cbuf, &tbuf, pending, mem, None);
                MemIssue::Done(done.max(pending.overlap_done_at))
            }
            TranslateOutcome::Miss { ready_at, misses } => {
                let replay = pending.tlb_missed;
                pending.tlb_missed = true;
                for &vpn in &tbuf.misses {
                    let home = cbuf
                        .pages
                        .iter()
                        .find(|p| p.vpn == vpn)
                        .map_or(requester, |p| p.warp);
                    self.policy.on_tlb_miss(home, vpn);
                }
                self.note_hits(&tbuf, &cbuf);
                // Hit pages proceed to the cache either when the TLB
                // supports cache overlap (Section 6.3), or on a replay —
                // a replay's hits were delivered by the warp's own walks
                // (MSHR fills), so they complete even if a page has
                // since been evicted; this keeps wide-divergence warps
                // making monotonic progress.
                if (self.mmu.cache_overlap() || replay) && !tbuf.hits.is_empty() {
                    let done =
                        self.run_accesses(ready_at, &cbuf, &tbuf, pending, mem, Some(&tbuf.hits));
                    pending.overlap_done_at = pending.overlap_done_at.max(done);
                    let mut hit_pages = std::mem::take(&mut self.hit_pages);
                    hit_pages.clear();
                    hit_pages.extend(tbuf.hits.iter().map(|t| t.vpn));
                    let granule = self.granule;
                    pending
                        .accesses
                        .retain(|(va, _)| !hit_pages.contains(&granule_vpn(*va, granule)));
                    self.hit_pages = hit_pages;
                }
                MemIssue::WaitTlb(misses)
            }
        };
        self.cbuf = cbuf;
        self.tbuf = tbuf;
        result
    }

    /// Forwards TLB-hit information to the policy and the CPM.
    fn note_hits(&mut self, tbuf: &TranslateBuf, cbuf: &CoalesceBuf) {
        for (t, info) in tbuf.hits.iter().zip(&tbuf.hit_info) {
            let home = cbuf
                .pages
                .iter()
                .find(|p| p.vpn == t.vpn)
                .map_or(0, |p| p.warp);
            self.policy.on_tlb_hit(home, info.lru_depth);
            if let Some(cpm) = self.cpm.as_mut() {
                if info.hist_len > 0 {
                    cpm.record_hit(home, &info.history[..info.hist_len as usize]);
                }
            }
        }
    }

    /// Runs the L1/store accesses for the lines whose pages are in
    /// `only` (or all lines when `only` is `None`); returns the cycle
    /// the last one completes.
    fn run_accesses(
        &mut self,
        at: Cycle,
        cbuf: &CoalesceBuf,
        tbuf: &TranslateBuf,
        pending: &mut Pending,
        mem: &mut dyn MemPort,
        only: Option<&[gmmu_core::mmu::Translation]>,
    ) -> Cycle {
        let translations = only.unwrap_or(&tbuf.hits);
        let mut done = at;
        let mut dram_seen = false;
        for line in &cbuf.lines {
            let page = &cbuf.pages[line.page_idx as usize];
            let Some(t) = translations.iter().find(|t| t.vpn == page.vpn) else {
                continue; // page missed: handled on replay
            };
            let phys_line = phys_line(t.ppn, line.vline, self.granule);
            match pending.kind {
                MemKind::Load => {
                    let (c, dram) =
                        self.access_line(at, phys_line, page.warp, pending.tlb_missed, mem);
                    dram_seen |= dram;
                    done = done.max(c);
                }
                MemKind::Store => {
                    // Write-through, no-allocate; fire-and-forget until
                    // the write buffer runs too far ahead.
                    let res = mem.access(at, phys_line, AccessKind::Store);
                    dram_seen |= !res.l2_hit;
                    let backpressure = res.complete.saturating_sub(self.timings.store_window);
                    done = done.max(at + self.timings.store_issue).max(backpressure);
                }
            }
        }
        pending.touched_dram |= dram_seen;
        done
    }
}

/// Physical line index of virtual line `vline` inside the translation
/// granule whose first frame is `ppn` (4 KiB pages hold 32 lines of
/// 128 bytes; a 2 MiB granule is physically contiguous, so offsetting
/// from its first frame is exact).
#[inline]
pub(crate) fn phys_line(ppn: Ppn, vline: u64, granule: PageSize) -> u64 {
    let mask = (1u64 << (granule.shift() - gmmu_mem::LINE_SHIFT)) - 1;
    (ppn.raw() << 5) + (vline & mask)
}

/// The granule-base 4 KiB page number containing `va` at `granule`.
#[inline]
pub(crate) fn granule_vpn(va: VAddr, granule: PageSize) -> Vpn {
    let shift = granule.shift();
    Vpn::new((va.raw() >> shift) << (shift - 12))
}

/// A block of threads waiting to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct BlockWork {
    /// The tenant the block belongs to.
    pub asid: u16,
    pub first_tid: ThreadId,
    pub n_threads: u32,
}

/// One SIMT core.
#[derive(Debug)]
pub struct ShaderCore {
    /// Core id (diagnostics).
    pub id: usize,
    warps_per_block: usize,
    pub(crate) path: MemPath,
    pub(crate) exec: ExecMode,
    rr_ptr: usize,
    pub(crate) block_queue: std::collections::VecDeque<BlockWork>,
    /// Baseline mode: which block slots currently hold a live block.
    slot_occupied: Vec<bool>,
    /// Baseline mode: cycle each occupied slot's block was dispatched
    /// (the `block` trace span's start).
    slot_started: Vec<Cycle>,
    /// Baseline mode: the tenant of each occupied slot's block.
    slot_asid: Vec<u16>,
    /// Scratch for MMU event draining.
    events: Vec<MmuEvent>,
    /// Fault-and-recovery model knobs (copied from the GPU config).
    pub(crate) fault: FaultConfig,
    /// Units parked on each faulted page, keyed by the ASID-tagged VPN
    /// ([`gmmu_mem::mshr::tenant_key`]; identity for ASID 0).
    fault_waiters: std::collections::HashMap<u64, Vec<u16>>,
    /// Faulted `(asid, page)` pairs not yet reported to the GPU's fault
    /// handler.
    pub(crate) pending_faults: Vec<(u16, Vpn)>,
    /// Memoized [`ShaderCore::next_event_at`] result (`None` = invalid;
    /// `Some(inner)` = the last computed answer). [`ShaderCore::tick`]
    /// keeps it across *quiet* ticks — cycles that provably changed no
    /// state the computation reads — and drops it otherwise, so the
    /// idle-skip engine stops rescanning every warp of every core per
    /// jump. External timer sources ([`ShaderCore::push_block`],
    /// [`ShaderCore::resolve_fault`], [`ShaderCore::shootdown`]) drop it
    /// too.
    next_event_cache: Cell<Option<Option<Cycle>>>,
    /// Memoized core-local timer scan (the non-MMU half of
    /// [`ShaderCore::next_event_at`]): `None` = invalid, `Some(inner)`
    /// = the last computed answer, where `inner` is `None` for a core
    /// with no work and otherwise the earliest core timer (possibly
    /// `Cycle::MAX` when only the MMU can wake it). Unlike
    /// `next_event_cache` it survives ticks where only the MMU was
    /// busy: in-flight walks advance without touching unit state until
    /// an event drains, and drained events drop this cache. A cached
    /// timer at or before `now` forces a recompute (the unit it named
    /// became schedulable).
    core_timer_cache: Cell<Option<Option<Cycle>>>,
    /// Memoized idle verdict from the last full no-issue warp scan:
    /// `(next_ready, live)` — no baseline warp can become schedulable
    /// before `next_ready` (the earliest armed timer among units that
    /// are neither waiting on pages nor faulted), and `live` is whether
    /// any warp was live at all. While `now < next_ready` and nothing
    /// external intervened (no dispatch, no drained event — both of
    /// which run before the scan and refresh it), the round-robin issue
    /// scan is provably a no-op and the tick skips it. Never set when a
    /// schedulable (even policy-gated) warp exists: gated warps must
    /// re-consult `issue_allowed` every cycle, as `policy.tick` can
    /// open the gate.
    idle_cache: Cell<Option<(Cycle, bool)>>,
    /// Memoized stall classification: `(cause, valid_until)`. On a quiet
    /// tick no unit state changes, so the classification from the last
    /// idle cycle still holds — until `now` reaches `valid_until`, the
    /// earliest `ready_at` that could flip a sleeping unit's cause. Any
    /// tick that mutates unit state drops it (same discipline as
    /// `next_event_cache`), so re-scanning every warp per idle cycle is
    /// replaced by a `Cell` read on the common path.
    stall_cache: Cell<Option<(StallCause, Cycle)>>,
}

impl ShaderCore {
    /// Builds a core from the GPU configuration.
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        let cpm = cfg.tbc.as_ref().and_then(|t: &TbcConfig| {
            t.tlb_aware
                .then(|| CommonPageMatrix::new(cfg.warps_per_core, t.cpm))
        });
        let exec = match &cfg.tbc {
            None => ExecMode::Baseline {
                warps: (0..cfg.warps_per_core).map(|_| Warp::empty()).collect(),
            },
            Some(t) => ExecMode::Tbc(TbcState::new(cfg, *t)),
        };
        let mut mmu = Mmu::new(cfg.mmu);
        mmu.set_injection(cfg.inject.filter(|i| i.enabled()));
        Self {
            id,
            warps_per_block: cfg.warps_per_block,
            path: MemPath {
                granule: cfg.granule,
                mmu,
                l1: Cache::new(cfg.l1),
                l1_mshrs: MshrFile::new(cfg.l1_mshrs),
                policy: LocalityPolicy::new(cfg.policy, cfg.warps_per_core, cfg.policy_config),
                cpm,
                stats: CoreStats::default(),
                timings: cfg.timings,
                cbuf: CoalesceBuf::new(),
                tbuf: TranslateBuf::new(),
                seen_lines: Vec::new(),
                hit_pages: Vec::new(),
                access_pool: Vec::new(),
            },
            exec,
            rr_ptr: 0,
            block_queue: std::collections::VecDeque::new(),
            slot_occupied: vec![false; cfg.warps_per_core / cfg.warps_per_block],
            slot_started: vec![0; cfg.warps_per_core / cfg.warps_per_block],
            slot_asid: vec![0; cfg.warps_per_core / cfg.warps_per_block],
            events: Vec::new(),
            fault: cfg.fault,
            fault_waiters: std::collections::HashMap::new(),
            pending_faults: Vec::new(),
            next_event_cache: Cell::new(None),
            idle_cache: Cell::new(None),
            core_timer_cache: Cell::new(None),
            stall_cache: Cell::new(None),
        }
    }

    /// Queues a thread block for execution on this core.
    pub fn push_block(&mut self, first_tid: ThreadId, n_threads: u32) {
        self.push_block_asid(0, first_tid, n_threads);
    }

    /// Queues tenant `asid`'s thread block for execution on this core.
    pub fn push_block_asid(&mut self, asid: u16, first_tid: ThreadId, n_threads: u32) {
        self.drop_timer_caches();
        self.block_queue.push_back(BlockWork {
            asid,
            first_tid,
            n_threads,
        });
    }

    /// Statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.path.stats
    }

    /// The core's MMU (TLB/walker statistics).
    pub fn mmu(&self) -> &Mmu {
        &self.path.mmu
    }

    /// The core's L1 data cache.
    pub fn l1(&self) -> &Cache {
        &self.path.l1
    }

    /// Arms (or disarms) this core's metric staging buffer. Enabled
    /// cores record lifecycle events into a per-core buffer that the
    /// engine drains in core-index order each cycle — see
    /// [`gmmu_sim::metrics::Metrics`] for why that keeps snapshots
    /// engine-invariant.
    pub fn set_metrics_staging(&mut self, enabled: bool) {
        self.path.mmu.set_metrics(enabled);
    }

    /// Moves this core's buffered metric events into `dst`.
    pub fn drain_metrics(&mut self, dst: &mut Metrics) {
        self.path.mmu.drain_metrics(dst);
    }

    /// Registers this core's instruments (pipeline counters, stall
    /// breakdown, coalescer, L1, policy, and the MMU tree) under
    /// `prefix`.
    pub fn register_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        let s = &self.path.stats;
        reg.counter(format!("{prefix}.instructions"), s.instructions.get());
        reg.counter(
            format!("{prefix}.mem_instructions"),
            s.mem_instructions.get(),
        );
        reg.counter(format!("{prefix}.live_cycles"), s.live_cycles.get());
        reg.counter(format!("{prefix}.idle_cycles"), s.idle_cycles.get());
        reg.counter(format!("{prefix}.replays"), s.replays.get());
        reg.counter(format!("{prefix}.dwarps_formed"), s.dwarps_formed.get());
        reg.counter(format!("{prefix}.blocks_done"), s.blocks_done.get());
        for (cause, cycles) in s.stall_breakdown.iter() {
            let slug = cause.label().replace([' ', '/'], "_");
            reg.counter(format!("{prefix}.stall.{slug}"), cycles);
        }
        reg.dist(
            format!("{prefix}.coalescer.page_divergence"),
            s.page_divergence.summary(),
        );
        reg.gauge(
            format!("{prefix}.l1_miss_latency.mean"),
            s.l1_miss_latency.mean(),
        );
        self.path.l1.register_metrics(&format!("{prefix}.l1"), reg);
        self.path
            .l1_mshrs
            .register_metrics(&format!("{prefix}.l1_mshr"), reg);
        self.path
            .policy
            .register_metrics(&format!("{prefix}.policy"), reg);
        self.path
            .mmu
            .register_metrics(&format!("{prefix}.mmu"), reg);
    }

    /// The locality policy (CCWS-family diagnostics).
    pub fn policy(&mut self) -> &mut LocalityPolicy {
        &mut self.path.policy
    }

    /// Read-only access to the locality policy.
    pub fn policy_ref(&self) -> &LocalityPolicy {
        &self.path.policy
    }

    /// Whether the core still has work (live units or queued blocks).
    pub fn has_work(&self) -> bool {
        if !self.block_queue.is_empty() {
            return true;
        }
        match &self.exec {
            ExecMode::Baseline { warps } => warps.iter().any(|w| !w.is_done()),
            ExecMode::Tbc(t) => t.has_work(),
        }
    }

    /// Marks finished baseline block slots as free and counts them.
    fn reap_blocks(&mut self, now: Cycle, tracer: &mut Tracer) {
        if let ExecMode::Baseline { warps } = &self.exec {
            let wpb = self.warps_per_block;
            let pid = self.id as u32;
            for slot in 0..warps.len() / wpb {
                if self.slot_occupied[slot]
                    && warps[slot * wpb..(slot + 1) * wpb]
                        .iter()
                        .all(|w| w.is_done())
                {
                    self.slot_occupied[slot] = false;
                    self.path.stats.blocks_done.inc();
                    CoreStats::tenant_counter(
                        &mut self.path.stats.tenant_blocks_done,
                        self.slot_asid[slot],
                    )
                    .inc();
                    let started = self.slot_started[slot];
                    tracer.record(|| {
                        TraceEvent::span(
                            "block",
                            "dispatch",
                            pid,
                            TID_DISPATCH + slot as u32,
                            started,
                            now - started,
                        )
                    });
                }
            }
        }
    }

    /// Fills free block slots from the queue; returns whether any block
    /// was dispatched. `kernels` is indexed by each queued block's ASID.
    fn dispatch_blocks(&mut self, kernels: &[&dyn Kernel], now: Cycle) -> bool {
        // Finished slots were reaped at the end of the tick that retired
        // them (nothing changes between ticks), so dispatch only needs
        // to scan for free slots when there is something to place.
        if self.block_queue.is_empty() {
            return false;
        }
        let mut dispatched = false;
        match &mut self.exec {
            ExecMode::Baseline { warps } => {
                let wpb = self.warps_per_block;
                for slot in 0..warps.len() / wpb {
                    let group = slot * wpb..(slot + 1) * wpb;
                    if warps[group.clone()].iter().all(|w| w.is_done()) {
                        let Some(block) = self.block_queue.pop_front() else {
                            continue;
                        };
                        let end_pc = kernels[block.asid as usize].program().end_pc();
                        dispatched = true;
                        self.slot_occupied[slot] = true;
                        self.slot_started[slot] = now;
                        self.slot_asid[slot] = block.asid;
                        for (i, w) in warps[group].iter_mut().enumerate() {
                            let first = block.first_tid + (i as u32) * 32;
                            let in_block = block.n_threads.saturating_sub((i as u32) * 32).min(32);
                            *w = Warp {
                                asid: block.asid,
                                first_tid: first,
                                stack: (in_block > 0).then(|| {
                                    let mask = if in_block == 32 {
                                        u32::MAX
                                    } else {
                                        (1u32 << in_block) - 1
                                    };
                                    SimtStack::new(mask, end_pc)
                                }),
                                ready_at: 0,
                                pending: None,
                                waiting_pages: 0,
                                faulted_pages: 0,
                                wait: WaitKind::default(),
                            };
                        }
                    }
                }
            }
            ExecMode::Tbc(tbc) => {
                // Thread block compaction schedules across a single
                // kernel's blocks; multi-tenant runs use baseline mode.
                debug_assert!(
                    self.block_queue.iter().all(|b| b.asid == 0),
                    "TBC is single-tenant"
                );
                let end_pc = kernels[0].program().end_pc();
                dispatched = tbc.dispatch_blocks(&mut self.block_queue, end_pc, now);
            }
        }
        dispatched
    }

    /// The earliest cycle after `now` (the cycle just ticked) at which
    /// this core could make progress, or `None` when it has no work.
    ///
    /// Sources, mirroring exactly what [`ShaderCore::tick`] reacts to:
    /// walk completions and freed walker lanes (the MMU), sleeping
    /// warps' `ready_at` timers, the policy's next score-decay epoch
    /// (which can release throttled warps), and block dispatch into a
    /// free slot. Warps waiting on pages carry no timer of their own —
    /// the MMU fill that wakes them is already a candidate.
    ///
    /// The answer is memoized: a cached future value is reused as long
    /// as every tick since it was computed was *quiet* (see
    /// [`ShaderCore::tick`]), because a quiet tick arms no timer and
    /// the clamp terms (`now + 1` floors) only ever rise with `now`. A
    /// cached value at or before `now`, or any non-quiet activity,
    /// forces a recompute.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        if let Some(cached) = self.next_event_cache.get() {
            match cached {
                None => return None,
                Some(c) if c > now => return Some(c),
                Some(_) => {}
            }
        }
        let fresh = self.compute_next_event_at(now);
        self.next_event_cache.set(Some(fresh));
        fresh
    }

    /// Drops the memoized next-event value, forcing the next
    /// [`ShaderCore::next_event_at`] call to recompute. The core does
    /// this itself wherever state changes; the public entry point exists
    /// so the hot-path microbenchmark can measure the uncached scan.
    pub fn invalidate_next_event_cache(&self) {
        self.next_event_cache.set(None);
    }

    /// Drops both per-tick memoizations (next-event and stall cause);
    /// called wherever unit state changes outside a quiet tick.
    fn drop_timer_caches(&self) {
        self.next_event_cache.set(None);
        self.idle_cache.set(None);
        self.core_timer_cache.set(None);
        self.stall_cache.set(None);
    }

    /// The scan behind [`ShaderCore::next_event_at`]: the MMU's next
    /// timer is read fresh (walks in flight move it every cycle), the
    /// core-local half comes from `core_timer_cache` when still valid.
    fn compute_next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let core_part = match self.core_timer_cache.get() {
            Some(inner) if inner.is_none_or(|c| c > now) => inner,
            _ => {
                let fresh = self.compute_core_timers(now);
                // TBC timers fold tick-local state the cache discipline
                // does not track; only the baseline scan is memoized.
                if matches!(self.exec, ExecMode::Baseline { .. }) {
                    self.core_timer_cache.set(Some(fresh));
                }
                fresh
            }
        };
        let mut next = core_part?;
        if let Some(c) = self.path.mmu.next_event_at() {
            next = next.min(c.max(now + 1));
        }
        // A live core with no discernible timer must not be skipped
        // past (defensive: guarantees forward progress).
        Some(if next == Cycle::MAX { now + 1 } else { next })
    }

    /// The core-local timer sources: unit `ready_at` timers, the policy
    /// decay epoch that may release a throttled unit, and dispatch into
    /// a free slot. `None` when the core has no work at all. Every
    /// returned cycle exceeds `now` (timers beyond `now`, `now + 1`
    /// floors), which is what lets the memoized value's staleness be
    /// detected by comparison against the current cycle alone.
    fn compute_core_timers(&self, now: Cycle) -> Option<Cycle> {
        if !self.has_work() {
            return None;
        }
        let mut next = Cycle::MAX;
        match &self.exec {
            ExecMode::Baseline { warps } => {
                let mut throttled = false;
                for w in warps {
                    if w.is_done() || w.waiting_pages > 0 || w.faulted_pages > 0 {
                        continue;
                    }
                    if w.ready_at > now {
                        next = next.min(w.ready_at);
                    } else {
                        // Schedulable yet nothing issued: the locality
                        // policy gated it; the next decay epoch may
                        // release it.
                        throttled = true;
                    }
                }
                if throttled {
                    let decay = self.path.policy.next_event_at().unwrap_or(now + 1);
                    next = next.min(decay.max(now + 1));
                }
                if !self.block_queue.is_empty() {
                    let wpb = self.warps_per_block;
                    let free = (0..warps.len() / wpb).any(|slot| {
                        warps[slot * wpb..(slot + 1) * wpb]
                            .iter()
                            .all(|w| w.is_done())
                    });
                    if free {
                        next = next.min(now + 1);
                    }
                }
            }
            ExecMode::Tbc(t) => {
                if let Some(c) = t.next_event_at(now) {
                    next = next.min(c);
                }
                if !self.block_queue.is_empty() && t.has_free_slot() {
                    next = next.min(now + 1);
                }
            }
        }
        Some(next)
    }

    /// Accounts `skipped` elided cycles exactly as per-cycle ticking
    /// would have: every skipped cycle is, by construction of the skip
    /// bound, a live-but-idle cycle (liveness cannot change without an
    /// event, and events bound the skip). `now` is the first skipped
    /// cycle; the stall cause classified there holds for the whole span
    /// — no unit's timer expires inside it, no fill or wake lands, and
    /// a policy gate stays closed until at least the bounding decay
    /// epoch — so charging the span to one cause matches what per-cycle
    /// ticking would have recorded.
    pub fn note_idle_skip(&mut self, now: Cycle, skipped: u64) {
        let live = match &self.exec {
            ExecMode::Baseline { warps } => warps.iter().any(|w| !w.is_done()),
            ExecMode::Tbc(t) => t.has_work(),
        };
        if live {
            let cause = match self.stall_cache.get() {
                Some((cause, valid_until)) if now < valid_until => cause,
                _ => {
                    let fresh = classify_stall(&self.exec, now);
                    self.stall_cache.set(Some(fresh));
                    fresh.0
                }
            };
            self.path.stats.live_cycles.add(skipped);
            self.path.stats.idle_cycles.add(skipped);
            self.path.stats.stall_breakdown.add(cause, skipped);
        }
    }

    /// Squashes in-flight walks and flushes the TLB in response to a
    /// shootdown epoch bump; the resulting [`MmuEvent::Squashed`] events
    /// drain on this core's next tick.
    pub fn shootdown(&mut self, now: Cycle) {
        self.drop_timer_caches();
        self.path.mmu.shootdown(now);
    }

    /// Scoped shootdown: squashes tenant `asid`'s in-flight walks and
    /// flushes only its TLB entries (or, in flush-on-switch mode, the
    /// whole TLB when the victim is resident).
    pub fn shootdown_asid(&mut self, now: Cycle, asid: u16) {
        self.drop_timer_caches();
        self.path.mmu.shootdown_asid(now, asid);
    }

    /// Selects ASID-tagged TLB entries (`true`, the default) or the
    /// flush-on-switch fallback (`false`).
    pub fn set_tagging(&mut self, tagged: bool) {
        self.path.mmu.set_tagging(tagged);
    }

    /// Arms the walker's per-ASID fairness scheduler (no-op with
    /// `n_asids <= 1`).
    pub fn set_walker_fairness(&mut self, n_asids: usize, tokens: u32, max_age: u64) {
        self.path.mmu.set_walker_fairness(n_asids, tokens, max_age);
    }

    /// Moves faulted pages not yet reported to the fault handler into
    /// `out` (the GPU drains these each cycle).
    pub(crate) fn drain_faults(&mut self, out: &mut Vec<(u16, Vpn)>) {
        out.append(&mut self.pending_faults);
    }

    /// The CPU fault handler finished mapping `vpn` for tenant `asid`:
    /// release every unit parked on it; units with no other outstanding
    /// pages replay their access next cycle.
    pub(crate) fn resolve_fault(&mut self, asid: u16, vpn: Vpn, now: Cycle) {
        let Some(waiters) = self
            .fault_waiters
            .remove(&gmmu_mem::mshr::tenant_key(asid, vpn.raw()))
        else {
            return;
        };
        // This arms `ready_at` timers outside of a tick: the cached
        // next-event value could otherwise skip straight past the wake.
        self.drop_timer_caches();
        for unit in waiters {
            match &mut self.exec {
                ExecMode::Baseline { warps } => {
                    let w = &mut warps[unit as usize];
                    debug_assert!(w.faulted_pages > 0);
                    w.faulted_pages = w.faulted_pages.saturating_sub(1);
                    if w.faulted_pages == 0 && w.waiting_pages == 0 {
                        w.ready_at = now + 1;
                        w.wait = WaitKind::Replay;
                    }
                }
                ExecMode::Tbc(t) => t.resolve_fault(unit, now),
            }
        }
    }

    /// A human-readable dump of everything that could explain a stuck
    /// core, for the forward-progress watchdog's failure report:
    /// overall and per-ASID in-flight walk counts, each parked page
    /// with its tenant and the warps waiting on it, and every live
    /// unit's wait state.
    pub fn stall_diagnostics(&self, now: Cycle) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "core {}: outstanding_walks={} walker_queue={} unreported_faults={}",
            self.id,
            self.path.mmu.outstanding_walks(),
            self.path.mmu.walker().map_or(0, |w| w.queue_len()),
            self.pending_faults.len(),
        );
        // The tenants with any presence on this core, in ASID order.
        let mut asids: Vec<u16> = match &self.exec {
            ExecMode::Baseline { warps } => warps
                .iter()
                .filter(|w| !w.is_done())
                .map(|w| w.asid)
                .collect(),
            ExecMode::Tbc(_) => vec![0],
        };
        asids.extend(
            self.fault_waiters
                .keys()
                .map(|k| (k >> gmmu_mem::mshr::TENANT_KEY_SHIFT) as u16),
        );
        asids.sort_unstable();
        asids.dedup();
        if asids.len() > 1 {
            for &a in &asids {
                let _ = writeln!(
                    s,
                    "  asid {a}: in_flight_walks={} queued_walks={} instructions={}",
                    self.path.mmu.outstanding_walks_asid(a),
                    self.path.mmu.queued_walks_asid(a),
                    self.path
                        .stats
                        .tenant_instructions
                        .get(a as usize)
                        .map_or(0, |c| c.get()),
                );
            }
        }
        let mut parked: Vec<(&u64, &Vec<u16>)> = self.fault_waiters.iter().collect();
        parked.sort_unstable_by_key(|(k, _)| **k);
        for (key, warps) in parked {
            let _ = writeln!(
                s,
                "  faulted page: asid={} vpn={:#x} waiting_warps={warps:?}",
                (key >> gmmu_mem::mshr::TENANT_KEY_SHIFT) as u16,
                key & ((1u64 << gmmu_mem::mshr::TENANT_KEY_SHIFT) - 1),
            );
        }
        match &self.exec {
            ExecMode::Baseline { warps } => {
                for (i, w) in warps.iter().enumerate() {
                    if w.is_done() {
                        continue;
                    }
                    let _ = writeln!(
                        s,
                        "  warp {i} (asid {}): waiting_pages={} faulted_pages={} ready_at={} \
                         (now {now}) wait={:?} pending_accesses={}",
                        w.asid,
                        w.waiting_pages,
                        w.faulted_pages,
                        w.ready_at,
                        w.wait,
                        w.pending.as_ref().map_or(0, |p| p.accesses.len()),
                    );
                }
            }
            ExecMode::Tbc(t) => t.stall_diagnostics(&mut s, now),
        }
        s
    }

    /// Advances the core by one cycle. Returns `true` if it issued an
    /// instruction.
    pub fn tick(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemPort,
        space: &AddressSpace,
        kernel: &dyn Kernel,
        iters: &mut [u32],
        tracer: &mut Tracer,
    ) -> bool {
        let spaces = [space];
        let kernels = [kernel];
        let mut ctx = RunCtx {
            spaces: &spaces,
            kernels: &kernels,
            iters,
            iters_base: &[0],
        };
        self.tick_tenants(now, mem, &mut ctx, tracer) != 0
    }

    /// Advances the core by one cycle under a multi-tenant context.
    /// Returns a bitmask with bit `asid` set for each tenant that
    /// issued an instruction this cycle (the per-tenant watchdog's
    /// progress signal; ASIDs are capped at 64 by the GPU driver).
    pub fn tick_tenants(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemPort,
        ctx: &mut RunCtx<'_, '_>,
        tracer: &mut Tracer,
    ) -> u64 {
        let dispatched = self.dispatch_blocks(ctx.kernels, now);
        let pid = self.id as u32;
        let path = &mut self.path;
        path.l1_mshrs.expire(now);
        let mmu_was_idle = path.mmu.is_idle();
        path.mmu.advance_tenants(now, mem, ctx.spaces, tracer, pid);
        self.events.clear();
        self.events.extend(path.mmu.events());
        for ev in &self.events {
            match *ev {
                MmuEvent::Evicted { vpn, owner, .. } => path.policy.on_tlb_evict(owner, vpn),
                MmuEvent::Wake { warp, vpn, ppn, .. } => match &mut self.exec {
                    ExecMode::Baseline { warps } => {
                        let w = &mut warps[warp as usize];
                        debug_assert!(w.waiting_pages > 0);
                        if let Some(pending) = w.pending.as_mut() {
                            path.service_page(now, pending, vpn, ppn, mem);
                        }
                        w.waiting_pages = w.waiting_pages.saturating_sub(1);
                        if w.waiting_pages == 0 {
                            let slept = w.pending.as_ref().map_or(now, |p| p.slept_at);
                            tracer.record(|| {
                                TraceEvent::span(
                                    "warp_sleep",
                                    "warp",
                                    pid,
                                    warp as u32,
                                    slept,
                                    now - slept,
                                )
                                .arg("vpn", vpn.raw())
                            });
                            let all_serviced =
                                w.pending.as_ref().is_some_and(|p| p.accesses.is_empty());
                            if all_serviced {
                                // Instruction complete: commit it.
                                let p = w.pending.take().expect("checked");
                                w.ready_at = p.overlap_done_at.max(now + 1);
                                w.wait = WaitKind::MemData {
                                    dram: p.touched_dram,
                                };
                                path.stash_accesses(p.accesses);
                                let stack = w.stack.as_mut().expect("waiting warp is live");
                                let (pc, _) = stack.current().expect("live");
                                stack.advance(pc + 1);
                            } else {
                                // Re-present the remaining (TLB-hit)
                                // pages.
                                w.ready_at = now + 1;
                                w.wait = WaitKind::Replay;
                            }
                        }
                    }
                    ExecMode::Tbc(t) => t.wake(warp, vpn, ppn, path, now, mem, tracer, pid),
                },
                MmuEvent::Fault { asid, vpn, warp } => {
                    if !self.fault.demand_paging {
                        panic!("GPU page fault on {vpn}: workloads must pre-map their regions")
                    }
                    // Park the unit: the walk concluded (without a
                    // translation), so the page moves from the waiting
                    // count to the faulted count and the warp sleeps
                    // until the CPU fault handler maps it.
                    match &mut self.exec {
                        ExecMode::Baseline { warps } => {
                            let w = &mut warps[warp as usize];
                            debug_assert!(w.waiting_pages > 0);
                            w.waiting_pages = w.waiting_pages.saturating_sub(1);
                            w.faulted_pages += 1;
                        }
                        ExecMode::Tbc(t) => t.fault(warp),
                    }
                    let waiters = self
                        .fault_waiters
                        .entry(gmmu_mem::mshr::tenant_key(asid, vpn.raw()))
                        .or_default();
                    if waiters.is_empty() {
                        self.pending_faults.push((asid, vpn));
                    }
                    waiters.push(warp);
                }
                MmuEvent::Squashed { warp, .. } => match &mut self.exec {
                    ExecMode::Baseline { warps } => {
                        let w = &mut warps[warp as usize];
                        w.waiting_pages = w.waiting_pages.saturating_sub(1);
                        if w.waiting_pages == 0 && w.faulted_pages == 0 {
                            // Retained accesses re-present against the
                            // flushed TLB after a bounded backoff.
                            w.ready_at = now + self.fault.shootdown_backoff.max(1);
                            w.wait = WaitKind::Reject;
                        }
                    }
                    ExecMode::Tbc(t) => t.squash(warp, now, self.fault.shootdown_backoff),
                },
            }
        }
        path.policy.tick(now);
        if let Some(cpm) = path.cpm.as_mut() {
            cpm.tick(now);
        }

        // One scan both issues and observes: `could_issue` is whether
        // any unit could act this cycle (captured against pre-issue
        // state — a schedulable-but-gated warp counts, as
        // `issue_allowed` perturbs policy state even when it denies),
        // and on a no-issue scan — which visited every warp anyway —
        // liveness falls out for free. Only an issuing tick (where the
        // executed instruction may have retired its warp) re-checks
        // liveness, and that `any` scan short-circuits at the first
        // live warp.
        // Skip the scan outright when the last full scan proved no unit
        // can become schedulable before `now` absent a dispatch or a
        // drained event (both of which refresh the verdict below).
        let idle_verdict = match self.idle_cache.get() {
            Some((until, live)) if !dispatched && self.events.is_empty() && now < until => {
                Some(live)
            }
            _ => None,
        };
        let (issued, could_issue, live): (u64, bool, bool) = match &mut self.exec {
            ExecMode::Baseline { .. } if idle_verdict.is_some() => {
                (0, false, idle_verdict.expect("checked"))
            }
            ExecMode::Baseline { warps } => {
                let scan = baseline_issue(path, warps, &mut self.rr_ptr, now, mem, ctx);
                let issued = scan
                    .issued_asid
                    .map_or(0, |asid| 1u64 << (asid as u32 & 63));
                let live = match scan.live_if_unissued {
                    Some(live) => live,
                    None => warps.iter().any(|w| !w.is_done()),
                };
                // Every real scan refreshes the idle verdict: valid only
                // when not even a policy-gated unit was schedulable.
                self.idle_cache.set(match scan.live_if_unissued {
                    Some(l) if !scan.saw_schedulable => Some((scan.next_ready, l)),
                    _ => None,
                });
                (issued, scan.saw_schedulable, live)
            }
            ExecMode::Tbc(t) => {
                debug_assert_eq!(ctx.spaces.len(), 1, "TBC is single-tenant");
                let could = t.has_ready_work(now);
                let issued = u64::from(t.issue(
                    path,
                    now,
                    mem,
                    ctx.spaces[0],
                    ctx.kernels[0],
                    ctx.iters,
                    tracer,
                    pid,
                ));
                (issued, could, t.has_work())
            }
        };
        // A quiet tick touched nothing `next_event_at` or the stall
        // classifier reads: no block dispatched, the MMU had nothing to
        // advance, no events drained, and no unit could issue (so no
        // executor or policy mutation either). Only then may the
        // memoized values survive into this cycle's classification.
        let quiet = !dispatched && mmu_was_idle && self.events.is_empty() && !could_issue;
        if !quiet {
            self.next_event_cache.set(None);
        }
        // Unit state (what the stall classifier and the core-timer scan
        // read) is untouched by a busy-but-eventless MMU: walks advance
        // internally and only a drained event wakes a unit. So these
        // two caches survive MMU-busy cycles that `next_event_cache`
        // (which folds MMU timers) cannot.
        if dispatched || !self.events.is_empty() || could_issue {
            self.core_timer_cache.set(None);
            self.stall_cache.set(None);
        }
        if live {
            path.stats.live_cycles.inc();
            if issued == 0 {
                let cause = match self.stall_cache.get() {
                    Some((cause, valid_until)) if now < valid_until => cause,
                    _ => {
                        let fresh = classify_stall(&self.exec, now);
                        self.stall_cache.set(Some(fresh));
                        fresh.0
                    }
                };
                path.stats.idle_cycles.inc();
                path.stats.stall_breakdown.add(cause, 1);
            }
        }
        // Blocks can only finish on a tick that mutated unit state, so
        // a quiet tick has nothing to reap.
        if !quiet {
            self.reap_blocks(now, tracer);
        }
        issued
    }
}

/// Names the dominant blocker of a live-but-idle cycle: every non-done
/// unit maps to one [`StallCause`] from its wait state, and the
/// highest-priority cause present wins ([`StallCause`] declaration
/// order). A schedulable-yet-unissued baseline warp can only have been
/// gated by the locality policy — `baseline_issue` issues the first
/// schedulable non-gated warp — so it classifies as `Throttled` without
/// consulting (and perturbing) the policy.
fn classify_stall(exec: &ExecMode, now: Cycle) -> (StallCause, Cycle) {
    let mut best: Option<StallCause> = None;
    let mut note = |c: StallCause| best = Some(best.map_or(c, |b| b.min(c)));
    // How long the classification stays valid absent state changes: the
    // earliest armed `ready_at` beyond `now`. Waiting/faulted units only
    // change cause via an event or fault resolution, both of which drop
    // the cache; a timer expiry alone can flip a sleeping unit to
    // schedulable, so the cache must not outlive the nearest one.
    let mut valid_until = Cycle::MAX;
    match exec {
        ExecMode::Baseline { warps } => {
            for w in warps {
                if w.is_done() {
                    continue;
                }
                if w.faulted_pages > 0 {
                    note(StallCause::FaultService);
                } else if w.waiting_pages > 0 {
                    note(StallCause::TlbFill);
                } else if w.ready_at > now {
                    valid_until = valid_until.min(w.ready_at);
                    note(w.wait.cause());
                } else {
                    note(StallCause::Throttled);
                }
            }
        }
        ExecMode::Tbc(t) => {
            // TBC unit state is not scanned for a bound; the cache is
            // simply never reused (valid only at the computing cycle).
            valid_until = now;
            t.classify_stall(now, &mut note);
        }
    }
    // No live unit at all (work still queued behind full slots or an
    // empty pipeline between blocks): a dispatch drought.
    (best.unwrap_or(StallCause::Dispatch), valid_until)
}

/// What one round-robin pass over the baseline warps establishes.
struct IssueScan {
    /// The issuing warp's ASID, when one issued.
    issued_asid: Option<u16>,
    /// Whether any warp was schedulable at scan time (a policy-gated
    /// warp counts; this is the pre-issue `could_issue` predicate).
    saw_schedulable: bool,
    /// Liveness observed by the scan — `Some` only when nothing issued,
    /// in which case every warp was visited and no state changed, so
    /// the answer is exact. An issuing scan stops early (and the issued
    /// instruction may retire its warp), so the caller re-checks.
    live_if_unissued: Option<bool>,
    /// Earliest `ready_at` beyond `now` among units that only a timer
    /// (not a fill or fault resolution) keeps from issuing; `Cycle::MAX`
    /// when none. Meaningful only on a no-issue scan.
    next_ready: Cycle,
}

/// Picks and executes one instruction from the baseline warps. The same
/// pass records the schedulability and liveness facts the tick needs,
/// so idle cycles cost one warp scan instead of three.
fn baseline_issue(
    path: &mut MemPath,
    warps: &mut [Warp],
    rr_ptr: &mut usize,
    now: Cycle,
    mem: &mut dyn MemPort,
    ctx: &mut RunCtx<'_, '_>,
) -> IssueScan {
    let n = warps.len();
    let mut saw_schedulable = false;
    let mut any_live = false;
    let mut next_ready = Cycle::MAX;
    for off in 0..n {
        let w = (*rr_ptr + off) % n;
        if !warps[w].schedulable(now) {
            let wp = &warps[w];
            if !wp.is_done() {
                any_live = true;
                if wp.waiting_pages == 0 && wp.faulted_pages == 0 && wp.ready_at > now {
                    next_ready = next_ready.min(wp.ready_at);
                }
            }
            continue;
        }
        saw_schedulable = true;
        // CCWS-style throttling gates *memory* instructions: throttled
        // warps may still run ALU/branch work, and a warp with a pending
        // memory instruction replays regardless (it holds MSHRs).
        if warps[w].pending.is_none() && !path.policy.issue_allowed(w as u16) {
            let (pc, _) = warps[w]
                .stack
                .as_ref()
                .and_then(|s| s.current())
                .expect("schedulable implies live");
            if matches!(
                ctx.kernels[warps[w].asid as usize].program().op(pc),
                Op::Mem { .. }
            ) {
                any_live = true;
                continue;
            }
        }
        let asid = warps[w].asid;
        exec_one(path, warps, w, now, mem, ctx);
        *rr_ptr = (w + 1) % n;
        return IssueScan {
            issued_asid: Some(asid),
            saw_schedulable: true,
            live_if_unissued: None,
            next_ready: Cycle::MAX,
        };
    }
    IssueScan {
        issued_asid: None,
        saw_schedulable,
        live_if_unissued: Some(any_live),
        next_ready,
    }
}

/// Executes the next instruction of baseline warp `w` against its
/// tenant's kernel, address space, and iteration-counter slice.
fn exec_one(
    path: &mut MemPath,
    warps: &mut [Warp],
    w: usize,
    now: Cycle,
    mem: &mut dyn MemPort,
    ctx: &mut RunCtx<'_, '_>,
) {
    let asid = warps[w].asid;
    let kernel = ctx.kernels[asid as usize];
    let space = ctx.spaces[asid as usize];
    let base = ctx.iters_base[asid as usize];
    let iters = &mut *ctx.iters;
    let num_sites = kernel.program().num_sites().max(1);
    let warp = &mut warps[w];
    let stack = warp.stack.as_mut().expect("schedulable implies live");
    let (pc, mask) = stack.current().expect("schedulable implies live");
    match kernel.program().op(pc) {
        Op::Alu { cycles } => {
            warp.ready_at = now + cycles as u64;
            warp.wait = WaitKind::Pipeline;
            stack.advance(pc + 1);
            path.stats.instructions.inc();
            CoreStats::tenant_counter(&mut path.stats.tenant_instructions, asid).inc();
        }
        Op::Branch {
            site,
            taken_pc,
            reconv_pc,
        } => {
            let mut taken = 0u32;
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let tid = warp.first_tid + lane;
                    let slot = base + tid as usize * num_sites + site as usize;
                    let iter = iters[slot];
                    iters[slot] += 1;
                    if kernel.branch_taken(tid, site, iter) {
                        taken |= 1 << lane;
                    }
                }
            }
            stack.branch(taken, taken_pc, pc + 1, reconv_pc);
            warp.ready_at = now + path.timings.branch_latency;
            warp.wait = WaitKind::Pipeline;
            path.stats.instructions.inc();
            CoreStats::tenant_counter(&mut path.stats.tenant_instructions, asid).inc();
        }
        Op::Mem { site, kind } => {
            if warp.pending.is_none() {
                let mut accesses = path.grab_accesses();
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let tid = warp.first_tid + lane;
                        let slot = base + tid as usize * num_sites + site as usize;
                        let iter = iters[slot];
                        iters[slot] += 1;
                        accesses.push((kernel.mem_addr(tid, site, iter), w as u16));
                    }
                }
                warp.pending = Some(Pending {
                    kind,
                    accesses,
                    tlb_missed: false,
                    overlap_done_at: 0,
                    diverge_recorded: false,
                    touched_dram: false,
                    slept_at: 0,
                });
                path.stats.instructions.inc();
                CoreStats::tenant_counter(&mut path.stats.tenant_instructions, asid).inc();
                path.stats.mem_instructions.inc();
            } else {
                path.stats.replays.inc();
            }
            let mut pending = warp.pending.take().expect("just set");
            match path.issue_mem(now, w as u16, asid, &mut pending, mem, space) {
                MemIssue::Done(ready) => {
                    warp.ready_at = ready;
                    warp.wait = WaitKind::MemData {
                        dram: pending.touched_dram,
                    };
                    warp.stack.as_mut().expect("live warp").advance(pc + 1);
                    path.stash_accesses(pending.accesses);
                }
                MemIssue::WaitTlb(misses) => {
                    warp.waiting_pages = misses;
                    pending.slept_at = now;
                    warp.pending = Some(pending);
                }
                MemIssue::Retry(at) => {
                    warp.ready_at = at;
                    warp.wait = WaitKind::Reject;
                    warp.pending = Some(pending);
                }
            }
        }
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for MemKind {
    fn save(&self, w: &mut Saver) {
        w.u8(match self {
            MemKind::Load => 0,
            MemKind::Store => 1,
        });
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        *self = match r.u8()? {
            0 => MemKind::Load,
            1 => MemKind::Store,
            _ => return Err(CkptError::Corrupt("unknown memory-op tag")),
        };
        Ok(())
    }
}

impl Ckpt for WaitKind {
    fn save(&self, w: &mut Saver) {
        match self {
            WaitKind::Pipeline => w.u8(0),
            WaitKind::MemData { dram } => {
                w.u8(1);
                w.bool(*dram);
            }
            WaitKind::Reject => w.u8(2),
            WaitKind::Replay => w.u8(3),
        }
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        *self = match r.u8()? {
            0 => WaitKind::Pipeline,
            1 => WaitKind::MemData { dram: r.bool()? },
            2 => WaitKind::Reject,
            3 => WaitKind::Replay,
            _ => return Err(CkptError::Corrupt("unknown wait-kind tag")),
        };
        Ok(())
    }
}

impl Ckpt for Pending {
    fn save(&self, w: &mut Saver) {
        self.kind.save(w);
        self.accesses.save(w);
        w.bool(self.tlb_missed);
        w.u64(self.overlap_done_at);
        w.bool(self.diverge_recorded);
        w.bool(self.touched_dram);
        w.u64(self.slept_at);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.kind.load(r)?;
        self.accesses.load(r)?;
        self.tlb_missed = r.bool()?;
        self.overlap_done_at = r.u64()?;
        self.diverge_recorded = r.bool()?;
        self.touched_dram = r.bool()?;
        self.slept_at = r.u64()?;
        Ok(())
    }
}

impl Ckpt for Warp {
    fn save(&self, w: &mut Saver) {
        w.u16(self.asid);
        w.u32(self.first_tid);
        self.stack.save(w);
        w.u64(self.ready_at);
        self.pending.save(w);
        w.usize(self.waiting_pages);
        w.usize(self.faulted_pages);
        self.wait.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.asid = r.u16()?;
        self.first_tid = r.u32()?;
        self.stack.load(r)?;
        self.ready_at = r.u64()?;
        self.pending.load(r)?;
        self.waiting_pages = r.usize()?;
        self.faulted_pages = r.usize()?;
        self.wait.load(r)
    }
}

impl Ckpt for BlockWork {
    fn save(&self, w: &mut Saver) {
        w.u16(self.asid);
        w.u32(self.first_tid);
        w.u32(self.n_threads);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.asid = r.u16()?;
        self.first_tid = r.u32()?;
        self.n_threads = r.u32()?;
        Ok(())
    }
}

impl Ckpt for CoreStats {
    fn save(&self, w: &mut Saver) {
        self.instructions.save(w);
        self.mem_instructions.save(w);
        self.idle_cycles.save(w);
        self.stall_breakdown.save(w);
        self.live_cycles.save(w);
        self.page_divergence.save(w);
        self.l1_miss_latency.save(w);
        self.replays.save(w);
        self.dwarps_formed.save(w);
        self.blocks_done.save(w);
        self.tenant_instructions.save(w);
        self.tenant_blocks_done.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.instructions.load(r)?;
        self.mem_instructions.load(r)?;
        self.idle_cycles.load(r)?;
        self.stall_breakdown.load(r)?;
        self.live_cycles.load(r)?;
        self.page_divergence.load(r)?;
        self.l1_miss_latency.load(r)?;
        self.replays.load(r)?;
        self.dwarps_formed.load(r)?;
        self.blocks_done.load(r)?;
        self.tenant_instructions.load(r)?;
        self.tenant_blocks_done.load(r)
    }
}

impl Ckpt for MemPath {
    /// `granule` and `timings` are configuration; whether a CPM exists is
    /// too, so its contents appear in the stream only when present. The
    /// coalesce and translate buffers are scratch within one memory issue
    /// and are reset instead of saved.
    fn save(&self, w: &mut Saver) {
        self.mmu.save(w);
        self.l1.save(w);
        self.l1_mshrs.save(w);
        self.policy.save(w);
        if let Some(cpm) = &self.cpm {
            cpm.save(w);
        }
        self.stats.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.mmu.load(r)?;
        self.l1.load(r)?;
        self.l1_mshrs.load(r)?;
        self.policy.load(r)?;
        if let Some(cpm) = &mut self.cpm {
            cpm.load(r)?;
        }
        self.stats.load(r)?;
        self.cbuf.clear();
        self.tbuf = TranslateBuf::new();
        Ok(())
    }
}

impl Ckpt for ShaderCore {
    /// The execution mode's *variant* is configuration (TBC on or off),
    /// so only the active variant's state is serialized. The fault-waiter
    /// map is written sorted by page so hash iteration order never leaks
    /// into the byte stream; the MMU-event drain buffer is transient
    /// within one tick and the next-event memo is a cache, so both are
    /// reset on load.
    fn save(&self, w: &mut Saver) {
        self.path.save(w);
        match &self.exec {
            ExecMode::Baseline { warps } => warps.save(w),
            ExecMode::Tbc(t) => t.save(w),
        }
        w.usize(self.rr_ptr);
        self.block_queue.save(w);
        self.slot_occupied.save(w);
        self.slot_started.save(w);
        self.slot_asid.save(w);
        let mut waiters: Vec<(u64, Vec<u16>)> = self
            .fault_waiters
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        waiters.sort_unstable_by_key(|(k, _)| *k);
        waiters.save(w);
        self.pending_faults.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.path.load(r)?;
        match &mut self.exec {
            ExecMode::Baseline { warps } => warps.load(r)?,
            ExecMode::Tbc(t) => t.load(r)?,
        }
        self.rr_ptr = r.usize()?;
        self.block_queue.load(r)?;
        self.slot_occupied.load(r)?;
        self.slot_started.load(r)?;
        self.slot_asid.load(r)?;
        let mut waiters: Vec<(u64, Vec<u16>)> = Vec::new();
        waiters.load(r)?;
        self.fault_waiters = waiters.into_iter().collect();
        self.pending_faults.load(r)?;
        self.events.clear();
        self.drop_timer_caches();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use gmmu_core::mmu::MmuModel;
    use gmmu_mem::{MemConfig, MemorySystem};
    use gmmu_vm::{PageSize, Region, SpaceConfig};

    /// A trivial streaming kernel: each thread loads 8 bytes from its
    /// own slot, twice, with one ALU op between.
    struct StreamKernel {
        program: Program,
        region: Region,
        threads: u32,
    }

    impl StreamKernel {
        fn new(space: &mut AddressSpace, threads: u32) -> Self {
            let region = space
                .map_region("stream", threads as u64 * 16, PageSize::Base4K)
                .unwrap();
            Self {
                program: Program::new(vec![
                    Op::Mem {
                        site: 0,
                        kind: MemKind::Load,
                    },
                    Op::Alu { cycles: 4 },
                    Op::Mem {
                        site: 1,
                        kind: MemKind::Store,
                    },
                ]),
                region,
                threads,
            }
        }
    }

    impl Kernel for StreamKernel {
        fn name(&self) -> &str {
            "stream-test"
        }
        fn program(&self) -> &Program {
            &self.program
        }
        fn num_threads(&self) -> u32 {
            self.threads
        }
        fn block_threads(&self) -> u32 {
            64
        }
        fn mem_addr(&self, tid: ThreadId, site: u16, _iter: u32) -> VAddr {
            self.region.at(tid as u64 * 16 + site as u64 * 8)
        }
        fn branch_taken(&self, _: ThreadId, _: u16, _: u32) -> bool {
            false
        }
    }

    fn run_core(mmu: MmuModel, threads: u32) -> (ShaderCore, Cycle) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let kernel = StreamKernel::new(&mut space, threads);
        let mut mem = MemorySystem::new(MemConfig::default());
        let cfg = GpuConfig {
            n_cores: 1,
            warps_per_core: 8,
            warps_per_block: 2,
            mmu,
            ..GpuConfig::default()
        };
        let mut core = ShaderCore::new(0, &cfg);
        let mut iters = vec![0u32; threads as usize * kernel.program().num_sites()];
        for b in 0..threads.div_ceil(64) {
            core.push_block(b * 64, (threads - b * 64).min(64));
        }
        let mut now = 0;
        let mut tracer = Tracer::Off;
        while core.has_work() {
            core.tick(now, &mut mem, &space, &kernel, &mut iters, &mut tracer);
            now += 1;
            assert!(now < 1_000_000, "core never finished");
        }
        (core, now)
    }

    #[test]
    fn ideal_core_executes_every_instruction() {
        let threads = 256u32;
        let (core, _) = run_core(MmuModel::Ideal, threads);
        // 3 instructions per warp × 8 warps-worth of threads.
        let warps = threads / 32;
        assert_eq!(core.stats().instructions.get(), (warps * 3) as u64);
        assert_eq!(core.stats().mem_instructions.get(), (warps * 2) as u64);
        assert_eq!(core.stats().blocks_done.get(), 4);
    }

    #[test]
    fn real_mmu_is_slower_than_ideal_but_equivalent() {
        let (ideal, t_ideal) = run_core(MmuModel::Ideal, 256);
        let (real, t_real) = run_core(MmuModel::naive(), 256);
        assert_eq!(
            ideal.stats().instructions.get(),
            real.stats().instructions.get(),
            "MMU model must not change the work done"
        );
        assert!(t_real > t_ideal, "TLB misses must cost time");
        let tlb = real.mmu().tlb().unwrap();
        assert!(tlb.misses() > 0);
    }

    #[test]
    fn partial_blocks_execute_partially() {
        let (core, _) = run_core(MmuModel::Ideal, 40); // 1 full warp + 8 threads
        assert_eq!(core.stats().instructions.get(), 2 * 3);
    }

    #[test]
    fn page_divergence_of_streaming_kernel_is_low() {
        let (core, _) = run_core(MmuModel::Ideal, 256);
        // 32 threads × 16 B = 512 B per warp access → 1 page (2 at a
        // boundary).
        assert!(core.stats().page_divergence.mean() <= 2.0);
        assert!(core.stats().page_divergence.max() <= 2);
    }

    #[test]
    fn stall_breakdown_sums_to_idle_cycles() {
        for mmu in [MmuModel::Ideal, MmuModel::naive()] {
            let (core, _) = run_core(mmu, 256);
            let stats = core.stats();
            assert_eq!(
                stats.stall_breakdown.total(),
                stats.idle_cycles.get(),
                "breakdown must refine idle_cycles exactly"
            );
        }
        let (real, _) = run_core(MmuModel::naive(), 256);
        assert!(
            real.stats().stall_breakdown.get(StallCause::TlbFill) > 0,
            "a naive MMU must show TLB-fill stalls"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, ta) = run_core(MmuModel::naive(), 128);
        let (b, tb) = run_core(MmuModel::naive(), 128);
        assert_eq!(ta, tb);
        assert_eq!(a.stats().instructions.get(), b.stats().instructions.get());
        assert_eq!(
            a.mmu().tlb().unwrap().misses(),
            b.mmu().tlb().unwrap().misses()
        );
    }
}
