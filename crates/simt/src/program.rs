//! Kernel programs: the IR that SIMT cores execute.
//!
//! A [`Program`] is a flat list of [`Op`]s shared by every thread of a
//! kernel. Threads diverge only at [`Op::Branch`]; each branch names its
//! *reconvergence pc* (the immediate post-dominator), which the authors
//! of a kernel know because programs are structured (if/else and loops).
//!
//! A [`Kernel`] supplies the data-dependent parts as **pure functions**
//! of `(thread, site, iteration)`: the virtual address a memory site
//! touches and the outcome of a branch site. Purity is what lets thread
//! block compaction regroup threads into arbitrary dynamic warps and
//! still replay an access after a TLB miss without storing traces.

use gmmu_vm::VAddr;

/// A global thread id (blocks are contiguous ranges of these).
pub type ThreadId = u32;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemKind {
    /// A load: the warp waits for the data.
    #[default]
    Load,
    /// A store: fire-and-forget write-through traffic.
    Store,
}

/// One SIMT instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Arithmetic taking `cycles` of result latency.
    Alu {
        /// Result latency in cycles.
        cycles: u32,
    },
    /// A memory access at static site `site`; per-thread addresses come
    /// from [`Kernel::mem_addr`].
    Mem {
        /// Static site id (indexes kernel address generators).
        site: u16,
        /// Load or store.
        kind: MemKind,
    },
    /// Conditional branch at static site `site`. Taken threads jump to
    /// `taken_pc`; others fall through. `reconv_pc` is the immediate
    /// post-dominator where the paths re-join.
    Branch {
        /// Static site id (indexes kernel outcome generators).
        site: u16,
        /// Target when taken (backward target = loop).
        taken_pc: u32,
        /// Reconvergence point.
        reconv_pc: u32,
    },
}

/// A kernel's instruction stream.
///
/// # Examples
///
/// ```
/// use gmmu_simt::program::{Op, MemKind, Program};
/// let p = Program::new(vec![
///     Op::Alu { cycles: 4 },
///     Op::Mem { site: 0, kind: MemKind::Load },
/// ]);
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.num_sites(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    ops: Vec<Op>,
    num_sites: usize,
}

impl Program {
    /// Wraps an op list.
    ///
    /// # Panics
    ///
    /// Panics if a branch targets a pc beyond one past the end, or a
    /// reconvergence pc precedes the branch target ordering rules
    /// (reconv must be ≥ the fall-through pc).
    pub fn new(ops: Vec<Op>) -> Self {
        let len = ops.len() as u32;
        let mut max_site = None;
        for (pc, op) in ops.iter().enumerate() {
            match *op {
                Op::Branch {
                    taken_pc,
                    reconv_pc,
                    site,
                } => {
                    assert!(taken_pc <= len, "branch at {pc} targets beyond end");
                    assert!(reconv_pc <= len, "reconv at {pc} beyond end");
                    assert!(
                        reconv_pc > pc as u32,
                        "reconvergence must lie after the branch"
                    );
                    max_site = max_site.max(Some(site));
                }
                Op::Mem { site, .. } => max_site = max_site.max(Some(site)),
                Op::Alu { .. } => {}
            }
        }
        Self {
            ops,
            num_sites: max_site.map_or(0, |s| s as usize + 1),
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// One past the last pc (the pc at which a thread is done).
    pub fn end_pc(&self) -> u32 {
        self.ops.len() as u32
    }

    /// The instruction at `pc`.
    pub fn op(&self, pc: u32) -> Op {
        self.ops[pc as usize]
    }

    /// Number of distinct static sites (memory + branch).
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }
}

/// A workload kernel: program + data-dependent behaviour.
///
/// Implementations live in `gmmu-workloads`; each models one of the
/// paper's six benchmarks. All methods must be *deterministic pure
/// functions* — the simulator may call them more than once for the same
/// arguments (TLB-miss replay, dynamic warp formation). `Sync` is a
/// supertrait because the parallel execution engine shares one `&dyn
/// Kernel` across its worker threads; purity makes this trivially true
/// for every workload.
pub trait Kernel: Sync {
    /// Short benchmark name (e.g. `"bfs"`).
    fn name(&self) -> &str;

    /// The instruction stream all threads execute.
    fn program(&self) -> &Program;

    /// Total threads launched.
    fn num_threads(&self) -> u32;

    /// Threads per block (a multiple of the warp size; warps of a block
    /// compact together under TBC).
    fn block_threads(&self) -> u32;

    /// Virtual address thread `tid` touches at memory site `site` on its
    /// `iter`-th execution of that site.
    fn mem_addr(&self, tid: ThreadId, site: u16, iter: u32) -> VAddr;

    /// Outcome of branch `site` for `tid` on its `iter`-th execution.
    fn branch_taken(&self, tid: ThreadId, site: u16, iter: u32) -> bool;
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for Op {
    fn save(&self, w: &mut Saver) {
        match *self {
            Op::Alu { cycles } => {
                w.u8(0);
                w.u32(cycles);
            }
            Op::Mem { site, kind } => {
                w.u8(1);
                w.u16(site);
                kind.save(w);
            }
            Op::Branch {
                site,
                taken_pc,
                reconv_pc,
            } => {
                w.u8(2);
                w.u16(site);
                w.u32(taken_pc);
                w.u32(reconv_pc);
            }
        }
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        *self = match r.u8()? {
            0 => Op::Alu { cycles: r.u32()? },
            1 => {
                let site = r.u16()?;
                let mut kind = MemKind::Load;
                kind.load(r)?;
                Op::Mem { site, kind }
            }
            2 => Op::Branch {
                site: r.u16()?,
                taken_pc: r.u32()?,
                reconv_pc: r.u32()?,
            },
            _ => return Err(CkptError::Corrupt("unknown opcode")),
        };
        Ok(())
    }
}

impl Ckpt for Program {
    fn save(&self, w: &mut Saver) {
        w.usize(self.ops.len());
        for op in &self.ops {
            op.save(w);
        }
    }
    /// Re-checks the structural invariants [`Program::new`] asserts, so a
    /// corrupt stream surfaces as [`CkptError::Corrupt`] instead of a
    /// panic.
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        let len = r.usize()?;
        let mut ops = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            let mut op = Op::Alu { cycles: 0 };
            op.load(r)?;
            ops.push(op);
        }
        let end = ops.len() as u32;
        for (pc, op) in ops.iter().enumerate() {
            if let Op::Branch {
                taken_pc,
                reconv_pc,
                ..
            } = *op
            {
                if taken_pc > end || reconv_pc > end || reconv_pc <= pc as u32 {
                    return Err(CkptError::Corrupt("malformed branch targets"));
                }
            }
        }
        *self = Program::new(ops);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_counts_sites() {
        let p = Program::new(vec![
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            },
            Op::Branch {
                site: 3,
                taken_pc: 3,
                reconv_pc: 3,
            },
            Op::Alu { cycles: 1 },
        ]);
        assert_eq!(p.num_sites(), 4);
        assert_eq!(p.end_pc(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond end")]
    fn branch_target_validated() {
        let _ = Program::new(vec![Op::Branch {
            site: 0,
            taken_pc: 9,
            reconv_pc: 1,
        }]);
    }

    #[test]
    #[should_panic(expected = "after the branch")]
    fn reconv_must_follow_branch() {
        let _ = Program::new(vec![
            Op::Alu { cycles: 1 },
            Op::Branch {
                site: 0,
                taken_pc: 0,
                reconv_pc: 1,
            },
        ]);
    }

    #[test]
    fn loops_encode_as_backward_branches() {
        // body; branch(back to 0 if continuing, reconv = 2) ; tail
        let p = Program::new(vec![
            Op::Alu { cycles: 1 },
            Op::Branch {
                site: 0,
                taken_pc: 0,
                reconv_pc: 2,
            },
            Op::Alu { cycles: 1 },
        ]);
        match p.op(1) {
            Op::Branch { taken_pc, .. } => assert!(taken_pc < 1),
            _ => panic!("expected branch"),
        }
    }
}
