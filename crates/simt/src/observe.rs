//! Run-time observability: event tracing and interval time-series.
//!
//! An [`Observer`] travels with one simulation run ([`crate::Gpu::run_observed`])
//! and carries two optional instruments:
//!
//! * a [`Tracer`] collecting spans for a Chrome/Perfetto `trace.json`;
//! * an [`IntervalRecorder`] sampling whole-GPU counters every `stride`
//!   cycles, turning end-of-run aggregates into a time-series of IPC,
//!   TLB hit rate, walker-lane occupancy, and DRAM traffic;
//! * a [`Metrics`] channel collecting translation-lifecycle events into
//!   per-stage latency histograms and a hot-page table (see
//!   [`gmmu_sim::metrics`]).
//!
//! All default to off, in which case the run is bit-identical to an
//! unobserved one (the determinism suite asserts this).

use gmmu_sim::metrics::Metrics;
use gmmu_sim::trace::Tracer;
use gmmu_sim::Cycle;

/// Per-run observation instruments. [`Observer::off`] observes nothing.
#[derive(Debug, Default)]
pub struct Observer {
    /// Span tracer (off by default).
    pub tracer: Tracer,
    /// Interval sampler (off by default).
    pub intervals: Option<IntervalRecorder>,
    /// Translation-lifecycle metrics channel (off by default). When on,
    /// this is the run's aggregation sink; per-core staging buffers
    /// drain into it in core-index order each cycle.
    pub metrics: Metrics,
}

impl Observer {
    /// An observer that records nothing.
    pub fn off() -> Self {
        Self::default()
    }

    /// An observer that records a span trace only.
    pub fn tracing() -> Self {
        Observer {
            tracer: Tracer::recording(),
            intervals: None,
            metrics: Metrics::Off,
        }
    }

    /// Whether any instrument is attached.
    pub fn enabled(&self) -> bool {
        self.tracer.enabled() || self.intervals.is_some() || self.metrics.enabled()
    }
}

/// A snapshot of the monotonically growing whole-GPU counters an
/// interval sample is derived from (by differencing two snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Instructions executed (warp-instructions, summed over cores).
    pub instructions: u64,
    /// TLB lookups.
    pub tlb_accesses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// Walker lane-busy cycles (see `WalkerStats::lane_busy_cycles`).
    pub walker_busy_cycles: u64,
    /// Requests that reached DRAM.
    pub dram_requests: u64,
    /// Cycles translations spent queued behind busy walker lanes
    /// (metrics channel; zero when metrics are off).
    pub walk_queue_cycles: u64,
    /// Cycles translations spent in active page walks (metrics channel;
    /// zero when metrics are off).
    pub walk_active_cycles: u64,
}

/// One interval's worth of activity, as deltas over the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalSample {
    /// Cycle the interval ends at (exclusive).
    pub end_cycle: Cycle,
    /// Interval width in cycles (the final sample may be shorter).
    pub cycles: u64,
    /// Instructions retired during the interval.
    pub instructions: u64,
    /// TLB lookups during the interval.
    pub tlb_accesses: u64,
    /// TLB hits during the interval.
    pub tlb_hits: u64,
    /// Walker lane-busy cycles accrued during the interval.
    pub walker_busy_cycles: u64,
    /// DRAM requests during the interval.
    pub dram_requests: u64,
    /// Walk queueing cycles attributed during the interval (metrics
    /// channel; zero when metrics are off).
    pub walk_queue_cycles: u64,
    /// Active page-walk cycles attributed during the interval (metrics
    /// channel; zero when metrics are off).
    pub walk_active_cycles: u64,
}

impl IntervalSample {
    /// Instructions per cycle over the interval.
    pub fn ipc(&self) -> f64 {
        gmmu_sim::stats::ratio(self.instructions, self.cycles)
    }

    /// TLB hit rate over the interval, in `[0, 1]` (0 when no lookups).
    pub fn tlb_hit_rate(&self) -> f64 {
        gmmu_sim::stats::ratio(self.tlb_hits, self.tlb_accesses)
    }

    /// Walker-lane occupancy over the interval given the total lane
    /// count. Busy time is attributed to the cycle a walk *starts*, so a
    /// single interval can nominally exceed 1.0 when a long walk begins
    /// near its end; consecutive intervals average out exactly.
    pub fn walker_occupancy(&self, lanes: u64) -> f64 {
        gmmu_sim::stats::ratio(self.walker_busy_cycles, self.cycles * lanes.max(1))
    }
}

/// Samples whole-GPU counters every `stride` cycles during a run.
#[derive(Debug, Clone)]
pub struct IntervalRecorder {
    stride: Cycle,
    next: Cycle,
    lanes: u64,
    last: CounterSnapshot,
    samples: Vec<IntervalSample>,
}

impl IntervalRecorder {
    /// Creates a recorder sampling every `stride` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(stride: Cycle) -> Self {
        assert!(stride > 0, "interval stride must be positive");
        IntervalRecorder {
            stride,
            next: stride,
            lanes: 0,
            last: CounterSnapshot::default(),
            samples: Vec::new(),
        }
    }

    /// Sets the walker-lane count used for occupancy (summed over cores).
    pub fn set_lanes(&mut self, lanes: u64) {
        self.lanes = lanes;
    }

    /// Configured stride in cycles.
    pub fn stride(&self) -> Cycle {
        self.stride
    }

    /// Whether the clock has reached the next sample boundary.
    #[inline]
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next
    }

    /// The next sample boundary — the cycle at which [`IntervalRecorder::due`]
    /// first becomes true. The event-calendar engine schedules its
    /// sampler key here.
    #[inline]
    pub fn next_boundary(&self) -> Cycle {
        self.next
    }

    /// Closes the interval ending at the pending boundary using the
    /// current counter snapshot. Call while [`IntervalRecorder::due`];
    /// when the clock jumps several boundaries at once, call repeatedly
    /// (the skipped epochs record zero activity).
    pub fn sample(&mut self, totals: CounterSnapshot) {
        let end = self.next;
        self.push(end, self.stride, totals);
        self.next = end + self.stride;
    }

    /// Closes the final, possibly partial interval at end of run.
    pub fn finish(&mut self, now: Cycle, totals: CounterSnapshot) {
        let start = self.next - self.stride;
        if now > start {
            self.push(now, now - start, totals);
        }
    }

    fn push(&mut self, end: Cycle, width: Cycle, totals: CounterSnapshot) {
        self.samples.push(IntervalSample {
            end_cycle: end,
            cycles: width,
            instructions: totals.instructions - self.last.instructions,
            tlb_accesses: totals.tlb_accesses - self.last.tlb_accesses,
            tlb_hits: totals.tlb_hits - self.last.tlb_hits,
            walker_busy_cycles: totals.walker_busy_cycles - self.last.walker_busy_cycles,
            dram_requests: totals.dram_requests - self.last.dram_requests,
            walk_queue_cycles: totals.walk_queue_cycles - self.last.walk_queue_cycles,
            walk_active_cycles: totals.walk_active_cycles - self.last.walk_active_cycles,
        });
        self.last = totals;
    }

    /// The recorded samples, in time order.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// Renders the time-series as CSV (header + one row per interval).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str(
            "end_cycle,cycles,instructions,ipc,tlb_accesses,tlb_hits,tlb_hit_rate,\
             walker_busy_cycles,walker_occupancy,dram_requests,\
             walk_queue_cycles,walk_active_cycles\n",
        );
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{},{},{},{:.4},{},{},{:.4},{},{:.4},{},{},{}",
                s.end_cycle,
                s.cycles,
                s.instructions,
                s.ipc(),
                s.tlb_accesses,
                s.tlb_hits,
                s.tlb_hit_rate(),
                s.walker_busy_cycles,
                s.walker_occupancy(self.lanes),
                s.dram_requests,
                s.walk_queue_cycles,
                s.walk_active_cycles,
            );
        }
        out
    }

    /// Renders the time-series as JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\n  \"stride\": {},\n  \"walker_lanes\": {},\n  \"samples\": [",
            self.stride, self.lanes
        );
        for (i, s) in self.samples.iter().enumerate() {
            let sep = if i + 1 == self.samples.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"end_cycle\": {}, \"cycles\": {}, \"instructions\": {}, \
                 \"ipc\": {:.4}, \"tlb_accesses\": {}, \"tlb_hits\": {}, \
                 \"tlb_hit_rate\": {:.4}, \"walker_busy_cycles\": {}, \
                 \"walker_occupancy\": {:.4}, \"dram_requests\": {}, \
                 \"walk_queue_cycles\": {}, \"walk_active_cycles\": {}}}{sep}",
                s.end_cycle,
                s.cycles,
                s.instructions,
                s.ipc(),
                s.tlb_accesses,
                s.tlb_hits,
                s.tlb_hit_rate(),
                s.walker_busy_cycles,
                s.walker_occupancy(self.lanes),
                s.dram_requests,
                s.walk_queue_cycles,
                s.walk_active_cycles,
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for CounterSnapshot {
    fn save(&self, w: &mut Saver) {
        w.u64(self.instructions);
        w.u64(self.tlb_accesses);
        w.u64(self.tlb_hits);
        w.u64(self.walker_busy_cycles);
        w.u64(self.dram_requests);
        w.u64(self.walk_queue_cycles);
        w.u64(self.walk_active_cycles);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.instructions = r.u64()?;
        self.tlb_accesses = r.u64()?;
        self.tlb_hits = r.u64()?;
        self.walker_busy_cycles = r.u64()?;
        self.dram_requests = r.u64()?;
        self.walk_queue_cycles = r.u64()?;
        self.walk_active_cycles = r.u64()?;
        Ok(())
    }
}

impl Ckpt for IntervalSample {
    fn save(&self, w: &mut Saver) {
        w.u64(self.end_cycle);
        w.u64(self.cycles);
        w.u64(self.instructions);
        w.u64(self.tlb_accesses);
        w.u64(self.tlb_hits);
        w.u64(self.walker_busy_cycles);
        w.u64(self.dram_requests);
        w.u64(self.walk_queue_cycles);
        w.u64(self.walk_active_cycles);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.end_cycle = r.u64()?;
        self.cycles = r.u64()?;
        self.instructions = r.u64()?;
        self.tlb_accesses = r.u64()?;
        self.tlb_hits = r.u64()?;
        self.walker_busy_cycles = r.u64()?;
        self.dram_requests = r.u64()?;
        self.walk_queue_cycles = r.u64()?;
        self.walk_active_cycles = r.u64()?;
        Ok(())
    }
}

impl Ckpt for IntervalRecorder {
    /// `stride` and `lanes` come from the run setup and are rebuilt by
    /// the caller; the stream holds the sampling cursor and the samples.
    fn save(&self, w: &mut Saver) {
        w.u64(self.next);
        self.last.save(w);
        self.samples.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.next = r.u64()?;
        self.last.load(r)?;
        self.samples.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(instructions: u64, dram: u64) -> CounterSnapshot {
        CounterSnapshot {
            instructions,
            dram_requests: dram,
            ..Default::default()
        }
    }

    #[test]
    fn samples_are_deltas() {
        let mut r = IntervalRecorder::new(100);
        assert!(!r.due(99));
        assert!(r.due(100));
        r.sample(snap(40, 3));
        r.sample(snap(90, 3)); // clock jumped two boundaries at once
        r.finish(250, snap(100, 9));
        let s = r.samples();
        assert_eq!(s.len(), 3);
        assert_eq!(
            (s[0].end_cycle, s[0].cycles, s[0].instructions),
            (100, 100, 40)
        );
        assert_eq!((s[1].end_cycle, s[1].instructions), (200, 50));
        assert_eq!(
            (s[2].end_cycle, s[2].cycles, s[2].instructions),
            (250, 50, 10)
        );
        assert_eq!(s[2].dram_requests, 6);
        assert_eq!(s[0].ipc(), 0.4);
        assert_eq!(s[2].ipc(), 0.2);
    }

    #[test]
    fn finish_skips_empty_tail() {
        let mut r = IntervalRecorder::new(100);
        r.sample(snap(10, 0));
        r.finish(100, snap(10, 0)); // run ended exactly on a boundary
        assert_eq!(r.samples().len(), 1);
    }

    #[test]
    fn csv_and_json_render() {
        let mut r = IntervalRecorder::new(10);
        r.set_lanes(2);
        r.sample(CounterSnapshot {
            instructions: 5,
            tlb_accesses: 4,
            tlb_hits: 2,
            walker_busy_cycles: 10,
            dram_requests: 1,
            walk_queue_cycles: 3,
            walk_active_cycles: 7,
        });
        let csv = r.to_csv();
        assert!(csv.starts_with("end_cycle,"));
        assert!(csv.contains("walk_queue_cycles,walk_active_cycles"));
        assert!(csv.contains("10,10,5,0.5000,4,2,0.5000,10,0.5000,1,3,7"));
        let json = r.to_json();
        assert!(json.contains("\"stride\": 10"));
        assert!(json.contains("\"walker_lanes\": 2"));
        assert!(json.contains("\"ipc\": 0.5000"));
        assert!(json.contains("\"walk_queue_cycles\": 3"));
        assert!(json.contains("\"walk_active_cycles\": 7"));
    }
}
