//! Stall-cause attribution for idle cycles.
//!
//! The paper's Figure 10 argues about *why* cycles are lost, not just how
//! many: TLB-induced stalls versus ordinary memory latency versus
//! scheduling droughts. [`StallBreakdown`] splits the single
//! `idle_cycles` counter into an enum-indexed vector so the figure-10
//! companion table (and any debugging session) can see where a design
//! point's idle time actually goes.
//!
//! An idle cycle is attributed to the *dominant blocker*: each stalled
//! warp maps to one [`StallCause`], and the cycle is charged to the
//! highest-priority cause present. Priority is the declaration order of
//! the enum — TLB-related causes first, so a cycle where one warp waits
//! on a TLB fill and another on an ALU result counts as TLB-induced.

use gmmu_sim::stats::pct;

/// Why a live core failed to issue on a given cycle. Declaration order is
/// the attribution priority (earlier wins when several causes coexist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallCause {
    /// A warp is parked on a page fault, waiting for the modeled CPU
    /// fault handler to map the page (demand paging).
    FaultService,
    /// A warp is asleep waiting for a page-walk to fill the TLB.
    TlbFill,
    /// The MMU rejected the access (blocking TLB busy or MSHRs full) and
    /// the warp is backing off before retrying.
    MmuReject,
    /// Waiting on a memory instruction whose data came from DRAM.
    Dram,
    /// Waiting on a memory instruction served by L1/L2 (hit latency,
    /// MSHR merge, or L2 hit).
    L1Mshr,
    /// Woken from a TLB sleep; re-presenting the remaining pages next
    /// cycle (the replay machinery's one-cycle turnaround).
    ReplayWake,
    /// A warp was ready but the scheduling policy (CCWS/TA-CCWS/TCWS)
    /// gated it.
    Throttled,
    /// Waiting on an ALU/branch pipeline latency.
    Pipeline,
    /// No runnable work: warps parked at a reconvergence barrier, or the
    /// core is between blocks (dispatch drought).
    Dispatch,
}

impl StallCause {
    /// Number of causes (the breakdown vector's length).
    pub const COUNT: usize = 9;

    /// Every cause, in priority (= display) order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::FaultService,
        StallCause::TlbFill,
        StallCause::MmuReject,
        StallCause::Dram,
        StallCause::L1Mshr,
        StallCause::ReplayWake,
        StallCause::Throttled,
        StallCause::Pipeline,
        StallCause::Dispatch,
    ];

    /// Short human-readable label (table column header).
    pub fn label(self) -> &'static str {
        match self {
            StallCause::FaultService => "fault svc",
            StallCause::TlbFill => "tlb fill",
            StallCause::MmuReject => "mmu reject",
            StallCause::Dram => "dram",
            StallCause::L1Mshr => "l1/mshr",
            StallCause::ReplayWake => "replay",
            StallCause::Throttled => "throttled",
            StallCause::Pipeline => "pipeline",
            StallCause::Dispatch => "dispatch",
        }
    }
}

/// Idle cycles split by [`StallCause`]. The sum of all entries equals the
/// `idle_cycles` counter it refines, on every run and both engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown([u64; StallCause::COUNT]);

impl StallBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` cycles to `cause`.
    #[inline]
    pub fn add(&mut self, cause: StallCause, n: u64) {
        self.0[cause as usize] += n;
    }

    /// Cycles charged to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.0[cause as usize]
    }

    /// Total cycles across all causes (equals `idle_cycles`).
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Accumulates another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// `(cause, cycles)` pairs in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Share of `cause` as a percentage of the breakdown's total.
    pub fn share_pct(&self, cause: StallCause) -> f64 {
        pct(self.get(cause), self.total())
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for StallBreakdown {
    fn save(&self, w: &mut Saver) {
        for v in &self.0 {
            w.u64(*v);
        }
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        for v in &mut self.0 {
            *v = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_is_declaration_order() {
        // `min` over causes picks the dominant blocker.
        assert!(StallCause::FaultService < StallCause::TlbFill);
        assert!(StallCause::TlbFill < StallCause::Dram);
        assert!(StallCause::Dram < StallCause::Pipeline);
        assert!(StallCause::Pipeline < StallCause::Dispatch);
        assert_eq!(StallCause::ALL.len(), StallCause::COUNT);
        for pair in StallCause::ALL.windows(2) {
            assert!(pair[0] < pair[1], "ALL must be sorted by priority");
        }
    }

    #[test]
    fn breakdown_accumulates_and_merges() {
        let mut a = StallBreakdown::new();
        a.add(StallCause::TlbFill, 10);
        a.add(StallCause::Dram, 5);
        let mut b = StallBreakdown::new();
        b.add(StallCause::TlbFill, 1);
        b.add(StallCause::Dispatch, 4);
        a.merge(&b);
        assert_eq!(a.get(StallCause::TlbFill), 11);
        assert_eq!(a.get(StallCause::Dram), 5);
        assert_eq!(a.get(StallCause::Dispatch), 4);
        assert_eq!(a.total(), 20);
        assert_eq!(a.share_pct(StallCause::Dram), 25.0);
        assert_eq!(a.iter().map(|(_, n)| n).sum::<u64>(), a.total());
    }
}
