//! Figure/table reproduction harnesses for the ASPLOS 2014 GPU MMU
//! paper, plus Criterion performance benchmarks of the simulator
//! itself.
//!
//! Every figure in the paper's evaluation has a binary here:
//!
//! ```text
//! cargo run --release -p gmmu-bench --bin fig02            # Figure 2
//! cargo run --release -p gmmu-bench --bin all_figures      # everything
//! cargo run --release -p gmmu-bench --bin fig06 -- --quick # smoke scale
//! ```
//!
//! The binaries wrap [`gmmu::figures`]; `EXPERIMENTS.md` in the
//! repository root records paper-reported vs. measured values.
