//! Cross-engine trace conformance harness.
//!
//! For every benchmark, captures a GMTR trace of one run and replays it
//! on all three execution engines (serial, parallel, event), with and
//! without deterministic fault injection. Every replay must reproduce
//! the captured run's statistics bit-identically (wall time excluded),
//! and every replay runs with the metrics channel on: the versioned
//! metrics snapshots of the three engines must be byte-identical too.
//! Any difference is listed and fails the harness. Results are printed
//! as a table and written to `BENCH_validate.json`.
//!
//! With `GMMU_EMIT_GOLDEN=dir` the harness additionally writes the two
//! golden fixtures (`pathfinder_tiny.gmtr`, `kmeans_tiny.gmtr`) that
//! `tests/trace.rs` pins the byte format against. The fixtures use the
//! quick scope and seed 7 regardless of command-line flags, so emission
//! is reproducible from any invocation.

use gmmu::experiments::designs;
use gmmu::prelude::*;
use gmmu::ExperimentOpts;
use gmmu_sim::metrics::Metrics;
use gmmu_sim::rng::fnv1a64;
use gmmu_trace::{assemble, capture_launch, replay_run_observed, Recorder, Trace};
use std::fmt::Write as _;
use std::time::Instant;

/// Captures `bench` under `cfg` at the harness scope, returning the
/// encoded trace.
fn capture(bench: Bench, scale: Scale, seed: u64, cfg: &GpuConfig, source: &str) -> Vec<u8> {
    let mut w = match &cfg.inject {
        Some(inj) if inj.unmap_fraction > 0.0 => build_demand_paged(bench, scale, seed, inj).0,
        _ => build(bench, scale, seed),
    };
    let launch = capture_launch(w.kernel.as_ref(), &w.space, cfg, source);
    let rec = Recorder::new(w.kernel.as_ref());
    let stats = Gpu::new(cfg.clone()).run_faulted(&rec, &mut w.space, &mut Observer::off());
    assemble(launch, rec, &stats).encode()
}

struct Row {
    bench: &'static str,
    variant: &'static str,
    engine: &'static str,
    cycles: u64,
    wall_s: f64,
    diff: Vec<&'static str>,
    /// FNV-1a 64 of the replay's metrics snapshot JSON; equal across
    /// engines when the snapshot is engine-invariant.
    metrics_fnv: u64,
}

fn main() {
    let opts = ExperimentOpts::from_args();

    if let Ok(dir) = std::env::var("GMMU_EMIT_GOLDEN") {
        emit_golden(&dir);
    }

    println!(
        "validate: capture/replay conformance at {:?} scale, seed {}",
        opts.scale, opts.seed
    );
    println!(
        "{:<14} {:<7} {:<10} {:>12} {:>8}  status",
        "bench", "run", "engine", "cycles", "wall_s"
    );

    let engines = [
        ("serial", EngineKind::Serial, 0usize),
        ("parallel", EngineKind::Parallel, 2),
        ("event", EngineKind::Event, 0),
    ];
    let mut rows: Vec<Row> = Vec::new();
    let mut failures = 0u32;
    let mut metrics_failures = 0u32;
    for bench in Bench::all() {
        let plain = opts.gpu(designs::augmented());
        let mut faulted = opts.gpu(designs::augmented());
        faulted.fault = FaultConfig::demand();
        faulted.inject = Some(FaultInjectConfig::smoke(opts.fault_seed));
        for (variant, cfg) in [("plain", plain), ("fault", faulted)] {
            let source = format!("{bench} {:?} seed={} ({variant})", opts.scale, opts.seed);
            let bytes = capture(bench, opts.scale, opts.seed, &cfg, &source);
            let trace = Trace::decode(&bytes).expect("a just-captured trace must decode");
            let mut snapshots: Vec<String> = Vec::with_capacity(engines.len());
            for (engine_name, engine, threads) in engines {
                let mut replay_cfg = trace.launch.config.clone();
                replay_cfg.engine = engine;
                replay_cfg.run_threads = threads;
                let mut obs = Observer::off();
                obs.metrics = Metrics::recording();
                let started = Instant::now();
                let (stats, snapshot) = replay_run_observed(&trace, &replay_cfg, &mut obs)
                    .expect("a just-captured trace must replay");
                let wall_s = started.elapsed().as_secs_f64();
                let snapshot = snapshot.expect("the metrics channel was on");
                let diff = trace.stats.diff(&stats);
                let status = if diff.is_empty() {
                    "ok".to_string()
                } else {
                    failures += 1;
                    format!("DIFF {diff:?}")
                };
                println!(
                    "{:<14} {:<7} {:<10} {:>12} {:>8.2}  {status}",
                    bench.name(),
                    variant,
                    engine_name,
                    stats.cycles,
                    wall_s
                );
                rows.push(Row {
                    bench: bench.name(),
                    variant,
                    engine: engine_name,
                    cycles: stats.cycles,
                    wall_s,
                    diff,
                    metrics_fnv: fnv1a64(snapshot.as_bytes()),
                });
                snapshots.push(snapshot);
            }
            // The snapshot is a pure fold of the run's metric events, so
            // the three engines must render byte-identical JSON.
            if snapshots.iter().any(|s| s != &snapshots[0]) {
                metrics_failures += 1;
                eprintln!(
                    "validate: metrics snapshots diverged across engines \
                     for {} ({variant})",
                    bench.name()
                );
            }
        }
    }

    let json = to_json(&opts, &rows, failures, metrics_failures);
    match std::fs::write("BENCH_validate.json", &json) {
        Ok(()) => eprintln!("[validate] wrote BENCH_validate.json"),
        Err(e) => eprintln!("[validate] could not write BENCH_validate.json: {e}"),
    }
    if failures > 0 || metrics_failures > 0 {
        if failures > 0 {
            eprintln!("validate: {failures} replay(s) diverged from their capture");
        }
        if metrics_failures > 0 {
            eprintln!("validate: {metrics_failures} capture(s) with engine-variant metrics");
        }
        std::process::exit(1)
    }
    println!(
        "validate: {} replays, all statistics bit-identical to capture, \
         all metrics snapshots engine-invariant",
        rows.len()
    );
}

fn to_json(opts: &ExperimentOpts, rows: &[Row], failures: u32, metrics_failures: u32) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"scale\": \"{:?}\",", opts.scale);
    let _ = writeln!(s, "  \"seed\": {},", opts.seed);
    let _ = writeln!(s, "  \"failures\": {failures},");
    let _ = writeln!(s, "  \"metrics_failures\": {metrics_failures},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let diff: Vec<String> = r.diff.iter().map(|d| format!("\"{d}\"")).collect();
        let _ = writeln!(
            s,
            "    {{\"bench\": \"{}\", \"variant\": \"{}\", \"engine\": \"{}\", \
             \"cycles\": {}, \"wall_s\": {:.4}, \"ok\": {}, \"diff\": [{}], \
             \"metrics_snapshot_fnv\": \"{:016x}\"}}{}",
            r.bench,
            r.variant,
            r.engine,
            r.cycles,
            r.wall_s,
            r.diff.is_empty(),
            diff.join(", "),
            r.metrics_fnv,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Writes the golden fixtures `tests/trace.rs` pins the byte format
/// against: quick scope (Tiny scale), seed 7, augmented MMU — exactly
/// the configuration the golden test re-captures under. Alongside the
/// traces it writes `metrics_pathfinder_tiny.json`, the metrics-on
/// replay snapshot of the pathfinder fixture, which pins the snapshot
/// JSON schema the same way.
fn emit_golden(dir: &str) {
    let cfg = ExperimentOpts::quick().gpu(designs::augmented());
    for (bench, name) in [
        (Bench::Pathfinder, "pathfinder_tiny"),
        (Bench::Kmeans, "kmeans_tiny"),
    ] {
        let source = format!("{bench} tiny seed=7");
        let bytes = capture(bench, Scale::Tiny, 7, &cfg, &source);
        let path = format!("{dir}/{name}.gmtr");
        match std::fs::write(&path, &bytes) {
            Ok(()) => eprintln!(
                "[validate] wrote golden fixture {path} ({} bytes)",
                bytes.len()
            ),
            Err(e) => {
                eprintln!("[validate] could not write {path}: {e}");
                std::process::exit(1)
            }
        }
        if bench != Bench::Pathfinder {
            continue;
        }
        let trace = Trace::decode(&bytes).expect("golden trace decodes");
        let mut obs = Observer::off();
        obs.metrics = Metrics::recording();
        let (_, snapshot) = replay_run_observed(&trace, &trace.launch.config.clone(), &mut obs)
            .expect("golden trace replays");
        let snapshot = snapshot.expect("the metrics channel was on");
        let path = format!("{dir}/metrics_{name}.json");
        match std::fs::write(&path, &snapshot) {
            Ok(()) => eprintln!(
                "[validate] wrote golden fixture {path} ({} bytes)",
                snapshot.len()
            ),
            Err(e) => {
                eprintln!("[validate] could not write {path}: {e}");
                std::process::exit(1)
            }
        }
    }
}
