//! Regenerates Figure 11 of the paper. Pass `--quick` for a smoke-scale run,
//! `--full` for the 30-core configuration, `--csv` for
//! machine-readable output after each table.
fn main() {
    let opts = gmmu::ExperimentOpts::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    let mut runner = gmmu::Runner::new(opts);
    let started = std::time::Instant::now();
    for table in runner.sweep(gmmu::figures::fig11) {
        println!("{table}");
        if csv {
            print!("{}", table.to_csv());
            println!();
        }
    }
    eprintln!(
        "[fig11] {} simulations in {:.1?}",
        runner.runs,
        started.elapsed()
    );
}
