//! Regenerates the Figures 8/9 worked example: three concurrent page
//! walks whose 12 serial PTE loads the coalescing scheduler reduces
//! to 7.
fn main() {
    // No simulations run here, but parse args anyway so flag handling
    // (and unknown-argument warnings) match the sibling binaries.
    let _ = gmmu::ExperimentOpts::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    for table in gmmu::figures::fig09() {
        println!("{table}");
        if csv {
            print!("{}", table.to_csv());
            println!();
        }
    }
}
