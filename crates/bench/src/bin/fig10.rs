//! Regenerates Figure 10 of the paper. Pass `--quick` for a smoke-scale run,
//! `--full` for the 30-core configuration, `--csv` for
//! machine-readable output after each table.
fn main() {
    let opts = gmmu::ExperimentOpts::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    let mut runner = gmmu::Runner::new(opts);
    let started = std::time::Instant::now();
    let tables = runner.sweep(|r| {
        let mut tables = gmmu::figures::fig10(r);
        tables.extend(gmmu::figures::fig10_stalls(r));
        tables
    });
    for table in tables {
        println!("{table}");
        if csv {
            print!("{}", table.to_csv());
            println!();
        }
    }
    eprintln!(
        "[fig10] {} simulations in {:.1?}",
        runner.runs,
        started.elapsed()
    );
}
