//! Prints the Section 5.2 methodology table for the selected scope.
fn main() {
    let opts = gmmu::ExperimentOpts::from_args();
    for table in gmmu::figures::table_config(opts) {
        println!("{table}");
    }
}
