//! Runs every figure harness in paper order and prints all tables —
//! the full evaluation in one command. `--quick` for a smoke pass.
fn main() {
    let opts = gmmu::ExperimentOpts::from_args();
    let mut runner = gmmu::Runner::new(opts);
    let started = std::time::Instant::now();
    for table in gmmu::figures::table_config(opts) {
        println!("{table}");
    }
    for table in gmmu::figures::fig09() {
        println!("{table}");
    }
    type FigFn = fn(&mut gmmu::Runner) -> Vec<gmmu::prelude::Table>;
    let figs: [(&str, FigFn); 13] = [
        ("fig02", gmmu::figures::fig02),
        ("fig03", gmmu::figures::fig03),
        ("fig04", gmmu::figures::fig04),
        ("fig06", gmmu::figures::fig06),
        ("fig07", gmmu::figures::fig07),
        ("fig10", gmmu::figures::fig10),
        ("fig11", gmmu::figures::fig11),
        ("fig13", gmmu::figures::fig13),
        ("fig16", gmmu::figures::fig16),
        ("fig17", gmmu::figures::fig17),
        ("fig18", gmmu::figures::fig18),
        ("fig20", gmmu::figures::fig20),
        ("fig22", gmmu::figures::fig22),
    ];
    for (name, f) in figs {
        let t0 = std::time::Instant::now();
        for table in f(&mut runner) {
            println!("{table}");
        }
        eprintln!("[{name}] done in {:.1?}", t0.elapsed());
    }
    for table in gmmu::figures::sec9(&mut runner) {
        println!("{table}");
    }
    eprintln!(
        "[all] {} simulations in {:.1?}",
        runner.runs,
        started.elapsed()
    );
}
