//! Runs every figure harness in paper order and prints all tables —
//! the full evaluation in one command. `--quick` for a smoke pass,
//! `--jobs N` to size the worker pool.
//!
//! The evaluation is executed in three passes: a *recording* pass asks
//! every figure function for its design points without simulating
//! anything, the union of those points (deduplicated across figures)
//! runs as one parallel batch, and a *replay* pass regenerates each
//! figure from the warm memo cache and prints it in paper order. A
//! machine-readable timing report is written to
//! `BENCH_all_figures.json`.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Instant;

type FigFn = fn(&mut gmmu::Runner) -> Vec<gmmu::prelude::Table>;

fn main() {
    let opts = gmmu::ExperimentOpts::from_args();
    let mut runner = gmmu::Runner::new(opts);
    let started = Instant::now();
    for table in gmmu::figures::table_config(opts) {
        println!("{table}");
    }
    for table in gmmu::figures::fig09() {
        println!("{table}");
    }
    let figs: [(&str, FigFn); 15] = [
        ("fig02", gmmu::figures::fig02),
        ("fig03", gmmu::figures::fig03),
        ("fig04", gmmu::figures::fig04),
        ("fig06", gmmu::figures::fig06),
        ("fig07", gmmu::figures::fig07),
        ("fig10", gmmu::figures::fig10),
        ("fig10_stalls", gmmu::figures::fig10_stalls),
        ("fig11", gmmu::figures::fig11),
        ("fig13", gmmu::figures::fig13),
        ("fig16", gmmu::figures::fig16),
        ("fig17", gmmu::figures::fig17),
        ("fig18", gmmu::figures::fig18),
        ("fig20", gmmu::figures::fig20),
        ("fig22", gmmu::figures::fig22),
        ("sec9", gmmu::figures::sec9),
    ];

    // Recording pass: collect every figure's design points. `sims`
    // counts the points a figure contributes beyond those already
    // requested by an earlier figure.
    let mut union = Vec::new();
    let mut seen = HashSet::new();
    let mut sims_per_fig = Vec::new();
    for (_, f) in figs {
        let (_, specs) = runner.record(f);
        let fresh = specs.iter().filter(|s| seen.insert(s.key())).count();
        sims_per_fig.push(fresh);
        union.extend(specs);
    }

    // One parallel batch over the whole evaluation. With `--journal`
    // this is a restartable queue: points already journaled are skipped
    // and each fresh point is journaled the moment it completes, so a
    // killed run (or `--kill-after N`) resumes without recompute.
    let t_batch = Instant::now();
    runner.run_points_parallel(union);
    let batch_wall = t_batch.elapsed();

    // A shard worker only fills its slice of the journal; replaying the
    // figures would simulate every other shard's points on-demand.
    // Print/replay happens in the final merge run (same --journal, no
    // --shard).
    if let Some((i, n)) = opts.shard {
        if n > 1 {
            eprintln!(
                "[all] shard {i}/{n}: {} point(s) simulated, {} from the journal; \
                 run unsharded with the same --journal to print the figures",
                runner.runs, runner.journal_hits
            );
            return;
        }
    }

    // Replay pass: print each figure from the warm cache.
    let mut fig_walls = Vec::new();
    for (name, f) in figs {
        let t0 = Instant::now();
        for table in f(&mut runner) {
            println!("{table}");
        }
        let wall = t0.elapsed();
        eprintln!("[{name}] done in {wall:.1?}");
        fig_walls.push(wall);
    }

    // The multi-tenant study runs outside the memo cache: the journal
    // stores the pinned RunStats layout, which has no per-tenant slice.
    let t0 = Instant::now();
    for table in gmmu::figures::fig_multitenant(&opts) {
        println!("{table}");
    }
    let mt_wall = t0.elapsed();
    eprintln!("[fig_multitenant] done in {mt_wall:.1?}");

    let total_wall = started.elapsed();
    eprintln!(
        "[all] {} simulations in {:.1?} ({} jobs, {:.1} sims/s)",
        runner.runs,
        total_wall,
        opts.jobs,
        runner.runs as f64 / batch_wall.as_secs_f64().max(1e-9),
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scale\": \"{:?}\",", opts.scale);
    let _ = writeln!(json, "  \"jobs\": {},", opts.jobs);
    let _ = writeln!(
        json,
        "  \"engine\": \"{}\",",
        match opts.engine {
            gmmu::prelude::EngineKind::Parallel => "parallel",
            gmmu::prelude::EngineKind::Event => "event",
            _ => "serial",
        }
    );
    let _ = writeln!(json, "  \"run_threads\": {},", opts.run_threads);
    let _ = writeln!(json, "  \"total_sims\": {},", runner.runs);
    let _ = writeln!(json, "  \"journal_hits\": {},", runner.journal_hits);
    let _ = writeln!(json, "  \"batch_wall_s\": {:.3},", batch_wall.as_secs_f64());
    let _ = writeln!(json, "  \"wall_s\": {:.3},", total_wall.as_secs_f64());
    let _ = writeln!(
        json,
        "  \"sims_per_sec\": {:.3},",
        runner.runs as f64 / batch_wall.as_secs_f64().max(1e-9)
    );
    let _ = writeln!(json, "  \"figures\": [");
    for (i, (name, _)) in figs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"sims\": {}, \"replay_wall_s\": {:.3}}},",
            sims_per_fig[i],
            fig_walls[i].as_secs_f64(),
        );
    }
    let _ = writeln!(
        json,
        "    {{\"name\": \"fig_multitenant\", \"sims\": 0, \"replay_wall_s\": {:.3}}}",
        mt_wall.as_secs_f64()
    );
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in runner.point_log.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"bench\": \"{:?}\", \"large_pages\": {}, \
             \"fingerprint\": \"{:016x}\", \"engine\": \"{}\", \
             \"wall_s\": {:.4}, \"cycles\": {}, \
             \"sim_cycles_per_sec\": {:.0}, \"observed\": {}}}{}",
            p.bench,
            p.large_pages,
            p.fingerprint,
            p.engine,
            p.wall_s,
            p.cycles,
            p.sim_cycles_per_sec,
            p.observed,
            if i + 1 < runner.point_log.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write("BENCH_all_figures.json", &json) {
        Ok(()) => eprintln!("[all] wrote BENCH_all_figures.json"),
        Err(e) => eprintln!("[all] could not write BENCH_all_figures.json: {e}"),
    }
}
