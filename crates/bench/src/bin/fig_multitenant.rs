//! Multi-tenant robustness figure (no paper counterpart, DESIGN.md §13):
//! per-tenant slowdown and unfairness vs co-runner count, ASID-tagged
//! translation against the flush-on-switch baseline. Pass `--quick` for
//! a smoke-scale run, `--full` for the 30-core configuration, `--csv`
//! for machine-readable output after each table.
fn main() {
    let opts = gmmu::ExperimentOpts::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    let started = std::time::Instant::now();
    for table in gmmu::figures::fig_multitenant(&opts) {
        println!("{table}");
        if csv {
            print!("{}", table.to_csv());
            println!();
        }
    }
    if let Some(path) = opts.metrics {
        let body = gmmu::figures::multitenant_metrics_snapshot(&opts);
        match std::fs::write(path, &body) {
            Ok(()) => eprintln!("[fig_multitenant] wrote per-tenant metrics to {path}"),
            Err(e) => {
                eprintln!("[fig_multitenant] cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("[fig_multitenant] done in {:.1?}", started.elapsed());
}
