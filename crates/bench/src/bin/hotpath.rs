//! Microbenchmarks of the simulator's hot-path data structures, with
//! linear-scan reference implementations alongside so the wins from the
//! indexed variants are measured, not assumed. Self-contained timing
//! harness (no external benchmarking crates), same batch-and-best idiom
//! as `benches/simulator.rs`. Results are printed as a table and
//! written to `BENCH_hotpath.json`.
//!
//! Covered:
//! * `Tlb::lookup` — set-indexed lookup vs. a full-scan TLB of the
//!   same geometry and replacement policy;
//! * the MSHR file — lazy min-heap `expire`/`earliest_completion` vs. a
//!   map-scan reference (the shape the code had before the heap);
//! * the coalescer's linear-scan dedup inner loop, coalesced and
//!   divergent warps;
//! * `ShaderCore::next_event_at` — cached vs. recomputed every query
//!   (the idle-skip engine queries every core on every skip attempt);
//! * the event calendar — `peek`/`take_due`/`schedule` steps vs. the
//!   linear all-cores min-scan the skip engine performs per skip;
//! * the engines end-to-end — serial vs. event-calendar
//!   `sim_cycles_per_sec` on a real workload (same cycles, by
//!   construction; the ratio is the sweep-wall-time win).

use gmmu_core::mmu::MmuModel;
use gmmu_core::tlb::{Tlb, TlbConfig};
use gmmu_mem::mshr::{MshrFile, MshrOutcome};
use gmmu_mem::{MemConfig, MemorySystem};
use gmmu_sim::trace::Tracer;
use gmmu_simt::coalesce::{coalesce, CoalesceBuf};
use gmmu_simt::core::ShaderCore;
use gmmu_simt::program::{MemKind, Op, Program, ThreadId};
use gmmu_simt::{GpuConfig, Kernel};
use gmmu_vm::{AddressSpace, PageSize, Ppn, Region, SpaceConfig, VAddr, Vpn};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` in self-calibrating batches for roughly `budget` and
/// returns the best per-iteration time in nanoseconds.
fn bench_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed() >= Duration::from_millis(2) || iters >= 1 << 30 {
            break;
        }
        iters *= 2;
    }
    let deadline = Instant::now() + budget;
    let mut best = f64::INFINITY;
    let mut batches = 0u32;
    while Instant::now() < deadline || batches < 3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64 * 1e9);
        batches += 1;
    }
    best
}

/// Deterministic 64-bit LCG step.
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 16
}

// ---------------------------------------------------------------- TLB

/// A fully-associative full-scan TLB with the same LRU policy: the
/// reference the set-indexed [`Tlb`] is measured against.
struct LinearTlb {
    entries: Vec<(Vpn, Ppn, u64)>, // (vpn, ppn, last_use)
    capacity: usize,
}

impl LinearTlb {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    fn lookup(&mut self, vpn: Vpn, stamp: u64) -> Option<Ppn> {
        let hit = self.entries.iter_mut().find(|e| e.0 == vpn)?;
        hit.2 = stamp;
        Some(hit.1)
    }

    fn fill(&mut self, vpn: Vpn, ppn: Ppn, stamp: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            *e = (vpn, ppn, stamp);
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((vpn, ppn, stamp));
            return;
        }
        let lru = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.2)
            .map(|(i, _)| i)
            .expect("non-empty");
        self.entries[lru] = (vpn, ppn, stamp);
    }
}

/// 256-lookup batch over a hot set of 128 pages plus a cold tail, the
/// mix a TLB-friendly workload presents.
fn tlb_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    const PAGES: u64 = 160; // 128 resident + misses to keep fills live
    let mut tlb = Tlb::new(TlbConfig::naive());
    let mut linear = LinearTlb::new(TlbConfig::naive().entries);
    let mut stamp = 0u64;
    for p in 0..PAGES {
        tlb.fill(Vpn::new(p), Ppn::new(p), 0, stamp);
        linear.fill(Vpn::new(p), Ppn::new(p), stamp);
        stamp += 1;
    }
    let mut x = 0x2545f4914f6cdd1du64;
    let seq: Vec<Vpn> = (0..256).map(|_| Vpn::new(lcg(&mut x) % PAGES)).collect();

    let ns = bench_ns(budget, || {
        for &vpn in &seq {
            stamp += 1;
            match tlb.lookup(vpn, 0, stamp) {
                Some(hit) => {
                    black_box(hit.ppn);
                }
                None => {
                    tlb.fill(vpn, Ppn::new(vpn.raw()), 0, stamp);
                }
            }
        }
    });
    results.push(("tlb_lookup_set_indexed_x256".into(), ns));

    let ns = bench_ns(budget, || {
        for &vpn in &seq {
            stamp += 1;
            match linear.lookup(vpn, stamp) {
                Some(ppn) => {
                    black_box(ppn);
                }
                None => linear.fill(vpn, Ppn::new(vpn.raw()), stamp),
            }
        }
    });
    results.push(("tlb_lookup_linear_ref_x256".into(), ns));
}

// --------------------------------------------------------------- MSHR

/// Map-scan MSHR reference: `expire` walks every entry and
/// `earliest_completion` scans for the minimum — the pre-heap shape.
struct LinearMshr {
    capacity: usize,
    entries: HashMap<u64, u64>,
}

impl LinearMshr {
    fn allocate(&mut self, key: u64) -> bool {
        if self.entries.contains_key(&key) || self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.insert(key, u64::MAX);
        true
    }

    fn expire(&mut self, now: u64) {
        self.entries.retain(|_, done| *done > now);
    }

    fn earliest_completion(&self) -> u64 {
        self.entries.values().copied().min().unwrap_or(u64::MAX)
    }
}

/// One simulated-cycle's worth of MSHR traffic, repeated 256 times per
/// iteration: allocate + retime a few keys, then the per-cycle
/// `expire` + `earliest_completion` pair the translate path issues.
fn mshr_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    const KEYS: u64 = 24;
    let mut heap = MshrFile::new(32);
    let mut linear = LinearMshr {
        capacity: 32,
        entries: HashMap::new(),
    };
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut now = 0u64;
    let ns = bench_ns(budget, || {
        for _ in 0..256 {
            now += 1;
            let key = lcg(&mut x) % KEYS;
            if heap.allocate(key) == MshrOutcome::Allocated {
                heap.set_completion(key, now + 20 + lcg(&mut x) % 40);
            }
            heap.expire(now);
            black_box(heap.earliest_completion());
        }
    });
    results.push(("mshr_heap_cycle_x256".into(), ns));

    let mut x = 0x9e3779b97f4a7c15u64;
    let mut now = 0u64;
    let ns = bench_ns(budget, || {
        for _ in 0..256 {
            now += 1;
            let key = lcg(&mut x) % KEYS;
            if linear.allocate(key) {
                linear.entries.insert(key, now + 20 + lcg(&mut x) % 40);
            }
            linear.expire(now);
            black_box(linear.earliest_completion());
        }
    });
    results.push(("mshr_linear_ref_cycle_x256".into(), ns));
}

// ---------------------------------------------------------- Coalescer

fn coalesce_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    let mut buf = CoalesceBuf::new();
    let unit: Vec<(VAddr, u16)> = (0..32)
        .map(|lane| (VAddr::new(0x4000_0000 + lane * 4), 0u16))
        .collect();
    let ns = bench_ns(budget, || {
        coalesce(unit.iter().copied(), &mut buf);
        black_box(buf.page_divergence());
    });
    results.push(("coalesce_warp_unit_stride".into(), ns));

    let mut x = 0xdead_beef_cafe_f00du64;
    let scattered: Vec<(VAddr, u16)> = (0..32)
        .map(|_| (VAddr::new(0x4000_0000 + (lcg(&mut x) % 64) * 4096), 0u16))
        .collect();
    let ns = bench_ns(budget, || {
        coalesce(scattered.iter().copied(), &mut buf);
        black_box(buf.page_divergence());
    });
    results.push(("coalesce_warp_divergent".into(), ns));
}

// ------------------------------------------------------ next_event_at

/// Looping stream kernel: enough in-flight state that a shader core has
/// a non-trivial next-event computation.
struct StreamKernel {
    program: Program,
    region: Region,
    threads: u32,
}

impl Kernel for StreamKernel {
    fn name(&self) -> &str {
        "hotpath-stream"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn num_threads(&self) -> u32 {
        self.threads
    }
    fn block_threads(&self) -> u32 {
        128
    }
    fn mem_addr(&self, tid: ThreadId, _site: u16, iter: u32) -> VAddr {
        let off = (tid as u64 * 4096 + iter as u64 * 256) % (1 << 20);
        self.region.at(off & !7)
    }
    fn branch_taken(&self, _tid: ThreadId, _site: u16, iter: u32) -> bool {
        iter + 1 < 4
    }
}

fn next_event_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    let mut space = AddressSpace::new(SpaceConfig::default());
    let region = space
        .map_region("stream", 1 << 20, PageSize::Base4K)
        .expect("map");
    let kernel = StreamKernel {
        program: Program::new(vec![
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            },
            Op::Branch {
                site: 1,
                taken_pc: 0,
                reconv_pc: 2,
            },
        ]),
        region,
        threads: 128,
    };
    let cfg = GpuConfig {
        n_cores: 1,
        warps_per_core: 8,
        warps_per_block: 4,
        mmu: MmuModel::augmented(),
        ..GpuConfig::default()
    };
    let mut core = ShaderCore::new(0, &cfg);
    core.push_block(0, 128);
    let mut mem = MemorySystem::new(MemConfig::default());
    let mut iters = vec![0u32; 128 * kernel.program.num_sites()];
    let mut tracer = Tracer::Off;
    // Tick into the middle of the run so walks, fills, and warp timers
    // are all in flight.
    let mut now = 0u64;
    while now < 300 && core.has_work() {
        core.tick(now, &mut mem, &space, &kernel, &mut iters, &mut tracer);
        now += 1;
    }
    assert!(core.has_work(), "kernel drained before the measurement");

    let ns = bench_ns(budget, || {
        black_box(core.next_event_at(now));
    });
    results.push(("next_event_at_cached".into(), ns));

    let ns = bench_ns(budget, || {
        core.invalidate_next_event_cache();
        black_box(core.next_event_at(now));
    });
    results.push(("next_event_at_recomputed".into(), ns));
}

// ------------------------------------------------------------ Calendar

/// One engine scheduling step over 32 cores, repeated 256 times per
/// iteration: jump to the next wake cycle, collect the due keys, and
/// reschedule each — against the linear min-scan over every core's
/// `next_event_at` the idle-skip engine performs instead.
fn calendar_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    use gmmu_sim::calendar::Calendar;
    const KEYS: u32 = 32;

    let mut cal = Calendar::new(KEYS as usize);
    let mut x = 0x2545f4914f6cdd1du64;
    for k in 0..KEYS {
        cal.schedule(k, 1 + lcg(&mut x) % 64);
    }
    let mut due: Vec<u32> = Vec::with_capacity(KEYS as usize);
    let ns = bench_ns(budget, || {
        for _ in 0..256 {
            let now = cal.peek_cycle().expect("calendar never drains");
            cal.take_due(now, &mut due);
            for &k in &due {
                cal.schedule(k, now + 1 + lcg(&mut x) % 64);
            }
            black_box(due.len());
        }
    });
    results.push(("calendar_step_x256".into(), ns));

    let mut x = 0x2545f4914f6cdd1du64;
    let mut wake: Vec<u64> = (0..KEYS).map(|_| 1 + lcg(&mut x) % 64).collect();
    let ns = bench_ns(budget, || {
        for _ in 0..256 {
            let now = wake.iter().copied().min().expect("non-empty");
            let mut taken = 0usize;
            for w in wake.iter_mut() {
                if *w <= now {
                    *w = now + 1 + lcg(&mut x) % 64;
                    taken += 1;
                }
            }
            black_box(taken);
        }
    });
    results.push(("calendar_linear_scan_x256".into(), ns));
}

// ------------------------------------------------------------- Engines

/// End-to-end engine throughput on one real workload: best-of-3
/// `sim_cycles_per_sec` for the serial and event-calendar engines.
/// The runs are bit-identical (asserted); only the wall time differs.
fn engine_benches() -> (f64, f64) {
    use gmmu::prelude::*;
    let w = build(Bench::Bfs, Scale::Tiny, 7);
    let best = |engine: EngineKind| -> (f64, u64) {
        let mut cfg = gmmu::ExperimentOpts::quick().gpu(MmuModel::augmented());
        cfg.engine = engine;
        let mut cycles = 0u64;
        let mut rate = 0f64;
        for _ in 0..3 {
            let stats = gmmu_simt::gpu::run_kernel(cfg.clone(), w.kernel.as_ref(), &w.space);
            cycles = stats.cycles;
            rate = rate.max(stats.cycles_per_sec());
        }
        (rate, cycles)
    };
    let (serial, serial_cycles) = best(EngineKind::Serial);
    let (event, event_cycles) = best(EngineKind::Event);
    assert_eq!(
        serial_cycles, event_cycles,
        "the engines must simulate the same run"
    );
    (serial, event)
}

// ------------------------------------------------------------- Metrics

/// End-to-end metrics-channel overhead on one real workload: best-of-3
/// `sim_cycles_per_sec` with the channel instrumented-but-off (the
/// default — every record site compiles down to an enabled check) and
/// fully on (per-core staging buffers, per-cycle drains, sink folds).
/// Both runs simulate bit-identical behaviour; only wall time differs.
fn metrics_benches() -> (f64, f64) {
    use gmmu::prelude::*;
    use gmmu_sim::metrics::Metrics;
    use gmmu_simt::Observer;
    let w = build(Bench::Bfs, Scale::Tiny, 7);
    let cfg = gmmu::ExperimentOpts::quick().gpu(MmuModel::augmented());
    let best = |on: bool| -> (f64, u64) {
        let mut cycles = 0u64;
        let mut rate = 0f64;
        for _ in 0..3 {
            let mut obs = Observer::off();
            if on {
                obs.metrics = Metrics::recording();
            }
            let stats = Gpu::new(cfg.clone()).run_observed(w.kernel.as_ref(), &w.space, &mut obs);
            cycles = stats.cycles;
            rate = rate.max(stats.cycles_per_sec());
        }
        (rate, cycles)
    };
    let (off, off_cycles) = best(false);
    let (on, on_cycles) = best(true);
    assert_eq!(
        off_cycles, on_cycles,
        "the metrics channel must not perturb the simulation"
    );
    (off, on)
}

fn main() {
    let budget = Duration::from_millis(150);
    let mut results: Vec<(String, f64)> = Vec::new();
    tlb_benches(&mut results, budget);
    mshr_benches(&mut results, budget);
    coalesce_benches(&mut results, budget);
    next_event_benches(&mut results, budget);
    calendar_benches(&mut results, budget);
    let (serial_rate, event_rate) = engine_benches();
    let (metrics_off_rate, metrics_on_rate) = metrics_benches();

    for (name, ns) in &results {
        println!("{name:<32} {ns:>12.1} ns/iter");
    }
    let ratio = |num: &str, den: &str| -> f64 {
        let get = |n: &str| results.iter().find(|(name, _)| name == n).map(|r| r.1);
        match (get(num), get(den)) {
            (Some(a), Some(b)) if a > 0.0 => b / a,
            _ => 0.0,
        }
    };
    let tlb_speedup = ratio("tlb_lookup_set_indexed_x256", "tlb_lookup_linear_ref_x256");
    let mshr_speedup = ratio("mshr_heap_cycle_x256", "mshr_linear_ref_cycle_x256");
    let cache_speedup = ratio("next_event_at_cached", "next_event_at_recomputed");
    let calendar_speedup = ratio("calendar_step_x256", "calendar_linear_scan_x256");
    let engine_speedup = if serial_rate > 0.0 {
        event_rate / serial_rate
    } else {
        0.0
    };
    println!("tlb set-indexed vs linear:      {tlb_speedup:.2}x");
    println!("mshr heap vs map-scan:          {mshr_speedup:.2}x");
    println!("next-event cached vs recompute: {cache_speedup:.2}x");
    println!("calendar vs linear min-scan:    {calendar_speedup:.2}x");
    println!(
        "event engine vs serial:         {engine_speedup:.2}x \
         ({event_rate:.0} vs {serial_rate:.0} sim cycles/s)"
    );
    let metrics_off_vs_unobserved = if serial_rate > 0.0 {
        metrics_off_rate / serial_rate
    } else {
        0.0
    };
    let metrics_on_vs_off = if metrics_off_rate > 0.0 {
        metrics_on_rate / metrics_off_rate
    } else {
        0.0
    };
    println!(
        "metrics off vs unobserved:      {metrics_off_vs_unobserved:.2}x \
         ({metrics_off_rate:.0} vs {serial_rate:.0} sim cycles/s)"
    );
    println!(
        "metrics on vs off:              {metrics_on_vs_off:.2}x \
         ({metrics_on_rate:.0} vs {metrics_off_rate:.0} sim cycles/s)"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benches\": [");
    for (i, (name, ns)) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"ns_per_iter\": {ns:.1}}}{}",
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    let _ = writeln!(json, "    \"tlb_set_indexed_vs_linear\": {tlb_speedup:.3},");
    let _ = writeln!(json, "    \"mshr_heap_vs_linear\": {mshr_speedup:.3},");
    let _ = writeln!(
        json,
        "    \"next_event_cached_vs_recomputed\": {cache_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"calendar_vs_linear_scan\": {calendar_speedup:.3}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"metrics\": {{");
    let _ = writeln!(
        json,
        "    \"off_sim_cycles_per_sec\": {metrics_off_rate:.0},"
    );
    let _ = writeln!(json, "    \"on_sim_cycles_per_sec\": {metrics_on_rate:.0},");
    let _ = writeln!(
        json,
        "    \"off_vs_unobserved\": {metrics_off_vs_unobserved:.3},"
    );
    let _ = writeln!(json, "    \"on_vs_off\": {metrics_on_vs_off:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"engine\": {{");
    let _ = writeln!(json, "    \"serial_sim_cycles_per_sec\": {serial_rate:.0},");
    let _ = writeln!(json, "    \"event_sim_cycles_per_sec\": {event_rate:.0},");
    let _ = writeln!(json, "    \"event_vs_serial\": {engine_speedup:.3}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    match std::fs::write("BENCH_hotpath.json", &json) {
        Ok(()) => eprintln!("[hotpath] wrote BENCH_hotpath.json"),
        Err(e) => eprintln!("[hotpath] could not write BENCH_hotpath.json: {e}"),
    }
}
