//! Microbenchmarks of the simulator's hot-path data structures, with
//! linear-scan reference implementations alongside so the wins from the
//! indexed variants are measured, not assumed. Self-contained timing
//! harness (no external benchmarking crates), same batch-and-best idiom
//! as `benches/simulator.rs`. Results are printed as a table and
//! written to `BENCH_hotpath.json`.
//!
//! Covered:
//! * `Tlb::lookup` — set-indexed lookup vs. a full-scan TLB of the
//!   same geometry and replacement policy;
//! * the MSHR file — lazy min-heap `expire`/`earliest_completion` vs. a
//!   map-scan reference (the shape the code had before the heap);
//! * the coalescer's linear-scan dedup inner loop, coalesced and
//!   divergent warps;
//! * `ShaderCore::next_event_at` — cached vs. recomputed every query
//!   (the idle-skip engine queries every core on every skip attempt);
//! * the event calendar — `peek`/`take_due`/`schedule` steps vs. the
//!   linear all-cores min-scan the skip engine performs per skip;
//! * the engines end-to-end — serial vs. event-calendar
//!   `sim_cycles_per_sec` on a real workload (same cycles, by
//!   construction; the ratio is the sweep-wall-time win);
//! * the arena page table vs. a boxed-per-node reference (the shape the
//!   code had before the slab arena), on the translate path;
//! * the time-wheel calendar vs. a lazy min-heap reference (its
//!   pre-wheel shape) and vs. the linear min-scan;
//! * allocation discipline — the binary installs a counting global
//!   allocator and reports whole-run allocations per simulated
//!   kilocycle for each engine (the machine-independent regression
//!   signal CI gates on);
//! * a standard multi-tenant point — 4 co-running tenants under the
//!   default ASID-tagged policy, `sim_cycles_per_sec` end to end.

use gmmu_core::mmu::MmuModel;
use gmmu_core::tlb::{Tlb, TlbConfig};
use gmmu_mem::mshr::{MshrFile, MshrOutcome};
use gmmu_mem::{MemConfig, MemorySystem};
use gmmu_sim::trace::Tracer;
use gmmu_simt::coalesce::{coalesce, CoalesceBuf};
use gmmu_simt::core::ShaderCore;
use gmmu_simt::program::{MemKind, Op, Program, ThreadId};
use gmmu_simt::{GpuConfig, Kernel};
use gmmu_vm::frame::{FrameAlloc, FramePolicy};
use gmmu_vm::PageTable;
use gmmu_vm::{AddressSpace, PageSize, Ppn, Region, SpaceConfig, VAddr, Vpn};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Counts every heap acquisition (alloc/realloc/alloc_zeroed; frees are
/// uninteresting — a steady-state free implies a later matching alloc).
/// Mirrors `tests/alloc_discipline.rs`, which asserts the zero-alloc
/// window; this binary *reports* the whole-run rate per engine.
struct CountingAlloc;

static ALLOCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn allocs() -> u64 {
    ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
}

unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Times `f` in self-calibrating batches for roughly `budget` and
/// returns the best per-iteration time in nanoseconds.
fn bench_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed() >= Duration::from_millis(2) || iters >= 1 << 30 {
            break;
        }
        iters *= 2;
    }
    let deadline = Instant::now() + budget;
    let mut best = f64::INFINITY;
    let mut batches = 0u32;
    while Instant::now() < deadline || batches < 3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64 * 1e9);
        batches += 1;
    }
    best
}

/// Deterministic 64-bit LCG step.
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 16
}

// ---------------------------------------------------------------- TLB

/// A fully-associative full-scan TLB with the same LRU policy: the
/// reference the set-indexed [`Tlb`] is measured against.
struct LinearTlb {
    entries: Vec<(Vpn, Ppn, u64)>, // (vpn, ppn, last_use)
    capacity: usize,
}

impl LinearTlb {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    fn lookup(&mut self, vpn: Vpn, stamp: u64) -> Option<Ppn> {
        let hit = self.entries.iter_mut().find(|e| e.0 == vpn)?;
        hit.2 = stamp;
        Some(hit.1)
    }

    fn fill(&mut self, vpn: Vpn, ppn: Ppn, stamp: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            *e = (vpn, ppn, stamp);
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((vpn, ppn, stamp));
            return;
        }
        let lru = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.2)
            .map(|(i, _)| i)
            .expect("non-empty");
        self.entries[lru] = (vpn, ppn, stamp);
    }
}

/// 256-lookup batch over a hot set of 128 pages plus a cold tail, the
/// mix a TLB-friendly workload presents.
fn tlb_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    const PAGES: u64 = 160; // 128 resident + misses to keep fills live
    let mut tlb = Tlb::new(TlbConfig::naive());
    let mut linear = LinearTlb::new(TlbConfig::naive().entries);
    let mut stamp = 0u64;
    for p in 0..PAGES {
        tlb.fill(Vpn::new(p), Ppn::new(p), 0, stamp);
        linear.fill(Vpn::new(p), Ppn::new(p), stamp);
        stamp += 1;
    }
    let mut x = 0x2545f4914f6cdd1du64;
    let seq: Vec<Vpn> = (0..256).map(|_| Vpn::new(lcg(&mut x) % PAGES)).collect();

    let ns = bench_ns(budget, || {
        for &vpn in &seq {
            stamp += 1;
            match tlb.lookup(vpn, 0, stamp) {
                Some(hit) => {
                    black_box(hit.ppn);
                }
                None => {
                    tlb.fill(vpn, Ppn::new(vpn.raw()), 0, stamp);
                }
            }
        }
    });
    results.push(("tlb_lookup_set_indexed_x256".into(), ns));

    let ns = bench_ns(budget, || {
        for &vpn in &seq {
            stamp += 1;
            match linear.lookup(vpn, stamp) {
                Some(ppn) => {
                    black_box(ppn);
                }
                None => linear.fill(vpn, Ppn::new(vpn.raw()), stamp),
            }
        }
    });
    results.push(("tlb_lookup_linear_ref_x256".into(), ns));
}

// --------------------------------------------------------------- MSHR

/// Map-scan MSHR reference: `expire` walks every entry and
/// `earliest_completion` scans for the minimum — the pre-heap shape.
struct LinearMshr {
    capacity: usize,
    entries: HashMap<u64, u64>,
}

impl LinearMshr {
    fn allocate(&mut self, key: u64) -> bool {
        if self.entries.contains_key(&key) || self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.insert(key, u64::MAX);
        true
    }

    fn expire(&mut self, now: u64) {
        self.entries.retain(|_, done| *done > now);
    }

    fn earliest_completion(&self) -> u64 {
        self.entries.values().copied().min().unwrap_or(u64::MAX)
    }
}

/// One simulated-cycle's worth of MSHR traffic, repeated 256 times per
/// iteration: allocate + retime a few keys, then the per-cycle
/// `expire` + `earliest_completion` pair the translate path issues.
fn mshr_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    const KEYS: u64 = 24;
    let mut heap = MshrFile::new(32);
    let mut linear = LinearMshr {
        capacity: 32,
        entries: HashMap::new(),
    };
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut now = 0u64;
    let ns = bench_ns(budget, || {
        for _ in 0..256 {
            now += 1;
            let key = lcg(&mut x) % KEYS;
            if heap.allocate(key) == MshrOutcome::Allocated {
                heap.set_completion(key, now + 20 + lcg(&mut x) % 40);
            }
            heap.expire(now);
            black_box(heap.earliest_completion());
        }
    });
    results.push(("mshr_heap_cycle_x256".into(), ns));

    let mut x = 0x9e3779b97f4a7c15u64;
    let mut now = 0u64;
    let ns = bench_ns(budget, || {
        for _ in 0..256 {
            now += 1;
            let key = lcg(&mut x) % KEYS;
            if linear.allocate(key) {
                linear.entries.insert(key, now + 20 + lcg(&mut x) % 40);
            }
            linear.expire(now);
            black_box(linear.earliest_completion());
        }
    });
    results.push(("mshr_linear_ref_cycle_x256".into(), ns));
}

// ---------------------------------------------------------- Coalescer

fn coalesce_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    let mut buf = CoalesceBuf::new();
    let unit: Vec<(VAddr, u16)> = (0..32)
        .map(|lane| (VAddr::new(0x4000_0000 + lane * 4), 0u16))
        .collect();
    let ns = bench_ns(budget, || {
        coalesce(unit.iter().copied(), &mut buf);
        black_box(buf.page_divergence());
    });
    results.push(("coalesce_warp_unit_stride".into(), ns));

    let mut x = 0xdead_beef_cafe_f00du64;
    let scattered: Vec<(VAddr, u16)> = (0..32)
        .map(|_| (VAddr::new(0x4000_0000 + (lcg(&mut x) % 64) * 4096), 0u16))
        .collect();
    let ns = bench_ns(budget, || {
        coalesce(scattered.iter().copied(), &mut buf);
        black_box(buf.page_divergence());
    });
    results.push(("coalesce_warp_divergent".into(), ns));
}

// ------------------------------------------------------ next_event_at

/// Looping stream kernel: enough in-flight state that a shader core has
/// a non-trivial next-event computation.
struct StreamKernel {
    program: Program,
    region: Region,
    threads: u32,
}

impl Kernel for StreamKernel {
    fn name(&self) -> &str {
        "hotpath-stream"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn num_threads(&self) -> u32 {
        self.threads
    }
    fn block_threads(&self) -> u32 {
        128
    }
    fn mem_addr(&self, tid: ThreadId, _site: u16, iter: u32) -> VAddr {
        let off = (tid as u64 * 4096 + iter as u64 * 256) % (1 << 20);
        self.region.at(off & !7)
    }
    fn branch_taken(&self, _tid: ThreadId, _site: u16, iter: u32) -> bool {
        iter + 1 < 4
    }
}

fn next_event_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    let mut space = AddressSpace::new(SpaceConfig::default());
    let region = space
        .map_region("stream", 1 << 20, PageSize::Base4K)
        .expect("map");
    let kernel = StreamKernel {
        program: Program::new(vec![
            Op::Mem {
                site: 0,
                kind: MemKind::Load,
            },
            Op::Branch {
                site: 1,
                taken_pc: 0,
                reconv_pc: 2,
            },
        ]),
        region,
        threads: 128,
    };
    let cfg = GpuConfig {
        n_cores: 1,
        warps_per_core: 8,
        warps_per_block: 4,
        mmu: MmuModel::augmented(),
        ..GpuConfig::default()
    };
    let mut core = ShaderCore::new(0, &cfg);
    core.push_block(0, 128);
    let mut mem = MemorySystem::new(MemConfig::default());
    let mut iters = vec![0u32; 128 * kernel.program.num_sites()];
    let mut tracer = Tracer::Off;
    // Tick into the middle of the run so walks, fills, and warp timers
    // are all in flight.
    let mut now = 0u64;
    while now < 300 && core.has_work() {
        core.tick(now, &mut mem, &space, &kernel, &mut iters, &mut tracer);
        now += 1;
    }
    assert!(core.has_work(), "kernel drained before the measurement");

    let ns = bench_ns(budget, || {
        black_box(core.next_event_at(now));
    });
    results.push(("next_event_at_cached".into(), ns));

    let ns = bench_ns(budget, || {
        core.invalidate_next_event_cache();
        black_box(core.next_event_at(now));
    });
    results.push(("next_event_at_recomputed".into(), ns));
}

// ------------------------------------------------------------ Calendar

/// One engine scheduling step over 32 cores, repeated 256 times per
/// iteration: jump to the next wake cycle, collect the due keys, and
/// reschedule each — against the linear min-scan over every core's
/// `next_event_at` the idle-skip engine performs instead.
fn calendar_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    use gmmu_sim::calendar::Calendar;
    const KEYS: u32 = 32;

    let mut cal = Calendar::new(KEYS as usize);
    let mut x = 0x2545f4914f6cdd1du64;
    for k in 0..KEYS {
        cal.schedule(k, 1 + lcg(&mut x) % 64);
    }
    let mut due: Vec<u32> = Vec::with_capacity(KEYS as usize);
    let ns = bench_ns(budget, || {
        for _ in 0..256 {
            let now = cal.peek_cycle().expect("calendar never drains");
            cal.take_due(now, &mut due);
            for &k in &due {
                cal.schedule(k, now + 1 + lcg(&mut x) % 64);
            }
            black_box(due.len());
        }
    });
    results.push(("calendar_step_x256".into(), ns));

    let mut x = 0x2545f4914f6cdd1du64;
    let mut wake: Vec<u64> = (0..KEYS).map(|_| 1 + lcg(&mut x) % 64).collect();
    let ns = bench_ns(budget, || {
        for _ in 0..256 {
            let now = wake.iter().copied().min().expect("non-empty");
            let mut taken = 0usize;
            for w in wake.iter_mut() {
                if *w <= now {
                    *w = now + 1 + lcg(&mut x) % 64;
                    taken += 1;
                }
            }
            black_box(taken);
        }
    });
    results.push(("calendar_linear_scan_x256".into(), ns));
}

// ----------------------------------------------------- Page-table arena

/// Boxed-per-node radix page table: the pre-arena shape, where each
/// interior node owns its own 512-entry `Vec` and descent chases a
/// `Box` per level. Same tree fan-out and leaf payload as the real
/// table so the comparison isolates the memory layout.
struct NodeTable {
    root: Box<RefNode>,
}

struct RefNode {
    entries: Vec<RefEntry>,
}

enum RefEntry {
    Empty,
    Next(Box<RefNode>),
    Leaf(u64),
}

impl RefNode {
    fn empty() -> Box<RefNode> {
        Box::new(RefNode {
            entries: (0..512).map(|_| RefEntry::Empty).collect(),
        })
    }
}

impl NodeTable {
    fn new() -> Self {
        Self {
            root: RefNode::empty(),
        }
    }

    fn map(&mut self, vpn: u64, ppn: u64) {
        let mut node = &mut self.root;
        for level in (1..4).rev() {
            let idx = ((vpn >> (9 * level)) & 511) as usize;
            if !matches!(node.entries[idx], RefEntry::Next(_)) {
                node.entries[idx] = RefEntry::Next(RefNode::empty());
            }
            let RefEntry::Next(next) = &mut node.entries[idx] else {
                unreachable!()
            };
            node = next;
        }
        node.entries[(vpn & 511) as usize] = RefEntry::Leaf(ppn);
    }

    fn deep_clone(&self) -> NodeTable {
        fn clone_node(node: &RefNode) -> Box<RefNode> {
            Box::new(RefNode {
                entries: node
                    .entries
                    .iter()
                    .map(|e| match e {
                        RefEntry::Empty => RefEntry::Empty,
                        RefEntry::Next(n) => RefEntry::Next(clone_node(n)),
                        RefEntry::Leaf(p) => RefEntry::Leaf(*p),
                    })
                    .collect(),
            })
        }
        NodeTable {
            root: clone_node(&self.root),
        }
    }

    fn translate(&self, vpn: u64) -> Option<u64> {
        let mut node = &self.root;
        for level in (1..4).rev() {
            let idx = ((vpn >> (9 * level)) & 511) as usize;
            match &node.entries[idx] {
                RefEntry::Next(next) => node = next,
                _ => return None,
            }
        }
        match node.entries[(vpn & 511) as usize] {
            RefEntry::Leaf(ppn) => Some(ppn),
            _ => None,
        }
    }
}

/// Arena vs. boxed-node page table on the three paths that matter:
///
/// * **build** — mapping 16384 pages (37 nodes) into a bare table.
///   Wall time slightly favours the reference (the real `map` checks
///   alignment/overlap and allocates simulated frames); the decisive
///   number is the *allocation count*, reported separately: the arena
///   grows one slab under amortized doubling, the node reference
///   allocates a `Box` plus a 512-entry `Vec` per node.
/// * **clone** — the checkpoint path (`Ckpt::save` snapshots address
///   spaces). The arena clones as one flat memcpy; the reference deep
///   clones the tree, re-allocating every node.
/// * **translate** — 256 random lookups. Reported for completeness;
///   this path only runs in workload setup and trace replay (the sim
///   walks via `walk()`), and on an L1-hot table the reference's
///   leaner per-level code wins — the arena is not a latency play.
fn page_table_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    const PAGES: u64 = 1 << 14;
    let mut space = AddressSpace::new(SpaceConfig::default());
    let region = space
        .map_region("arena", PAGES << 12, PageSize::Base4K)
        .expect("map");
    let base_vpn = region.at(0).raw() >> 12;

    let mut node_table = NodeTable::new();
    for p in 0..PAGES {
        node_table.map(base_vpn + p, 0x1000 + p);
    }

    let ns = bench_ns(budget, || {
        let mut frames = FrameAlloc::new(1 << 21, FramePolicy::Sequential);
        let mut t = PageTable::new(&mut frames);
        for p in 0..PAGES {
            t.map(
                Vpn::new(base_vpn + p),
                Ppn::new(0x1000 + p),
                PageSize::Base4K,
                &mut frames,
            )
            .expect("map");
        }
        black_box(&t);
    });
    results.push(("page_table_arena_build_16k".into(), ns));

    let ns = bench_ns(budget, || {
        let mut t = NodeTable::new();
        for p in 0..PAGES {
            t.map(base_vpn + p, 0x1000 + p);
        }
        black_box(&t);
    });
    results.push(("page_table_node_ref_build_16k".into(), ns));

    let ns = bench_ns(budget, || {
        black_box(space.clone());
    });
    results.push(("page_table_arena_clone_16k".into(), ns));

    let ns = bench_ns(budget, || {
        black_box(node_table.deep_clone());
    });
    results.push(("page_table_node_ref_clone_16k".into(), ns));

    let mut x = 0x0123_4567_89ab_cdefu64;
    let seq: Vec<u64> = (0..256).map(|_| lcg(&mut x) % PAGES).collect();

    let ns = bench_ns(budget, || {
        for &p in &seq {
            let va = region.at(p << 12);
            black_box(space.translate(va).expect("mapped"));
        }
    });
    results.push(("page_table_arena_translate_x256".into(), ns));

    let ns = bench_ns(budget, || {
        for &p in &seq {
            black_box(node_table.translate(base_vpn + p).expect("mapped"));
        }
    });
    results.push(("page_table_node_ref_translate_x256".into(), ns));
}

// ------------------------------------------------- Calendar (vs. heap)

/// Lazy min-heap calendar reference — the shape [`Calendar`] had before
/// the time-wheel front: every (re)schedule pushes, stale tops are
/// discarded on pop.
struct HeapCalendar {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    scheduled_at: Vec<u64>,
}

impl HeapCalendar {
    fn new(keys: usize) -> Self {
        Self {
            heap: std::collections::BinaryHeap::new(),
            scheduled_at: vec![u64::MAX; keys],
        }
    }

    fn schedule(&mut self, key: u32, cycle: u64) {
        self.scheduled_at[key as usize] = cycle;
        self.heap.push(std::cmp::Reverse((cycle, key)));
    }

    fn peek_cycle(&mut self) -> Option<u64> {
        while let Some(&std::cmp::Reverse((cycle, key))) = self.heap.peek() {
            if self.scheduled_at[key as usize] == cycle {
                return Some(cycle);
            }
            self.heap.pop();
        }
        None
    }

    fn take_due(&mut self, now: u64, due: &mut Vec<u32>) {
        due.clear();
        while let Some(&std::cmp::Reverse((cycle, key))) = self.heap.peek() {
            if cycle > now {
                break;
            }
            self.heap.pop();
            if self.scheduled_at[key as usize] == cycle {
                self.scheduled_at[key as usize] = u64::MAX;
                due.push(key);
            }
        }
        due.sort_unstable();
    }
}

/// The same 256-step scheduling loop as `calendar_benches`, against the
/// lazy-heap reference the wheel replaced.
fn calendar_heap_benches(results: &mut Vec<(String, f64)>, budget: Duration) {
    const KEYS: u32 = 32;
    let mut cal = HeapCalendar::new(KEYS as usize);
    let mut x = 0x2545f4914f6cdd1du64;
    for k in 0..KEYS {
        cal.schedule(k, 1 + lcg(&mut x) % 64);
    }
    let mut due: Vec<u32> = Vec::with_capacity(KEYS as usize);
    let ns = bench_ns(budget, || {
        for _ in 0..256 {
            let now = cal.peek_cycle().expect("calendar never drains");
            cal.take_due(now, &mut due);
            for &k in &due {
                cal.schedule(k, now + 1 + lcg(&mut x) % 64);
            }
            black_box(due.len());
        }
    });
    results.push(("calendar_heap_ref_step_x256".into(), ns));
}

/// Heap allocations performed building each 16384-page table once —
/// the deterministic half of the build comparison above.
fn page_table_alloc_counts() -> (u64, u64) {
    const PAGES: u64 = 1 << 14;
    let base_vpn = 0x40000u64;
    let before = allocs();
    let mut frames = FrameAlloc::new(1 << 21, FramePolicy::Sequential);
    let mut t = PageTable::new(&mut frames);
    for p in 0..PAGES {
        t.map(
            Vpn::new(base_vpn + p),
            Ppn::new(0x1000 + p),
            PageSize::Base4K,
            &mut frames,
        )
        .expect("map");
    }
    let arena = allocs() - before;
    std::hint::black_box(&t);

    let before = allocs();
    let mut r = NodeTable::new();
    for p in 0..PAGES {
        r.map(base_vpn + p, 0x1000 + p);
    }
    let node = allocs() - before;
    std::hint::black_box(&r);
    (arena, node)
}

// --------------------------------------------------------- Allocations

/// Whole-run heap allocations per simulated kilocycle, per engine, on
/// one tiny workload (construction and teardown included — the
/// steady-state *window* is asserted to be zero-alloc by
/// `tests/alloc_discipline.rs`; this is the end-to-end rate). The
/// counts are near machine-independent, which makes them the robust
/// CI regression signal alongside the wall-clock rates.
fn alloc_benches() -> Vec<(String, f64)> {
    use gmmu::prelude::*;
    let w = build(Bench::Bfs, Scale::Tiny, 7);
    let mut out = Vec::new();
    for (name, engine, threads) in [
        ("serial", EngineKind::Serial, 1usize),
        ("event", EngineKind::Event, 1),
        ("parallel", EngineKind::Parallel, 2),
    ] {
        let mut cfg = gmmu::ExperimentOpts::quick().gpu(MmuModel::augmented());
        cfg.engine = engine;
        cfg.run_threads = threads;
        let before = allocs();
        let stats = gmmu_simt::gpu::run_kernel(cfg, w.kernel.as_ref(), &w.space);
        let after = allocs();
        let per_kcycle = (after - before) as f64 / (stats.cycles as f64 / 1000.0);
        out.push((name.to_string(), per_kcycle));
    }
    out
}

// --------------------------------------------------------- Multi-tenant

/// The standard multi-tenant throughput point: 4 co-running tenants
/// (Zipf mix with a thrasher) under the default ASID-tagged policy,
/// best-of-3 `sim_cycles_per_sec` on the serial engine.
fn multitenant_bench() -> f64 {
    use gmmu::prelude::*;
    use gmmu_simt::{Observer, TenantJob, TenantPolicy};
    use gmmu_workloads::tenants::scenario;
    let cfg = gmmu::ExperimentOpts::quick().gpu(MmuModel::augmented());
    let sc = scenario(4, Scale::Tiny, 7, true);
    let mut rate = 0f64;
    for _ in 0..3 {
        let mut built = sc.build();
        let mut jobs: Vec<TenantJob<'_>> = built
            .iter_mut()
            .map(|w| TenantJob {
                kernel: w.kernel.as_ref(),
                space: &mut w.space,
            })
            .collect();
        let stats = Gpu::new(cfg.clone()).run_tenants(
            &mut jobs,
            TenantPolicy::default(),
            &mut Observer::off(),
        );
        rate = rate.max(stats.cycles_per_sec());
    }
    rate
}

// ------------------------------------------------------------- Engines

/// End-to-end engine throughput on one real workload: best-of-3
/// `sim_cycles_per_sec` for the serial and event-calendar engines.
/// The runs are bit-identical (asserted); only the wall time differs.
fn engine_benches() -> (f64, f64) {
    use gmmu::prelude::*;
    let w = build(Bench::Bfs, Scale::Tiny, 7);
    let best = |engine: EngineKind| -> (f64, u64) {
        let mut cfg = gmmu::ExperimentOpts::quick().gpu(MmuModel::augmented());
        cfg.engine = engine;
        let mut cycles = 0u64;
        let mut rate = 0f64;
        for _ in 0..3 {
            let stats = gmmu_simt::gpu::run_kernel(cfg.clone(), w.kernel.as_ref(), &w.space);
            cycles = stats.cycles;
            rate = rate.max(stats.cycles_per_sec());
        }
        (rate, cycles)
    };
    let (serial, serial_cycles) = best(EngineKind::Serial);
    let (event, event_cycles) = best(EngineKind::Event);
    assert_eq!(
        serial_cycles, event_cycles,
        "the engines must simulate the same run"
    );
    (serial, event)
}

// ------------------------------------------------------------- Metrics

/// End-to-end metrics-channel overhead on one real workload:
/// `sim_cycles_per_sec` unobserved, with the channel
/// instrumented-but-off (the default — every record site compiles
/// down to an enabled check), and fully on (per-core staging buffers,
/// per-cycle drains, sink folds). All three simulate bit-identical
/// behaviour; only wall time differs. The three are measured
/// *interleaved*, best-of-5 each, so the reported ratios compare
/// same-window wall clocks — comparing best-of-N estimates taken
/// minutes apart lets machine-speed drift masquerade as overhead.
fn metrics_benches() -> (f64, f64, f64) {
    use gmmu::prelude::*;
    use gmmu_sim::metrics::Metrics;
    use gmmu_simt::Observer;
    let w = build(Bench::Bfs, Scale::Tiny, 7);
    let cfg = gmmu::ExperimentOpts::quick().gpu(MmuModel::augmented());
    let (mut unobs, mut off, mut on) = (0f64, 0f64, 0f64);
    let (mut unobs_cycles, mut on_cycles) = (0u64, 0u64);
    for _ in 0..5 {
        let stats = gmmu_simt::gpu::run_kernel(cfg.clone(), w.kernel.as_ref(), &w.space);
        unobs_cycles = stats.cycles;
        unobs = unobs.max(stats.cycles_per_sec());

        let mut obs = Observer::off();
        let stats = Gpu::new(cfg.clone()).run_observed(w.kernel.as_ref(), &w.space, &mut obs);
        off = off.max(stats.cycles_per_sec());

        let mut obs = Observer::off();
        obs.metrics = Metrics::recording();
        let stats = Gpu::new(cfg.clone()).run_observed(w.kernel.as_ref(), &w.space, &mut obs);
        on_cycles = stats.cycles;
        on = on.max(stats.cycles_per_sec());
    }
    assert_eq!(
        unobs_cycles, on_cycles,
        "the metrics channel must not perturb the simulation"
    );
    (unobs, off, on)
}

fn main() {
    let budget = Duration::from_millis(150);
    let mut results: Vec<(String, f64)> = Vec::new();
    tlb_benches(&mut results, budget);
    mshr_benches(&mut results, budget);
    coalesce_benches(&mut results, budget);
    next_event_benches(&mut results, budget);
    calendar_benches(&mut results, budget);
    calendar_heap_benches(&mut results, budget);
    page_table_benches(&mut results, budget);
    let (serial_rate, event_rate) = engine_benches();
    let multitenant_rate = multitenant_bench();
    let (metrics_unobs_rate, metrics_off_rate, metrics_on_rate) = metrics_benches();
    let alloc_rates = alloc_benches();
    let (pt_arena_allocs, pt_node_allocs) = page_table_alloc_counts();

    for (name, ns) in &results {
        println!("{name:<32} {ns:>12.1} ns/iter");
    }
    let ratio = |num: &str, den: &str| -> f64 {
        let get = |n: &str| results.iter().find(|(name, _)| name == n).map(|r| r.1);
        match (get(num), get(den)) {
            (Some(a), Some(b)) if a > 0.0 => b / a,
            _ => 0.0,
        }
    };
    let tlb_speedup = ratio("tlb_lookup_set_indexed_x256", "tlb_lookup_linear_ref_x256");
    let mshr_speedup = ratio("mshr_heap_cycle_x256", "mshr_linear_ref_cycle_x256");
    let cache_speedup = ratio("next_event_at_cached", "next_event_at_recomputed");
    let calendar_speedup = ratio("calendar_step_x256", "calendar_linear_scan_x256");
    let calendar_vs_heap = ratio("calendar_step_x256", "calendar_heap_ref_step_x256");
    let pt_build_speedup = ratio(
        "page_table_arena_build_16k",
        "page_table_node_ref_build_16k",
    );
    let pt_clone_speedup = ratio(
        "page_table_arena_clone_16k",
        "page_table_node_ref_clone_16k",
    );
    let pt_translate_ratio = ratio(
        "page_table_arena_translate_x256",
        "page_table_node_ref_translate_x256",
    );
    let engine_speedup = if serial_rate > 0.0 {
        event_rate / serial_rate
    } else {
        0.0
    };
    println!("tlb set-indexed vs linear:      {tlb_speedup:.2}x");
    println!("mshr heap vs map-scan:          {mshr_speedup:.2}x");
    println!("next-event cached vs recompute: {cache_speedup:.2}x");
    println!("calendar vs linear min-scan:    {calendar_speedup:.2}x");
    println!("calendar vs lazy min-heap:      {calendar_vs_heap:.2}x");
    println!("page table build, arena vs ref: {pt_build_speedup:.2}x");
    println!("page table clone, arena vs ref: {pt_clone_speedup:.2}x");
    println!("page table xlate, arena vs ref: {pt_translate_ratio:.2}x");
    println!(
        "event engine vs serial:         {engine_speedup:.2}x \
         ({event_rate:.0} vs {serial_rate:.0} sim cycles/s)"
    );
    let metrics_off_vs_unobserved = if metrics_unobs_rate > 0.0 {
        metrics_off_rate / metrics_unobs_rate
    } else {
        0.0
    };
    let metrics_on_vs_off = if metrics_off_rate > 0.0 {
        metrics_on_rate / metrics_off_rate
    } else {
        0.0
    };
    println!(
        "metrics off vs unobserved:      {metrics_off_vs_unobserved:.2}x \
         ({metrics_off_rate:.0} vs {metrics_unobs_rate:.0} sim cycles/s)"
    );
    println!(
        "metrics on vs off:              {metrics_on_vs_off:.2}x \
         ({metrics_on_rate:.0} vs {metrics_off_rate:.0} sim cycles/s)"
    );
    println!("multi-tenant (4 tenants):       {multitenant_rate:.0} sim cycles/s");
    for (name, per_kcycle) in &alloc_rates {
        println!("allocs/kcycle ({name:<8}):       {per_kcycle:>8.1}");
    }
    println!("page table build allocs:        arena {pt_arena_allocs}, node ref {pt_node_allocs}");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benches\": [");
    for (i, (name, ns)) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"ns_per_iter\": {ns:.1}}}{}",
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    let _ = writeln!(json, "    \"tlb_set_indexed_vs_linear\": {tlb_speedup:.3},");
    let _ = writeln!(json, "    \"mshr_heap_vs_linear\": {mshr_speedup:.3},");
    let _ = writeln!(
        json,
        "    \"next_event_cached_vs_recomputed\": {cache_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"calendar_vs_linear_scan\": {calendar_speedup:.3},"
    );
    let _ = writeln!(json, "    \"calendar_vs_heap\": {calendar_vs_heap:.3},");
    let _ = writeln!(
        json,
        "    \"page_table_build_arena_vs_node\": {pt_build_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"page_table_clone_arena_vs_node\": {pt_clone_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"page_table_translate_arena_vs_node\": {pt_translate_ratio:.3}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"alloc\": {{");
    for (name, per_kcycle) in alloc_rates.iter() {
        let _ = writeln!(json, "    \"{name}_allocs_per_kcycle\": {per_kcycle:.1},");
    }
    let _ = writeln!(
        json,
        "    \"page_table_build_arena_allocs\": {pt_arena_allocs},"
    );
    let _ = writeln!(
        json,
        "    \"page_table_build_node_ref_allocs\": {pt_node_allocs}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"metrics\": {{");
    let _ = writeln!(
        json,
        "    \"off_sim_cycles_per_sec\": {metrics_off_rate:.0},"
    );
    let _ = writeln!(json, "    \"on_sim_cycles_per_sec\": {metrics_on_rate:.0},");
    let _ = writeln!(
        json,
        "    \"off_vs_unobserved\": {metrics_off_vs_unobserved:.3},"
    );
    let _ = writeln!(json, "    \"on_vs_off\": {metrics_on_vs_off:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"engine\": {{");
    let _ = writeln!(json, "    \"serial_sim_cycles_per_sec\": {serial_rate:.0},");
    let _ = writeln!(json, "    \"event_sim_cycles_per_sec\": {event_rate:.0},");
    let _ = writeln!(json, "    \"event_vs_serial\": {engine_speedup:.3},");
    let _ = writeln!(
        json,
        "    \"multitenant_sim_cycles_per_sec\": {multitenant_rate:.0}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    match std::fs::write("BENCH_hotpath.json", &json) {
        Ok(()) => eprintln!("[hotpath] wrote BENCH_hotpath.json"),
        Err(e) => eprintln!("[hotpath] could not write BENCH_hotpath.json: {e}"),
    }
}
