//! Benchmarks of the simulator's own building blocks: how fast the
//! substrate simulates, independent of any paper figure.
//!
//! Self-contained `harness = false` benchmark (no external benchmarking
//! crates): each micro-benchmark is timed in calibrated batches and the
//! best batch is reported, which is the usual way to suppress scheduler
//! noise on a shared machine. Run with `cargo bench`.
//!
//! The `engine/` group is the one the execution-engine work cares
//! about: it measures simulated-cycles-per-wall-second on a
//! stall-heavy workload (naive MMU, single memory channel — warps
//! spend most cycles waiting on serialized page walks) under both the
//! idle-cycle-skipping engine and the legacy tick-every-cycle loop,
//! and checks they agree on the simulated cycle count.

use gmmu::prelude::*;
use gmmu_core::mmu::{Mmu, PageReq, TranslateBuf};
use gmmu_mem::{AccessKind, MemConfig, MemorySystem};
use gmmu_simt::coalesce::{coalesce, CoalesceBuf};
use gmmu_simt::gpu::run_kernel;
use gmmu_vm::{AddressSpace, SpaceConfig, VAddr};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` in self-calibrating batches for roughly `budget` and
/// prints the best per-iteration time observed.
fn bench_ns(name: &str, budget: Duration, mut f: impl FnMut()) {
    // Calibrate a batch size that runs for at least ~2 ms.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed() >= Duration::from_millis(2) || iters >= 1 << 30 {
            break;
        }
        iters *= 2;
    }
    let deadline = Instant::now() + budget;
    let mut best = f64::INFINITY;
    let mut batches = 0u32;
    while Instant::now() < deadline || batches < 3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64 * 1e9);
        batches += 1;
    }
    println!("{name:<32} {best:>12.1} ns/iter  ({iters} iters x {batches} batches)");
}

fn bench_components() {
    // TLB lookup/fill throughput through the MMU front door.
    let mut space = AddressSpace::new(SpaceConfig::default());
    let region = space
        .map_region("bench", 16 << 20, PageSize::Base4K)
        .expect("map");
    let mut mem = MemorySystem::new(MemConfig::default());
    let mut mmu = Mmu::new(MmuModel::augmented());
    let mut buf = TranslateBuf::new();
    // Warm 64 pages.
    let mut now = 0u64;
    for i in 0..64u64 {
        mmu.advance(now, &mut mem, &space);
        let _ = mmu.translate(
            now,
            0,
            &[PageReq::new(region.at(i * 4096).vpn(), 0)],
            &space,
            &mut buf,
        );
        now += 2_000;
    }
    for _ in 0..16 {
        mmu.advance(now, &mut mem, &space);
        now += 2_000;
    }
    {
        let mut i = 0u64;
        bench_ns("mmu_translate_hit", Duration::from_secs(1), || {
            let vpn = region.at((i % 64) * 4096).vpn();
            i += 1;
            now += 1;
            black_box(mmu.translate(now, 0, &[PageReq::new(vpn, 0)], &space, &mut buf));
        });
    }

    {
        let mut out = CoalesceBuf::new();
        bench_ns("coalesce_32_threads", Duration::from_secs(1), || {
            coalesce(
                (0..32u64).map(|l| (VAddr::new(0x4000_0000 + l * 512), 0u16)),
                &mut out,
            );
            black_box(out.page_divergence());
        });
    }

    {
        let mut line = 0u64;
        bench_ns("shared_memory_access", Duration::from_secs(1), || {
            line += 7;
            now += 1;
            black_box(mem.access(now, line % 100_000, AccessKind::Load));
        });
    }
}

fn bench_full_runs() {
    for bench in [Bench::Kmeans, Bench::Memcached] {
        let w = build(bench, Scale::Tiny, 7);
        let mut best = f64::INFINITY;
        let mut cycles = 0u64;
        for _ in 0..3 {
            let mut cfg = GpuConfig::experiment_scale(MmuModel::augmented());
            cfg.n_cores = 2;
            cfg.mem.channels = 1;
            let t = Instant::now();
            cycles = black_box(run_kernel(cfg, w.kernel.as_ref(), &w.space).cycles);
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!(
            "end_to_end/{bench}_tiny_augmented  {:>8.1} ms/run  ({cycles} cycles)",
            best * 1e3
        );
    }
}

/// Simulated-cycles-per-second of the global loop itself, on a
/// stall-heavy workload where idle-cycle skipping has the most to
/// skip. Reports both engines and the resulting speedup.
fn bench_engine_throughput() {
    let w = build(Bench::Memcached, Scale::Tiny, 7);
    let mut cfg = GpuConfig::experiment_scale(MmuModel::naive());
    cfg.n_cores = 2;
    cfg.mem.channels = 1;
    let mut results = Vec::new();
    for (label, legacy) in [("event_skip", false), ("tick_every_cycle", true)] {
        let mut best = f64::INFINITY;
        let mut cycles = 0u64;
        for _ in 0..3 {
            let mut c = cfg.clone();
            c.tick_every_cycle = legacy;
            let t = Instant::now();
            cycles = black_box(run_kernel(c, w.kernel.as_ref(), &w.space).cycles);
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!(
            "engine/{label:<18} {:>8.2} Mcycles/s  ({cycles} cycles in {:.3} s)",
            cycles as f64 / best / 1e6,
            best
        );
        results.push((cycles, best));
    }
    assert_eq!(
        results[0].0, results[1].0,
        "engines disagree on simulated cycles"
    );
    println!(
        "engine/speedup             {:>8.2}x (event_skip over tick_every_cycle)",
        results[1].1 / results[0].1
    );

    // Same point once more with the span tracer attached: the off path
    // must stay free, and this reports what turning tracing *on* costs.
    let mut best = f64::INFINITY;
    let mut cycles = 0u64;
    let mut events = 0usize;
    for _ in 0..3 {
        let c = cfg.clone();
        let mut obs = gmmu_simt::Observer::tracing();
        let t = Instant::now();
        cycles = black_box(
            gmmu_simt::Gpu::new(c)
                .run_observed(w.kernel.as_ref(), &w.space, &mut obs)
                .cycles,
        );
        best = best.min(t.elapsed().as_secs_f64());
        events = obs.tracer.buffer().map_or(0, |b| b.len());
    }
    assert_eq!(cycles, results[0].0, "tracing changed simulated cycles");
    println!(
        "engine/traced              {:>8.2} Mcycles/s  ({events} events)",
        cycles as f64 / best / 1e6
    );
    println!(
        "engine/trace_overhead      {:>8.2}x wall time vs event_skip",
        best / results[0].1
    );
}

fn main() {
    bench_components();
    bench_full_runs();
    bench_engine_throughput();
}
