//! Criterion benchmarks of the simulator's own building blocks: how
//! fast the substrate simulates, independent of any paper figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use gmmu::prelude::*;
use gmmu_core::mmu::{Mmu, PageReq, TranslateBuf};
use gmmu_mem::{AccessKind, MemConfig, MemorySystem};
use gmmu_simt::coalesce::{coalesce, CoalesceBuf};
use gmmu_simt::gpu::run_kernel;
use gmmu_vm::{AddressSpace, SpaceConfig, VAddr};
use std::hint::black_box;

fn bench_components(c: &mut Criterion) {
    // Keep wall time modest: the interesting output is relative cost.

    // TLB lookup/fill throughput through the MMU front door.
    let mut space = AddressSpace::new(SpaceConfig::default());
    let region = space
        .map_region("bench", 16 << 20, PageSize::Base4K)
        .expect("map");
    let mut mem = MemorySystem::new(MemConfig::default());
    let mut mmu = Mmu::new(MmuModel::augmented());
    let mut buf = TranslateBuf::new();
    // Warm 64 pages.
    let mut now = 0u64;
    for i in 0..64u64 {
        mmu.advance(now, &mut mem, &space);
        let _ = mmu.translate(
            now,
            0,
            &[PageReq::new(region.at(i * 4096).vpn(), 0)],
            &space,
            &mut buf,
        );
        now += 2_000;
    }
    for _ in 0..16 {
        mmu.advance(now, &mut mem, &space);
        now += 2_000;
    }
    c.bench_function("mmu_translate_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let vpn = region.at((i % 64) * 4096).vpn();
            i += 1;
            now += 1;
            black_box(mmu.translate(now, 0, &[PageReq::new(vpn, 0)], &space, &mut buf))
        })
    });

    c.bench_function("coalesce_32_threads", |b| {
        let mut out = CoalesceBuf::new();
        b.iter(|| {
            coalesce(
                (0..32u64).map(|l| (VAddr::new(0x4000_0000 + l * 512), 0u16)),
                &mut out,
            );
            black_box(out.page_divergence())
        })
    });

    c.bench_function("shared_memory_access", |b| {
        let mut line = 0u64;
        b.iter(|| {
            line += 7;
            now += 1;
            black_box(mem.access(now, line % 100_000, AccessKind::Load))
        })
    });
}

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    for bench in [Bench::Kmeans, Bench::Memcached] {
        let w = build(bench, Scale::Tiny, 7);
        group.bench_function(format!("{bench}_tiny_augmented"), |b| {
            b.iter(|| {
                let mut cfg = GpuConfig::experiment_scale(MmuModel::augmented());
                cfg.n_cores = 2;
                cfg.mem.channels = 1;
                black_box(run_kernel(cfg, w.kernel.as_ref(), &w.space).cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_components, bench_full_runs
);
criterion_main!(benches);
