//! Hardware page-table walkers.
//!
//! The paper evaluates three walker organizations (Sections 6.2–6.3):
//!
//! * **Serial** — the naive CPU-like design: one walk at a time, four
//!   dependent PTE loads each, misses queued FIFO behind it. This is the
//!   walker that makes TLB misses twice as expensive as L1 misses
//!   (Figure 4).
//! * **Multiple serial walkers** — 2–8 lanes draining the same queue
//!   (Figure 11's comparison point).
//! * **Coalesced** ("PTW scheduling", Figures 8–9) — drains the whole
//!   miss queue as a batch and walks all pages level-by-level:
//!   duplicate PTE loads at a level are issued once (upper levels
//!   rarely change across pages), and distinct PTEs on one 128-byte
//!   cache line are issued back-to-back so the trailing ones hit in the
//!   shared L2. The hardware is an MSHR-scanning comparator tree; here
//!   we model its function and timing.

use gmmu_mem::cache::{Cache, CacheConfig};
use gmmu_mem::{AccessKind, MemPort, LINE_SHIFT};
use gmmu_sim::metrics::{MetricEvent, Metrics};
use gmmu_sim::stats::{Counter, Summary};
use gmmu_sim::trace::{TraceEvent, Tracer, TID_WALKER};
use gmmu_sim::Cycle;
use gmmu_vm::{AddressSpace, PageSize, Ppn, Vpn};
use std::collections::VecDeque;

/// Which walker microarchitecture to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkerKind {
    /// `count` independent serial walkers sharing one miss queue.
    Serial {
        /// Number of walker lanes (the paper's baseline has 1).
        count: usize,
    },
    /// The proposed coalescing walk scheduler (single lane, batched).
    Coalesced,
    /// A software-managed TLB refill (Section 6.1 cites Jacob & Mudge
    /// [27]): every miss traps to an interrupt handler that performs
    /// the walk in instructions. Strictly worse than hardware walking —
    /// the reason the paper assumes hardware PTWs — and kept here as an
    /// ablation point.
    Software {
        /// Cycles to enter and leave the handler per walk.
        trap_cycles: u64,
    },
}

/// Walker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkerConfig {
    /// Microarchitecture.
    pub kind: WalkerKind,
    /// Issue spacing between back-to-back PTE loads in one batch level
    /// (cycles); models the comparator-tree scan rate.
    pub issue_spacing: u64,
    /// Optional page-walk cache: a small walker-private cache of
    /// upper-level (PML4/PDP/PD) entries, the mechanism the concurrent
    /// Power–Hill–Wood design leans on (Section 9). Entries give the
    /// number of cached upper-level PTEs; hits skip the memory
    /// reference entirely.
    pub pwc_entries: usize,
}

impl WalkerConfig {
    /// The paper's naive baseline: one serial walker.
    pub fn serial() -> Self {
        Self {
            kind: WalkerKind::Serial { count: 1 },
            issue_spacing: 1,
            pwc_entries: 0,
        }
    }

    /// `n` naive serial walkers (Figure 11).
    pub fn serial_n(n: usize) -> Self {
        Self {
            kind: WalkerKind::Serial { count: n },
            ..Self::serial()
        }
    }

    /// The proposed coalescing walk scheduler.
    pub fn coalesced() -> Self {
        Self {
            kind: WalkerKind::Coalesced,
            ..Self::serial()
        }
    }

    /// A software-managed TLB refill with the given trap overhead.
    pub fn software(trap_cycles: u64) -> Self {
        Self {
            kind: WalkerKind::Software { trap_cycles },
            ..Self::serial()
        }
    }

    /// Adds a page-walk cache of `entries` upper-level PTEs.
    pub fn with_pwc(mut self, entries: usize) -> Self {
        self.pwc_entries = entries;
        self
    }
}

impl gmmu_sim::ckpt::Ckpt for WalkerKind {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        match *self {
            WalkerKind::Serial { count } => {
                w.u8(0);
                w.usize(count);
            }
            WalkerKind::Coalesced => w.u8(1),
            WalkerKind::Software { trap_cycles } => {
                w.u8(2);
                w.u64(trap_cycles);
            }
        }
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        *self = match r.u8()? {
            0 => WalkerKind::Serial { count: r.usize()? },
            1 => WalkerKind::Coalesced,
            2 => WalkerKind::Software {
                trap_cycles: r.u64()?,
            },
            _ => return Err(gmmu_sim::ckpt::CkptError::Corrupt("unknown walker kind")),
        };
        Ok(())
    }
}

impl gmmu_sim::ckpt::Ckpt for WalkerConfig {
    fn save(&self, w: &mut gmmu_sim::ckpt::Saver) {
        self.kind.save(w);
        w.u64(self.issue_spacing);
        w.usize(self.pwc_entries);
    }
    fn load(
        &mut self,
        r: &mut gmmu_sim::ckpt::Loader<'_>,
    ) -> Result<(), gmmu_sim::ckpt::CkptError> {
        self.kind.load(r)?;
        self.issue_spacing = r.u64()?;
        self.pwc_entries = r.usize()?;
        Ok(())
    }
}

/// A queued walk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkRequest {
    /// Address space whose page table must be walked.
    pub asid: u16,
    /// Page to translate.
    pub vpn: Vpn,
    /// Warp that missed (diagnostics).
    pub warp: u16,
    /// Cycle the TLB miss was detected.
    pub enqueued: Cycle,
}

/// A finished walk, ready to fill the TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkDone {
    /// Address space the translation belongs to.
    pub asid: u16,
    /// Page that was walked.
    pub vpn: Vpn,
    /// Warp that missed (becomes the TLB entry's owner).
    pub warp: u16,
    /// Translation, or `None` for a page fault (unmapped).
    pub translation: Option<(Ppn, PageSize)>,
    /// Cycle the walk's last PTE load returned.
    pub complete: Cycle,
    /// Cycle the miss was originally enqueued.
    pub enqueued: Cycle,
    /// Cycle a walker lane picked the request up (stage attribution:
    /// `started - enqueued` is queueing, `complete - started` is the
    /// active walk).
    pub started: Cycle,
}

/// Per-ASID fairness state for the walk scheduler (MASK-style): each
/// tenant holds `tokens` grants per round, refilled when every tenant
/// with queued work has spent its credits, and any request older than
/// `max_age` cycles is served unconditionally, oldest first. Disabled
/// (`Walker::set_fairness` with one tenant) the scheduler degenerates to
/// the exact legacy FIFO, byte for byte.
#[derive(Debug, Clone)]
pub struct FairState {
    /// Number of tenants sharing this walker.
    n_asids: usize,
    /// Grants per tenant per refill round.
    tokens: u32,
    /// Queue age (cycles) beyond which a request bypasses the token
    /// scheduler entirely — the starvation-proofness bound.
    max_age: u64,
    /// Remaining grants this round, indexed by ASID.
    credits: Vec<u32>,
    /// ASID after the last one served (round-robin scan start).
    rr: usize,
}

/// Statistics shared by all walker kinds.
#[derive(Debug, Clone, Default)]
pub struct WalkerStats {
    /// Completed walks.
    pub walks: Counter,
    /// PTE loads actually sent to the memory system.
    pub refs_issued: Counter,
    /// PTE loads a naive serial walker would have sent (4 per 4 KiB
    /// walk); `refs_issued / refs_naive` is the Figure 10 "10–20% of
    /// references eliminated" statistic.
    pub refs_naive: Counter,
    /// End-to-end walk latency (enqueue → last load back), i.e. the
    /// per-TLB-miss penalty of Figure 4.
    pub walk_latency: Summary,
    /// Batch sizes drained by the coalesced walker.
    pub batch_size: Summary,
    /// Upper-level loads served by the page-walk cache.
    pub pwc_hits: Counter,
    /// Cycles any lane spent occupied by a walk, summed over lanes;
    /// divide by `lanes x elapsed cycles` for walker occupancy.
    pub lane_busy_cycles: Counter,
}

impl WalkerStats {
    /// Fraction of naive PTE loads eliminated by scheduling, in `[0, 1]`.
    pub fn refs_eliminated(&self) -> f64 {
        let naive = self.refs_naive.get();
        if naive == 0 {
            0.0
        } else {
            1.0 - self.refs_issued.get() as f64 / naive as f64
        }
    }
}

/// Reusable buffers for the coalesced walker's batch machinery. Owned
/// by the walker, cleared (not dropped) at the start of every batch, so
/// the steady state performs no heap allocation: capacities grow to the
/// high-water mark of the run and stay there. Never serialized — the
/// contents are dead between `advance` calls.
#[derive(Debug, Clone, Default)]
struct WalkScratch {
    /// Requests drained from `pending` for the current batch.
    batch: Vec<WalkRequest>,
    /// Requests held back by the fairness cap (swapped with `pending`).
    rest: VecDeque<WalkRequest>,
    /// Per-ASID requests taken this batch (fairness accounting).
    taken: Vec<u32>,
    /// One page-table walk per batched request.
    walks: Vec<gmmu_vm::Walk>,
    /// Completion cycle per batched request.
    walk_complete: Vec<Cycle>,
    /// Unique PTE loads at the current level with their user walks. The
    /// inner `Vec`s are recycled slot-by-slot (only a live prefix is
    /// meaningful each level) so their capacity survives across levels.
    level_refs: Vec<(u64, Vec<usize>)>,
}

/// A page-table walker attached to one shader core's TLB.
///
/// Drive it by calling [`Walker::enqueue`] on TLB misses and
/// [`Walker::advance`] every core cycle; finished walks appear in the
/// output vector passed to `advance`.
///
/// # Examples
///
/// ```
/// use gmmu_core::walker::{Walker, WalkerConfig};
/// use gmmu_mem::{MemConfig, MemorySystem};
/// use gmmu_vm::{AddressSpace, PageSize, SpaceConfig};
///
/// let mut space = AddressSpace::new(SpaceConfig::default());
/// let region = space.map_region("d", 1 << 16, PageSize::Base4K)?;
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let mut walker = Walker::new(WalkerConfig::serial());
///
/// walker.enqueue(region.base.vpn(), 0, 100);
/// let mut done = Vec::new();
/// walker.advance(100, &mut mem, &space, &mut done);
/// assert_eq!(done.len(), 1);
/// assert!(done[0].complete > 100);
/// # Ok::<(), gmmu_vm::VmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Walker {
    config: WalkerConfig,
    /// Per-lane busy-until reservation (serial); the coalesced walker
    /// uses exactly one lane.
    lanes: Vec<Cycle>,
    pending: VecDeque<WalkRequest>,
    /// Optional page-walk cache over upper-level PTE addresses.
    pwc: Option<Cache>,
    /// Per-ASID fairness scheduler; `None` is the exact legacy FIFO.
    fair: Option<FairState>,
    /// Reusable batch buffers (see [`WalkScratch`]); not serialized.
    scratch: WalkScratch,
    /// Statistics.
    pub stats: WalkerStats,
}

impl Walker {
    /// Creates an idle walker.
    ///
    /// # Panics
    ///
    /// Panics if a serial walker is configured with zero lanes.
    pub fn new(config: WalkerConfig) -> Self {
        let lanes = match config.kind {
            WalkerKind::Serial { count } => {
                assert!(count > 0, "serial walker needs at least one lane");
                count
            }
            WalkerKind::Coalesced => 1,
            WalkerKind::Software { .. } => 1,
        };
        let pwc = (config.pwc_entries > 0).then(|| {
            let entries = config.pwc_entries.next_power_of_two();
            Cache::new(CacheConfig {
                sets: (entries / 4).max(1),
                ways: entries.min(4),
            })
        });
        Self {
            config,
            lanes: vec![0; lanes],
            pending: VecDeque::new(),
            pwc,
            fair: None,
            scratch: WalkScratch::default(),
            stats: WalkerStats::default(),
        }
    }

    /// Arms (or, with `n_asids <= 1`, disarms) the per-ASID fairness
    /// scheduler: each tenant gets `tokens` walk grants per round and any
    /// request queued longer than `max_age` cycles is served first,
    /// oldest first, regardless of tokens. With fairness disarmed the
    /// walker is bit-identical to the legacy FIFO.
    pub fn set_fairness(&mut self, n_asids: usize, tokens: u32, max_age: u64) {
        self.fair = (n_asids > 1).then(|| FairState {
            n_asids,
            tokens: tokens.max(1),
            max_age: max_age.max(1),
            credits: vec![tokens.max(1); n_asids],
            rr: 0,
        });
    }

    /// Whether the per-ASID fairness scheduler is armed.
    pub fn fairness_armed(&self) -> bool {
        self.fair.is_some()
    }

    /// Picks the next request to walk. Without fairness this is the FIFO
    /// head. With fairness: any request older than `max_age` is served
    /// oldest-first (queue order breaks enqueue-cycle ties); otherwise a
    /// round-robin scan from `rr` picks the first ASID that still holds
    /// credits and has queued work. When no credited ASID has work the
    /// round's credits refill and the FIFO head is served.
    fn pick(&mut self, now: Cycle) -> Option<WalkRequest> {
        let Some(fair) = self.fair.as_mut() else {
            return self.pending.pop_front();
        };
        if self.pending.is_empty() {
            return None;
        }
        let aged = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, r)| now.saturating_sub(r.enqueued) >= fair.max_age)
            .min_by_key(|(i, r)| (r.enqueued, *i))
            .map(|(i, _)| i);
        if let Some(i) = aged {
            return self.pending.remove(i);
        }
        for step in 0..fair.n_asids {
            let a = (fair.rr + step) % fair.n_asids;
            if fair.credits[a] == 0 {
                continue;
            }
            if let Some(i) = self.pending.iter().position(|r| r.asid as usize == a) {
                fair.credits[a] -= 1;
                fair.rr = (a + 1) % fair.n_asids;
                return self.pending.remove(i);
            }
        }
        // Every ASID with queued work is out of credits: new round.
        for c in &mut fair.credits {
            *c = fair.tokens;
        }
        let head = self.pending.pop_front();
        if let Some(r) = &head {
            let a = r.asid as usize;
            fair.credits[a] -= 1;
            fair.rr = (a + 1) % fair.n_asids;
        }
        head
    }

    /// Serves one PTE load, consulting the page-walk cache for
    /// upper-level entries; returns the completion cycle.
    fn pte_load(
        pwc: &mut Option<Cache>,
        stats: &mut WalkerStats,
        at: Cycle,
        level: u32,
        pte_paddr: u64,
        mem: &mut dyn MemPort,
    ) -> Cycle {
        if level > 1 {
            if let Some(pwc) = pwc.as_mut() {
                // The PWC caches individual upper-level PTEs.
                if pwc.access(pte_paddr >> 3, 0, at).is_hit() {
                    stats.pwc_hits.inc();
                    return at + 1;
                }
            }
        }
        stats.refs_issued.inc();
        mem.access(at, pte_paddr >> LINE_SHIFT, AccessKind::PageWalk)
            .complete
    }

    /// Configuration.
    pub fn config(&self) -> &WalkerConfig {
        &self.config
    }

    /// Registers this walker's instruments under `prefix`.
    pub fn register_metrics(&self, prefix: &str, reg: &mut gmmu_sim::metrics::MetricsRegistry) {
        reg.counter(format!("{prefix}.lanes"), self.lanes.len() as u64);
        reg.counter(format!("{prefix}.walks"), self.stats.walks.get());
        reg.counter(
            format!("{prefix}.refs_issued"),
            self.stats.refs_issued.get(),
        );
        reg.counter(format!("{prefix}.refs_naive"), self.stats.refs_naive.get());
        reg.counter(format!("{prefix}.pwc_hits"), self.stats.pwc_hits.get());
        reg.counter(
            format!("{prefix}.lane_busy_cycles"),
            self.stats.lane_busy_cycles.get(),
        );
        reg.gauge(
            format!("{prefix}.walk_latency.mean"),
            self.stats.walk_latency.mean(),
        );
        reg.gauge(
            format!("{prefix}.batch_size.mean"),
            self.stats.batch_size.mean(),
        );
    }

    /// Queues a walk for `vpn` missed by `warp` at cycle `now`, in the
    /// default address space (ASID 0).
    pub fn enqueue(&mut self, vpn: Vpn, warp: u16, now: Cycle) {
        self.enqueue_asid(0, vpn, warp, now);
    }

    /// Queues a walk for `vpn` in the address space tagged `asid`.
    pub fn enqueue_asid(&mut self, asid: u16, vpn: Vpn, warp: u16, now: Cycle) {
        self.pending.push_back(WalkRequest {
            asid,
            vpn,
            warp,
            enqueued: now,
        });
    }

    /// Walks waiting to start (not counting in-flight ones).
    pub fn queue_len(&self) -> usize {
        self.pending.len()
    }

    /// Queued walks belonging to `asid` (watchdog diagnostics).
    pub fn queue_len_asid(&self, asid: u16) -> usize {
        self.pending.iter().filter(|r| r.asid == asid).count()
    }

    /// The per-walker half of a TLB shootdown: squashes every queued
    /// (not yet started) walk and flushes the page-walk cache, whose
    /// cached upper-level PTEs may now be stale. Lanes keep their busy
    /// reservations — hardware lanes finish the PTE loads they already
    /// issued; the MMU drops the results. Returns the squashed requests
    /// so the MMU can re-disposition their waiters.
    pub fn shootdown(&mut self) -> Vec<WalkRequest> {
        if let Some(pwc) = self.pwc.as_mut() {
            pwc.flush();
        }
        // `Vec::from` rotates the deque's buffer in place — the queue's
        // allocation is handed to the caller rather than copied.
        Vec::from(std::mem::take(&mut self.pending))
    }

    /// ASID-scoped shootdown: squashes only the queued walks belonging
    /// to `asid`, leaving other tenants' requests queued in order. The
    /// page-walk cache is still flushed — its entries are tagged by
    /// physical PTE address only, and a conservative full flush is what
    /// the hardware would do (it costs refetches, never correctness).
    /// On single-tenant state `shootdown_asid(0)` is byte-identical to
    /// [`Walker::shootdown`].
    pub fn shootdown_asid(&mut self, asid: u16) -> Vec<WalkRequest> {
        if let Some(pwc) = self.pwc.as_mut() {
            pwc.flush();
        }
        let mut squashed = Vec::new();
        self.pending.retain(|r| {
            if r.asid == asid {
                squashed.push(*r);
                false
            } else {
                true
            }
        });
        squashed
    }

    /// Number of walk lanes (1 for coalesced/software walkers).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The earliest cycle at which [`Walker::advance`] can make progress,
    /// or `None` when nothing is queued. After an `advance(now)` the
    /// queue is non-empty only if every lane is busy past `now`, so the
    /// earliest-free lane is exactly when the next queued walk starts.
    /// (A request enqueued *after* this cycle's `advance` can start at
    /// the very next cycle; callers clamp accordingly.)
    pub fn next_event_at(&self) -> Option<Cycle> {
        if self.pending.is_empty() {
            None
        } else {
            self.lanes.iter().copied().min()
        }
    }

    /// Services the queue up to cycle `now`, pushing finished walks into
    /// `done`. Completion cycles may lie in the future — the MMU applies
    /// the TLB fills when the clock reaches them.
    pub fn advance(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemPort,
        space: &AddressSpace,
        done: &mut Vec<WalkDone>,
    ) {
        self.advance_tenants(
            now,
            mem,
            &[space],
            done,
            &mut Tracer::Off,
            &mut Metrics::Off,
            0,
        );
    }

    /// [`Walker::advance`] that also emits one `page_walk` span per walk
    /// (track `TID_WALKER + lane`) under core `pid` when tracing is on,
    /// and one [`MetricEvent::WalkLevel`] per page-table level each walk
    /// references when metrics are on.
    #[allow(clippy::too_many_arguments)]
    pub fn advance_traced(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemPort,
        space: &AddressSpace,
        done: &mut Vec<WalkDone>,
        tracer: &mut Tracer,
        metrics: &mut Metrics,
        pid: u32,
    ) {
        self.advance_tenants(now, mem, &[space], done, tracer, metrics, pid);
    }

    /// The multi-tenant [`Walker::advance_traced`]: each request's page
    /// table is `spaces[request.asid]`. Single-space callers pass a
    /// one-element slice and every request must carry ASID 0.
    ///
    /// # Panics
    ///
    /// Panics if a queued request's ASID has no matching space.
    #[allow(clippy::too_many_arguments)]
    pub fn advance_tenants(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemPort,
        spaces: &[&AddressSpace],
        done: &mut Vec<WalkDone>,
        tracer: &mut Tracer,
        metrics: &mut Metrics,
        pid: u32,
    ) {
        match self.config.kind {
            WalkerKind::Serial { .. } => {
                self.advance_serial(now, mem, spaces, done, 0, tracer, metrics, pid)
            }
            WalkerKind::Coalesced => {
                self.advance_coalesced(now, mem, spaces, done, tracer, metrics, pid)
            }
            WalkerKind::Software { trap_cycles } => {
                self.advance_serial(now, mem, spaces, done, trap_cycles, tracer, metrics, pid)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn advance_serial(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemPort,
        spaces: &[&AddressSpace],
        done: &mut Vec<WalkDone>,
        trap_cycles: u64,
        tracer: &mut Tracer,
        metrics: &mut Metrics,
        pid: u32,
    ) {
        loop {
            if self.pending.is_empty() {
                return;
            }
            // Earliest-free lane.
            let (lane_idx, &lane_free) = self
                .lanes
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| c)
                .expect("walker has at least one lane");
            if lane_free > now {
                return;
            }
            let req = self.pick(now).expect("checked non-empty");
            let walk = spaces[req.asid as usize].walk(req.vpn);
            // A software handler pays the trap on entry and exit.
            let mut t = now + trap_cycles;
            for level in &walk.levels {
                metrics.record(|| MetricEvent::WalkLevel {
                    asid: req.asid,
                    vpn: req.vpn.raw(),
                    level: level.level as u8,
                });
                t = Self::pte_load(
                    &mut self.pwc,
                    &mut self.stats,
                    t,
                    level.level,
                    level.pte_paddr.raw(),
                    mem,
                );
            }
            t += trap_cycles;
            self.stats.refs_naive.add(walk.levels.len() as u64);
            self.stats.walks.inc();
            self.stats.walk_latency.record(t - req.enqueued);
            self.stats.lane_busy_cycles.add(t - now);
            self.lanes[lane_idx] = t;
            tracer.record(|| {
                TraceEvent::span(
                    "page_walk",
                    "walker",
                    pid,
                    TID_WALKER + lane_idx as u32,
                    now,
                    t - now,
                )
                .arg("vpn", req.vpn.raw())
                .arg("warp", req.warp as u64)
            });
            done.push(WalkDone {
                asid: req.asid,
                vpn: req.vpn,
                warp: req.warp,
                translation: walk.result,
                complete: t,
                enqueued: req.enqueued,
                started: now,
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn advance_coalesced(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemPort,
        spaces: &[&AddressSpace],
        done: &mut Vec<WalkDone>,
        tracer: &mut Tracer,
        metrics: &mut Metrics,
        pid: u32,
    ) {
        if self.pending.is_empty() || self.lanes[0] > now {
            return;
        }
        // Drain the queue into one batch: the hardware scans all
        // allocated MSHRs with its comparator tree. Without fairness the
        // whole queue goes (legacy behaviour); with fairness each ASID
        // contributes at most `tokens` requests per batch — except aged
        // ones, which always board — so one thrashing tenant cannot
        // stretch every batch (and every co-tenant's walk) on its own.
        // All batch buffers come from the walker's scratch pool: cleared
        // here, returned at the end, never reallocated in steady state.
        let mut batch = std::mem::take(&mut self.scratch.batch);
        batch.clear();
        match &self.fair {
            None => batch.extend(self.pending.drain(..)),
            Some(fair) => {
                let (tokens, max_age, n_asids) = (fair.tokens, fair.max_age, fair.n_asids);
                let taken = &mut self.scratch.taken;
                taken.clear();
                taken.resize(n_asids, 0);
                let mut rest = std::mem::take(&mut self.scratch.rest);
                rest.clear();
                for r in self.pending.drain(..) {
                    let aged = now.saturating_sub(r.enqueued) >= max_age;
                    let a = r.asid as usize;
                    if aged || taken[a] < tokens {
                        taken[a] += 1;
                        batch.push(r);
                    } else {
                        rest.push_back(r);
                    }
                }
                // The drained queue becomes next batch's `rest` buffer.
                std::mem::swap(&mut self.pending, &mut rest);
                self.scratch.rest = rest;
            }
        }
        self.stats.batch_size.record(batch.len() as u64);
        let mut walks = std::mem::take(&mut self.scratch.walks);
        walks.clear();
        walks.extend(batch.iter().map(|r| spaces[r.asid as usize].walk(r.vpn)));
        let max_levels = walks.iter().map(|w| w.levels.len()).max().unwrap_or(0);
        let mut walk_complete = std::mem::take(&mut self.scratch.walk_complete);
        walk_complete.clear();
        walk_complete.resize(walks.len(), now);
        let mut level_refs = std::mem::take(&mut self.scratch.level_refs);
        let mut t = now;
        for li in 0..max_levels {
            // Unique PTE loads at this level, preserving first-seen order
            // and grouping same-line loads adjacently (sort by line then
            // address; batches are small, so this is cheap). Only the
            // first `n_refs` slots of `level_refs` are live; dead slots
            // keep their inner `Vec` capacity for recycling.
            let mut n_refs = 0usize;
            for (wi, w) in walks.iter().enumerate() {
                let Some(level) = w.levels.get(li) else {
                    continue;
                };
                // Attribution is per-walk, not per-issued-load: each walk
                // charges every level it needs even when the scheduler
                // deduplicates the actual memory reference.
                metrics.record(|| MetricEvent::WalkLevel {
                    asid: batch[wi].asid,
                    vpn: batch[wi].vpn.raw(),
                    level: level.level as u8,
                });
                let pa = level.pte_paddr.raw();
                match level_refs[..n_refs].iter_mut().find(|(a, _)| *a == pa) {
                    Some((_, users)) => users.push(wi), // duplicate: eliminated
                    None => {
                        if let Some(slot) = level_refs.get_mut(n_refs) {
                            slot.0 = pa;
                            slot.1.clear();
                            slot.1.push(wi);
                        } else {
                            level_refs.push((pa, vec![wi]));
                        }
                        n_refs += 1;
                    }
                }
            }
            if n_refs == 0 {
                break;
            }
            // Unstable sort: keys are unique (entries were deduplicated
            // by address), so the order is identical to a stable sort —
            // without the stable sort's temporary heap buffer.
            level_refs[..n_refs].sort_unstable_by_key(|(a, _)| (*a >> LINE_SHIFT, *a));
            let naive_refs: usize = level_refs[..n_refs].iter().map(|(_, u)| u.len()).sum();
            self.stats.refs_naive.add(naive_refs as u64);
            // Issue the unique loads back-to-back; the level's loads are
            // independent, so their latencies overlap. The next level
            // depends on this one, so it starts when the slowest returns.
            let level = walks
                .iter()
                .filter_map(|w| w.levels.get(li))
                .map(|l| l.level)
                .next()
                .expect("non-empty level");
            let mut level_done = t;
            for (i, (pa, users)) in level_refs[..n_refs].iter().enumerate() {
                let issue = t + i as u64 * self.config.issue_spacing;
                let complete =
                    Self::pte_load(&mut self.pwc, &mut self.stats, issue, level, *pa, mem);
                level_done = level_done.max(complete);
                for &wi in users {
                    walk_complete[wi] = walk_complete[wi].max(complete);
                }
            }
            t = level_done;
        }
        for (wi, req) in batch.iter().enumerate() {
            let complete = walk_complete[wi];
            self.stats.walks.inc();
            self.stats.walk_latency.record(complete - req.enqueued);
            // One span per walk in the batch; tracks fan out by batch
            // index so concurrent walks render as parallel rows.
            tracer.record(|| {
                TraceEvent::span(
                    "page_walk",
                    "walker",
                    pid,
                    TID_WALKER + wi as u32,
                    now,
                    complete - now,
                )
                .arg("vpn", req.vpn.raw())
                .arg("warp", req.warp as u64)
            });
            done.push(WalkDone {
                asid: req.asid,
                vpn: req.vpn,
                warp: req.warp,
                translation: walks[wi].result,
                complete,
                enqueued: req.enqueued,
                started: now,
            });
        }
        self.stats.lane_busy_cycles.add(t - now);
        self.lanes[0] = t;
        // Hand every buffer back for the next batch.
        self.scratch.batch = batch;
        self.scratch.walks = walks;
        self.scratch.walk_complete = walk_complete;
        self.scratch.level_refs = level_refs;
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for WalkRequest {
    fn save(&self, w: &mut Saver) {
        w.u16(self.asid);
        self.vpn.save(w);
        w.u16(self.warp);
        w.u64(self.enqueued);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.asid = r.u16()?;
        self.vpn.load(r)?;
        self.warp = r.u16()?;
        self.enqueued = r.u64()?;
        Ok(())
    }
}

impl Ckpt for WalkDone {
    fn save(&self, w: &mut Saver) {
        w.u16(self.asid);
        self.vpn.save(w);
        w.u16(self.warp);
        self.translation.save(w);
        w.u64(self.complete);
        w.u64(self.enqueued);
        w.u64(self.started);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.asid = r.u16()?;
        self.vpn.load(r)?;
        self.warp = r.u16()?;
        self.translation.load(r)?;
        self.complete = r.u64()?;
        self.enqueued = r.u64()?;
        self.started = r.u64()?;
        Ok(())
    }
}

impl Ckpt for WalkerStats {
    fn save(&self, w: &mut Saver) {
        self.walks.save(w);
        self.refs_issued.save(w);
        self.refs_naive.save(w);
        self.walk_latency.save(w);
        self.batch_size.save(w);
        self.pwc_hits.save(w);
        self.lane_busy_cycles.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.walks.load(r)?;
        self.refs_issued.load(r)?;
        self.refs_naive.load(r)?;
        self.walk_latency.load(r)?;
        self.batch_size.load(r)?;
        self.pwc_hits.load(r)?;
        self.lane_busy_cycles.load(r)
    }
}

impl Ckpt for Walker {
    /// Whether a page-walk cache or fairness scheduler exists is
    /// config-derived geometry, so the stream holds their contents only
    /// when the walker has them.
    fn save(&self, w: &mut Saver) {
        self.lanes.save(w);
        self.pending.save(w);
        if let Some(pwc) = &self.pwc {
            pwc.save(w);
        }
        if let Some(fair) = &self.fair {
            fair.credits.save(w);
            w.usize(fair.rr);
        }
        self.stats.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.lanes.load(r)?;
        self.pending.load(r)?;
        if let Some(pwc) = &mut self.pwc {
            pwc.load(r)?;
        }
        if let Some(fair) = &mut self.fair {
            fair.credits.load(r)?;
            fair.rr = r.usize()?;
        }
        self.stats.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu_mem::{MemConfig, MemorySystem};
    use gmmu_vm::SpaceConfig;

    fn setup() -> (AddressSpace, MemorySystem) {
        let mut space = AddressSpace::new(SpaceConfig::default());
        space
            .map_region("data", 8 << 20, PageSize::Base4K)
            .expect("map");
        (space, MemorySystem::new(MemConfig::default()))
    }

    /// The Figure 8 pages: (0xb9,0x0c,0xac,0x03), (…,0x04), (…,0xad,0x05)
    /// relative to a region base; we synthesize equivalent locality by
    /// picking pages 3, 4 and 512+5 of a region (same PML4/PDP, first two
    /// share a PT cache line, third in a sibling PT).
    fn figure8_pages(space: &AddressSpace) -> [Vpn; 3] {
        let base = space.regions()[0].base.vpn().raw();
        [
            Vpn::new(base + 3),
            Vpn::new(base + 4),
            Vpn::new(base + 512 + 5),
        ]
    }

    #[test]
    fn serial_walker_walks_one_at_a_time() {
        let (space, mut mem) = setup();
        let mut w = Walker::new(WalkerConfig::serial());
        let pages = figure8_pages(&space);
        for p in pages {
            w.enqueue(p, 0, 0);
        }
        let mut done = Vec::new();
        w.advance(0, &mut mem, &space, &mut done);
        // Only the first walk starts at cycle 0; the lane is now busy.
        assert_eq!(done.len(), 1);
        let first_done = done[0].complete;
        w.advance(first_done, &mut mem, &space, &mut done);
        assert_eq!(done.len(), 2);
        assert!(done[1].complete > first_done);
        assert_eq!(w.stats.refs_issued.get(), 8); // 4 + 4
    }

    #[test]
    fn coalesced_walker_issues_figure8_reference_count() {
        let (space, mut mem) = setup();
        let mut w = Walker::new(WalkerConfig::coalesced());
        for p in figure8_pages(&space) {
            w.enqueue(p, 0, 0);
        }
        let mut done = Vec::new();
        w.advance(0, &mut mem, &space, &mut done);
        assert_eq!(done.len(), 3);
        // Paper, Figure 8: 12 naive loads reduced to 7 (1 PML4, 1 PDP,
        // 2 PD, 3 PT).
        assert_eq!(w.stats.refs_naive.get(), 12);
        assert_eq!(w.stats.refs_issued.get(), 7);
        assert!((w.stats.refs_eliminated() - 5.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn coalesced_batch_is_faster_than_serial_walks() {
        let (space, mut mem_a) = setup();
        let mut mem_b = MemorySystem::new(MemConfig::default());
        let pages = figure8_pages(&space);

        let mut serial = Walker::new(WalkerConfig::serial());
        let mut done = Vec::new();
        for p in pages {
            serial.enqueue(p, 0, 0);
        }
        let mut t = 0;
        while done.len() < 3 {
            serial.advance(t, &mut mem_a, &space, &mut done);
            t = done.last().map_or(t + 1, |d| d.complete);
        }
        let serial_finish = done.iter().map(|d| d.complete).max().unwrap();

        let mut coal = Walker::new(WalkerConfig::coalesced());
        let mut done_c = Vec::new();
        for p in pages {
            coal.enqueue(p, 0, 0);
        }
        coal.advance(0, &mut mem_b, &space, &mut done_c);
        let coal_finish = done_c.iter().map(|d| d.complete).max().unwrap();
        assert!(
            coal_finish < serial_finish,
            "coalesced {coal_finish} !< serial {serial_finish}"
        );
    }

    #[test]
    fn walk_results_match_translation() {
        let (space, mut mem) = setup();
        for cfg in [WalkerConfig::serial(), WalkerConfig::coalesced()] {
            let mut w = Walker::new(cfg);
            let pages = figure8_pages(&space);
            for p in pages {
                w.enqueue(p, 0, 0);
            }
            let mut done = Vec::new();
            let mut t = 0;
            for _ in 0..10 {
                w.advance(t, &mut mem, &space, &mut done);
                t += 10_000;
            }
            assert_eq!(done.len(), 3);
            for d in &done {
                let expect = space.translate(d.vpn.base()).expect("mapped").0.ppn();
                assert_eq!(d.translation.expect("mapped").0, expect);
            }
        }
    }

    #[test]
    fn unmapped_walk_reports_fault() {
        let (space, mut mem) = setup();
        let mut w = Walker::new(WalkerConfig::serial());
        w.enqueue(Vpn::new(1), 0, 0);
        let mut done = Vec::new();
        w.advance(0, &mut mem, &space, &mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].translation, None);
        // A truncated walk still issued at least one load.
        assert!(w.stats.refs_issued.get() >= 1);
    }

    #[test]
    fn multiple_serial_lanes_overlap() {
        let (space, mut mem) = setup();
        let mut w = Walker::new(WalkerConfig::serial_n(2));
        let pages = figure8_pages(&space);
        for p in pages {
            w.enqueue(p, 0, 0);
        }
        let mut done = Vec::new();
        w.advance(0, &mut mem, &space, &mut done);
        // Two lanes start immediately.
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn large_page_walks_are_shorter() {
        let mut space = AddressSpace::new(SpaceConfig::default());
        let r = space.map_region("big", 4 << 20, PageSize::Large2M).unwrap();
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut w = Walker::new(WalkerConfig::serial());
        w.enqueue(r.base.vpn(), 0, 0);
        let mut done = Vec::new();
        w.advance(0, &mut mem, &space, &mut done);
        assert_eq!(w.stats.refs_issued.get(), 3);
        assert_eq!(done[0].translation.unwrap().1, PageSize::Large2M);
    }

    #[test]
    fn software_walker_pays_trap_overhead() {
        let (space, mut mem) = setup();
        let page = figure8_pages(&space)[0];
        let run = |cfg, mem: &mut MemorySystem| {
            let mut w = Walker::new(cfg);
            w.enqueue(page, 0, 0);
            let mut done = Vec::new();
            w.advance(0, mem, &space, &mut done);
            done[0].complete
        };
        let hw = run(WalkerConfig::serial(), &mut mem);
        let mut mem2 = MemorySystem::new(MemConfig::default());
        let sw = run(WalkerConfig::software(200), &mut mem2);
        assert!(
            sw >= hw + 2 * 200,
            "software walk {sw} should pay two traps over hardware {hw}"
        );
    }

    #[test]
    fn page_walk_cache_skips_warm_upper_levels() {
        let (space, mut mem) = setup();
        let base = space.regions()[0].base.vpn().raw();
        let mut w = Walker::new(WalkerConfig::serial().with_pwc(16));
        let mut done = Vec::new();
        // First walk warms PML4/PDP/PD entries.
        w.enqueue(Vpn::new(base), 0, 0);
        w.advance(0, &mut mem, &space, &mut done);
        assert_eq!(w.stats.refs_issued.get(), 4);
        // A neighbouring page shares all three upper levels: only the
        // leaf PTE goes to memory.
        w.enqueue(Vpn::new(base + 1), 0, 1_000_000);
        w.advance(1_000_000, &mut mem, &space, &mut done);
        assert_eq!(w.stats.refs_issued.get(), 5);
        assert_eq!(w.stats.pwc_hits.get(), 3);
        // The second walk is also much faster.
        let first = done[0].complete - done[0].enqueued;
        let second = done[1].complete - done[1].enqueued;
        assert!(second < first / 2, "PWC walk {second} !< {first}/2");
    }

    #[test]
    fn pwc_composes_with_the_coalescing_walker() {
        let (space, mut mem) = setup();
        let mut w = Walker::new(WalkerConfig::coalesced().with_pwc(16));
        for p in figure8_pages(&space) {
            w.enqueue(p, 0, 0);
        }
        let mut done = Vec::new();
        w.advance(0, &mut mem, &space, &mut done);
        assert_eq!(done.len(), 3);
        // Dedup already removes repeats within the batch; the PWC only
        // helps across batches.
        assert_eq!(w.stats.refs_issued.get(), 7);
        // A second batch of neighbours now hits the PWC for all three
        // upper levels.
        let base = space.regions()[0].base.vpn().raw();
        w.enqueue(Vpn::new(base + 6), 0, 1_000_000);
        w.advance(1_000_000, &mut mem, &space, &mut done);
        assert!(w.stats.pwc_hits.get() >= 3);
    }

    fn two_tenant_setup() -> (AddressSpace, AddressSpace, MemorySystem) {
        let mut s0 = AddressSpace::with_asid(SpaceConfig::default(), 0);
        let mut s1 = AddressSpace::with_asid(SpaceConfig::default(), 1);
        s0.map_region("d", 8 << 20, PageSize::Base4K).expect("map");
        s1.map_region("d", 8 << 20, PageSize::Base4K).expect("map");
        (s0, s1, MemorySystem::new(MemConfig::default()))
    }

    #[test]
    fn walks_use_each_tenants_own_table() {
        let (s0, s1, mut mem) = two_tenant_setup();
        let mut w = Walker::new(WalkerConfig::coalesced());
        let v0 = s0.regions()[0].base.vpn();
        let v1 = s1.regions()[0].base.vpn();
        w.enqueue_asid(0, v0, 0, 0);
        w.enqueue_asid(1, v1, 0, 0);
        let mut done = Vec::new();
        w.advance_tenants(
            0,
            &mut mem,
            &[&s0, &s1],
            &mut done,
            &mut Tracer::Off,
            &mut Metrics::Off,
            0,
        );
        assert_eq!(done.len(), 2);
        for d in &done {
            let space = if d.asid == 0 { &s0 } else { &s1 };
            let expect = space.translate(d.vpn.base()).expect("mapped").0.ppn();
            assert_eq!(d.translation.expect("mapped").0, expect);
        }
        // Disjoint physical windows: the two tenants' frames never match.
        assert_ne!(done[0].translation, done[1].translation);
    }

    #[test]
    fn fairness_caps_a_thrashing_tenants_batch_share() {
        let (s0, s1, mut mem) = two_tenant_setup();
        let base0 = s0.regions()[0].base.vpn().raw();
        let v1 = s1.regions()[0].base.vpn();
        let mut w = Walker::new(WalkerConfig::coalesced());
        w.set_fairness(2, 2, 10_000);
        // Tenant 0 floods the queue; tenant 1 queues one walk last.
        for i in 0..32 {
            w.enqueue_asid(0, Vpn::new(base0 + i), 0, 0);
        }
        w.enqueue_asid(1, v1, 0, 0);
        let mut done = Vec::new();
        w.advance_tenants(
            0,
            &mut mem,
            &[&s0, &s1],
            &mut done,
            &mut Tracer::Off,
            &mut Metrics::Off,
            0,
        );
        // First batch: 2 of tenant 0's walks plus tenant 1's — not all 33.
        assert_eq!(done.len(), 3);
        assert!(done.iter().any(|d| d.asid == 1));
        assert_eq!(w.queue_len(), 30);
        assert_eq!(w.queue_len_asid(0), 30);
        assert_eq!(w.queue_len_asid(1), 0);
    }

    #[test]
    fn serial_fairness_serves_starved_tenant_within_max_age() {
        let (s0, s1, mut mem) = two_tenant_setup();
        let base0 = s0.regions()[0].base.vpn().raw();
        let v1 = s1.regions()[0].base.vpn();
        let mut w = Walker::new(WalkerConfig::serial());
        // max_age larger than the run so the round-robin token path (not
        // the aged-first path, which ties back to FIFO here because every
        // request is enqueued at cycle 0) decides the order.
        w.set_fairness(2, 1, 1_000_000);
        for i in 0..64 {
            w.enqueue_asid(0, Vpn::new(base0 + i), 0, 0);
        }
        w.enqueue_asid(1, v1, 7, 0);
        let mut done: Vec<WalkDone> = Vec::new();
        let mut t = 0;
        while !done.iter().any(|d| d.asid == 1) {
            w.advance_tenants(
                t,
                &mut mem,
                &[&s0, &s1],
                &mut done,
                &mut Tracer::Off,
                &mut Metrics::Off,
                0,
            );
            t += 1;
            assert!(t < 5_000, "tenant 1 starved behind tenant 0's flood");
        }
        // Despite being enqueued 65th, tenant 1 finishes near the front:
        // round-robin tokens alternate ASIDs, so it is picked second.
        let served = done.iter().position(|d| d.asid == 1).unwrap();
        assert!(served <= 2, "tenant 1 served {served}th");
    }

    #[test]
    fn fairness_off_is_legacy_fifo() {
        let (s0, s1, mut mem) = two_tenant_setup();
        let mut mem2 = MemorySystem::new(MemConfig::default());
        let base0 = s0.regions()[0].base.vpn().raw();
        let run = |w: &mut Walker, mem: &mut MemorySystem| {
            for i in 0..8 {
                w.enqueue_asid(0, Vpn::new(base0 + i), 0, 0);
            }
            let mut done = Vec::new();
            let mut t = 0;
            while done.len() < 8 {
                w.advance_tenants(
                    t,
                    mem,
                    &[&s0, &s1],
                    &mut done,
                    &mut Tracer::Off,
                    &mut Metrics::Off,
                    0,
                );
                t += 1;
            }
            done
        };
        let mut plain = Walker::new(WalkerConfig::serial());
        let mut armed = Walker::new(WalkerConfig::serial());
        // One tenant: set_fairness disarms, so both are the legacy FIFO.
        armed.set_fairness(1, 4, 100);
        assert!(!armed.fairness_armed());
        assert_eq!(run(&mut plain, &mut mem), run(&mut armed, &mut mem2));
    }

    #[test]
    fn shootdown_asid_squashes_only_that_tenant() {
        let (s0, s1, _mem) = two_tenant_setup();
        let base0 = s0.regions()[0].base.vpn().raw();
        let base1 = s1.regions()[0].base.vpn().raw();
        let mut w = Walker::new(WalkerConfig::serial());
        for i in 0..4 {
            w.enqueue_asid(0, Vpn::new(base0 + i), 0, 0);
            w.enqueue_asid(1, Vpn::new(base1 + i), 0, 0);
        }
        let squashed = w.shootdown_asid(0);
        assert_eq!(squashed.len(), 4);
        assert!(squashed.iter().all(|r| r.asid == 0));
        assert_eq!(w.queue_len(), 4);
        assert_eq!(w.queue_len_asid(1), 4);
        // Scoped shootdown of the only tenant == the legacy full one.
        let rest = w.shootdown_asid(1);
        assert_eq!(rest.len(), 4);
        assert_eq!(w.queue_len(), 0);
    }

    #[test]
    fn walk_latency_counts_queueing() {
        let (space, mut mem) = setup();
        let mut w = Walker::new(WalkerConfig::serial());
        let pages = figure8_pages(&space);
        for p in pages {
            w.enqueue(p, 0, 0);
        }
        let mut done = Vec::new();
        let mut t = 0;
        while done.len() < 3 {
            w.advance(t, &mut mem, &space, &mut done);
            t += 1;
        }
        // The last walk's latency includes waiting behind two walks.
        let last = &done[2];
        assert!(last.complete - last.enqueued > done[0].complete - done[0].enqueued);
    }
}
