//! Victim tag arrays.
//!
//! CCWS keeps one small set-associative tag array per warp, recording the
//! tags of lines that warp recently had evicted from the L1 (Section 7.1).
//! A probe hit on a later miss means the warp *lost locality* — its data
//! was evicted by intervening warps. TCWS replaces cache-line tags with
//! virtual-page tags: "since TCWS VTAs maintain tags for 4KB pages, fewer
//! of them are necessary... TLB-based VTAs require half the area overhead
//! of cache line-based CCWS" (Section 7.2).

use gmmu_sim::stats::Counter;

#[derive(Debug, Clone, Copy, Default)]
struct VtaEntry {
    tag: u64,
    last_use: u64,
    valid: bool,
}

/// One warp's victim tag array: a tiny set-associative LRU tag store.
///
/// # Examples
///
/// ```
/// use gmmu_core::vta::Vta;
/// let mut vta = Vta::new(16, 8); // CCWS geometry: 16-entry, 8-way
/// vta.insert(0xdead);
/// assert!(vta.probe(0xdead));
/// assert!(!vta.probe(0xbeef));
/// ```
#[derive(Debug, Clone)]
pub struct Vta {
    ways: usize,
    set_mask: u64,
    entries: Vec<VtaEntry>,
    clock: u64,
    /// Successful probes (lost-locality detections).
    pub hits: Counter,
    /// All probes.
    pub probes: Counter,
}

impl Vta {
    /// Creates an array with `entries` total tags at associativity
    /// `ways` (clamped to `entries`). Sets must come out a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or the geometry is inconsistent.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0, "VTA needs at least one entry");
        let ways = ways.min(entries);
        assert!(entries.is_multiple_of(ways), "ways must divide entries");
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "VTA sets must be a power of two");
        Self {
            ways,
            set_mask: sets as u64 - 1,
            entries: vec![VtaEntry::default(); entries],
            clock: 0,
            hits: Counter::new(),
            probes: Counter::new(),
        }
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn set_range(&self, tag: u64) -> std::ops::Range<usize> {
        let set = (tag & self.set_mask) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Records an evicted tag (LRU replacement within the set).
    pub fn insert(&mut self, tag: u64) {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(tag);
        let set = &mut self.entries[range];
        // Already present: refresh.
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.last_use = clock;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_use } else { 0 })
            .expect("set is non-empty");
        *victim = VtaEntry {
            tag,
            last_use: clock,
            valid: true,
        };
    }

    /// Probes for a tag, refreshing its recency on hit.
    pub fn probe(&mut self, tag: u64) -> bool {
        self.probes.inc();
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(tag);
        if let Some(e) = self.entries[range]
            .iter_mut()
            .find(|e| e.valid && e.tag == tag)
        {
            e.last_use = clock;
            self.hits.inc();
            return true;
        }
        false
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.fill(VtaEntry::default());
    }
}

use gmmu_sim::ckpt::{Ckpt, CkptError, Loader, Saver};

impl Ckpt for VtaEntry {
    fn save(&self, w: &mut Saver) {
        w.u64(self.tag);
        w.u64(self.last_use);
        w.bool(self.valid);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.tag = r.u64()?;
        self.last_use = r.u64()?;
        self.valid = r.bool()?;
        Ok(())
    }
}

impl Ckpt for Vta {
    /// Geometry (`ways`, `set_mask`) is rebuilt by the caller.
    fn save(&self, w: &mut Saver) {
        self.entries.save(w);
        w.u64(self.clock);
        self.hits.save(w);
        self.probes.save(w);
    }
    fn load(&mut self, r: &mut Loader<'_>) -> Result<(), CkptError> {
        self.entries.load(r)?;
        self.clock = r.u64()?;
        self.hits.load(r)?;
        self.probes.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_probe() {
        let mut v = Vta::new(16, 8);
        v.insert(5);
        assert!(v.probe(5));
        assert!(!v.probe(6));
        assert_eq!(v.hits.get(), 1);
        assert_eq!(v.probes.get(), 2);
    }

    #[test]
    fn lru_within_set() {
        // 2 entries, 2 ways → 1 set.
        let mut v = Vta::new(2, 2);
        v.insert(1);
        v.insert(2);
        v.probe(1); // refresh 1 → 2 becomes LRU
        v.insert(3);
        assert!(v.probe(1));
        assert!(!v.probe(2));
        assert!(v.probe(3));
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let mut v = Vta::new(2, 2);
        v.insert(1);
        v.insert(1);
        v.insert(2);
        assert!(v.probe(1) && v.probe(2));
    }

    #[test]
    fn fully_associative_when_ways_exceed_entries() {
        let v = Vta::new(4, 8);
        assert_eq!(v.capacity(), 4);
    }

    #[test]
    fn clear_empties() {
        let mut v = Vta::new(8, 8);
        v.insert(1);
        v.clear();
        assert!(!v.probe(1));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Vta::new(0, 1);
    }
}
